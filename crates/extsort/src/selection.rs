//! Write-minimal sorting: exactly `n` writes (the output lower bound),
//! paid for with `Θ(n²/M)` reads.
//!
//! Each pass scans the whole (read-only) input keeping the `m` smallest
//! elements *above the previous threshold* in fast memory, then emits
//! them. `n/m` passes × `n` reads = `n²/m` reads, but each output
//! position is written exactly once — the extreme point of the §9
//! conjecture's trade-off curve.

use crate::SortIo;

/// Sort `data` with fast memory of `m` elements, writing each output
/// element exactly once. Duplicates are handled by tracking how many
/// copies of the threshold value were already emitted.
pub fn low_write_sort(data: &mut [f64], m: usize, io: &mut SortIo) {
    let n = data.len();
    assert!(m >= 1);
    if n <= 1 {
        return;
    }
    let input = data.to_vec(); // the read-only source ("kept in DRAM")
    let mut emitted = 0usize;
    // (threshold, copies of threshold already emitted)
    let mut thr = f64::NEG_INFINITY;
    let mut thr_emitted = 0usize;

    while emitted < n {
        let _span = wa_core::obs::span("selection-pass", "extsort");
        // Fast-memory working set: up to m smallest candidates > threshold
        // (plus threshold duplicates not yet emitted).
        let mut batch: Vec<f64> = Vec::with_capacity(m + 1);
        let mut skip = thr_emitted; // threshold copies to skip this pass
        io.read(n);
        io.passes += 1;
        for &x in &input {
            if x < thr {
                continue;
            }
            if x == thr && skip > 0 {
                skip -= 1;
                continue;
            }
            // Insert into the sorted batch, keeping at most m elements.
            let pos = batch.partition_point(|&b| b <= x);
            if pos < m {
                batch.insert(pos, x);
                if batch.len() > m {
                    batch.pop();
                }
            }
        }
        let take = batch.len().min(n - emitted);
        data[emitted..emitted + take].copy_from_slice(&batch[..take]);
        io.write(take);
        emitted += take;
        let new_thr = batch[take - 1];
        if new_thr == thr {
            thr_emitted += batch[..take].iter().filter(|&&x| x == new_thr).count();
        } else {
            thr_emitted = batch[..take].iter().filter(|&&x| x == new_thr).count();
            thr = new_thr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::XorShift;

    #[test]
    fn sorts_correctly() {
        let mut rng = XorShift::new(2);
        for &(n, m) in &[(1usize, 4usize), (10, 3), (100, 7), (500, 16), (512, 512)] {
            let mut d: Vec<f64> = (0..n).map(|_| (rng.next_below(50)) as f64).collect();
            let mut want = d.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut io = SortIo::default();
            low_write_sort(&mut d, m, &mut io);
            assert_eq!(d, want, "n={n} m={m}");
            let expected_writes = if n <= 1 { 0 } else { n as u64 };
            assert_eq!(io.writes(), expected_writes, "each element written once");
        }
    }

    #[test]
    fn heavy_duplicates() {
        let mut d = vec![1.0; 64];
        d.extend(vec![0.0; 64]);
        let mut io = SortIo::default();
        low_write_sort(&mut d, 8, &mut io);
        assert_eq!(&d[..64], &[0.0; 64][..]);
        assert_eq!(&d[64..], &[1.0; 64][..]);
        assert_eq!(io.writes(), 128);
    }

    #[test]
    fn read_volume_matches_n_squared_over_m() {
        let n = 1024;
        let m = 32;
        let mut rng = XorShift::new(3);
        let mut d: Vec<f64> = (0..n).map(|_| rng.next_unit()).collect();
        let mut io = SortIo::default();
        low_write_sort(&mut d, m, &mut io);
        let expect = (n * n / m) as u64; // n/m passes × n reads
        assert!(
            io.reads() >= expect && io.reads() <= expect + n as u64,
            "reads {} vs expected ~{expect}",
            io.reads()
        );
    }
}
