//! Engine registrations for the §9 sorting workloads.
//!
//! [`SortIo`] is an explicit element-granular tally, so both sorts
//! register the `explicit` backend (reads → loads, writes → stores on one
//! boundary) plus `raw` for wall clock. Together they trace the two ends
//! of the conjectured read/write frontier: merge sort does `Θ(n log_M n)`
//! of each, the selection sort exactly `n` writes but `Θ(n²/M)` reads.

use crate::merge::external_merge_sort;
use crate::selection::low_write_sort;
use crate::SortIo;
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::{BoundaryTraffic, XorShift};

fn problem(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (1 << 14, 256),
        Scale::Paper => (1 << 16, 1024),
    }
}

fn random_data(n: usize) -> Vec<f64> {
    let mut rng = XorShift::new(91);
    (0..n).map(|_| rng.next_unit() * 1e6).collect()
}

fn sort_workload(
    name: &'static str,
    description: &'static str,
    selection: bool,
) -> Box<dyn Workload> {
    let backends = [BackendKind::Raw, BackendKind::Explicit];
    FnWorkload::boxed_sized(
        name,
        "extsort",
        description,
        &backends,
        &[],
        // The n-element input plus merge scratch, with slack.
        |scale, _| {
            let (n, _) = problem(scale);
            3 * n as u64 * 8
        },
        move |wa_core::engine::RunCfg { backend, scale, .. }| {
            let (n, m) = problem(scale);
            let mut data = random_data(n);
            let mut io = SortIo::default();
            let (_, ns) = timed(|| {
                if selection {
                    low_write_sort(&mut data, m, &mut io)
                } else {
                    external_merge_sort(&mut data, m, 8, &mut io)
                }
            });
            if data.windows(2).any(|w| w[0] > w[1]) {
                return Err(EngineError::Failed {
                    workload: name.to_string(),
                    message: "output not sorted".to_string(),
                });
            }
            match backend {
                BackendKind::Raw => {
                    let mut r = RunReport::new(name, backend, scale)
                        .config("n", n)
                        .config("fast_elems", m);
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Explicit => {
                    let mut bt = BoundaryTraffic::new(2);
                    *bt.boundary_mut(0) = io.traffic;
                    let mut r = RunReport::new(name, backend, scale)
                        .with_boundaries(&bt, &[])
                        .config("n", n)
                        .config("fast_elems", m)
                        .config("passes", io.passes)
                        .config("write_fraction", format!("{:.4}", io.write_fraction()))
                        .note("SortIo projection: element counts, msgs == streams");
                    r.wall_ns = ns;
                    Ok(r)
                }
                other => Err(EngineError::UnsupportedBackend {
                    workload: name.to_string(),
                    backend: other,
                    supported: backends.to_vec(),
                }),
            }
        },
    )
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        sort_workload(
            "sort-merge",
            "external k-way merge sort: Theta(n log_M n) reads AND writes (I/O optimal)",
            false,
        ),
        sort_workload(
            "sort-selection",
            "low-write multi-pass selection sort: exactly n writes, Theta(n^2/M) reads",
            true,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sort_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn selection_sort_attains_the_output_write_bound() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "sort-selection").unwrap();
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        let (n, _) = problem(Scale::Small);
        assert_eq!(r.writes_to_slow(), n as u64);
        let m = ws.iter().find(|w| w.name() == "sort-merge").unwrap();
        let rm = m.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert!(rm.writes_to_slow() > 2 * r.writes_to_slow());
    }
}
