//! # extsort — sorting and the write-avoiding conjecture
//!
//! Section 9 of the paper conjectures that for sorting (and the DFT), no
//! algorithm can simultaneously perform `o(n log_M n)` writes to slow
//! memory and `O(n log_M n)` reads: asymptotically fewer writes seem to
//! require asymptotically more reads. This crate explores both sides of
//! the conjectured frontier with instrumented, *executed* algorithms:
//!
//! * [`merge::external_merge_sort`] — the classical I/O-optimal k-way
//!   merge sort: `Θ(n log_M n)` reads **and** writes (write fraction ½ of
//!   traffic; matches the Aggarwal–Vitter bound on total I/O);
//! * [`selection::low_write_sort`] — a write-minimal multi-pass selection
//!   sort: exactly `n` writes (the output bound!) but `Θ(n²/M)` reads —
//!   the price the conjecture predicts.
//!
//! Both sort correctly (property-tested against the standard library) and
//! report their slow-memory traffic through [`SortIo`].

pub mod merge;
pub mod selection;
pub mod workloads;

/// Slow-memory traffic of a sorting run, in elements, under the explicit
/// model (the fast memory holds `m` elements; streams are counted once).
/// Backed by the batched [`wa_core::Traffic`] API: each `read`/`write`
/// charge is one stream (one message), so `traffic.load_msgs` counts the
/// scan passes' block transfers rather than echoing the word counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortIo {
    /// Loads = element reads from slow memory; stores = element writes.
    pub traffic: wa_core::Traffic,
    /// Sequential passes over the data (for the formula checks).
    pub passes: u64,
}

impl SortIo {
    /// Charge one read stream of `n` elements.
    pub fn read(&mut self, n: usize) {
        self.traffic.load_run(n as u64);
    }

    /// Charge one write stream of `n` elements.
    pub fn write(&mut self, n: usize) {
        self.traffic.store_run(n as u64);
    }

    /// Charge a batch of access runs (the bulk API).
    pub fn run(&mut self, runs: &[wa_core::AccessRun]) {
        self.traffic.run(runs);
    }

    /// Elements read from slow memory.
    pub fn reads(&self) -> u64 {
        self.traffic.load_words
    }

    /// Elements written to slow memory.
    pub fn writes(&self) -> u64 {
        self.traffic.store_words
    }

    /// Fraction of total traffic that is writes.
    pub fn write_fraction(&self) -> f64 {
        self.traffic.write_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::merge::external_merge_sort;
    use super::selection::low_write_sort;
    use super::SortIo;
    use wa_core::XorShift;

    fn random_data(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = XorShift::new(seed);
        (0..n).map(|_| rng.next_unit() * 1000.0).collect()
    }

    /// The conjectured trade-off, observed: at the same fast-memory size,
    /// merge sort's writes are Θ(n log_M n) while the low-write sort's are
    /// exactly n — and its reads blow up by the predicted Θ(n/(M log_M n)).
    #[test]
    fn tradeoff_between_the_two_sorts() {
        let n = 4096;
        let m = 64;
        let data = random_data(n, 9);

        let mut d1 = data.clone();
        let mut io1 = SortIo::default();
        external_merge_sort(&mut d1, m, m / 2, &mut io1);

        let mut d2 = data.clone();
        let mut io2 = SortIo::default();
        low_write_sort(&mut d2, m, &mut io2);

        assert_eq!(d1, d2, "both sorts must agree");

        // Merge sort: writes ≈ reads ≈ n · passes.
        assert!(io1.write_fraction() > 0.45 && io1.write_fraction() < 0.55);
        assert!(
            io1.writes() >= (n as u64) * 2,
            "at least two passes at n/M = 64"
        );

        // Low-write sort: writes == n exactly; reads Θ(n²/m).
        assert_eq!(io2.writes(), n as u64);
        assert!(
            io2.reads() as f64 > 0.5 * (n * n / m) as f64,
            "reads {} should scale as n²/M = {}",
            io2.reads(),
            n * n / m
        );
        // And the trade is real: fewer writes, far more reads.
        assert!(io2.writes() * 2 < io1.writes());
        assert!(io2.reads() > 4 * io1.reads());
    }

    #[test]
    fn merge_pass_count_matches_formula() {
        let n = 4096;
        let m = 64;
        let fanout = 8;
        let mut d = random_data(n, 10);
        let mut io = SortIo::default();
        external_merge_sort(&mut d, m, fanout, &mut io);
        // 1 run-formation pass + ceil(log_fanout(n/m)) merge passes.
        let runs = n / m;
        let merge_passes = (runs as f64).log(fanout as f64).ceil() as u64;
        assert_eq!(io.passes, 1 + merge_passes);
        assert_eq!(io.writes(), (1 + merge_passes) * n as u64);
    }
}
