//! I/O-optimal external k-way merge sort (Aggarwal–Vitter style).
//!
//! Pass 0 forms sorted runs of `m` elements (one read + one write of the
//! whole array); each merge pass `k`-way-merges runs (again one read + one
//! write of everything). Total traffic `Θ(n log_k(n/m))` with writes equal
//! to reads — per Corollary 2's spirit and the §9 conjecture, this write
//! volume is believed unavoidable without blowing up reads.

use crate::SortIo;

/// Sort `data` with fast memory of `m` elements and merge fan-in `fanout`
/// (`fanout + 1` buffers must fit: `fanout < m` required). Counts traffic
/// in `io`.
pub fn external_merge_sort(data: &mut [f64], m: usize, fanout: usize, io: &mut SortIo) {
    let n = data.len();
    assert!(m >= 2, "need at least two resident elements");
    assert!(fanout >= 2 && fanout < m, "fan-in must fit in fast memory");
    if n <= 1 {
        return;
    }

    // Pass 0: run formation.
    {
        let _span = wa_core::obs::span("run-formation", "extsort");
        for chunk in data.chunks_mut(m) {
            chunk.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in sort input"));
        }
        io.read(n);
        io.write(n);
        io.passes += 1;
    }

    // Merge passes.
    let mut run_len = m;
    let mut src = data.to_vec();
    let mut dst = vec![0.0; n];
    while run_len < n {
        let _span = wa_core::obs::span("merge-pass", "extsort");
        let group = run_len * fanout;
        let mut base = 0;
        while base < n {
            let end = (base + group).min(n);
            kway_merge(&src[base..end], run_len, fanout, &mut dst[base..end]);
            base = end;
        }
        io.read(n);
        io.write(n);
        io.passes += 1;
        std::mem::swap(&mut src, &mut dst);
        run_len = group;
    }
    data.copy_from_slice(&src);
}

/// Merge up to `fanout` consecutive sorted runs of `run_len` in `src`
/// into `dst` (simple heap-free selection across run heads — fan-in is
/// small by construction).
fn kway_merge(src: &[f64], run_len: usize, fanout: usize, dst: &mut [f64]) {
    let n = src.len();
    let mut heads: Vec<usize> = (0..fanout)
        .map(|r| r * run_len)
        .take_while(|&h| h < n)
        .collect();
    let ends: Vec<usize> = heads.iter().map(|&h| (h + run_len).min(n)).collect();
    for out in dst.iter_mut() {
        let mut best: Option<usize> = None;
        for (r, &h) in heads.iter().enumerate() {
            if h < ends[r] {
                best = match best {
                    None => Some(r),
                    Some(b) if src[h] < src[heads[b]] => Some(r),
                    keep => keep,
                };
            }
        }
        let b = best.expect("output longer than input");
        *out = src[heads[b]];
        heads[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::XorShift;

    fn check_sorted(d: &[f64]) {
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn sorts_correctly_various_shapes() {
        let mut rng = XorShift::new(1);
        for &(n, m, f) in &[
            (1usize, 4usize, 2usize),
            (7, 4, 2),
            (64, 8, 2),
            (1000, 16, 4),
            (1024, 32, 8),
        ] {
            let mut d: Vec<f64> = (0..n).map(|_| rng.next_unit()).collect();
            let mut want = d.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut io = SortIo::default();
            external_merge_sort(&mut d, m, f, &mut io);
            check_sorted(&d);
            assert_eq!(d, want, "n={n} m={m} f={f}");
        }
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let mut d: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut io = SortIo::default();
        external_merge_sort(&mut d, 16, 4, &mut io);
        check_sorted(&d);
        let mut r: Vec<f64> = (0..500).rev().map(|i| i as f64).collect();
        external_merge_sort(&mut r, 16, 4, &mut io);
        check_sorted(&r);
    }

    #[test]
    fn duplicates_preserved() {
        let mut d = vec![3.0, 1.0, 3.0, 1.0, 2.0, 2.0, 3.0];
        let mut io = SortIo::default();
        external_merge_sort(&mut d, 4, 2, &mut io);
        assert_eq!(d, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }
}
