//! Engine registrations for the bounded-reuse CDAG kernels (Theorem 2 /
//! Corollaries 2–3): FFT and Strassen. Neither admits a write-avoiding
//! reordering — the point of running them through the same engine as the
//! WA kernels is to watch `writes_to_slow` track total traffic instead of
//! the output size.

use crate::fft::{fft_mem, Complex};
use crate::strassen::{strassen_mem, strassen_scratch_words};
use dense::desc::alloc_layout;
use memsim::xeon::XeonGeometry;
use memsim::{memsim_report, stack_report, Mem, MemSim, RawMem, SimMem, StackMem, TraceMem};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::Mat;

fn l3_words(scale: Scale) -> usize {
    XeonGeometry::for_scale(scale, memsim::Policy::Lru).l3_words
}

fn l3_sim(m: usize) -> MemSim {
    MemSim::single_level_lru(m)
}

/// Shared three-backend runner over a staged data vector.
fn run_backend(
    name: &'static str,
    backend: BackendKind,
    scale: Scale,
    data: Vec<f64>,
    kernel: impl Fn(&mut &mut dyn Mem),
) -> Result<RunReport, EngineError> {
    let base = |backend| RunReport::new(name, backend, scale).config("fast_words", l3_words(scale));
    match backend {
        BackendKind::Raw => {
            let mut mem = RawMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem)));
            let mut r = base(backend);
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Simmed => {
            let mut mem = SimMem::from_vec(data, l3_sim(l3_words(scale)));
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem)));
            mem.sim.flush();
            let mut r = memsim_report(&mem.sim, base(backend))
                .note("flushed: end-of-run dirty lines charged to DRAM");
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Stack => {
            let mut mem = StackMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem)));
            let mut r = stack_report(&mem.sim, l3_words(scale), base(backend));
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Traced => {
            let mut mem = TraceMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem)));
            let writes = mem.trace.iter().filter(|a| a.is_write).count();
            let mut r = base(backend)
                .config("trace_len", mem.trace.len())
                .config("trace_writes", writes);
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Explicit => Err(EngineError::UnsupportedBackend {
            workload: name.to_string(),
            backend,
            supported: vec![
                BackendKind::Raw,
                BackendKind::Simmed,
                BackendKind::Traced,
                BackendKind::Stack,
            ],
        }),
    }
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Stack,
    ];
    vec![
        FnWorkload::boxed_sized(
            "fft",
            "cdag",
            "radix-2 Cooley-Tukey FFT: bounded reuse, writes within O(1) of reads (Cor 2)",
            &backends,
            &[],
            |scale, _| {
                let n: u64 = match scale {
                    Scale::Small => 1 << 13,
                    Scale::Paper => 1 << 15,
                };
                2 * n * 8
            },
            |wa_core::engine::RunCfg { backend, scale, .. }| {
                // Signal larger than fast memory so the butterflies spill.
                let n = match scale {
                    Scale::Small => 1 << 13,
                    Scale::Paper => 1 << 15,
                };
                let mut data = vec![0.0; 2 * n];
                for i in 0..n {
                    let c = Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos());
                    data[2 * i] = c.re;
                    data[2 * i + 1] = c.im;
                }
                run_backend("fft", backend, scale, data, |mem| fft_mem(mem, 0, n))
                    .map(|r| r.config("n", n))
            },
        ),
        FnWorkload::boxed_sized(
            "strassen",
            "cdag",
            "Strassen matmul: max reuse 4, so writes are Omega(flops/M^(log2 7 - 1)) (Cor 3)",
            &backends,
            &[],
            |scale, _| {
                let n: usize = match scale {
                    Scale::Small => 64,
                    Scale::Paper => 128,
                };
                (3 * n * n + strassen_scratch_words(n)) as u64 * 8
            },
            |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = match scale {
                    Scale::Small => 64,
                    Scale::Paper => 128,
                };
                let cutoff = 16;
                let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
                let scratch0 = words;
                let total = words + strassen_scratch_words(n);
                let mut raw = RawMem::new(total);
                d[0].store_mat(&mut raw, &Mat::random(n, n, 81));
                d[1].store_mat(&mut raw, &Mat::random(n, n, 82));
                let data = raw.data;
                run_backend("strassen", backend, scale, data, move |mem| {
                    strassen_mem(mem, d[0], d[1], d[2], scratch0, cutoff)
                })
                .map(|r| r.config("n", n).config("cutoff", cutoff))
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cdag_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn fft_writes_track_traffic_not_output() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "fft").unwrap();
        let r = w.run(BackendKind::Simmed, Scale::Small).unwrap();
        let t = r.slow_traffic();
        // Not write-avoiding: writes are a constant fraction of traffic,
        // far above the output size (2n words = n/4 lines of 2^13 signal).
        assert!(t.store_words * 3 > t.load_words, "{t}");
    }
}
