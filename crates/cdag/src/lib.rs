//! # cdag — computation DAGs and the "bounded reuse precludes WA" results
//!
//! Section 3 of the paper proves (Theorem 2) that if every non-input vertex
//! of an algorithm's computation DAG has out-degree at most `d`, the number
//! of writes to slow memory is Ω(W/d) — a write-avoiding reordering cannot
//! exist. The two flagship instances are the Cooley–Tukey FFT (d = 2,
//! Corollary 2) and Strassen's matmul (d = 4 on the `DecC` subgraph,
//! Corollary 3).
//!
//! This crate provides:
//!
//! * [`graph`] — a dynamic CDAG recorder: algorithms executed symbolically
//!   build their real dependency DAG, from which out-degrees (and hence
//!   applicability of Theorem 2) are *measured*, not assumed;
//! * [`fft`] — a real in-place iterative radix-2 Cooley–Tukey FFT over
//!   [`memsim::Mem`] (numerically verified against a direct DFT) plus its
//!   symbolic CDAG builder;
//! * [`strassen`] — a real recursive Strassen matmul over `Mem` (verified
//!   against classical matmul) plus its symbolic CDAG builder and the
//!   `DecC` out-degree measurement.

pub mod fft;
pub mod graph;
pub mod strassen;
pub mod workloads;

pub use fft::{dft_reference, fft_mem, fft_symbolic, Complex};
pub use graph::{Cdag, NodeId};
pub use strassen::{strassen_mem, strassen_scratch_words, strassen_symbolic};
