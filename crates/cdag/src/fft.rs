//! Cooley–Tukey radix-2 FFT, instrumented and symbolic.
//!
//! Corollary 2 of the paper: the FFT's CDAG has out-degree ≤ 2, so its
//! stores to slow memory are within a constant factor of its total
//! traffic — it admits no write-avoiding schedule. Here we provide:
//!
//! * [`fft_mem`] — a real, in-place, iterative decimation-in-time FFT
//!   whose every element access goes through a [`memsim::Mem`], so the
//!   cache simulator observes its true read/write stream;
//! * [`fft_symbolic`] — the same butterfly structure executed on the
//!   [`Cdag`] recorder, from which the out-degree bound `d = 2` is
//!   *measured*;
//! * [`dft_reference`] — an O(n²) direct DFT used to verify numerics.

use crate::graph::{Cdag, NodeId};
use memsim::Mem;

/// Minimal complex number (the workspace has no external num crate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

#[allow(clippy::should_implement_trait)] // explicit kernel arithmetic, not operator sugar
impl Complex {
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    pub fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    pub fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    pub fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// In-place iterative radix-2 DIT FFT of length `n` (power of two). The
/// signal is stored interleaved at `base`: element `i` occupies words
/// `base + 2i` (re) and `base + 2i + 1` (im). Twiddle factors are computed
/// in registers and cause no memory traffic, matching the paper's model
/// where loop indices and scalars live above the studied boundary.
pub fn fft_mem<M: Mem>(mem: &mut M, base: usize, n: usize) {
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power of two");
    // Bit-reversal permutation. Each complex element is one 2-word run.
    mem.phase("bit-reversal");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize;
        if j > i {
            let (mut ei, mut ej) = ([0.0; 2], [0.0; 2]);
            mem.ld_run(base + 2 * i, &mut ei);
            mem.ld_run(base + 2 * j, &mut ej);
            mem.st_run(base + 2 * i, &ej);
            mem.st_run(base + 2 * j, &ei);
        }
    }
    // Butterfly passes: the two operands and two results of each
    // butterfly move as 2-word (re, im) runs.
    mem.phase("butterflies");
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let ia = base + 2 * (i + k);
                let ib = base + 2 * (i + k + len / 2);
                let (mut eu, mut ev) = ([0.0; 2], [0.0; 2]);
                mem.ld_run(ia, &mut eu);
                mem.ld_run(ib, &mut ev);
                let u = Complex::new(eu[0], eu[1]);
                let v = Complex::new(ev[0], ev[1]).mul(w);
                let s = u.add(v);
                let d = u.sub(v);
                mem.st_run(ia, &[s.re, s.im]);
                mem.st_run(ib, &[d.re, d.im]);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Direct O(n²) DFT for verification.
pub fn dft_reference(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc.add(xj.mul(Complex::new(ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// Build the FFT butterfly CDAG for length `n` on the recorder. Each
/// complex value is one vertex (the paper's argument is per operand, and
/// re/im move together). Returns the output vertex ids.
pub fn fft_symbolic(g: &mut Cdag, n: usize) -> Vec<NodeId> {
    assert!(n.is_power_of_two());
    let mut cur: Vec<NodeId> = (0..n).map(|_| g.input()).collect();
    // Bit-reversal is a relabeling, not computation.
    let bits = n.trailing_zeros();
    let mut perm: Vec<NodeId> = cur.clone();
    for (i, &id) in cur.iter().enumerate() {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize;
        perm[j] = id;
    }
    cur = perm;
    let mut len = 2;
    while len <= n {
        let mut next = cur.clone();
        let mut i = 0;
        while i < n {
            for k in 0..len / 2 {
                let a = cur[i + k];
                let b = cur[i + k + len / 2];
                // Butterfly: two outputs, each depending on both inputs
                // (the twiddle multiply is folded into the edge).
                next[i + k] = g.op(&[a, b]);
                next[i + k + len / 2] = g.op(&[a, b]);
            }
            i += len;
        }
        cur = next;
        len <<= 1;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};
    use wa_core::XorShift;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = XorShift::new(seed);
        (0..n)
            .map(|_| Complex::new(rng.next_unit() * 2.0 - 1.0, rng.next_unit() * 2.0 - 1.0))
            .collect()
    }

    fn write_signal<M: Mem>(mem: &mut M, base: usize, x: &[Complex]) {
        for (i, c) in x.iter().enumerate() {
            mem.st(base + 2 * i, c.re);
            mem.st(base + 2 * i + 1, c.im);
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        for n in [2usize, 4, 8, 32, 128] {
            let x = random_signal(n, n as u64);
            let want = dft_reference(&x);
            let mut mem = RawMem::new(2 * n);
            write_signal(&mut mem, 0, &x);
            fft_mem(&mut mem, 0, n);
            for (k, &w) in want.iter().enumerate() {
                let got = Complex::new(mem.data[2 * k], mem.data[2 * k + 1]);
                assert!(
                    got.sub(w).abs() < 1e-9 * (n as f64),
                    "n={n} k={k}: {got:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn fft_linearity_property() {
        // FFT(a·x) = a·FFT(x) for scalar a.
        let n = 64;
        let x = random_signal(n, 5);
        let mut m1 = RawMem::new(2 * n);
        let mut m2 = RawMem::new(2 * n);
        write_signal(&mut m1, 0, &x);
        let scaled: Vec<Complex> = x
            .iter()
            .map(|c| Complex::new(3.0 * c.re, 3.0 * c.im))
            .collect();
        write_signal(&mut m2, 0, &scaled);
        fft_mem(&mut m1, 0, n);
        fft_mem(&mut m2, 0, n);
        for i in 0..2 * n {
            assert!((3.0 * m1.data[i] - m2.data[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn symbolic_cdag_has_out_degree_two() {
        for n in [4usize, 16, 64] {
            let mut g = Cdag::new();
            let outs = fft_symbolic(&mut g, n);
            assert_eq!(outs.len(), n);
            // Corollary 2's hypothesis, measured: out-degree <= 2 for every
            // vertex, inputs included.
            assert!(g.max_out_degree() <= 2, "n={n}");
            // And the graph has n log2 n butterfly outputs + n inputs.
            assert_eq!(g.num_nodes(), n + n * n.trailing_zeros() as usize);
        }
    }

    /// Corollary 2 observed on the cache simulator: FFT stores to slow
    /// memory are a constant fraction of total traffic (no WA schedule).
    #[test]
    fn fft_writes_are_constant_fraction_of_traffic() {
        let n = 1 << 12; // 4096 complex = 8192 words, cache = 512 words
        let cfg = CacheConfig {
            capacity_words: 512,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let x = random_signal(n, 9);
        let mut mem = SimMem::new(2 * n, MemSim::two_level(cfg));
        write_signal(&mut mem, 0, &x);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        fft_mem(&mut mem, 0, n);
        mem.sim.flush();
        let c = mem.sim.llc();
        let writes = c.victims_m + c.flush_victims_m;
        let reads = c.fills;
        // In-place FFT dirties every line it touches: writes ~ reads.
        let frac = writes as f64 / reads as f64;
        assert!(
            frac > 0.5,
            "write fraction {frac} too small for a non-WA CDAG"
        );
        // And total traffic is Ω(n log n / log M) as the bound predicts.
        let bound_words = wa_core::bounds::fft_ldst_lower(n as u64, 512);
        assert!(
            ((reads + writes) * 8) as f64 > 0.5 * bound_words,
            "traffic below the Hong-Kung bound?!"
        );
    }
}
