//! Strassen's matrix multiplication, instrumented and symbolic.
//!
//! Corollary 3: the `DecC` subgraph of Strassen's CDAG (scalar products and
//! all their descendants) has out-degree ≤ 4, so Strassen admits no
//! write-avoiding schedule — stores are Ω(n^{ω₀}/M^{ω₀/2−1}), the same
//! order as its total traffic. [`strassen_mem`] is a real recursive
//! implementation over [`memsim::Mem`]; [`strassen_symbolic`] builds the
//! CDAG and measures the `DecC` out-degree.

use crate::graph::{Cdag, NodeId};
use dense::desc::MatDesc;
use dense::matmul::kernel::mm_kernel;
use memsim::Mem;

/// Scratch words needed by [`strassen_mem`] for an `n×n` product
/// (geometric sum of 9 quarter-buffers per level, rounded up).
pub fn strassen_scratch_words(n: usize) -> usize {
    3 * n * n + 64
}

/// Zero a region through the access stream, one row-run at a time.
fn zero<M: Mem>(mem: &mut M, d: MatDesc) {
    let zrow = vec![0.0; d.cols];
    for i in 0..d.rows {
        mem.st_run(d.idx(i, 0), &zrow);
    }
}

/// `dst = x + y` elementwise, rows as runs.
fn add<M: Mem>(mem: &mut M, x: MatDesc, y: MatDesc, dst: MatDesc) {
    let mut xr = vec![0.0; dst.cols];
    let mut yr = vec![0.0; dst.cols];
    for i in 0..dst.rows {
        mem.ld_run(x.idx(i, 0), &mut xr);
        mem.ld_run(y.idx(i, 0), &mut yr);
        for (a, b) in xr.iter_mut().zip(&yr) {
            *a += b;
        }
        mem.st_run(dst.idx(i, 0), &xr);
    }
}

/// `dst = x - y` elementwise, rows as runs.
fn sub<M: Mem>(mem: &mut M, x: MatDesc, y: MatDesc, dst: MatDesc) {
    let mut xr = vec![0.0; dst.cols];
    let mut yr = vec![0.0; dst.cols];
    for i in 0..dst.rows {
        mem.ld_run(x.idx(i, 0), &mut xr);
        mem.ld_run(y.idx(i, 0), &mut yr);
        for (a, b) in xr.iter_mut().zip(&yr) {
            *a -= b;
        }
        mem.st_run(dst.idx(i, 0), &xr);
    }
}

/// `dst += x` / `dst -= x` elementwise, rows as runs.
fn acc<M: Mem>(mem: &mut M, x: MatDesc, dst: MatDesc, sign: f64) {
    let mut xr = vec![0.0; dst.cols];
    let mut dr = vec![0.0; dst.cols];
    for i in 0..dst.rows {
        mem.ld_run(dst.idx(i, 0), &mut dr);
        mem.ld_run(x.idx(i, 0), &mut xr);
        for (d, x) in dr.iter_mut().zip(&xr) {
            *d += sign * x;
        }
        mem.st_run(dst.idx(i, 0), &dr);
    }
}

fn quad(d: MatDesc, qi: usize, qj: usize) -> MatDesc {
    let h = d.rows / 2;
    d.sub(qi * h, qj * h, h, h)
}

/// `C = A·B` (overwrite) by Strassen's recursion; `n` must be
/// `2^k · cutoff`-compatible (any power-of-two multiple of the cutoff
/// granularity — odd sizes are not supported). `scratch` is a bump region
/// of at least [`strassen_scratch_words`] words.
pub fn strassen_mem<M: Mem>(
    mem: &mut M,
    a: MatDesc,
    b: MatDesc,
    c: MatDesc,
    scratch: usize,
    cutoff: usize,
) {
    let n = a.rows;
    assert_eq!(a.cols, n);
    assert_eq!(b.rows, n);
    assert_eq!(b.cols, n);
    assert_eq!((c.rows, c.cols), (n, n));
    if n <= cutoff || !n.is_multiple_of(2) {
        zero(mem, c);
        mm_kernel(mem, a, b, c);
        return;
    }
    let h = n / 2;
    let q = h * h;
    // Scratch layout: two operand temps + seven product temps, then the
    // recursion's own scratch after them.
    let t1 = MatDesc::new(scratch, h, h);
    let t2 = MatDesc::new(scratch + q, h, h);
    let p: Vec<MatDesc> = (0..7)
        .map(|i| MatDesc::new(scratch + (2 + i) * q, h, h))
        .collect();
    let deeper = scratch + 9 * q;

    let (a11, a12, a21, a22) = (quad(a, 0, 0), quad(a, 0, 1), quad(a, 1, 0), quad(a, 1, 1));
    let (b11, b12, b21, b22) = (quad(b, 0, 0), quad(b, 0, 1), quad(b, 1, 0), quad(b, 1, 1));
    let (c11, c12, c21, c22) = (quad(c, 0, 0), quad(c, 0, 1), quad(c, 1, 0), quad(c, 1, 1));

    // M1 = (A11 + A22)(B11 + B22)
    add(mem, a11, a22, t1);
    add(mem, b11, b22, t2);
    strassen_mem(mem, t1, t2, p[0], deeper, cutoff);
    // M2 = (A21 + A22) B11
    add(mem, a21, a22, t1);
    strassen_mem(mem, t1, b11, p[1], deeper, cutoff);
    // M3 = A11 (B12 - B22)
    sub(mem, b12, b22, t2);
    strassen_mem(mem, a11, t2, p[2], deeper, cutoff);
    // M4 = A22 (B21 - B11)
    sub(mem, b21, b11, t2);
    strassen_mem(mem, a22, t2, p[3], deeper, cutoff);
    // M5 = (A11 + A12) B22
    add(mem, a11, a12, t1);
    strassen_mem(mem, t1, b22, p[4], deeper, cutoff);
    // M6 = (A21 - A11)(B11 + B12)
    sub(mem, a21, a11, t1);
    add(mem, b11, b12, t2);
    strassen_mem(mem, t1, t2, p[5], deeper, cutoff);
    // M7 = (A12 - A22)(B21 + B22)
    sub(mem, a12, a22, t1);
    add(mem, b21, b22, t2);
    strassen_mem(mem, t1, t2, p[6], deeper, cutoff);

    // C11 = M1 + M4 - M5 + M7
    add(mem, p[0], p[3], c11);
    acc(mem, p[4], c11, -1.0);
    acc(mem, p[6], c11, 1.0);
    // C12 = M3 + M5
    add(mem, p[2], p[4], c12);
    // C21 = M2 + M4
    add(mem, p[1], p[3], c21);
    // C22 = M1 - M2 + M3 + M6
    sub(mem, p[0], p[1], c22);
    acc(mem, p[2], c22, 1.0);
    acc(mem, p[5], c22, 1.0);
}

/// Symbolic matrices are flat vectors of CDAG vertex ids.
type SymMat = Vec<NodeId>;

fn sym_binop(g: &mut Cdag, x: &SymMat, y: &SymMat) -> SymMat {
    x.iter().zip(y).map(|(&a, &b)| g.op(&[a, b])).collect()
}

fn sym_quad(m: &SymMat, n: usize, qi: usize, qj: usize) -> SymMat {
    let h = n / 2;
    let mut out = Vec::with_capacity(h * h);
    for i in 0..h {
        for j in 0..h {
            out.push(m[(qi * h + i) * n + (qj * h + j)]);
        }
    }
    out
}

/// Build Strassen's CDAG for `n×n` (power of two) down to scalar products.
/// Returns `(outputs, dec_c)` where `dec_c` contains the scalar-product
/// vertices and all their descendants — the paper's `DecC` subgraph.
pub fn strassen_symbolic(g: &mut Cdag, n: usize) -> (SymMat, Vec<NodeId>) {
    assert!(n.is_power_of_two());
    let a: SymMat = (0..n * n).map(|_| g.input()).collect();
    let b: SymMat = (0..n * n).map(|_| g.input()).collect();
    let mut dec_c = Vec::new();
    let c = sym_strassen(g, &a, &b, n, &mut dec_c);
    (c, dec_c)
}

fn sym_strassen(g: &mut Cdag, a: &SymMat, b: &SymMat, n: usize, dec_c: &mut Vec<NodeId>) -> SymMat {
    if n == 1 {
        let prod = g.op(&[a[0], b[0]]);
        dec_c.push(prod);
        return vec![prod];
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = (
        sym_quad(a, n, 0, 0),
        sym_quad(a, n, 0, 1),
        sym_quad(a, n, 1, 0),
        sym_quad(a, n, 1, 1),
    );
    let (b11, b12, b21, b22) = (
        sym_quad(b, n, 0, 0),
        sym_quad(b, n, 0, 1),
        sym_quad(b, n, 1, 0),
        sym_quad(b, n, 1, 1),
    );
    let s1 = sym_binop(g, &a11, &a22);
    let s2 = sym_binop(g, &b11, &b22);
    let m1 = sym_strassen(g, &s1, &s2, h, dec_c);
    let s3 = sym_binop(g, &a21, &a22);
    let m2 = sym_strassen(g, &s3, &b11, h, dec_c);
    let s4 = sym_binop(g, &b12, &b22);
    let m3 = sym_strassen(g, &a11, &s4, h, dec_c);
    let s5 = sym_binop(g, &b21, &b11);
    let m4 = sym_strassen(g, &a22, &s5, h, dec_c);
    let s6 = sym_binop(g, &a11, &a12);
    let m5 = sym_strassen(g, &s6, &b22, h, dec_c);
    let s7 = sym_binop(g, &a21, &a11);
    let s8 = sym_binop(g, &b11, &b12);
    let m6 = sym_strassen(g, &s7, &s8, h, dec_c);
    let s9 = sym_binop(g, &a12, &a22);
    let s10 = sym_binop(g, &b21, &b22);
    let m7 = sym_strassen(g, &s9, &s10, h, dec_c);

    // C blocks: every addition vertex descends from products => in DecC.
    let push_all = |v: &SymMat, dec_c: &mut Vec<NodeId>| {
        dec_c.extend(v.iter().copied());
    };
    let t = sym_binop(g, &m1, &m4);
    push_all(&t, dec_c);
    let t2 = sym_binop(g, &t, &m5);
    push_all(&t2, dec_c);
    let c11 = sym_binop(g, &t2, &m7);
    push_all(&c11, dec_c);
    let c12 = sym_binop(g, &m3, &m5);
    push_all(&c12, dec_c);
    let c21 = sym_binop(g, &m2, &m4);
    push_all(&c21, dec_c);
    let u = sym_binop(g, &m1, &m2);
    push_all(&u, dec_c);
    let u2 = sym_binop(g, &u, &m3);
    push_all(&u2, dec_c);
    let c22 = sym_binop(g, &u2, &m6);
    push_all(&c22, dec_c);

    let mut c = vec![NodeId(0); n * n];
    for i in 0..h {
        for j in 0..h {
            c[i * n + j] = c11[i * h + j];
            c[i * n + (j + h)] = c12[i * h + j];
            c[(i + h) * n + j] = c21[i * h + j];
            c[(i + h) * n + (j + h)] = c22[i * h + j];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};
    use wa_core::Mat;

    #[test]
    fn strassen_matches_classical() {
        for n in [2usize, 4, 8, 16, 32] {
            let a = Mat::random(n, n, 1);
            let b = Mat::random(n, n, 2);
            let want = a.matmul_ref(&b);
            let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
            let mut mem = RawMem::new(words + strassen_scratch_words(n));
            d[0].store_mat(&mut mem, &a);
            d[1].store_mat(&mut mem, &b);
            strassen_mem(&mut mem, d[0], d[1], d[2], words, 2);
            let got = d[2].load_mat(&mut mem);
            assert!(
                got.max_abs_diff(&want) < 1e-9 * n as f64,
                "n={n}: {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn strassen_cutoff_variants_agree() {
        let n = 16;
        let a = Mat::random(n, n, 3);
        let b = Mat::random(n, n, 4);
        let mut results = Vec::new();
        for cutoff in [1usize, 4, 16] {
            let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
            let mut mem = RawMem::new(words + strassen_scratch_words(n));
            d[0].store_mat(&mut mem, &a);
            d[1].store_mat(&mut mem, &b);
            strassen_mem(&mut mem, d[0], d[1], d[2], words, cutoff);
            results.push(d[2].load_mat(&mut mem));
        }
        assert!(results[0].max_abs_diff(&results[1]) < 1e-10);
        assert!(results[1].max_abs_diff(&results[2]) < 1e-10);
    }

    #[test]
    fn dec_c_out_degree_at_most_four() {
        for n in [2usize, 4, 8] {
            let mut g = Cdag::new();
            let (outs, dec_c) = strassen_symbolic(&mut g, n);
            assert_eq!(outs.len(), n * n);
            // Corollary 3's hypothesis measured: out-degree of DecC
            // vertices <= 4 (products feed at most 4 C-additions... in
            // fact the max use of any M product is 2 per level, but the
            // bound from [8] is 4).
            let d = g.max_out_degree_of(dec_c.iter().copied());
            assert!(d <= 4, "n={n}: DecC out-degree {d}");
            // Scalar products: 7^log2(n).
            let products = dec_c
                .iter()
                .filter(|id| g.out_degree(**id) != u32::MAX)
                .count();
            assert!(products >= 7usize.pow(n.trailing_zeros()));
        }
    }

    /// Corollary 3 observed: Strassen's stores are a constant fraction of
    /// its traffic under the cache simulator.
    #[test]
    fn strassen_writes_constant_fraction() {
        let n = 64;
        let cfg = CacheConfig {
            capacity_words: 512,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let total = words + strassen_scratch_words(n);
        let mut mem = SimMem::new(total, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        strassen_mem(&mut mem, d[0], d[1], d[2], words, 8);
        mem.sim.flush();
        let c = mem.sim.llc();
        let writes = c.victims_m + c.flush_victims_m;
        let frac = writes as f64 / c.fills as f64;
        assert!(
            frac > 0.25,
            "Strassen write fraction {frac} unexpectedly small"
        );
        // Compare with the WA classical algorithm at the same size: its
        // write fraction is far smaller.
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        dense::matmul::blocked_matmul(&mut mem, d[0], d[1], d[2], 8, dense::matmul::LoopOrder::Ijk);
        mem.sim.flush();
        let cw = mem.sim.llc();
        let wa_frac = (cw.victims_m + cw.flush_victims_m) as f64 / cw.fills as f64;
        assert!(
            wa_frac < frac,
            "WA classical fraction {wa_frac} must undercut Strassen {frac}"
        );
    }
}
