//! Dynamic CDAG recorder.
//!
//! Algorithms run symbolically against this recorder: every input is a
//! vertex, every binary (or n-ary) operation creates a new vertex with
//! edges from its operands — including the paper's convention that an
//! update `x = x + w` creates a *new* vertex `x₂` depending on `x₁` and
//! `w`. Out-degrees are therefore measured from an actual execution.

/// Vertex handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// A recorded computation DAG (only the degree structure is retained;
/// that is all Theorem 2 needs).
#[derive(Clone, Debug, Default)]
pub struct Cdag {
    out_deg: Vec<u32>,
    is_input: Vec<bool>,
}

impl Cdag {
    pub fn new() -> Self {
        Cdag::default()
    }

    /// Register an input vertex (no in-edges).
    pub fn input(&mut self) -> NodeId {
        self.out_deg.push(0);
        self.is_input.push(true);
        NodeId(self.out_deg.len() as u32 - 1)
    }

    /// Register a computed vertex depending on `deps`; each dependency's
    /// out-degree increments.
    pub fn op(&mut self, deps: &[NodeId]) -> NodeId {
        for d in deps {
            self.out_deg[d.0 as usize] += 1;
        }
        self.out_deg.push(0);
        self.is_input.push(false);
        NodeId(self.out_deg.len() as u32 - 1)
    }

    pub fn num_nodes(&self) -> usize {
        self.out_deg.len()
    }

    pub fn num_inputs(&self) -> usize {
        self.is_input.iter().filter(|&&b| b).count()
    }

    pub fn out_degree(&self, n: NodeId) -> u32 {
        self.out_deg[n.0 as usize]
    }

    /// Maximum out-degree over non-input vertices — the `d` of Theorem 2
    /// applied with `G' = G` minus inputs.
    pub fn max_out_degree_non_input(&self) -> u32 {
        self.out_deg
            .iter()
            .zip(&self.is_input)
            .filter(|(_, &inp)| !inp)
            .map(|(&d, _)| d)
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree over all vertices (inputs included).
    pub fn max_out_degree(&self) -> u32 {
        self.out_deg.iter().copied().max().unwrap_or(0)
    }

    /// Maximum out-degree over an arbitrary vertex subset (e.g. Strassen's
    /// `DecC` subgraph).
    pub fn max_out_degree_of(&self, nodes: impl IntoIterator<Item = NodeId>) -> u32 {
        nodes
            .into_iter()
            .map(|n| self.out_deg[n.0 as usize])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_update_splits_into_versions() {
        // x = y + z; x = x + w  (paper's example: 5 vertices, 4 edges)
        let mut g = Cdag::new();
        let y = g.input();
        let z = g.input();
        let w = g.input();
        let x1 = g.op(&[y, z]);
        let _x2 = g.op(&[x1, w]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_inputs(), 3);
        assert_eq!(g.out_degree(x1), 1);
        assert_eq!(g.max_out_degree_non_input(), 1);
    }

    #[test]
    fn fanout_counted() {
        let mut g = Cdag::new();
        let a = g.input();
        let t = g.op(&[a]);
        for _ in 0..5 {
            g.op(&[t]);
        }
        assert_eq!(g.out_degree(t), 5);
        assert_eq!(g.max_out_degree_non_input(), 5);
        assert_eq!(g.out_degree(a), 1);
    }

    #[test]
    fn subset_degree() {
        let mut g = Cdag::new();
        let a = g.input();
        let b = g.op(&[a]);
        let c = g.op(&[a]);
        let _ = g.op(&[b, c]);
        let _ = g.op(&[b]);
        assert_eq!(g.max_out_degree_of([c]), 1);
        assert_eq!(g.max_out_degree_of([b, c]), 2);
        assert_eq!(g.max_out_degree(), 2);
    }
}
