//! Cannon's algorithm on a √P×√P torus.
//!
//! Included as the second classical CA baseline (the paper's 2.5D analysis
//! models its layers on Cannon steps). Blocks are physically shifted
//! between simulated processors each step, so the data movement charged is
//! the data movement performed.

use crate::machine::{replay_gemm, Machine, Staging};
use wa_core::Mat;

/// C = A·B by Cannon's algorithm on a `q×q` torus. Per-processor network
/// volume: `2·q·(n/q)²` words = `2n²/√P`.
pub fn cannon(m: &mut Machine, a: &Mat, b: &Mat, q: usize, at: Staging) -> Mat {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!((b.rows(), b.cols()), (n, n));
    assert_eq!(m.p(), q * q);
    assert!(n.is_multiple_of(q));
    let nb = n / q;
    let id = |i: usize, j: usize| i * q + j;
    let block = |src: &Mat, bi: usize, bj: usize| {
        Mat::from_fn(nb, nb, |r, s| src[(bi * nb + r, bj * nb + s)])
    };

    // Symmetric rank-local layout: resident A/B blocks plus the C
    // accumulator.
    let bw = nb * nb;
    let la_buf = m.alloc(bw);
    let lb_buf = m.alloc(bw);
    let lc_buf = m.alloc(bw);

    // Initial skew: processor (i,j) holds A(i, i+j) and B(i+j, j).
    let mut la: Vec<Mat> = Vec::with_capacity(q * q);
    let mut lb: Vec<Mat> = Vec::with_capacity(q * q);
    for i in 0..q {
        for j in 0..q {
            la.push(block(a, i, (i + j) % q));
            lb.push(block(b, (i + j) % q, j));
        }
    }
    // Charge the skew: each processor sends its block i places left / up.
    for i in 0..q {
        for j in 0..q {
            if i > 0 {
                let dst = id(i, (j + q - i) % q);
                m.transfer(id(i, j), dst, bw as u64, at, at, la_buf, la_buf);
            }
            if j > 0 {
                let dst = id((i + q - j) % q, j);
                m.transfer(id(i, j), dst, bw as u64, at, at, lb_buf, lb_buf);
            }
        }
    }

    let mut lc: Vec<Mat> = (0..q * q).map(|_| Mat::zeros(nb, nb)).collect();
    for step in 0..q {
        // Multiply-accumulate everywhere.
        for i in 0..q {
            for j in 0..q {
                let p = id(i, j);
                let (ab, bb) = (&la[p], &lb[p]);
                let cb = &mut lc[p];
                for r in 0..nb {
                    for s in 0..nb {
                        let mut acc = cb[(r, s)];
                        for k in 0..nb {
                            acc += ab[(r, k)] * bb[(k, s)];
                        }
                        cb[(r, s)] = acc;
                    }
                }
                m.node_mut(p).flops += 2 * (nb * nb * nb) as u64;
                if m.has_sims() {
                    let mut mem = m.rank_mem(p);
                    replay_gemm(&mut mem, la_buf, lb_buf, lc_buf, nb, nb, nb);
                }
            }
        }
        if step + 1 == q {
            break;
        }
        // Shift A left by one, B up by one.
        let mut na = la.clone();
        let mut nb_ = lb.clone();
        for i in 0..q {
            for j in 0..q {
                na[id(i, j)] = la[id(i, (j + 1) % q)].clone();
                nb_[id(i, j)] = lb[id((i + 1) % q, j)].clone();
                m.transfer(
                    id(i, (j + 1) % q),
                    id(i, j),
                    bw as u64,
                    at,
                    at,
                    la_buf,
                    la_buf,
                );
                m.transfer(
                    id((i + 1) % q, j),
                    id(i, j),
                    bw as u64,
                    at,
                    at,
                    lb_buf,
                    lb_buf,
                );
            }
        }
        la = na;
        lb = nb_;
    }

    // Assemble: each rank writes its finished C block to node-local NVM
    // (nb² = n²/P words each, the trivial W1 lower bound).
    let mut c = Mat::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            m.assemble_output(id(i, j), lc_buf, (nb * nb) as u64);
            let blk = &lc[id(i, j)];
            for r in 0..nb {
                for s in 0..nb {
                    c[(i * nb + r, j * nb + s)] = blk[(r, s)];
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::CostParams;

    #[test]
    fn cannon_computes_the_product() {
        for q in [2usize, 3, 4] {
            let n = q * 6;
            let a = Mat::random(n, n, 1);
            let b = Mat::random(n, n, 2);
            let mut m = Machine::new(q * q, CostParams::nvm_cluster());
            let c = cannon(&mut m, &a, &b, q, Staging::L2);
            assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-10, "q={q}");
        }
    }

    #[test]
    fn cannon_volume_matches_2n2_over_sqrt_p() {
        let q = 4;
        let n = 32;
        let a = Mat::random(n, n, 3);
        let b = Mat::random(n, n, 4);
        let mut m = Machine::new(q * q, CostParams::nvm_cluster());
        let _ = cannon(&mut m, &a, &b, q, Staging::L2);
        let nb = n / q;
        let shifts = 2 * (q - 1) as u64 * (nb * nb) as u64; // steady-state shifts
        let recv = m.max_counters().net_recv_words;
        // Skew adds at most 2 more block transfers.
        assert!(recv >= shifts && recv <= shifts + 2 * (nb * nb) as u64);
    }

    #[test]
    fn l3_staging_charges_nvm_both_ends() {
        let q = 2;
        let n = 8;
        let a = Mat::random(n, n, 5);
        let b = Mat::random(n, n, 6);
        let mut m = Machine::new(q * q, CostParams::nvm_cluster());
        let _ = cannon(&mut m, &a, &b, q, Staging::L3);
        let mc = m.max_counters();
        assert!(mc.l3_read_words > 0);
        assert!(mc.l3_write_words > 0);
        // Every received word lands in NVM, plus the rank's own finished
        // C block (nb² words) is written once at assembly.
        let nbw = ((n / q) * (n / q)) as u64;
        assert_eq!(mc.l3_write_words, mc.net_recv_words + nbw);
    }

    #[test]
    fn l2_staging_still_charges_assembled_output() {
        let q = 2;
        let n = 8;
        let a = Mat::random(n, n, 7);
        let b = Mat::random(n, n, 8);
        let mut m = Machine::new(q * q, CostParams::nvm_cluster());
        let _ = cannon(&mut m, &a, &b, q, Staging::L2);
        let nbw = ((n / q) * (n / q)) as u64;
        assert_eq!(m.max_counters().l3_write_words, nbw);
    }
}
