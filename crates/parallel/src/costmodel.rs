//! Closed-form communication cost models from Section 7: Table 1
//! (Model 2.1, data fits in L2), Table 2 (Model 2.2, data only in L3), the
//! dominant-cost `domβcost` expressions, and the LL-LUNP / RL-LUNP cost
//! formulas of §7.2.
//!
//! Every entry is a function of `(n, P, c, CostParams)` so the harness can
//! print the tables, evaluate crossovers, and compare against the event
//! simulator's measured counts.

use wa_core::CostParams;

/// One column of Table 1/2: words and messages per boundary for one
/// algorithm, already multiplied out (common factor × cost column).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommCosts {
    /// L2 → L1 words (and messages) — reads of the top-level cache.
    pub l21_words: f64,
    pub l21_msgs: f64,
    /// L1 → L2 words/messages — writes back to DRAM.
    pub l12_words: f64,
    pub l12_msgs: f64,
    /// Interprocessor words/messages.
    pub nw_words: f64,
    pub nw_msgs: f64,
    /// L3 → L2 (NVM read) words/messages.
    pub l32_words: f64,
    pub l32_msgs: f64,
    /// L2 → L3 (NVM write) words/messages.
    pub l23_words: f64,
    pub l23_msgs: f64,
}

impl CommCosts {
    /// Fold through cost parameters to a time estimate.
    pub fn time(&self, c: &CostParams) -> f64 {
        c.beta_21 * self.l21_words
            + c.alpha_21 * self.l21_msgs
            + c.beta_12 * self.l12_words
            + c.alpha_12 * self.l12_msgs
            + c.beta_nw * self.nw_words
            + c.alpha_nw * self.nw_msgs
            + c.beta_32 * self.l32_words
            + c.alpha_32 * self.l32_msgs
            + c.beta_23 * self.l23_words
            + c.alpha_23 * self.l23_msgs
    }
}

fn log2(x: f64) -> f64 {
    x.log2().max(0.0)
}

/// Table 1 column "2DMML2": 2D matmul, one copy, L2 only.
pub fn table1_2dmml2(n: f64, p: f64, cp: &CostParams) -> CommCosts {
    let m1 = cp.m1 as f64;
    CommCosts {
        l21_words: n.powi(3) / p / m1.sqrt(),
        l21_msgs: n.powi(3) / p / m1.powf(1.5),
        l12_words: n * n / p.sqrt(),
        l12_msgs: n * n / p.sqrt() / m1,
        nw_words: 2.0 * n * n / p.sqrt(),
        nw_msgs: 2.0 * p.sqrt(),
        ..Default::default()
    }
}

/// Table 1 column "2.5DMML2": replication factor `c2`, staged in L2.
pub fn table1_25dmml2(n: f64, p: f64, c2: f64, cp: &CostParams) -> CommCosts {
    let m1 = cp.m1 as f64;
    let nw_words =
        (2.0 * n * n / p.sqrt()) * (1.0 / c2.sqrt() + 2.0 * c2 * (1.0 + log2(c2)) / p.sqrt());
    let nw_msgs = 2.0 * p.sqrt() * (1.0 / c2.powf(1.5) + (c2 + log2(c2)) / p.sqrt());
    CommCosts {
        l21_words: n.powi(3) / p / m1.sqrt(),
        l21_msgs: n.powi(3) / p / m1.powf(1.5),
        l12_words: n * n / p.sqrt() / c2.sqrt(),
        l12_msgs: n * n / p.sqrt() / c2.sqrt() / m1,
        nw_words,
        nw_msgs,
        ..Default::default()
    }
}

/// Table 1 column "2.5DMML3": replication `c3` staged in L3 (NVM),
/// broadcasts chunked through L2 (`c2` = copies L2 could hold).
pub fn table1_25dmml3(n: f64, p: f64, c2: f64, c3: f64, cp: &CostParams) -> CommCosts {
    let m1 = cp.m1 as f64;
    let m2 = cp.m2 as f64;
    let nw_words =
        (2.0 * n * n / p.sqrt()) * (1.0 / c3.sqrt() + 2.0 * c3 * (1.0 + log2(c3)) / p.sqrt());
    let nw_msgs = 2.0 * p.sqrt() * (1.0 / (c3.sqrt() * c2) + c3 * (1.0 + log2(c3) / c2) / p.sqrt());
    // L3→L2 rows: "same as for βNW − 2c3/P^{1/2}" plus the local
    // out-of-L2 read stream n³/(P √M2).
    let l32_words =
        nw_words - (2.0 * n * n / p.sqrt()) * (2.0 * c3 / p.sqrt()) + n.powi(3) / p / m2.sqrt();
    let l32_msgs = nw_msgs - 2.0 * p.sqrt() * (c3 / p.sqrt()) + n.powi(3) / p / m2.powf(1.5);
    // L2→L3 rows: "same as for βNW + .5/c3^{1/2}".
    let l23_words = nw_words + 0.5 * (2.0 * n * n / p.sqrt()) / c3.sqrt();
    let l23_msgs = (n * n / p.sqrt()) / (m2 * c3.sqrt());
    CommCosts {
        l21_words: n.powi(3) / p / m1.sqrt(),
        l21_msgs: n.powi(3) / p / m1.powf(1.5),
        l12_words: n.powi(3) / p / m2.sqrt(),
        l12_msgs: n.powi(3) / p / (m2.sqrt() * m1),
        nw_words,
        nw_msgs,
        l32_words,
        l32_msgs,
        l23_words,
        l23_msgs,
    }
}

/// Table 2 column "2.5DMML3ooL2" (data only fits in L3; minimizes network
/// words).
pub fn table2_25dmml3_ool2(n: f64, p: f64, c3: f64, cp: &CostParams) -> CommCosts {
    let m1 = cp.m1 as f64;
    let m2 = cp.m2 as f64;
    let nw_base = (n * n / p.sqrt()) * (1.0 / c3.sqrt() + c3 * (1.0 + log2(c3)) / p.sqrt());
    let stream = (n * n / p.sqrt()) * (n / (p * m2).sqrt()); // n³/(P √M2)
    CommCosts {
        l21_words: n.powi(3) / p / m1.sqrt(),
        l21_msgs: n.powi(3) / p / m1.powf(1.5),
        l12_words: n.powi(3) / p / m2.sqrt(),
        l12_msgs: n.powi(3) / p / (m2.sqrt() * m1),
        nw_words: nw_base,
        nw_msgs: nw_base / m2,
        l32_words: stream + nw_base,
        l32_msgs: (stream + nw_base) / m2,
        l23_words: (n * n / p) * ((p / c3).sqrt() + c3 * (1.0 + log2(c3))),
        l23_msgs: (n * n / p) * ((p / c3).sqrt() + c3 * (1.0 + log2(c3))) / m2,
    }
}

/// Table 2 column "SUMMAL3ooL2" (minimizes writes to L3).
pub fn table2_summal3_ool2(n: f64, p: f64, cp: &CostParams) -> CommCosts {
    let m1 = cp.m1 as f64;
    let m2 = cp.m2 as f64;
    let stream = (n * n / p.sqrt()) * (n / (p * m2).sqrt()); // n³/(P √M2)
    CommCosts {
        l21_words: n.powi(3) / p / m1.sqrt(),
        l21_msgs: n.powi(3) / p / m1.powf(1.5),
        l12_words: n.powi(3) / p / m2.sqrt(),
        l12_msgs: n.powi(3) / p / (m2.sqrt() * m1),
        nw_words: stream,
        nw_msgs: stream * log2(p) / m2,
        l32_words: stream,
        l32_msgs: stream / m2,
        l23_words: n * n / p,
        l23_msgs: n * n / p / m2,
    }
}

/// Dominant bandwidth cost of 2.5DMML2 (paper, §7 introduction):
/// `2n²/√(P c2) · βNW`.
pub fn dom_cost_25dmml2(n: f64, p: f64, c2: f64, cp: &CostParams) -> f64 {
    2.0 * n * n / (p * c2).sqrt() * cp.beta_nw
}

/// Dominant bandwidth cost of 2.5DMML3:
/// `2n²/√(P c3) · (βNW + 1.5·β23 + β32)`.
pub fn dom_cost_25dmml3(n: f64, p: f64, c3: f64, cp: &CostParams) -> f64 {
    2.0 * n * n / (p * c3).sqrt() * (cp.beta_nw + 1.5 * cp.beta_23 + cp.beta_32)
}

/// The paper's Model 2.1 decision ratio
/// `√(c3/c2) · βNW / (βNW + 1.5 β23 + β32)`; > 1 means using NVM for extra
/// replication wins.
pub fn model21_decision_ratio(c2: f64, c3: f64, cp: &CostParams) -> f64 {
    (c3 / c2).sqrt() * cp.beta_nw / (cp.beta_nw + 1.5 * cp.beta_23 + cp.beta_32)
}

/// domβcost(2.5DMML3ooL2), formula (2).
pub fn dom_cost_25dmml3_ool2(n: f64, p: f64, c3: f64, cp: &CostParams) -> f64 {
    let m2 = cp.m2 as f64;
    cp.beta_nw * n * n / (p * c3).sqrt()
        + cp.beta_23 * n * n / (p * c3).sqrt()
        + cp.beta_32 * n.powi(3) / (p * m2.sqrt())
}

/// domβcost(SUMMAL3ooL2), formula (3).
pub fn dom_cost_summal3_ool2(n: f64, p: f64, cp: &CostParams) -> f64 {
    let m2 = cp.m2 as f64;
    cp.beta_nw * n.powi(3) / (p * m2.sqrt())
        + cp.beta_23 * n * n / p
        + cp.beta_32 * n.powi(3) / (p * m2.sqrt())
}

/// domβcost(LL-LUNP) (§7.2).
pub fn dom_cost_ll_lunp(n: f64, p: f64, cp: &CostParams) -> f64 {
    let m2 = cp.m2 as f64;
    let lg2 = log2(p).powi(2);
    cp.beta_nw * n.powi(3) / (p * m2.sqrt()) * lg2
        + cp.beta_23 * n * n / p
        + cp.beta_32 * n.powi(3) / (p * m2.sqrt()) * lg2
}

/// domβcost(RL-LUNP) (§7.2).
pub fn dom_cost_rl_lunp(n: f64, p: f64, cp: &CostParams) -> f64 {
    let m2 = cp.m2 as f64;
    cp.beta_nw * n * n / p.sqrt() * log2(p.sqrt())
        + cp.beta_23 * n * n / p.sqrt() * log2(p).powi(2)
        + cp.beta_32 * n.powi(3) / (p * m2.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp() -> CostParams {
        CostParams::nvm_cluster()
    }

    #[test]
    fn table1_l2l1_costs_identical_across_algorithms() {
        let (n, p) = (1e5, 4096.0);
        let a = table1_2dmml2(n, p, &cp());
        let b = table1_25dmml2(n, p, 4.0, &cp());
        let c = table1_25dmml3(n, p, 4.0, 16.0, &cp());
        assert_eq!(a.l21_words, b.l21_words);
        assert_eq!(b.l21_words, c.l21_words);
    }

    #[test]
    fn replication_shrinks_leading_network_term() {
        let (n, p) = (1e5, 65536.0);
        let w1 = table1_2dmml2(n, p, &cp()).nw_words;
        let w4 = table1_25dmml2(n, p, 4.0, &cp()).nw_words;
        assert!(w4 < w1);
        // Leading-term ratio approaches sqrt(c2) for huge P.
        let big_p = 1e12;
        let r =
            table1_2dmml2(n, big_p, &cp()).nw_words / table1_25dmml2(n, big_p, 4.0, &cp()).nw_words;
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn model21_ratio_matches_dom_costs() {
        let (n, p, c2, c3) = (1e5, 4096.0, 2.0, 8.0);
        let ratio = dom_cost_25dmml2(n, p, c2, &cp()) / dom_cost_25dmml3(n, p, c3, &cp());
        assert!((ratio - model21_decision_ratio(c2, c3, &cp())).abs() < 1e-12);
    }

    #[test]
    fn nvm_write_bandwidth_decides_model21() {
        // Fast NVM writes: replication via L3 wins; slow: loses.
        let mut fast = cp();
        fast.beta_23 = fast.beta_nw / 10.0;
        fast.beta_32 = fast.beta_nw / 10.0;
        assert!(model21_decision_ratio(1.0, 16.0, &fast) > 1.0);
        let mut slow = cp();
        slow.beta_23 = slow.beta_nw * 100.0;
        assert!(model21_decision_ratio(1.0, 16.0, &slow) < 1.0);
    }

    #[test]
    fn theorem4_tradeoff_in_table2() {
        // 2.5DMML3ooL2 attains the W2 network bound but not W1 writes;
        // SUMMAL3ooL2 vice versa.
        // Regime where the leading terms dominate: √P ≫ c3^{3/2}(1+log c3)
        // and n ≫ √(P·M2) (Theorem 4's n ≫ √P and n²/P ≫ M2).
        let (n, p, c3) = (4e6, 65536.0, 8.0);
        let a = table2_25dmml3_ool2(n, p, c3, &cp());
        let s = table2_summal3_ool2(n, p, &cp());
        let w1 = n * n / p;
        let w2 = n * n / (p * c3).sqrt();
        assert!(a.nw_words < 2.0 * w2);
        assert!(a.l23_words > 10.0 * w1, "2.5D ooL2 writes far exceed W1");
        assert!((s.l23_words - w1).abs() < 1e-6, "SUMMA ooL2 attains W1");
        assert!(s.nw_words > 10.0 * w2, "SUMMA ooL2 network far exceeds W2");
    }

    #[test]
    fn lu_dominant_costs_mirror_matmul_pair() {
        let (n, p) = (1e6, 4096.0);
        let c = cp();
        let ll = dom_cost_ll_lunp(n, p, &c);
        let rl = dom_cost_rl_lunp(n, p, &c);
        assert!(ll.is_finite() && rl.is_finite());
        // LL's L3-write term is the output size; RL's is √P·log² larger.
        let m2 = c.m2 as f64;
        let ll_writes = n * n / p;
        let rl_writes = n * n / p.sqrt() * log2(p).powi(2);
        assert!(ll_writes < rl_writes);
        // RL's network term undercuts LL's.
        let ll_net = n.powi(3) / (p * m2.sqrt()) * log2(p).powi(2);
        let rl_net = n * n / p.sqrt() * log2(p.sqrt());
        assert!(rl_net < ll_net);
    }

    #[test]
    fn time_folding_is_linear() {
        let costs = CommCosts {
            nw_words: 100.0,
            ..Default::default()
        };
        let mut c = cp();
        c.beta_nw = 2.0;
        assert_eq!(costs.time(&c), 200.0);
    }
}
