//! 2.5D matrix multiplication (Demmel & Solomonik) with configurable
//! replication factor and staging level — the paper's 2DMML2 / 2.5DMML2 /
//! 2.5DMML3 / 2.5DMML3ooL2 family.
//!
//! The processor grid is `q × q × c` with `q = √(P/c)`. The four steps
//! (§7.1):
//!
//! 1. the top layer gathers the 2D-distributed inputs into `q×q` blocks
//!    of size `n/q` (each gather: `c` messages of `2n²/P` words);
//! 2. the inputs are broadcast down the `c` layers (replication);
//! 3. each layer runs `q/c` Cannon steps on its copy;
//! 4. the `c` partial C's are reduced onto the top layer.
//!
//! `Staging::L2` charges only network and DRAM; `Staging::L3` additionally
//! pays NVM reads/writes on every transfer (Model 2.1 using NVM for
//! capacity); `ool2 = true` further charges the local multiplies as
//! out-of-L2 (Model 2.2: operands resident in NVM, L2 of `m2` words used
//! as the fast level — Algorithm 1 traffic at the L2/L3 boundary).

use crate::collectives::{charge_bcast, charge_gather, charge_reduce};
use crate::machine::{replay_gemm, Machine, Staging};
use wa_core::Mat;

/// Configuration for one 2.5D run.
#[derive(Clone, Copy, Debug)]
pub struct Mm25Config {
    /// Total processors; `p = q²·c` with square `q`.
    pub p: usize,
    /// Replication factor `c` (1 = plain 2D/Cannon on the full grid).
    pub c: usize,
    /// Where replicated operands are staged.
    pub at: Staging,
    /// Model 2.2: local multiplies run out of L2 against NVM-resident data.
    pub ool2: bool,
    /// L2 capacity in words (used when `ool2` to derive the local blocking).
    pub m2: u64,
}

impl Mm25Config {
    pub fn q(&self) -> usize {
        let q2 = self.p / self.c;
        let q = (q2 as f64).sqrt().round() as usize;
        assert_eq!(q * q * self.c, self.p, "p must equal q²·c");
        q
    }
}

/// Run 2.5D matmul; returns the assembled product (verified by tests
/// against the sequential reference).
pub fn mm25d(m: &mut Machine, a: &Mat, b: &Mat, cfg: Mm25Config) -> Mat {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!((b.rows(), b.cols()), (n, n));
    let q = cfg.q();
    let c = cfg.c;
    assert!(n.is_multiple_of(q), "n must divide the layer grid");
    // When c > q, layers beyond q simply get no Cannon steps (the range
    // clamps below); wasteful but well-defined.
    let nb = n / q;
    // Node id: (layer l, row i, col j).
    let id = |l: usize, i: usize, j: usize| (l * q + i) * q + j;

    // Symmetric rank-local layout: the gather landing zone, the A/B
    // operand pair, and the partial-C accumulator.
    let words_each = (2 * n * n / cfg.p) as u64;
    let gath_buf = m.alloc(words_each as usize);
    let ab_buf = m.alloc(2 * nb * nb);
    let a_blk = ab_buf;
    let b_blk = ab_buf + nb * nb;
    let part_buf = m.alloc(nb * nb);

    // ----- Step 1: gather the 2D layout into the top layer's q×q blocks.
    // The original layout spreads 2n²/P words per processor; each top-layer
    // processor gathers c contributions.
    for i in 0..q {
        for j in 0..q {
            let root = id(0, i, j);
            let parties: Vec<usize> = (0..c).map(|l| id(l, i, j)).collect();
            charge_gather(m, root, &parties, words_each, cfg.at, gath_buf);
        }
    }

    // ----- Step 2: replicate A and B to all layers.
    let block_words = 2 * (nb * nb) as u64; // A and B blocks
    if c > 1 {
        for i in 0..q {
            for j in 0..q {
                let parties: Vec<usize> = (0..c).map(|l| id(l, i, j)).collect();
                charge_bcast(m, id(0, i, j), &parties, block_words, cfg.at, ab_buf);
            }
        }
    }

    // ----- Step 3: q/c Cannon steps per layer (layer l covers shifts
    // t ∈ [l·q/c, (l+1)·q/c)).
    let steps_per_layer = q.div_ceil(c);
    let mut partial: Vec<Mat> = (0..cfg.p).map(|_| Mat::zeros(nb, nb)).collect();
    for l in 0..c {
        let t0 = l * steps_per_layer;
        let t1 = ((l + 1) * steps_per_layer).min(q);
        for t in t0..t1 {
            for i in 0..q {
                for j in 0..q {
                    let k = (i + j + t) % q; // Cannon alignment
                    let me = id(l, i, j);
                    // Receive the needed A and B blocks (skew + shifts are
                    // charged as one transfer per step per operand).
                    if t > t0 || l > 0 || k != j {
                        let w = (nb * nb) as u64;
                        m.transfer(id(l, i, k), me, w, cfg.at, cfg.at, a_blk, a_blk);
                    }
                    if t > t0 || l > 0 || k != i {
                        let w = (nb * nb) as u64;
                        m.transfer(id(l, k, j), me, w, cfg.at, cfg.at, b_blk, b_blk);
                    }
                    // Local multiply-accumulate.
                    let cb = &mut partial[me];
                    for r in 0..nb {
                        for s in 0..nb {
                            let mut acc = cb[(r, s)];
                            for kk in 0..nb {
                                acc += a[(i * nb + r, k * nb + kk)] * b[(k * nb + kk, j * nb + s)];
                            }
                            cb[(r, s)] = acc;
                        }
                    }
                    if cfg.ool2 {
                        // Model 2.2 local traffic: Algorithm 1 at the
                        // L2/L3 boundary with fast memory m2. The read
                        // side stays a counter-only charge (the streaming
                        // re-reads depend on a tiny m2-word L2 the rank
                        // simulator does not model; NVM loads are not part
                        // of the agreement contract). The write side — one
                        // C-block writeback per step — is replayed so the
                        // simulated NVM stores stay exact.
                        let bsz = (((cfg.m2 / 3) as f64).sqrt().floor() as u64).max(1);
                        let (mm, kk, ll) = (nb as u64, nb as u64, nb as u64);
                        m.l3_read(id(l, i, j), mm * ll + 2 * mm * kk * ll / bsz);
                        m.l3_write_at(id(l, i, j), part_buf, mm * ll);
                    }
                    m.node_mut(me).flops += 2 * (nb * nb * nb) as u64;
                    if m.has_sims() {
                        let mut mem = m.rank_mem(me);
                        replay_gemm(&mut mem, a_blk, b_blk, part_buf, nb, nb, nb);
                    }
                }
            }
        }
    }

    // ----- Step 4: reduce partial C's across layers onto layer 0.
    let mut c_out = Mat::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            if c > 1 {
                let parties: Vec<usize> = (0..c).map(|l| id(l, i, j)).collect();
                charge_reduce(m, id(0, i, j), &parties, (nb * nb) as u64, cfg.at, part_buf);
            }
            // The layer-0 root owns the final C block and must write it to
            // NVM (W1 ≥ n²/P) — unless the algorithm's last writing action
            // already put it there: an L3-staged reduce lands the combined
            // block in NVM, and ooL2 without replication writes C back to
            // NVM on every Cannon step.
            let already_in_nvm = (c > 1 && cfg.at == Staging::L3) || (c == 1 && cfg.ool2);
            if !already_in_nvm {
                m.assemble_output(id(0, i, j), part_buf, (nb * nb) as u64);
            }
            let mut sum = Mat::zeros(nb, nb);
            for l in 0..c {
                let p = &partial[id(l, i, j)];
                for r in 0..nb {
                    for s in 0..nb {
                        sum[(r, s)] += p[(r, s)];
                    }
                }
            }
            for r in 0..nb {
                for s in 0..nb {
                    c_out[(i * nb + r, j * nb + s)] = sum[(r, s)];
                }
            }
        }
    }
    c_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::CostParams;

    fn run(n: usize, p: usize, c: usize, at: Staging, ool2: bool) -> (Mat, Machine, Mat, Mat) {
        let a = Mat::random(n, n, 91);
        let b = Mat::random(n, n, 92);
        let mut m = Machine::new(p, CostParams::nvm_cluster());
        let got = mm25d(
            &mut m,
            &a,
            &b,
            Mm25Config {
                p,
                c,
                at,
                ool2,
                m2: 48,
            },
        );
        (got, m, a, b)
    }

    #[test]
    fn correct_for_2d_and_25d_grids() {
        for (p, c) in [(4usize, 1usize), (16, 1), (8, 2), (27, 3), (32, 2)] {
            let q = ((p / c) as f64).sqrt().round() as usize;
            if q * q * c != p {
                continue;
            }
            let n = q * 4;
            let (got, _, a, b) = run(n, p, c, Staging::L2, false);
            assert!(got.max_abs_diff(&a.matmul_ref(&b)) < 1e-10, "p={p} c={c}");
        }
    }

    #[test]
    fn replication_reduces_network_words() {
        // The 2.5D win needs √P ≫ c(1+log c)√c (the paper's own Table 1
        // second terms); at P = 4096, c = 4 the Cannon-phase words drop by
        // ~√c and dominate the replication overhead.
        let n = 64;
        let (_, m1, _, _) = run(n, 4096, 1, Staging::L2, false);
        let (_, m4, _, _) = run(n, 4096, 4, Staging::L2, false);
        let w1 = m1.max_counters().net_recv_words;
        let w4 = m4.max_counters().net_recv_words;
        assert!(
            (w4 as f64) < 0.8 * w1 as f64,
            "c=4 words {w4} not below c=1 words {w1}"
        );
    }

    #[test]
    fn l3_staging_pays_nvm_traffic() {
        let n = 24;
        let (_, m_l2, _, _) = run(n, 8, 2, Staging::L2, false);
        let (_, m_l3, _, _) = run(n, 8, 2, Staging::L3, false);
        // L2 staging pays NVM only for the assembled output block
        // (q = 2, nb = 12 → 144 words on each layer-0 root).
        assert_eq!(m_l2.max_counters().l3_write_words, 144);
        assert!(m_l3.max_counters().l3_write_words > 144);
        // Network volume identical: staging is orthogonal.
        assert_eq!(
            m_l2.max_counters().net_recv_words,
            m_l3.max_counters().net_recv_words
        );
    }

    #[test]
    fn ool2_charges_local_nvm_traffic_theorem4_shape() {
        let n = 32;
        let (_, m, _, _) = run(n, 16, 1, Staging::L3, true);
        let mc = m.max_counters();
        // L3 reads scale like n³/(P √M2), far above the output size.
        let out = (n * n / 16) as u64;
        assert!(
            mc.l3_write_words > out,
            "ooL2 2.5D writes {} should exceed W1 {out} (Theorem 4)",
            mc.l3_write_words
        );
        assert!(mc.l3_read_words > mc.l3_write_words);
    }

    #[test]
    fn critical_time_prefers_nvm_replication_when_network_is_slow() {
        // Model 2.1 decision: with a very slow network and fast NVM, the
        // L3-staged run with bigger c should win.
        let n = 64;
        let (_, m2, _, _) = run(n, 4096, 1, Staging::L2, false);
        let (_, m4, _, _) = run(n, 4096, 4, Staging::L3, false);
        let mut slow_net = CostParams::nvm_cluster();
        slow_net.beta_nw *= 100.0;
        let t2 = m2.max_counters().time(&slow_net);
        let t4 = m4.max_counters().time(&slow_net);
        assert!(
            t4 < t2,
            "with expensive network, replication via NVM should win: {t4} vs {t2}"
        );
    }
}
