//! SUMMA (van de Geijn & Watts) on a √P×√P grid, plus the Model 2.2
//! variant `SUMMAL3ooL2` that minimizes writes to NVM.
//!
//! The simulator executes the real arithmetic with the true ownership
//! mapping (each processor computes exactly its C block from the panels it
//! would receive) and charges per-node counters for every panel broadcast;
//! the result is verified against a sequential product.

use crate::collectives::charge_bcast;
use crate::machine::{replay_gemm, Machine, Staging};
use wa_core::Mat;

/// Multiply a sub-range of A and B into a C accumulator block:
/// `C[ci.., cj..] += A[ci.., ks..ke] · B[ks..ke, cj..]` where C is the
/// processor-local block with global offset `(ci, cj)`.
fn gemm_into(c: &mut Mat, a: &Mat, b: &Mat, (ci, cj): (usize, usize), (ks, ke): (usize, usize)) {
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let mut acc = c[(i, j)];
            for k in ks..ke {
                acc += a[(ci + i, k)] * b[(k, cj + j)];
            }
            c[(i, j)] = acc;
        }
    }
}

/// Classic SUMMA: C = A·B on a `q×q` grid (`machine.p() == q²`), panel
/// width `panel`, operands staged at `at`. Returns the assembled C.
///
/// Per-processor network volume: `2·(n/q)·n` words (the paper's
/// `2n²/√P` with q = √P).
pub fn summa(m: &mut Machine, a: &Mat, b: &Mat, q: usize, panel: usize, at: Staging) -> Mat {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!((b.rows(), b.cols()), (n, n));
    assert_eq!(m.p(), q * q, "machine size must be q²");
    assert!(n.is_multiple_of(q), "n must divide the grid");
    let nb = n / q;
    let id = |i: usize, j: usize| i * q + j;

    // Symmetric rank-local layout: the C block plus the two panel
    // receive buffers every rank holds.
    let c_blk = m.alloc(nb * nb);
    let a_buf = m.alloc(nb * panel.min(n));
    let b_buf = m.alloc(panel.min(n) * nb);

    let mut local_c: Vec<Mat> = (0..q * q).map(|_| Mat::zeros(nb, nb)).collect();

    let mut ks = 0;
    while ks < n {
        let ke = (ks + panel).min(n);
        let w = (ke - ks) as u64;
        {
            let _span = wa_core::obs::span("panel-bcast", "summa");
            // The grid column owning this panel of A broadcasts along rows;
            // the grid row owning the B panel broadcasts along columns.
            let owner_col = ks / nb;
            let owner_row = ks / nb;
            for i in 0..q {
                let parties: Vec<usize> = (0..q).map(|j| id(i, j)).collect();
                charge_bcast(m, id(i, owner_col), &parties, nb as u64 * w, at, a_buf);
            }
            for j in 0..q {
                let parties: Vec<usize> = (0..q).map(|i| id(i, j)).collect();
                charge_bcast(m, id(owner_row, j), &parties, w * nb as u64, at, b_buf);
            }
        }
        // Local multiply-accumulate on every processor.
        let _span = wa_core::obs::span("local-gemm", "summa");
        for i in 0..q {
            for j in 0..q {
                gemm_into(&mut local_c[id(i, j)], a, b, (i * nb, j * nb), (ks, ke));
                m.node_mut(id(i, j)).flops += 2 * (nb * nb) as u64 * w;
                if m.has_sims() {
                    let mut mem = m.rank_mem(id(i, j));
                    replay_gemm(&mut mem, a_buf, b_buf, c_blk, nb, ke - ks, nb);
                }
            }
        }
        ks = ke;
    }

    // Assemble the distributed output. Each rank materializes its C block
    // to node-local NVM — nb² = n²/P words, the trivial W1 lower bound.
    // (This used to be charged as free, which let classic SUMMA report
    // zero NVM writes — below any algorithm's real write cost.)
    let mut c = Mat::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            m.assemble_output(id(i, j), c_blk, (nb * nb) as u64);
            let blk = &local_c[id(i, j)];
            for r in 0..nb {
                for s in 0..nb {
                    c[(i * nb + r, j * nb + s)] = blk[(r, s)];
                }
            }
        }
    }
    c
}

/// `SUMMAL3ooL2` (paper §7, Model 2.2): data lives in NVM (L3); each
/// processor computes its C block one `b₂×b₂` tile at a time entirely in
/// L2 (`b₂ = √(M2/3)`), writing each tile to NVM exactly once — attaining
/// the `W1 = n²/P` write bound at the price of `Θ(n³/(P√M2))` network
/// words.
pub fn summa_l3_ool2(m: &mut Machine, a: &Mat, b: &Mat, q: usize, m2: u64) -> Mat {
    let n = a.rows();
    assert_eq!(m.p(), q * q);
    assert!(n.is_multiple_of(q));
    let nb = n / q;
    let b2 = (((m2 / 3) as f64).sqrt().floor() as usize).clamp(1, nb);
    let id = |i: usize, j: usize| i * q + j;

    let mut local_c: Vec<Mat> = (0..q * q).map(|_| Mat::zeros(nb, nb)).collect();

    // Tile loop over each processor's C block (identical tiling on all
    // processors, so one loop drives the whole grid step by step).
    let tiles = nb.div_ceil(b2);
    // Rank-local layout, tile-contiguous: a WA implementation stores C
    // tile-major so each finished b₂×b₂ tile is one whole-line NVM write
    // (row-sliced tiles would straddle lines and overcharge the
    // line-granular simulator relative to the word-granular counters).
    let tile_stride = (b2 * b2).div_ceil(memsim::LINE_WORDS) * memsim::LINE_WORDS;
    let c_tiles = m.alloc(tiles * tiles * tile_stride);
    let a_buf = m.alloc(b2 * b2);
    let b_buf = m.alloc(b2 * b2);
    for ti in 0..tiles {
        for tj in 0..tiles {
            let tile_addr = c_tiles + (ti * tiles + tj) * tile_stride;
            // One SUMMA over the full shared dimension for this tile.
            let mut ks = 0;
            while ks < n {
                let ke = (ks + b2).min(n);
                let w = (ke - ks) as u64;
                let owner = ks / nb; // grid col/row owning the panel
                for i in 0..q {
                    let parties: Vec<usize> = (0..q).map(|j| id(i, j)).collect();
                    // Panel read from the owner's NVM, broadcast, landing
                    // in L2 at the receivers (not written to NVM).
                    let root = id(i, owner);
                    m.l3_read_at(root, a_buf, b2 as u64 * w);
                    charge_bcast(m, root, &parties, b2 as u64 * w, Staging::L2, a_buf);
                }
                for j in 0..q {
                    let parties: Vec<usize> = (0..q).map(|i| id(i, j)).collect();
                    let root = id(owner, j);
                    m.l3_read_at(root, b_buf, w * b2 as u64);
                    charge_bcast(m, root, &parties, w * b2 as u64, Staging::L2, b_buf);
                }
                for gi in 0..q {
                    for gj in 0..q {
                        let (r0, c0) = (ti * b2, tj * b2);
                        let rows = b2.min(nb - r0);
                        let cols = b2.min(nb - c0);
                        let cblk = &mut local_c[id(gi, gj)];
                        for i in 0..rows {
                            for j in 0..cols {
                                let mut acc = cblk[(r0 + i, c0 + j)];
                                for k in ks..ke {
                                    acc += a[(gi * nb + r0 + i, k)] * b[(k, gj * nb + c0 + j)];
                                }
                                cblk[(r0 + i, c0 + j)] = acc;
                            }
                        }
                        m.node_mut(id(gi, gj)).flops += 2 * (rows * cols) as u64 * w;
                        if m.has_sims() {
                            let mut mem = m.rank_mem(id(gi, gj));
                            replay_gemm(&mut mem, a_buf, b_buf, tile_addr, rows, ke - ks, cols);
                        }
                    }
                }
                ks = ke;
            }
            // Tile complete on every processor: one NVM write each.
            for gi in 0..q {
                for gj in 0..q {
                    let rows = b2.min(nb - ti * b2);
                    let cols = b2.min(nb - tj * b2);
                    m.l3_write_at(id(gi, gj), tile_addr, (rows * cols) as u64);
                }
            }
        }
    }

    // No assembly charge here: the per-tile NVM writes above *are* the
    // output materialization (that is the point of ooL2 — it attains the
    // W1 = n²/P bound exactly).
    let mut c = Mat::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            let blk = &local_c[id(i, j)];
            for r in 0..nb {
                for s in 0..nb {
                    c[(i * nb + r, j * nb + s)] = blk[(r, s)];
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::CostParams;

    #[test]
    fn summa_computes_the_product() {
        let n = 24;
        let a = Mat::random(n, n, 1);
        let b = Mat::random(n, n, 2);
        let mut m = Machine::new(9, CostParams::nvm_cluster());
        let c = summa(&mut m, &a, &b, 3, 4, Staging::L2);
        assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-10);
    }

    #[test]
    fn summa_network_volume_matches_2n2_over_sqrt_p() {
        let n = 32;
        let q = 4;
        let a = Mat::random(n, n, 3);
        let b = Mat::random(n, n, 4);
        let mut m = Machine::new(q * q, CostParams::nvm_cluster());
        let _ = summa(&mut m, &a, &b, q, 8, Staging::L2);
        let recv = m.max_counters().net_recv_words;
        let expect = 2 * (n * n / q) as u64; // 2 n²/√P
        assert!(
            recv <= expect && recv >= expect / 2,
            "recv {recv} vs expected ≤ {expect}"
        );
    }

    #[test]
    fn summa_ool2_computes_the_product() {
        let n = 24;
        let a = Mat::random(n, n, 5);
        let b = Mat::random(n, n, 6);
        let mut m = Machine::new(9, CostParams::nvm_cluster());
        let c = summa_l3_ool2(&mut m, &a, &b, 3, 48);
        assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-10);
    }

    #[test]
    fn summa_ool2_attains_w1_nvm_writes() {
        let n = 32;
        let q = 4;
        let a = Mat::random(n, n, 7);
        let b = Mat::random(n, n, 8);
        let mut m = Machine::new(q * q, CostParams::nvm_cluster());
        let _ = summa_l3_ool2(&mut m, &a, &b, q, 48);
        let mc = m.max_counters();
        // Writes to NVM = exactly the local C block = n²/P.
        assert_eq!(mc.l3_write_words, (n * n / (q * q)) as u64);
        // Network words are Θ(n³/(P √M2)) — far above 2n²/√P here.
        assert!(mc.net_recv_words > 2 * (n * n / q) as u64);
    }
}
