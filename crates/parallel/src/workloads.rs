//! Engine registrations for the Section 7 distributed-memory models.
//!
//! The [`Machine`] counts per-node L1↔L2 / L2↔L3 / network words — an
//! explicit model, so these register the `explicit` backend. The critical
//! path (max-per-node counters) maps onto a three-boundary hierarchy:
//! boundary 0 = L1↔L2, boundary 1 = L2↔L3 (the NVM writes the paper
//! bounds as `W1`), boundary 2 = network (recv = load, send = store — the
//! "slow memory" of a node is the rest of the machine, the Model 1
//! reading). `raw` runs the same model and reports wall time plus the
//! cost-model critical time.

use crate::cannon::cannon;
use crate::lu::{parallel_lu, LunpVariant};
use crate::machine::{Machine, Staging};
use crate::mm25d::{mm25d, Mm25Config};
use crate::summa::{summa, summa_l3_ool2};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::{BoundaryTraffic, CostParams, Mat, Traffic};

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Small => 48,
        Scale::Paper => 96,
    }
}

/// Footprint estimate shared by the distributed-matmul workloads: the
/// global n×n operands/result plus the per-node tile replicas the
/// [`Machine`] stages (≤ 2× replication in the 2.5D variant), with slack.
fn parallel_footprint(scale: Scale, _depth: usize) -> u64 {
    let n = dim(scale) as u64;
    8 * n * n * 8
}

/// Project critical-path node counters onto the report hierarchy.
fn machine_report(name: &str, scale: Scale, m: &Machine) -> RunReport {
    let c = m.max_counters();
    let mut bt = BoundaryTraffic::new(4);
    *bt.boundary_mut(0) = Traffic {
        load_words: c.l2_read_words,
        load_msgs: c.l2_read_msgs,
        store_words: c.l2_write_words,
        store_msgs: c.l2_write_msgs,
    };
    *bt.boundary_mut(1) = Traffic {
        load_words: c.l3_read_words,
        load_msgs: c.l3_read_msgs,
        store_words: c.l3_write_words,
        store_msgs: c.l3_write_msgs,
    };
    *bt.boundary_mut(2) = Traffic {
        load_words: c.net_recv_words,
        load_msgs: c.net_recv_msgs,
        store_words: c.net_send_words,
        store_msgs: c.net_send_msgs,
    };
    let mut r = RunReport::new(name, BackendKind::Explicit, scale)
        .with_boundaries(&bt, &[])
        .config("p", m.p())
        .config(
            "critical_time_model_s",
            format!("{:.6e}", m.critical_time()),
        )
        .note("critical-path (max per node) counters; boundary 2 is the network");
    r.flops = c.flops;
    r
}

fn check(name: &str, got: &Mat, want: &Mat) -> Result<(), EngineError> {
    if got.max_abs_diff(want) > 1e-8 {
        return Err(EngineError::Failed {
            workload: name.to_string(),
            message: format!("numeric mismatch: {:.3e}", got.max_abs_diff(want)),
        });
    }
    Ok(())
}

fn finish(
    name: &str,
    backend: BackendKind,
    scale: Scale,
    machine: &Machine,
    ns: u128,
    extra: &[(&str, String)],
) -> Result<RunReport, EngineError> {
    let mut r = match backend {
        BackendKind::Explicit => machine_report(name, scale, machine),
        BackendKind::Raw => RunReport::new(name, backend, scale)
            .config("p", machine.p())
            .config(
                "critical_time_model_s",
                format!("{:.6e}", machine.critical_time()),
            ),
        other => {
            return Err(EngineError::UnsupportedBackend {
                workload: name.to_string(),
                backend: other,
                supported: vec![BackendKind::Raw, BackendKind::Explicit],
            })
        }
    };
    for (k, v) in extra {
        r = r.config(*k, v);
    }
    r.wall_ns = ns;
    Ok(r)
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    let backends = [BackendKind::Raw, BackendKind::Explicit];
    vec![
        FnWorkload::boxed_sized(
            "summa",
            "parallel",
            "classic SUMMA with L2 staging: 2n^2/sqrt(P) network words, no NVM traffic (7.1)",
            &backends,
            &[],
            parallel_footprint,
            move |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = dim(scale);
                let q = 4;
                let a = Mat::random(n, n, 101);
                let b = Mat::random(n, n, 102);
                let mut m = Machine::new(q * q, CostParams::nvm_cluster());
                let (got, ns) = timed(|| summa(&mut m, &a, &b, q, n / q, Staging::L2));
                check("summa", &got, &a.matmul_ref(&b))?;
                finish(
                    "summa",
                    backend,
                    scale,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("q", q.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "summa-ool2",
            "parallel",
            "SUMMAL3ooL2 (Model 2.2): tiles computed entirely in L2, attains W1 = n^2/P NVM writes",
            &backends,
            &[],
            parallel_footprint,
            move |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = dim(scale);
                let (q, m2) = (4usize, 48u64);
                let a = Mat::random(n, n, 108);
                let b = Mat::random(n, n, 109);
                let mut m = Machine::new(q * q, CostParams::nvm_cluster());
                let (got, ns) = timed(|| summa_l3_ool2(&mut m, &a, &b, q, m2));
                check("summa-ool2", &got, &a.matmul_ref(&b))?;
                finish(
                    "summa-ool2",
                    backend,
                    scale,
                    &m,
                    ns,
                    &[
                        ("n", n.to_string()),
                        ("q", q.to_string()),
                        ("m2_words", m2.to_string()),
                    ],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "cannon",
            "parallel",
            "Cannon's algorithm with L2 staging: same W1, lower network volume",
            &backends,
            &[],
            parallel_footprint,
            move |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = dim(scale);
                let q = 4;
                let a = Mat::random(n, n, 103);
                let b = Mat::random(n, n, 104);
                let mut m = Machine::new(q * q, CostParams::nvm_cluster());
                let (got, ns) = timed(|| cannon(&mut m, &a, &b, q, Staging::L2));
                check("cannon", &got, &a.matmul_ref(&b))?;
                finish(
                    "cannon",
                    backend,
                    scale,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("q", q.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "mm25d",
            "parallel",
            "2.5D matmul (c=2 replication): trades memory for W2 = n^2/sqrt(Pc) network words",
            &backends,
            &[],
            parallel_footprint,
            move |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = dim(scale);
                let (p, c) = (18usize, 2usize);
                let a = Mat::random(n, n, 105);
                let b = Mat::random(n, n, 106);
                let cfg = Mm25Config {
                    p,
                    c,
                    at: Staging::L3,
                    ool2: false,
                    m2: 48,
                };
                let mut m = Machine::new(p, CostParams::nvm_cluster());
                let (got, ns) = timed(|| mm25d(&mut m, &a, &b, cfg));
                check("mm25d", &got, &a.matmul_ref(&b))?;
                finish(
                    "mm25d",
                    backend,
                    scale,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("c", c.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "lu-parallel",
            "parallel",
            "LL-LUNP: left-looking parallel LU, the WA order of 7.2",
            &backends,
            &[],
            parallel_footprint,
            move |wa_core::engine::RunCfg { backend, scale, .. }| {
                let n = dim(scale);
                let mut a = Mat::random(n, n, 107);
                for i in 0..n {
                    a[(i, i)] = a[(i, i)].abs() + n as f64;
                }
                let mut m = Machine::new(16, CostParams::nvm_cluster());
                let (_, ns) = timed(|| parallel_lu(&mut m, &mut a, 4, LunpVariant::LeftLooking));
                finish(
                    "lu-parallel",
                    backend,
                    scale,
                    &m,
                    ns,
                    &[("n", n.to_string())],
                )
            },
        ),
    ]
}

/// Exposed for tests: the W1 bound SUMMA's report should attain.
pub fn w1_words(n: usize, p: usize) -> u64 {
    (n * n / p) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_parallel_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn summa_ool2_report_attains_w1_on_the_nvm_boundary() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "summa-ool2").unwrap();
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        // Boundary 1 is L2<->L3 (NVM): stores must equal W1 = n^2/P.
        assert_eq!(r.boundaries[1].store_words, w1_words(dim(Scale::Small), 16));
    }

    /// Hand-computed pin for the assembly-charging fix. At Small scale
    /// classic SUMMA runs n = 48 on a 4×4 grid: every rank owns one
    /// 12×12 block of C, so assembling the distributed output writes
    /// 12·12 = 144 words = n²/P to each rank's NVM — the paper's trivial
    /// lower bound W1 ≥ n²/P. Before the fix this report said 0 (assembly
    /// was charged as free), which no real machine can do.
    #[test]
    fn classic_summa_explicit_report_charges_assembled_output() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "summa").unwrap();
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(r.boundaries[1].store_words, 144);
        assert_eq!(r.boundaries[1].store_words, w1_words(dim(Scale::Small), 16));
        // L2 staging still reads nothing from NVM: the fix charges output
        // writes, not phantom operand loads.
        assert_eq!(r.boundaries[1].load_words, 0);
    }
}
