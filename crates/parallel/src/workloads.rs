//! Engine registrations for the Section 7 distributed-memory models.
//!
//! The [`Machine`] counts per-node L1↔L2 / L2↔L3 / network words — an
//! explicit model. The critical path (max-per-node counters) maps onto a
//! three-boundary hierarchy: boundary 0 = L1↔L2, boundary 1 = L2↔L3 (the
//! NVM writes the paper bounds as `W1`), boundary 2 = network (recv =
//! load, send = store — the "slow memory" of a node is the rest of the
//! machine, the Model 1 reading). `raw` runs the same model and reports
//! wall time plus the cost-model critical time.
//!
//! Since the per-rank simulation landed, the same kernels also run on
//! `simmed` (one [`memsim::MemSim`] cache hierarchy per rank over
//! node-local NVM; `--depth 2` adds a rank-private L1), `traced`
//! (word-granular per-rank trace tallies), and — for the matmul family —
//! `stack` (a Mattson capacity curve from the critical rank). Simulated
//! reports fold max-per-rank boundaries and append the network boundary
//! last, so the NVM write agreement with `explicit` is checked at each
//! report's *final cache boundary* (explicit: index 1; simmed: index
//! `depth-1`... second-to-last) — see `crates/bench/tests/backend_matrix.rs`.

use crate::cannon::cannon;
use crate::lu::{parallel_lu, LunpVariant};
use crate::machine::{Machine, SimKind, Staging};
use crate::mm25d::{mm25d, Mm25Config};
use crate::summa::{summa, summa_l3_ool2};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, RunCfg, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::{BoundaryTraffic, CostParams, Mat, Traffic};

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Small => 48,
        Scale::Paper => 96,
    }
}

/// Rank-private L1 capacity (words) modeled when `--depth 2`.
pub const RANK_L1_WORDS: usize = 256;

/// Rank-private last-level cache capacity (words) above the node-local
/// NVM. Deliberately larger than any rank's working set here
/// ([`Machine::heap_words`] stays far below it), so the only NVM stores
/// the rank simulator observes are the explicit write-backs the kernels
/// issue — the no-capacity-eviction premise of the exact explicit↔simmed
/// NVM-write agreement.
pub const RANK_L2_WORDS: usize = 65_536;

/// Per-rank cache capacities for a simmed run at `depth` levels,
/// fastest first, ending at the level backed by node-local NVM.
fn sim_caps(depth: usize) -> Vec<usize> {
    match depth {
        1 => vec![RANK_L2_WORDS],
        _ => vec![RANK_L1_WORDS, RANK_L2_WORDS],
    }
}

/// A machine wired for `backend`: counters only (`raw`/`explicit`) or
/// counters plus one per-rank simulator.
fn build_machine(p: usize, backend: BackendKind, depth: usize) -> Machine {
    let cost = CostParams::nvm_cluster();
    match backend {
        BackendKind::Simmed => Machine::with_sims(p, cost, SimKind::Simmed, &sim_caps(depth)),
        BackendKind::Traced => Machine::with_sims(p, cost, SimKind::Traced, &[]),
        BackendKind::Stack => Machine::with_sims(p, cost, SimKind::Stack, &[RANK_L2_WORDS]),
        _ => Machine::new(p, cost),
    }
}

/// Footprint estimate shared by the distributed-matmul workloads: the
/// global n×n operands/result plus the per-node tile replicas the
/// [`Machine`] stages (≤ 2× replication in the 2.5D variant), with slack.
fn parallel_footprint(scale: Scale, _depth: usize) -> u64 {
    let n = dim(scale) as u64;
    8 * n * n * 8
}

/// Project critical-path node counters onto the report hierarchy.
fn machine_report(name: &str, scale: Scale, m: &Machine) -> RunReport {
    let c = m.max_counters();
    let mut bt = BoundaryTraffic::new(4);
    *bt.boundary_mut(0) = Traffic {
        load_words: c.l2_read_words,
        load_msgs: c.l2_read_msgs,
        store_words: c.l2_write_words,
        store_msgs: c.l2_write_msgs,
    };
    *bt.boundary_mut(1) = Traffic {
        load_words: c.l3_read_words,
        load_msgs: c.l3_read_msgs,
        store_words: c.l3_write_words,
        store_msgs: c.l3_write_msgs,
    };
    *bt.boundary_mut(2) = Traffic {
        load_words: c.net_recv_words,
        load_msgs: c.net_recv_msgs,
        store_words: c.net_send_words,
        store_msgs: c.net_send_msgs,
    };
    let mut r = RunReport::new(name, BackendKind::Explicit, scale)
        .with_boundaries(&bt, &[])
        .config("p", m.p())
        .config(
            "critical_time_model_s",
            format!("{:.6e}", m.critical_time()),
        )
        .note("critical-path (max per node) counters; boundary 2 is the network");
    r.flops = c.flops;
    r
}

/// Project the per-rank cache simulation onto the report hierarchy:
/// boundaries `0..depth` are the max-per-rank simulated cache boundaries
/// (the last of them LLC↔node-local-NVM), and one network boundary is
/// appended after them (recv = load, send = store), mirroring the
/// explicit layout's slow end. NVM *stores* are exact by construction
/// (every counter-model write is a store + clwb replay of whole lines);
/// NVM loads are cold-fill granular — a block re-read the explicit model
/// charges twice fills once in a warm cache — so loads carry no
/// cross-backend contract.
fn machine_sim_report(name: &str, scale: Scale, m: &Machine, depth: usize) -> RunReport {
    let sim = m.sim_boundaries().expect("simmed machine has rank sims");
    let c = m.max_counters();
    let mut bt = BoundaryTraffic::new(sim.len() + 2);
    for (i, t) in sim.iter().enumerate() {
        *bt.boundary_mut(i) = *t;
    }
    *bt.boundary_mut(sim.len()) = Traffic {
        load_words: c.net_recv_words,
        load_msgs: c.net_recv_msgs,
        store_words: c.net_send_words,
        store_msgs: c.net_send_msgs,
    };
    let caps: Vec<String> = m.rank_caps().iter().map(|c| c.to_string()).collect();
    let mut r = RunReport::new(name, BackendKind::Simmed, scale)
        .with_boundaries(&bt, &[])
        .config("p", m.p())
        .config("depth", depth)
        .config("rank_caps_words", caps.join("/"))
        .config("heap_words_per_rank", m.heap_words())
        .config(
            "critical_time_model_s",
            format!("{:.6e}", m.critical_time()),
        )
        .note(
            "per-rank cache simulation, max-per-rank fold; last boundary is the \
             network, second-to-last is LLC<->node-local NVM",
        );
    r.flops = c.flops;
    r
}

/// Project the per-rank trace tallies: no boundary traffic (a trace has
/// no hierarchy), max-per-rank statistics in the config echo.
fn machine_trace_report(name: &str, scale: Scale, m: &Machine) -> RunReport {
    let (words, writes, lines) = m
        .max_trace_stats()
        .expect("traced machine has rank tallies");
    let c = m.max_counters();
    let mut r = RunReport::new(name, BackendKind::Traced, scale)
        .config("p", m.p())
        .config("trace_words", words)
        .config("trace_writes", writes)
        .config("trace_distinct_lines", lines)
        .config("heap_words_per_rank", m.heap_words())
        .config(
            "critical_time_model_s",
            format!("{:.6e}", m.critical_time()),
        )
        .note("per-rank replay tallies, max-per-rank fold");
    r.flops = c.flops;
    r
}

/// Project the critical rank's Mattson curve at [`RANK_L2_WORDS`] — the
/// same capacity the simmed backend's LLC models.
fn machine_stack_report(name: &str, scale: Scale, m: &Machine) -> RunReport {
    let (rank, sim) = m.stack_critical().expect("stack machine has rank sims");
    let c = m.max_counters();
    let r = RunReport::new(name, BackendKind::Stack, scale);
    let mut r = memsim::stack_report(sim, RANK_L2_WORDS, r)
        .config("p", m.p())
        .config("critical_rank", rank)
        .config("heap_words_per_rank", m.heap_words())
        .config(
            "critical_time_model_s",
            format!("{:.6e}", m.critical_time()),
        )
        .note("capacity curve of the critical rank (largest projected write-backs)");
    r.flops = c.flops;
    r
}

fn check(name: &str, got: &Mat, want: &Mat) -> Result<(), EngineError> {
    if got.max_abs_diff(want) > 1e-8 {
        return Err(EngineError::Failed {
            workload: name.to_string(),
            message: format!("numeric mismatch: {:.3e}", got.max_abs_diff(want)),
        });
    }
    Ok(())
}

fn finish(
    name: &str,
    cfg: RunCfg,
    machine: &Machine,
    ns: u128,
    extra: &[(&str, String)],
) -> Result<RunReport, EngineError> {
    // The simmed caps must dominate the rank-local layout, or capacity
    // evictions would break the exact NVM-store agreement.
    debug_assert!(
        machine.heap_words() <= RANK_L2_WORDS,
        "{name}: rank heap {} exceeds RANK_L2_WORDS",
        machine.heap_words()
    );
    let RunCfg {
        backend,
        scale,
        depth,
        ..
    } = cfg;
    let mut r = match backend {
        BackendKind::Explicit => machine_report(name, scale, machine),
        BackendKind::Raw => RunReport::new(name, backend, scale)
            .config("p", machine.p())
            .config(
                "critical_time_model_s",
                format!("{:.6e}", machine.critical_time()),
            ),
        BackendKind::Simmed => machine_sim_report(name, scale, machine, depth),
        BackendKind::Traced => machine_trace_report(name, scale, machine),
        BackendKind::Stack => machine_stack_report(name, scale, machine),
    };
    for (k, v) in extra {
        r = r.config(*k, v);
    }
    r.wall_ns = ns;
    Ok(r)
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
        BackendKind::Stack,
    ];
    // lu-parallel skips `stack`: its replay is dominated by in-place NVM
    // block rewrites whose capacity curve adds nothing over `simmed`, and
    // keeping one non-universal workload exercises the unsupported-backend
    // error path with the *current* supported list.
    let lu_backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
    ];
    let depths = [(BackendKind::Simmed, 2)];
    vec![
        FnWorkload::boxed_sized(
            "summa",
            "parallel",
            "classic SUMMA with L2 staging: 2n^2/sqrt(P) network words, no NVM traffic (7.1)",
            &backends,
            &depths,
            parallel_footprint,
            move |cfg| {
                let RunCfg {
                    backend,
                    scale,
                    depth,
                    ..
                } = cfg;
                let n = dim(scale);
                let q = 4;
                let a = Mat::random(n, n, 101);
                let b = Mat::random(n, n, 102);
                let mut m = build_machine(q * q, backend, depth);
                let (got, ns) = timed(|| summa(&mut m, &a, &b, q, n / q, Staging::L2));
                check("summa", &got, &a.matmul_ref(&b))?;
                finish(
                    "summa",
                    cfg,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("q", q.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "summa-ool2",
            "parallel",
            "SUMMAL3ooL2 (Model 2.2): tiles computed entirely in L2, attains W1 = n^2/P NVM writes",
            &backends,
            &depths,
            parallel_footprint,
            move |cfg| {
                let RunCfg {
                    backend,
                    scale,
                    depth,
                    ..
                } = cfg;
                let n = dim(scale);
                let (q, m2) = (4usize, 48u64);
                let a = Mat::random(n, n, 108);
                let b = Mat::random(n, n, 109);
                let mut m = build_machine(q * q, backend, depth);
                let (got, ns) = timed(|| summa_l3_ool2(&mut m, &a, &b, q, m2));
                check("summa-ool2", &got, &a.matmul_ref(&b))?;
                finish(
                    "summa-ool2",
                    cfg,
                    &m,
                    ns,
                    &[
                        ("n", n.to_string()),
                        ("q", q.to_string()),
                        ("m2_words", m2.to_string()),
                    ],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "cannon",
            "parallel",
            "Cannon's algorithm with L2 staging: same W1, lower network volume",
            &backends,
            &depths,
            parallel_footprint,
            move |cfg| {
                let RunCfg {
                    backend,
                    scale,
                    depth,
                    ..
                } = cfg;
                let n = dim(scale);
                let q = 4;
                let a = Mat::random(n, n, 103);
                let b = Mat::random(n, n, 104);
                let mut m = build_machine(q * q, backend, depth);
                let (got, ns) = timed(|| cannon(&mut m, &a, &b, q, Staging::L2));
                check("cannon", &got, &a.matmul_ref(&b))?;
                finish(
                    "cannon",
                    cfg,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("q", q.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "mm25d",
            "parallel",
            "2.5D matmul (c=2 replication): trades memory for W2 = n^2/sqrt(Pc) network words",
            &backends,
            &depths,
            parallel_footprint,
            move |run_cfg| {
                let RunCfg {
                    backend,
                    scale,
                    depth,
                    ..
                } = run_cfg;
                let n = dim(scale);
                let (p, c) = (18usize, 2usize);
                let a = Mat::random(n, n, 105);
                let b = Mat::random(n, n, 106);
                let cfg = Mm25Config {
                    p,
                    c,
                    at: Staging::L3,
                    ool2: false,
                    m2: 48,
                };
                let mut m = build_machine(p, backend, depth);
                let (got, ns) = timed(|| mm25d(&mut m, &a, &b, cfg));
                check("mm25d", &got, &a.matmul_ref(&b))?;
                finish(
                    "mm25d",
                    run_cfg,
                    &m,
                    ns,
                    &[("n", n.to_string()), ("c", c.to_string())],
                )
            },
        ),
        FnWorkload::boxed_sized(
            "lu-parallel",
            "parallel",
            "LL-LUNP: left-looking parallel LU, the WA order of 7.2",
            &lu_backends,
            &depths,
            parallel_footprint,
            move |cfg| {
                let RunCfg {
                    backend,
                    scale,
                    depth,
                    ..
                } = cfg;
                let n = dim(scale);
                let mut a = Mat::random(n, n, 107);
                for i in 0..n {
                    a[(i, i)] = a[(i, i)].abs() + n as f64;
                }
                let mut m = build_machine(16, backend, depth);
                let (_, ns) = timed(|| parallel_lu(&mut m, &mut a, 4, LunpVariant::LeftLooking));
                finish("lu-parallel", cfg, &m, ns, &[("n", n.to_string())])
            },
        ),
    ]
}

/// Exposed for tests: the W1 bound SUMMA's report should attain.
pub fn w1_words(n: usize, p: usize) -> u64 {
    (n * n / p) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_parallel_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn summa_ool2_report_attains_w1_on_the_nvm_boundary() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "summa-ool2").unwrap();
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        // Boundary 1 is L2<->L3 (NVM): stores must equal W1 = n^2/P.
        assert_eq!(r.boundaries[1].store_words, w1_words(dim(Scale::Small), 16));
    }

    /// Regression: the unsupported-backend error must enumerate the
    /// *current* supported list. When the simulated backends landed this
    /// message still said `raw, explicit` — a stale hardcoded list in the
    /// old `finish()` — sending users of `lu-parallel --backend stack`
    /// to backends that "didn't exist".
    #[test]
    fn unsupported_backend_error_lists_the_current_backends() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "lu-parallel").unwrap();
        let err = w.run(BackendKind::Stack, Scale::Small).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("supported: raw, simmed, traced, explicit"),
            "{msg}"
        );
        assert!(!msg.contains("stack,"), "{msg}");
    }

    /// The tentpole contract: on every parallel workload the simmed
    /// report's NVM boundary (second-to-last; the last is the network)
    /// charges exactly the words the explicit counter model does, and the
    /// network boundaries agree verbatim.
    #[test]
    fn explicit_and_simmed_agree_on_nvm_writes_and_network() {
        for w in workloads() {
            for scale in [Scale::Small, Scale::Paper] {
                let e = w.run(BackendKind::Explicit, scale).unwrap();
                let s = w.run(BackendKind::Simmed, scale).unwrap();
                let nvm_e = &e.boundaries[1];
                let nvm_s = &s.boundaries[s.boundaries.len() - 2];
                assert_eq!(
                    nvm_e.store_words,
                    nvm_s.store_words,
                    "{} {scale}: NVM writes",
                    w.name()
                );
                let net_e = &e.boundaries[2];
                let net_s = s.boundaries.last().unwrap();
                assert_eq!(net_e, net_s, "{} {scale}: network boundary", w.name());
            }
        }
    }

    /// The node-local-NVM scenario of the issue: `summa --backend simmed
    /// --depth 2` models a rank-private L1 above the LLC above NVM, and
    /// the assembled-output writes still hit NVM exactly once.
    #[test]
    fn summa_simmed_depth2_keeps_the_nvm_writes_exact() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "summa").unwrap();
        let r = w
            .run_cfg(RunCfg::with_depth(BackendKind::Simmed, Scale::Small, 2))
            .unwrap();
        // L1<->L2, L2<->NVM, network.
        assert_eq!(r.boundaries.len(), 3);
        assert_eq!(r.boundaries[1].store_words, 144);
        // The L1 boundary saw real replay traffic.
        assert!(r.boundaries[0].load_words > 0);
    }

    /// The stack backend projects the critical rank's curve at the same
    /// capacity the simmed LLC models, so its boundary-0 write-backs can
    /// never undercut the flushed working set.
    #[test]
    fn matmul_workloads_run_on_traced_and_stack() {
        for name in ["summa", "summa-ool2", "cannon", "mm25d"] {
            let ws = workloads();
            let w = ws.iter().find(|w| w.name() == name).unwrap();
            let t = w.run(BackendKind::Traced, Scale::Small).unwrap();
            assert!(
                t.config.iter().any(|(k, v)| k == "trace_words" && v != "0"),
                "{name}: trace stats missing"
            );
            let s = w.run(BackendKind::Stack, Scale::Small).unwrap();
            assert!(s.curve.is_some(), "{name}: stack report carries no curve");
            assert!(s.config.iter().any(|(k, _)| k == "critical_rank"));
        }
    }

    /// Hand-computed pin for the assembly-charging fix. At Small scale
    /// classic SUMMA runs n = 48 on a 4×4 grid: every rank owns one
    /// 12×12 block of C, so assembling the distributed output writes
    /// 12·12 = 144 words = n²/P to each rank's NVM — the paper's trivial
    /// lower bound W1 ≥ n²/P. Before the fix this report said 0 (assembly
    /// was charged as free), which no real machine can do.
    #[test]
    fn classic_summa_explicit_report_charges_assembled_output() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "summa").unwrap();
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(r.boundaries[1].store_words, 144);
        assert_eq!(r.boundaries[1].store_words, w1_words(dim(Scale::Small), 16));
        // L2 staging still reads nothing from NVM: the fix charges output
        // writes, not phantom operand loads.
        assert_eq!(r.boundaries[1].load_words, 0);
    }
}
