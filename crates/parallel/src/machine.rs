//! Event-counting distributed machine.
//!
//! Each node carries counters for the five boundaries of Figure 1's
//! architecture: network send/receive (attached to L2), L3↔L2 (NVM read /
//! NVM write), and L2↔L1. Algorithms charge counters as they move real
//! data; [`Machine::critical_time`] folds the *maximum* per-node counters
//! through a [`wa_core::CostParams`] — the critical-path convention of the
//! communication-avoiding literature.
//!
//! Beyond the explicit counters, [`Machine::with_sims`] attaches one
//! measurement substrate *per rank* — a [`MemSim`] cache hierarchy over
//! node-local NVM (`simmed`), a word-granular trace tally (`traced`), or a
//! Mattson [`StackSim`] (`stack`) — and the kernels replay each rank's
//! local accesses through it via [`Machine::rank_mem`] (a [`Mem`]
//! adapter). Addresses come from the symmetric bump allocator
//! [`Machine::alloc`]: every rank allocates the same line-aligned layout,
//! so one address names the same buffer in every rank's private memory.
//! Network payloads land through [`Machine::sim_write`] at the receiver
//! ("charge what the network delivers") and NVM-staged data additionally
//! crosses to the backing store via [`Machine::sim_writeback`]
//! (clwb-style, [`MemSim::writeback_range`]).

use memsim::{Mem, MemSim, StackSim, LINE_WORDS};
use std::collections::HashSet;
use wa_core::{CostParams, Traffic};

/// Where a node's operands live, controlling which boundaries a network
/// transfer also crosses (paper Models 2.1 / 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Staging {
    /// Operands staged in L2 (DRAM): network transfers touch only L2.
    L2,
    /// Operands staged in L3 (NVM): every send reads L3, every receive
    /// writes L3.
    L3,
}

/// Per-node traffic counters (words and messages per boundary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    pub net_send_words: u64,
    pub net_send_msgs: u64,
    pub net_recv_words: u64,
    pub net_recv_msgs: u64,
    /// L3 → L2 (NVM read).
    pub l3_read_words: u64,
    pub l3_read_msgs: u64,
    /// L2 → L3 (NVM write).
    pub l3_write_words: u64,
    pub l3_write_msgs: u64,
    /// L2 → L1.
    pub l2_read_words: u64,
    pub l2_read_msgs: u64,
    /// L1 → L2.
    pub l2_write_words: u64,
    pub l2_write_msgs: u64,
    pub flops: u64,
}

impl NodeCounters {
    /// Interprocessor words (max of send/recv, the usual critical-path
    /// measure for balanced algorithms).
    pub fn net_words(&self) -> u64 {
        self.net_send_words.max(self.net_recv_words)
    }

    /// Time under `cost` (network counted once at the max of send/recv).
    pub fn time(&self, c: &CostParams) -> f64 {
        let net_msgs = self.net_send_msgs.max(self.net_recv_msgs) as f64;
        c.alpha_nw * net_msgs
            + c.beta_nw * self.net_words() as f64
            + c.alpha_32 * self.l3_read_msgs as f64
            + c.beta_32 * self.l3_read_words as f64
            + c.alpha_23 * self.l3_write_msgs as f64
            + c.beta_23 * self.l3_write_words as f64
            + c.alpha_21 * self.l2_read_msgs as f64
            + c.beta_21 * self.l2_read_words as f64
            + c.alpha_12 * self.l2_write_msgs as f64
            + c.beta_12 * self.l2_write_words as f64
    }
}

impl std::ops::AddAssign for NodeCounters {
    fn add_assign(&mut self, o: NodeCounters) {
        self.net_send_words += o.net_send_words;
        self.net_send_msgs += o.net_send_msgs;
        self.net_recv_words += o.net_recv_words;
        self.net_recv_msgs += o.net_recv_msgs;
        self.l3_read_words += o.l3_read_words;
        self.l3_read_msgs += o.l3_read_msgs;
        self.l3_write_words += o.l3_write_words;
        self.l3_write_msgs += o.l3_write_msgs;
        self.l2_read_words += o.l2_read_words;
        self.l2_read_msgs += o.l2_read_msgs;
        self.l2_write_words += o.l2_write_words;
        self.l2_write_msgs += o.l2_write_msgs;
        self.flops += o.flops;
    }
}

/// Which per-rank measurement substrate rides along with the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimKind {
    /// A [`MemSim`] cache hierarchy per rank (node-local NVM backing).
    Simmed,
    /// Word-granular trace statistics per rank.
    Traced,
    /// A single-pass Mattson [`StackSim`] per rank (capacity curves).
    Stack,
}

/// Per-rank replay statistics for the `traced` backend.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Words accessed (loads + stores).
    pub words: u64,
    /// Words stored.
    pub writes: u64,
    lines: HashSet<u64>,
}

impl TraceStats {
    /// Distinct cache lines touched (the rank's footprint in lines).
    pub fn distinct_lines(&self) -> u64 {
        self.lines.len() as u64
    }
}

enum RankSim {
    Simmed(Box<MemSim>),
    Traced(Box<TraceStats>),
    Stack(Box<StackSim>),
}

/// The machine: `p` nodes of counters plus the cost parameters, and
/// optionally one simulator per rank (see [`Machine::with_sims`]).
pub struct Machine {
    pub cost: CostParams,
    nodes: Vec<NodeCounters>,
    /// One entry per rank when simulating; empty for counters-only runs.
    sims: Vec<RankSim>,
    /// Per-rank level capacities, fastest first (simmed/stack).
    caps: Vec<usize>,
    /// Symmetric bump-allocator top (words). Every rank shares one layout.
    heap: usize,
}

impl Machine {
    pub fn new(p: usize, cost: CostParams) -> Self {
        Machine {
            cost,
            nodes: vec![NodeCounters::default(); p],
            sims: Vec::new(),
            caps: Vec::new(),
            heap: 0,
        }
    }

    /// A machine whose `p` ranks each carry a private simulator of `kind`.
    /// `caps` are the per-rank cache capacities in words, fastest first;
    /// the backing store below the last level is the rank's node-local
    /// NVM. `traced` ignores `caps`; `stack` uses `caps[0]` as the
    /// capacity its curve is projected at by the report layer.
    pub fn with_sims(p: usize, cost: CostParams, kind: SimKind, caps: &[usize]) -> Self {
        let sims = (0..p)
            .map(|_| match kind {
                SimKind::Simmed => RankSim::Simmed(Box::new(MemSim::stacked_lru(caps))),
                SimKind::Traced => RankSim::Traced(Box::default()),
                SimKind::Stack => RankSim::Stack(Box::new(StackSim::new())),
            })
            .collect();
        Machine {
            cost,
            nodes: vec![NodeCounters::default(); p],
            sims,
            caps: caps.to_vec(),
            heap: 0,
        }
    }

    /// The simulator kind attached per rank, if any.
    pub fn sim_kind(&self) -> Option<SimKind> {
        self.sims.first().map(|s| match s {
            RankSim::Simmed(_) => SimKind::Simmed,
            RankSim::Traced(_) => SimKind::Traced,
            RankSim::Stack(_) => SimKind::Stack,
        })
    }

    pub fn has_sims(&self) -> bool {
        !self.sims.is_empty()
    }

    /// Per-rank cache capacities (fastest first; empty for traced).
    pub fn rank_caps(&self) -> &[usize] {
        &self.caps
    }

    /// Allocate `words` of rank-local storage in *every* rank's private
    /// address space (the algorithms here are symmetric: all ranks hold
    /// congruent buffers). Line-aligned so staged block transfers map to
    /// whole-line simulator traffic. Valid — and cheap — without sims, so
    /// kernels can allocate unconditionally.
    pub fn alloc(&mut self, words: usize) -> usize {
        let addr = self.heap;
        self.heap += words.div_ceil(LINE_WORDS) * LINE_WORDS;
        addr
    }

    /// Replay a read of `[addr, addr + words)` on `rank`'s simulator.
    pub fn sim_read(&mut self, rank: usize, addr: usize, words: usize) {
        if words == 0 {
            return;
        }
        match self.sims.get_mut(rank) {
            None => {}
            Some(RankSim::Simmed(sim)) => sim.read_range(addr, words),
            Some(RankSim::Stack(sim)) => sim.read_range(addr, words),
            Some(RankSim::Traced(t)) => {
                t.words += words as u64;
                let lw = LINE_WORDS as u64;
                for line in addr as u64 / lw..=(addr + words - 1) as u64 / lw {
                    t.lines.insert(line);
                }
            }
        }
    }

    /// Replay a write of `[addr, addr + words)` on `rank`'s simulator.
    pub fn sim_write(&mut self, rank: usize, addr: usize, words: usize) {
        if words == 0 {
            return;
        }
        match self.sims.get_mut(rank) {
            None => {}
            Some(RankSim::Simmed(sim)) => sim.write_range(addr, words),
            Some(RankSim::Stack(sim)) => sim.write_range(addr, words),
            Some(RankSim::Traced(t)) => {
                t.words += words as u64;
                t.writes += words as u64;
                let lw = LINE_WORDS as u64;
                for line in addr as u64 / lw..=(addr + words - 1) as u64 / lw {
                    t.lines.insert(line);
                }
            }
        }
    }

    /// Persist `[addr, addr + words)` from `rank`'s caches to its
    /// node-local NVM ([`MemSim::writeback_range`]). This is how the
    /// simulated backends observe the explicit model's L2→L3 charges: an
    /// NVM-staged receive or an output-block store is a write into cache
    /// *plus* a write-back of exactly those lines. No-op for traced
    /// (traces carry no dirtiness) and stack (its projection uses flushed
    /// semantics by construction).
    pub fn sim_writeback(&mut self, rank: usize, addr: usize, words: usize) {
        if let Some(RankSim::Simmed(sim)) = self.sims.get_mut(rank) {
            sim.writeback_range(addr, words);
        }
    }

    /// A [`Mem`] view of `rank`'s simulator, for replaying local compute
    /// through the same trait the sequential kernels use. Replay-only:
    /// loads return 0.0 and stores discard values — the numerics live in
    /// the algorithms' global matrices (verified against the sequential
    /// reference); only the access stream is observed here.
    pub fn rank_mem(&mut self, rank: usize) -> RankMem<'_> {
        RankMem { m: self, rank }
    }

    /// `rank`'s simulated boundary traffic, fastest boundary first; the
    /// last entry is LLC↔NVM. Line-granular, same projection as
    /// `memsim_report`. `None` unless the rank runs a `Simmed` simulator.
    pub fn sim_boundaries_of(&self, rank: usize) -> Option<Vec<Traffic>> {
        let RankSim::Simmed(sim) = self.sims.get(rank)? else {
            return None;
        };
        let n = sim.num_levels();
        let lw = sim.line_words() as u64;
        Some(
            (0..n)
                .map(|i| {
                    if i + 1 == n {
                        Traffic {
                            load_words: sim.dram_reads_lines * lw,
                            load_msgs: sim.dram_reads_lines,
                            store_words: sim.dram_writes_lines * lw,
                            store_msgs: sim.dram_writes_lines,
                        }
                    } else {
                        let c = sim.counters(i);
                        let wb = c.victims_m + c.flush_victims_m;
                        Traffic {
                            load_words: c.fills * lw,
                            load_msgs: c.fills,
                            store_words: wb * lw,
                            store_msgs: wb,
                        }
                    }
                })
                .collect(),
        )
    }

    /// Componentwise max of [`Machine::sim_boundaries_of`] over all ranks
    /// — the critical-path fold, matching [`Machine::max_counters`].
    pub fn sim_boundaries(&self) -> Option<Vec<Traffic>> {
        let mut out: Option<Vec<Traffic>> = None;
        for rank in 0..self.p() {
            let b = self.sim_boundaries_of(rank)?;
            match &mut out {
                None => out = Some(b),
                Some(acc) => {
                    for (a, t) in acc.iter_mut().zip(&b) {
                        a.load_words = a.load_words.max(t.load_words);
                        a.load_msgs = a.load_msgs.max(t.load_msgs);
                        a.store_words = a.store_words.max(t.store_words);
                        a.store_msgs = a.store_msgs.max(t.store_msgs);
                    }
                }
            }
        }
        out
    }

    /// `rank`'s trace statistics (`Traced` sims only).
    pub fn trace_stats_of(&self, rank: usize) -> Option<&TraceStats> {
        match self.sims.get(rank)? {
            RankSim::Traced(t) => Some(t),
            _ => None,
        }
    }

    /// Max-per-rank `(words, writes, distinct_lines)` of the traced
    /// replay (each component maxed independently, the critical-path
    /// convention).
    pub fn max_trace_stats(&self) -> Option<(u64, u64, u64)> {
        let mut out = None;
        for rank in 0..self.p() {
            let t = self.trace_stats_of(rank)?;
            let (w, s, l) = out.unwrap_or((0, 0, 0));
            out = Some((w.max(t.words), s.max(t.writes), l.max(t.distinct_lines())));
        }
        out
    }

    /// The critical rank's stack simulator: the rank whose projected
    /// write-backs (then fills) at `caps[0]` are largest, lowest rank on
    /// ties — deterministic, and for the symmetric algorithms here every
    /// rank's curve is identical anyway.
    pub fn stack_critical(&self) -> Option<(usize, &StackSim)> {
        let cap = *self.caps.first()? as u64;
        let mut best: Option<(usize, &StackSim, u64, u64)> = None;
        for (rank, s) in self.sims.iter().enumerate() {
            let RankSim::Stack(sim) = s else {
                return None;
            };
            let p = sim.curve().at(cap);
            let key = (p.dram_writes_lines(), p.fills);
            if best.as_ref().is_none_or(|(_, _, wb, f)| key > (*wb, *f)) {
                best = Some((rank, sim, key.0, key.1));
            }
        }
        best.map(|(rank, sim, _, _)| (rank, sim))
    }

    pub fn p(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, i: usize) -> &NodeCounters {
        &self.nodes[i]
    }

    pub fn node_mut(&mut self, i: usize) -> &mut NodeCounters {
        &mut self.nodes[i]
    }

    /// Charge a point-to-point transfer of `words` from `src` to `dst`
    /// with the given staging at each end. `src_addr`/`dst_addr` name the
    /// payload buffers in each rank's private address space: the sender
    /// replays a read of its buffer, the receiver replays the landing
    /// write ("charge what the network delivers"), and an L3-staged
    /// receive additionally persists the landed lines to NVM — exactly
    /// the words the counter model charges.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        src: usize,
        dst: usize,
        words: u64,
        src_at: Staging,
        dst_at: Staging,
        src_addr: usize,
        dst_addr: usize,
    ) {
        {
            let s = &mut self.nodes[src];
            if src_at == Staging::L3 {
                s.l3_read_words += words;
                s.l3_read_msgs += 1;
            }
            s.net_send_words += words;
            s.net_send_msgs += 1;
        }
        {
            let d = &mut self.nodes[dst];
            d.net_recv_words += words;
            d.net_recv_msgs += 1;
            if dst_at == Staging::L3 {
                d.l3_write_words += words;
                d.l3_write_msgs += 1;
            }
        }
        if self.has_sims() {
            self.sim_read(src, src_addr, words as usize);
            self.sim_write(dst, dst_addr, words as usize);
            if dst_at == Staging::L3 {
                self.sim_writeback(dst, dst_addr, words as usize);
            }
        }
    }

    /// Charge node `i` for an NVM read of `words` (L3 → L2).
    pub fn l3_read(&mut self, i: usize, words: u64) {
        let n = &mut self.nodes[i];
        n.l3_read_words += words;
        n.l3_read_msgs += 1;
    }

    /// Charge node `i` for an NVM write of `words` (L2 → L3).
    pub fn l3_write(&mut self, i: usize, words: u64) {
        let n = &mut self.nodes[i];
        n.l3_write_words += words;
        n.l3_write_msgs += 1;
    }

    /// [`Machine::l3_read`] plus the simulator replay: `rank` reads
    /// `[addr, addr + words)` of NVM-resident data into cache.
    pub fn l3_read_at(&mut self, i: usize, addr: usize, words: u64) {
        self.l3_read(i, words);
        self.sim_read(i, addr, words as usize);
    }

    /// [`Machine::l3_write`] plus the simulator replay: `rank` stores
    /// `[addr, addr + words)` and persists it to NVM. The store + clwb
    /// pair makes the simulated NVM cost exact by construction: the lines
    /// just dirtied are precisely the lines written back, so the
    /// simulator charges the same `words` the counter model does
    /// (line-aligned buffers assumed — [`Machine::alloc`] guarantees it).
    pub fn l3_write_at(&mut self, i: usize, addr: usize, words: u64) {
        self.l3_write(i, words);
        self.sim_write(i, addr, words as usize);
        self.sim_writeback(i, addr, words as usize);
    }

    /// Charge node `i` for materializing `words` of final output at
    /// `addr` to its slow level (NVM). Every distributed algorithm must
    /// write its share of the result to slow memory — the paper's trivial
    /// lower bound `W1 ≥ n²/P` counts exactly this traffic — so assembly
    /// is charged regardless of where intermediate operands were staged.
    /// Algorithms whose last writing action already put the final block
    /// in NVM (summa-ool2's tile stores, LU's in-place block writes) must
    /// not call this as well.
    pub fn assemble_output(&mut self, i: usize, addr: usize, words: u64) {
        self.l3_write_at(i, addr, words);
    }

    /// Words allocated per rank so far (diagnostics; the simmed caps must
    /// dominate this for the no-capacity-eviction exactness argument).
    pub fn heap_words(&self) -> usize {
        self.heap
    }

    /// Charge node `i` for a local GEMM of shape `m×k×l` run with the
    /// sequential WA algorithm on an L1 of `m1` words: L2→L1 reads
    /// `ml + 2mkl/√(M1/3)`, L1→L2 writes `ml` (Algorithm 1's counts).
    pub fn local_wa_gemm(&mut self, i: usize, m: u64, k: u64, l: u64, m1: u64) {
        let b = (((m1 / 3) as f64).sqrt().floor() as u64).max(1);
        let n = &mut self.nodes[i];
        let reads = m * l + 2 * m * k * l / b;
        n.l2_read_words += reads;
        n.l2_read_msgs += reads / b.max(1) + 1;
        n.l2_write_words += m * l;
        n.l2_write_msgs += m * l / b.max(1) + 1;
        n.flops += 2 * m * k * l;
    }

    /// Max per-node counters (the critical-path aggregate).
    pub fn max_counters(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out.net_send_words = out.net_send_words.max(n.net_send_words);
            out.net_send_msgs = out.net_send_msgs.max(n.net_send_msgs);
            out.net_recv_words = out.net_recv_words.max(n.net_recv_words);
            out.net_recv_msgs = out.net_recv_msgs.max(n.net_recv_msgs);
            out.l3_read_words = out.l3_read_words.max(n.l3_read_words);
            out.l3_read_msgs = out.l3_read_msgs.max(n.l3_read_msgs);
            out.l3_write_words = out.l3_write_words.max(n.l3_write_words);
            out.l3_write_msgs = out.l3_write_msgs.max(n.l3_write_msgs);
            out.l2_read_words = out.l2_read_words.max(n.l2_read_words);
            out.l2_read_msgs = out.l2_read_msgs.max(n.l2_read_msgs);
            out.l2_write_words = out.l2_write_words.max(n.l2_write_words);
            out.l2_write_msgs = out.l2_write_msgs.max(n.l2_write_msgs);
            out.flops = out.flops.max(n.flops);
        }
        out
    }

    /// Total counters across all nodes.
    pub fn total_counters(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out += *n;
        }
        out
    }

    /// Critical-path time estimate under this machine's cost parameters.
    pub fn critical_time(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.time(&self.cost))
            .fold(0.0, f64::max)
    }
}

/// A [`Mem`] view of one rank's simulator ([`Machine::rank_mem`]).
/// Replay-only: loads yield 0.0 and stores discard values; only the
/// address stream reaches the simulator.
pub struct RankMem<'a> {
    m: &'a mut Machine,
    rank: usize,
}

impl Mem for RankMem<'_> {
    fn ld(&mut self, addr: usize) -> f64 {
        self.m.sim_read(self.rank, addr, 1);
        0.0
    }

    fn st(&mut self, addr: usize, _v: f64) {
        self.m.sim_write(self.rank, addr, 1);
    }

    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        self.m.sim_read(self.rank, addr, out.len());
        out.fill(0.0);
    }

    fn st_run(&mut self, addr: usize, src: &[f64]) {
        self.m.sim_write(self.rank, addr, src.len());
    }

    fn len(&self) -> usize {
        self.m.heap
    }

    fn phase(&mut self, name: &'static str) {
        if let Some(RankSim::Simmed(sim)) = self.m.sims.get_mut(self.rank) {
            sim.phase(name);
        }
    }
}

/// Replay the access stream of a local row-major GEMM
/// `C[mb×nb] += A[mb×kb] · B[kb×nb]` (buffers at base addresses `a`,
/// `b`, `c`) through `mem` as line-friendly row runs: per output row,
/// read the A row and the C row, stream the B rows, write the C row
/// back. Values are immaterial — this drives the per-rank cache
/// simulation of compute the counter model only charges in closed form.
pub fn replay_gemm<M: Mem>(
    mem: &mut M,
    a: usize,
    b: usize,
    c: usize,
    mb: usize,
    kb: usize,
    nb: usize,
) {
    let mut scratch = vec![0.0; kb.max(nb)];
    for i in 0..mb {
        mem.ld_run(a + i * kb, &mut scratch[..kb]);
        mem.ld_run(c + i * nb, &mut scratch[..nb]);
        for k in 0..kb {
            mem.ld_run(b + k * nb, &mut scratch[..nb]);
        }
        mem.st_run(c + i * nb, &scratch[..nb]);
    }
}

/// Replay an in-place read-modify-write sweep over a `b×b` row-major
/// block at `addr` (diagonal factorizations and TRSMs: every row is read
/// and rewritten).
pub fn replay_block_rw<M: Mem>(mem: &mut M, addr: usize, b: usize) {
    let mut scratch = vec![0.0; b];
    for r in 0..b {
        mem.ld_run(addr + r * b, &mut scratch);
        mem.st_run(addr + r * b, &scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_charges_both_ends() {
        let mut m = Machine::new(4, CostParams::nvm_cluster());
        m.transfer(0, 3, 100, Staging::L2, Staging::L3, 0, 0);
        assert_eq!(m.node(0).net_send_words, 100);
        assert_eq!(m.node(0).l3_read_words, 0);
        assert_eq!(m.node(3).net_recv_words, 100);
        assert_eq!(m.node(3).l3_write_words, 100);
        assert_eq!(m.node(1).net_send_words, 0);
    }

    #[test]
    fn l3_staged_send_reads_nvm() {
        let mut m = Machine::new(2, CostParams::nvm_cluster());
        m.transfer(0, 1, 50, Staging::L3, Staging::L2, 0, 0);
        assert_eq!(m.node(0).l3_read_words, 50);
        assert_eq!(m.node(1).l3_write_words, 0);
    }

    #[test]
    fn alloc_is_line_aligned_and_symmetric() {
        let mut m = Machine::new(2, CostParams::nvm_cluster());
        let a = m.alloc(5); // rounds to one 8-word line
        let b = m.alloc(16);
        assert_eq!(a, 0);
        assert_eq!(b, 8);
        assert_eq!(m.heap_words(), 24);
    }

    #[test]
    fn l3_staged_transfer_routes_payload_through_receiver_sim() {
        let mut m = Machine::with_sims(2, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(64);
        m.transfer(0, 1, 64, Staging::L2, Staging::L3, buf, buf);
        // Receiver persisted exactly the delivered lines to its NVM.
        let b1 = m.sim_boundaries_of(1).unwrap();
        assert_eq!(b1.last().unwrap().store_words, 64);
        // Sender only read: no NVM stores on rank 0.
        let b0 = m.sim_boundaries_of(0).unwrap();
        assert_eq!(b0.last().unwrap().store_words, 0);
    }

    #[test]
    fn l2_staged_receive_is_not_written_to_nvm() {
        let mut m = Machine::with_sims(2, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(64);
        m.transfer(0, 1, 64, Staging::L2, Staging::L2, buf, buf);
        let b1 = m.sim_boundaries_of(1).unwrap();
        assert_eq!(b1.last().unwrap().store_words, 0);
    }

    #[test]
    fn l3_write_at_charges_counters_and_sim_identically() {
        let mut m = Machine::with_sims(1, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(144);
        m.l3_write_at(0, buf, 144);
        m.l3_write_at(0, buf, 144); // rewrite: charged again on both sides
        assert_eq!(m.node(0).l3_write_words, 288);
        let b = m.sim_boundaries_of(0).unwrap();
        assert_eq!(b.last().unwrap().store_words, 288);
    }

    #[test]
    fn traced_ranks_tally_words_writes_and_lines() {
        let mut m = Machine::with_sims(2, CostParams::nvm_cluster(), SimKind::Traced, &[]);
        let buf = m.alloc(32);
        m.sim_write(0, buf, 32);
        m.sim_read(0, buf, 32);
        m.sim_read(1, buf, 8);
        let t0 = m.trace_stats_of(0).unwrap();
        assert_eq!((t0.words, t0.writes, t0.distinct_lines()), (64, 32, 4));
        assert_eq!(m.max_trace_stats(), Some((64, 32, 4)));
    }

    #[test]
    fn stack_critical_prefers_the_writeheavy_rank() {
        let mut m = Machine::with_sims(2, CostParams::nvm_cluster(), SimKind::Stack, &[1 << 10]);
        let buf = m.alloc(128);
        m.sim_read(0, buf, 128);
        m.sim_write(1, buf, 128);
        let (rank, _) = m.stack_critical().unwrap();
        assert_eq!(rank, 1);
    }

    #[test]
    fn counters_only_machine_ignores_sim_calls() {
        let mut m = Machine::new(2, CostParams::nvm_cluster());
        let buf = m.alloc(64);
        m.sim_write(0, buf, 64);
        m.sim_writeback(0, buf, 64);
        assert!(m.sim_boundaries().is_none());
        assert!(m.max_trace_stats().is_none());
        assert!(m.stack_critical().is_none());
    }

    #[test]
    fn local_gemm_matches_algorithm1_counts() {
        let mut m = Machine::new(1, CostParams::nvm_cluster());
        m.local_wa_gemm(0, 12, 12, 12, 48); // b = 4
        let n = m.node(0);
        assert_eq!(n.l2_read_words, 144 + 2 * 12 * 12 * 12 / 4);
        assert_eq!(n.l2_write_words, 144);
        assert_eq!(n.flops, 2 * 12 * 12 * 12);
    }

    #[test]
    fn critical_time_is_max_not_sum() {
        let cost = CostParams::symmetric(1.0, 0.0, 1, 2, 3);
        let mut m = Machine::new(2, cost);
        m.node_mut(0).net_send_words = 10;
        m.node_mut(1).net_send_words = 30;
        assert_eq!(m.critical_time(), 30.0);
    }

    #[test]
    fn nvm_write_dominates_time_under_asymmetric_costs() {
        let cost = CostParams::nvm_cluster();
        let mut m = Machine::new(1, cost);
        m.node_mut(0).l3_write_words = 1000;
        let t_write = m.critical_time();
        let mut m2 = Machine::new(1, cost);
        m2.node_mut(0).l3_read_words = 1000;
        let t_read = m2.critical_time();
        assert!(t_write > 5.0 * t_read);
    }
}
