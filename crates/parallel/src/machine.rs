//! Event-counting distributed machine.
//!
//! Each node carries counters for the five boundaries of Figure 1's
//! architecture: network send/receive (attached to L2), L3↔L2 (NVM read /
//! NVM write), and L2↔L1. Algorithms charge counters as they move real
//! data; [`Machine::critical_time`] folds the *maximum* per-node counters
//! through a [`wa_core::CostParams`] — the critical-path convention of the
//! communication-avoiding literature.

use wa_core::CostParams;

/// Where a node's operands live, controlling which boundaries a network
/// transfer also crosses (paper Models 2.1 / 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Staging {
    /// Operands staged in L2 (DRAM): network transfers touch only L2.
    L2,
    /// Operands staged in L3 (NVM): every send reads L3, every receive
    /// writes L3.
    L3,
}

/// Per-node traffic counters (words and messages per boundary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    pub net_send_words: u64,
    pub net_send_msgs: u64,
    pub net_recv_words: u64,
    pub net_recv_msgs: u64,
    /// L3 → L2 (NVM read).
    pub l3_read_words: u64,
    pub l3_read_msgs: u64,
    /// L2 → L3 (NVM write).
    pub l3_write_words: u64,
    pub l3_write_msgs: u64,
    /// L2 → L1.
    pub l2_read_words: u64,
    pub l2_read_msgs: u64,
    /// L1 → L2.
    pub l2_write_words: u64,
    pub l2_write_msgs: u64,
    pub flops: u64,
}

impl NodeCounters {
    /// Interprocessor words (max of send/recv, the usual critical-path
    /// measure for balanced algorithms).
    pub fn net_words(&self) -> u64 {
        self.net_send_words.max(self.net_recv_words)
    }

    /// Time under `cost` (network counted once at the max of send/recv).
    pub fn time(&self, c: &CostParams) -> f64 {
        let net_msgs = self.net_send_msgs.max(self.net_recv_msgs) as f64;
        c.alpha_nw * net_msgs
            + c.beta_nw * self.net_words() as f64
            + c.alpha_32 * self.l3_read_msgs as f64
            + c.beta_32 * self.l3_read_words as f64
            + c.alpha_23 * self.l3_write_msgs as f64
            + c.beta_23 * self.l3_write_words as f64
            + c.alpha_21 * self.l2_read_msgs as f64
            + c.beta_21 * self.l2_read_words as f64
            + c.alpha_12 * self.l2_write_msgs as f64
            + c.beta_12 * self.l2_write_words as f64
    }
}

impl std::ops::AddAssign for NodeCounters {
    fn add_assign(&mut self, o: NodeCounters) {
        self.net_send_words += o.net_send_words;
        self.net_send_msgs += o.net_send_msgs;
        self.net_recv_words += o.net_recv_words;
        self.net_recv_msgs += o.net_recv_msgs;
        self.l3_read_words += o.l3_read_words;
        self.l3_read_msgs += o.l3_read_msgs;
        self.l3_write_words += o.l3_write_words;
        self.l3_write_msgs += o.l3_write_msgs;
        self.l2_read_words += o.l2_read_words;
        self.l2_read_msgs += o.l2_read_msgs;
        self.l2_write_words += o.l2_write_words;
        self.l2_write_msgs += o.l2_write_msgs;
        self.flops += o.flops;
    }
}

/// The machine: `p` nodes of counters plus the cost parameters.
#[derive(Clone, Debug)]
pub struct Machine {
    pub cost: CostParams,
    nodes: Vec<NodeCounters>,
}

impl Machine {
    pub fn new(p: usize, cost: CostParams) -> Self {
        Machine {
            cost,
            nodes: vec![NodeCounters::default(); p],
        }
    }

    pub fn p(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, i: usize) -> &NodeCounters {
        &self.nodes[i]
    }

    pub fn node_mut(&mut self, i: usize) -> &mut NodeCounters {
        &mut self.nodes[i]
    }

    /// Charge a point-to-point transfer of `words` from `src` to `dst`
    /// with the given staging at each end.
    pub fn transfer(
        &mut self,
        src: usize,
        dst: usize,
        words: u64,
        src_at: Staging,
        dst_at: Staging,
    ) {
        {
            let s = &mut self.nodes[src];
            if src_at == Staging::L3 {
                s.l3_read_words += words;
                s.l3_read_msgs += 1;
            }
            s.net_send_words += words;
            s.net_send_msgs += 1;
        }
        let d = &mut self.nodes[dst];
        d.net_recv_words += words;
        d.net_recv_msgs += 1;
        if dst_at == Staging::L3 {
            d.l3_write_words += words;
            d.l3_write_msgs += 1;
        }
    }

    /// Charge node `i` for an NVM read of `words` (L3 → L2).
    pub fn l3_read(&mut self, i: usize, words: u64) {
        let n = &mut self.nodes[i];
        n.l3_read_words += words;
        n.l3_read_msgs += 1;
    }

    /// Charge node `i` for an NVM write of `words` (L2 → L3).
    pub fn l3_write(&mut self, i: usize, words: u64) {
        let n = &mut self.nodes[i];
        n.l3_write_words += words;
        n.l3_write_msgs += 1;
    }

    /// Charge node `i` for materializing `words` of final output to its
    /// slow level (NVM). Every distributed algorithm must write its share
    /// of the result to slow memory — the paper's trivial lower bound
    /// `W1 ≥ n²/P` counts exactly this traffic — so assembly is charged
    /// regardless of where intermediate operands were staged. Algorithms
    /// whose last writing action already put the final block in NVM
    /// (summa-ool2's tile stores, LU's in-place block writes) must not
    /// call this as well.
    pub fn assemble_output(&mut self, i: usize, words: u64) {
        self.l3_write(i, words);
    }

    /// Charge node `i` for a local GEMM of shape `m×k×l` run with the
    /// sequential WA algorithm on an L1 of `m1` words: L2→L1 reads
    /// `ml + 2mkl/√(M1/3)`, L1→L2 writes `ml` (Algorithm 1's counts).
    pub fn local_wa_gemm(&mut self, i: usize, m: u64, k: u64, l: u64, m1: u64) {
        let b = (((m1 / 3) as f64).sqrt().floor() as u64).max(1);
        let n = &mut self.nodes[i];
        let reads = m * l + 2 * m * k * l / b;
        n.l2_read_words += reads;
        n.l2_read_msgs += reads / b.max(1) + 1;
        n.l2_write_words += m * l;
        n.l2_write_msgs += m * l / b.max(1) + 1;
        n.flops += 2 * m * k * l;
    }

    /// Max per-node counters (the critical-path aggregate).
    pub fn max_counters(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out.net_send_words = out.net_send_words.max(n.net_send_words);
            out.net_send_msgs = out.net_send_msgs.max(n.net_send_msgs);
            out.net_recv_words = out.net_recv_words.max(n.net_recv_words);
            out.net_recv_msgs = out.net_recv_msgs.max(n.net_recv_msgs);
            out.l3_read_words = out.l3_read_words.max(n.l3_read_words);
            out.l3_read_msgs = out.l3_read_msgs.max(n.l3_read_msgs);
            out.l3_write_words = out.l3_write_words.max(n.l3_write_words);
            out.l3_write_msgs = out.l3_write_msgs.max(n.l3_write_msgs);
            out.l2_read_words = out.l2_read_words.max(n.l2_read_words);
            out.l2_read_msgs = out.l2_read_msgs.max(n.l2_read_msgs);
            out.l2_write_words = out.l2_write_words.max(n.l2_write_words);
            out.l2_write_msgs = out.l2_write_msgs.max(n.l2_write_msgs);
            out.flops = out.flops.max(n.flops);
        }
        out
    }

    /// Total counters across all nodes.
    pub fn total_counters(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out += *n;
        }
        out
    }

    /// Critical-path time estimate under this machine's cost parameters.
    pub fn critical_time(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.time(&self.cost))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_charges_both_ends() {
        let mut m = Machine::new(4, CostParams::nvm_cluster());
        m.transfer(0, 3, 100, Staging::L2, Staging::L3);
        assert_eq!(m.node(0).net_send_words, 100);
        assert_eq!(m.node(0).l3_read_words, 0);
        assert_eq!(m.node(3).net_recv_words, 100);
        assert_eq!(m.node(3).l3_write_words, 100);
        assert_eq!(m.node(1).net_send_words, 0);
    }

    #[test]
    fn l3_staged_send_reads_nvm() {
        let mut m = Machine::new(2, CostParams::nvm_cluster());
        m.transfer(0, 1, 50, Staging::L3, Staging::L2);
        assert_eq!(m.node(0).l3_read_words, 50);
        assert_eq!(m.node(1).l3_write_words, 0);
    }

    #[test]
    fn local_gemm_matches_algorithm1_counts() {
        let mut m = Machine::new(1, CostParams::nvm_cluster());
        m.local_wa_gemm(0, 12, 12, 12, 48); // b = 4
        let n = m.node(0);
        assert_eq!(n.l2_read_words, 144 + 2 * 12 * 12 * 12 / 4);
        assert_eq!(n.l2_write_words, 144);
        assert_eq!(n.flops, 2 * 12 * 12 * 12);
    }

    #[test]
    fn critical_time_is_max_not_sum() {
        let cost = CostParams::symmetric(1.0, 0.0, 1, 2, 3);
        let mut m = Machine::new(2, cost);
        m.node_mut(0).net_send_words = 10;
        m.node_mut(1).net_send_words = 30;
        assert_eq!(m.critical_time(), 30.0);
    }

    #[test]
    fn nvm_write_dominates_time_under_asymmetric_costs() {
        let cost = CostParams::nvm_cluster();
        let mut m = Machine::new(1, cost);
        m.node_mut(0).l3_write_words = 1000;
        let t_write = m.critical_time();
        let mut m2 = Machine::new(1, cost);
        m2.node_mut(0).l3_read_words = 1000;
        let t_read = m2.critical_time();
        assert!(t_write > 5.0 * t_read);
    }
}
