//! Collective-communication charging helpers.
//!
//! The paper's analyses use simple binomial-tree collectives: a broadcast
//! of `w` words to `k` parties costs each participant up to
//! `log₂(k) · (α + w·β)` (formula (6) et seq.). These helpers charge the
//! counters of every participant accordingly; they do not move numeric
//! data (the algorithms copy blocks themselves, since every node ends
//! with the same value), but when the machine carries per-rank simulators
//! they replay the payload through each participant: the root reads its
//! send buffer per round, every receiver takes the landing write at
//! `buf` — charge what the network delivers — and L3 staging persists
//! the landed lines to node-local NVM, mirroring the counter charges
//! word for word.

use crate::machine::{Machine, Staging};

/// Charge a binomial broadcast of `words` from `root` to `parties`
/// (inclusive of the root). Every non-root receives once; internal tree
/// nodes forward. We charge the worst-case participant: `ceil(log2 k)`
/// rounds of send + receive of `words`, staged per `at`. `buf` is the
/// payload buffer address in each rank's private address space.
pub fn charge_bcast(
    m: &mut Machine,
    root: usize,
    parties: &[usize],
    words: u64,
    at: Staging,
    buf: usize,
) {
    let k = parties.len();
    if k <= 1 || words == 0 {
        return;
    }
    let rounds = (k as f64).log2().ceil() as u64;
    for &p in parties {
        let n = m.node_mut(p);
        if p == root {
            n.net_send_words += words * rounds;
            n.net_send_msgs += rounds;
            if at == Staging::L3 {
                n.l3_read_words += words * rounds;
                n.l3_read_msgs += rounds;
            }
            for _ in 0..rounds {
                m.sim_read(p, buf, words as usize);
            }
        } else {
            n.net_recv_words += words;
            n.net_recv_msgs += 1;
            // Interior tree nodes forward; charge one forwarding send to
            // be conservative about the critical path.
            n.net_send_words += words;
            n.net_send_msgs += 1;
            if at == Staging::L3 {
                n.l3_write_words += words;
                n.l3_write_msgs += 1;
            }
            // The payload lands in the receiver's cache; the forward
            // re-reads it. L3 staging persists exactly the landed lines.
            m.sim_write(p, buf, words as usize);
            if at == Staging::L3 {
                m.sim_writeback(p, buf, words as usize);
            }
            m.sim_read(p, buf, words as usize);
        }
    }
}

/// Charge a binomial reduction of `words` from `parties` to `root`
/// (element-wise combine). Mirror image of broadcast; `buf` is each
/// rank's partial-result buffer.
pub fn charge_reduce(
    m: &mut Machine,
    root: usize,
    parties: &[usize],
    words: u64,
    at: Staging,
    buf: usize,
) {
    let k = parties.len();
    if k <= 1 || words == 0 {
        return;
    }
    let rounds = (k as f64).log2().ceil() as u64;
    for &p in parties {
        let n = m.node_mut(p);
        if p == root {
            n.net_recv_words += words * rounds;
            n.net_recv_msgs += rounds;
            if at == Staging::L3 {
                n.l3_write_words += words;
                n.l3_write_msgs += 1;
            }
            // Each round combines an arriving partial into the local
            // accumulator; only the final result is persisted under L3
            // staging (the counter model charges exactly one NVM write).
            for _ in 0..rounds {
                m.sim_read(p, buf, words as usize);
                m.sim_write(p, buf, words as usize);
            }
            if at == Staging::L3 {
                m.sim_writeback(p, buf, words as usize);
            }
        } else {
            n.net_send_words += words;
            n.net_send_msgs += 1;
            n.net_recv_words += words;
            n.net_recv_msgs += 1;
            if at == Staging::L3 {
                n.l3_read_words += words;
                n.l3_read_msgs += 1;
            }
            // Combine an incoming partial with the local one, send on.
            m.sim_write(p, buf, words as usize);
            m.sim_read(p, buf, words as usize);
        }
    }
}

/// Charge a gather of one `words`-sized contribution from each party to
/// `root` (paper's 2.5D step 1: `c` messages of size `2n²/P` each).
/// `buf` names both the sender's shard and the root's landing buffer.
pub fn charge_gather(
    m: &mut Machine,
    root: usize,
    parties: &[usize],
    words_each: u64,
    at: Staging,
    buf: usize,
) {
    for &p in parties {
        if p == root {
            continue;
        }
        m.transfer(p, root, words_each, at, at, buf, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimKind;
    use wa_core::CostParams;

    #[test]
    fn bcast_charges_log_rounds_at_root() {
        let mut m = Machine::new(8, CostParams::nvm_cluster());
        let parties: Vec<usize> = (0..8).collect();
        charge_bcast(&mut m, 0, &parties, 100, Staging::L2, 0);
        assert_eq!(m.node(0).net_send_words, 300); // log2(8) = 3 rounds
        assert_eq!(m.node(5).net_recv_words, 100);
        assert_eq!(m.node(5).l3_write_words, 0);
    }

    #[test]
    fn l3_staged_bcast_touches_nvm() {
        let mut m = Machine::new(4, CostParams::nvm_cluster());
        let parties: Vec<usize> = (0..4).collect();
        charge_bcast(&mut m, 0, &parties, 10, Staging::L3, 0);
        assert_eq!(m.node(0).l3_read_words, 20); // 2 rounds
        assert_eq!(m.node(3).l3_write_words, 10);
    }

    #[test]
    fn reduce_mirrors_bcast() {
        let mut m = Machine::new(8, CostParams::nvm_cluster());
        let parties: Vec<usize> = (0..8).collect();
        charge_reduce(&mut m, 2, &parties, 64, Staging::L2, 0);
        assert_eq!(m.node(2).net_recv_words, 192);
        assert_eq!(m.node(0).net_send_words, 64);
    }

    #[test]
    fn gather_transfers_from_each_party() {
        let mut m = Machine::new(4, CostParams::nvm_cluster());
        charge_gather(&mut m, 1, &[0, 1, 2, 3], 25, Staging::L2, 0);
        assert_eq!(m.node(1).net_recv_words, 75);
        assert_eq!(m.node(1).net_recv_msgs, 3);
        assert_eq!(m.node(0).net_send_words, 25);
    }

    #[test]
    fn empty_or_single_party_is_noop() {
        let mut m = Machine::new(2, CostParams::nvm_cluster());
        charge_bcast(&mut m, 0, &[0], 100, Staging::L2, 0);
        assert_eq!(m.node(0).net_send_words, 0);
    }

    /// The simulated NVM stores of an L3-staged collective must equal the
    /// counter model's charges on every rank.
    #[test]
    fn l3_staged_bcast_sim_nvm_stores_match_counters() {
        let mut m = Machine::with_sims(4, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(64);
        let parties: Vec<usize> = (0..4).collect();
        charge_bcast(&mut m, 0, &parties, 64, Staging::L3, buf);
        for p in 0..4 {
            let sim_stores = m.sim_boundaries_of(p).unwrap().last().unwrap().store_words;
            assert_eq!(
                sim_stores,
                m.node(p).l3_write_words,
                "rank {p}: sim vs explicit NVM stores"
            );
        }
    }

    #[test]
    fn l3_staged_reduce_sim_nvm_stores_match_counters() {
        let mut m = Machine::with_sims(8, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(64);
        let parties: Vec<usize> = (0..8).collect();
        charge_reduce(&mut m, 3, &parties, 64, Staging::L3, buf);
        for p in 0..8 {
            let sim_stores = m.sim_boundaries_of(p).unwrap().last().unwrap().store_words;
            assert_eq!(sim_stores, m.node(p).l3_write_words, "rank {p}");
        }
    }

    #[test]
    fn l2_staged_collective_leaves_sim_nvm_clean() {
        let mut m = Machine::with_sims(4, CostParams::nvm_cluster(), SimKind::Simmed, &[1 << 12]);
        let buf = m.alloc(64);
        let parties: Vec<usize> = (0..4).collect();
        charge_bcast(&mut m, 0, &parties, 64, Staging::L2, buf);
        for p in 0..4 {
            let b = m.sim_boundaries_of(p).unwrap();
            assert_eq!(b.last().unwrap().store_words, 0, "rank {p}");
        }
    }
}
