//! # parallel — distributed-memory write-avoiding algorithms
//!
//! Section 7 of the paper: P homogeneous processors, each with a local
//! memory hierarchy (L1, L2 = DRAM, L3 = NVM), network attached to L2
//! (Figure 1). Three data-placement scenarios:
//!
//! * **Model 1** — two local levels, data in L2;
//! * **Model 2.1** — three levels, data fits in L2; NVM is optional extra
//!   capacity that buys a larger 2.5D replication factor;
//! * **Model 2.2** — data only fits in L3; Theorem 4 proves the
//!   interprocessor-word and L3-write lower bounds cannot both be
//!   attained, and two algorithms each attain one:
//!   `2.5DMML3ooL2` (minimal network words) and `SUMMAL3ooL2`
//!   (minimal L3 writes).
//!
//! The [`machine`] module is an *event-counting* simulator: algorithms
//! execute real arithmetic on distributed blocks (verified against
//! sequential references) while charging per-node word/message counters
//! for every boundary; [`costmodel`] provides the paper's closed-form
//! Table 1 / Table 2 expressions the measurements are compared against.

pub mod cannon;
pub mod collectives;
pub mod costmodel;
pub mod lu;
pub mod machine;
pub mod mm25d;
pub mod model1;
pub mod summa;
pub mod workloads;

pub use machine::{Machine, NodeCounters, Staging};
pub use mm25d::{mm25d, Mm25Config};
pub use summa::{summa, summa_l3_ool2};
