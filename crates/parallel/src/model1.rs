//! Model 1 (§7, first scenario): two local levels per node, network
//! attached to the lowest (L2).
//!
//! Using a CA algorithm (SUMMA) for the network plus the WA Algorithm 1
//! locally minimizes network writes, but each of the √P SUMMA steps still
//! writes its `n²/P` C-block contribution from L1 back to L2, so writes to
//! L2 from L1 total `n²/√P` — a factor Θ(√P) above the `W1 = n²/P` lower
//! bound. The bound *is* attainable by hoarding all √P panels in L2 first
//! and multiplying once ([`summa_hoarded`]), at the price of Θ(√P) more L2
//! capacity — the paper's "likely not realistic" trade.

use crate::collectives::charge_bcast;
use crate::machine::{Machine, Staging};
use wa_core::Mat;

/// Outcome of one Model 1 run (per-node maxima, words).
#[derive(Clone, Copy, Debug)]
pub struct Model1Result {
    /// Words written to L2 from the network.
    pub net_recv: u64,
    /// Words written to L2 from L1 (the quantity Model 1 studies).
    pub l2_writes_from_l1: u64,
    /// Peak L2 residency needed by the algorithm (words).
    pub l2_capacity_needed: u64,
    /// The W1 = n²/P lower bound.
    pub w1: u64,
}

/// SUMMA with the local WA Algorithm 1 per step: attains the network
/// bound, exceeds W1 on L1→L2 writes by Θ(√P).
pub fn summa_local_wa(m: &mut Machine, a: &Mat, b: &Mat, q: usize, m1: u64) -> (Mat, Model1Result) {
    let n = a.rows();
    assert_eq!(m.p(), q * q);
    assert!(n.is_multiple_of(q));
    let nb = n / q;
    let c = run_summa_steps(m, a, b, q, m1, false);
    let mc = m.max_counters();
    let res = Model1Result {
        net_recv: mc.net_recv_words,
        l2_writes_from_l1: mc.l2_write_words,
        l2_capacity_needed: (3 * nb * nb) as u64,
        w1: (n * n / (q * q)) as u64,
    };
    (c, res)
}

/// The memory-hungry variant: store *all* received panels in L2 first,
/// then call Algorithm 1 once — attains W1 on L1→L2 writes but needs
/// Θ(n²/√P) words of L2.
pub fn summa_hoarded(m: &mut Machine, a: &Mat, b: &Mat, q: usize, m1: u64) -> (Mat, Model1Result) {
    let n = a.rows();
    assert_eq!(m.p(), q * q);
    assert!(n.is_multiple_of(q));
    let nb = n / q;
    let c = run_summa_steps(m, a, b, q, m1, true);
    let mc = m.max_counters();
    let res = Model1Result {
        net_recv: mc.net_recv_words,
        l2_writes_from_l1: mc.l2_write_words,
        // An nb×n strip of A plus an n×nb strip of B plus the C block.
        l2_capacity_needed: (2 * nb * n + nb * nb) as u64,
        w1: (n * n / (q * q)) as u64,
    };
    (c, res)
}

/// Shared engine: broadcast panels step by step; either multiply each step
/// (`hoard = false`, one local WA GEMM of shape nb×nb×nb per step) or
/// accumulate panels and multiply once at the end (`hoard = true`, one
/// local WA GEMM of shape nb×n×nb).
fn run_summa_steps(m: &mut Machine, a: &Mat, b: &Mat, q: usize, m1: u64, hoard: bool) -> Mat {
    let n = a.rows();
    let nb = n / q;
    let id = |i: usize, j: usize| i * q + j;
    let mut local_c: Vec<Mat> = (0..q * q).map(|_| Mat::zeros(nb, nb)).collect();
    let panel_buf = m.alloc(nb * nb);

    for step in 0..q {
        let ks = step * nb;
        // Row broadcast of A panels, column broadcast of B panels.
        for i in 0..q {
            let parties: Vec<usize> = (0..q).map(|j| id(i, j)).collect();
            charge_bcast(
                m,
                id(i, step),
                &parties,
                (nb * nb) as u64,
                Staging::L2,
                panel_buf,
            );
        }
        for j in 0..q {
            let parties: Vec<usize> = (0..q).map(|i| id(i, j)).collect();
            charge_bcast(
                m,
                id(step, j),
                &parties,
                (nb * nb) as u64,
                Staging::L2,
                panel_buf,
            );
        }
        if !hoard {
            for i in 0..q {
                for j in 0..q {
                    // Arithmetic...
                    gemm_acc(
                        &mut local_c[id(i, j)],
                        a,
                        b,
                        (i * nb, j * nb),
                        (ks, ks + nb),
                    );
                    // ...charged as one local WA GEMM (Algorithm 1 counts).
                    m.local_wa_gemm(id(i, j), nb as u64, nb as u64, nb as u64, m1);
                }
            }
        }
    }
    if hoard {
        for i in 0..q {
            for j in 0..q {
                gemm_acc(&mut local_c[id(i, j)], a, b, (i * nb, j * nb), (0, n));
                m.local_wa_gemm(id(i, j), nb as u64, n as u64, nb as u64, m1);
            }
        }
    }

    let mut c = Mat::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            let blk = &local_c[id(i, j)];
            for r in 0..nb {
                for s in 0..nb {
                    c[(i * nb + r, j * nb + s)] = blk[(r, s)];
                }
            }
        }
    }
    c
}

fn gemm_acc(c: &mut Mat, a: &Mat, b: &Mat, (ci, cj): (usize, usize), (k0, k1): (usize, usize)) {
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let mut acc = c[(i, j)];
            for k in k0..k1 {
                acc += a[(ci + i, k)] * b[(k, cj + j)];
            }
            c[(i, j)] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::CostParams;

    #[test]
    fn both_variants_compute_the_product() {
        let n = 24;
        let a = Mat::random(n, n, 61);
        let b = Mat::random(n, n, 62);
        let want = a.matmul_ref(&b);
        let mut m1 = Machine::new(9, CostParams::nvm_cluster());
        let (c1, _) = summa_local_wa(&mut m1, &a, &b, 3, 48);
        assert!(c1.max_abs_diff(&want) < 1e-10);
        let mut m2 = Machine::new(9, CostParams::nvm_cluster());
        let (c2, _) = summa_hoarded(&mut m2, &a, &b, 3, 48);
        assert!(c2.max_abs_diff(&want) < 1e-10);
    }

    /// The Model 1 gap: per-step local WA writes n²/√P to L2; hoarding
    /// attains W1 = n²/P but needs ~√P× the L2 capacity.
    #[test]
    fn theta_sqrt_p_gap_and_its_price() {
        let n = 64;
        let q = 4; // P = 16
        let a = Mat::random(n, n, 63);
        let b = Mat::random(n, n, 64);
        let mut ma = Machine::new(q * q, CostParams::nvm_cluster());
        let (_, step) = summa_local_wa(&mut ma, &a, &b, q, 1 << 20);
        let mut mb = Machine::new(q * q, CostParams::nvm_cluster());
        let (_, hoard) = summa_hoarded(&mut mb, &a, &b, q, 1 << 20);

        // Per-step variant: q partial writes of the C block.
        assert!(
            step.l2_writes_from_l1 >= (q as u64 - 1) * step.w1,
            "expected ~q×W1, got {} vs W1 {}",
            step.l2_writes_from_l1,
            step.w1
        );
        // Hoarded variant attains W1 (equality: C written once).
        assert_eq!(hoard.l2_writes_from_l1, hoard.w1);
        // Network volume identical (both run SUMMA).
        assert_eq!(step.net_recv, hoard.net_recv);
        // And the price: Θ(√P) more L2 needed.
        assert!(hoard.l2_capacity_needed > (q as u64 / 2) * step.l2_capacity_needed);
    }
}
