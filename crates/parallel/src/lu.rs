//! Parallel LU factorization without pivoting (§7.2): LL-LUNP and RL-LUNP.
//!
//! Model 2.2 setting: the matrix lives in the NVM (L3) of a `√P×√P`
//! block-cyclic grid; L2 holds only a few blocks. The two algorithms sit
//! on opposite sides of the Theorem 4 trade-off:
//!
//! * **LL-LUNP** (left-looking, Algorithm 5): each block of the output is
//!   written to NVM O(1) times (`≈ 2n²/P` per processor), but the already-
//!   computed L/U blocks are re-communicated for every column update —
//!   network volume `Θ(n³ log²P / (P√M2))`.
//! * **RL-LUNP** (right-looking, CALU-style): network volume near the
//!   `O(n²/√P · log P)` lower bound, but the trailing Schur complement is
//!   read from and written back to NVM every step —
//!   `Θ(n² log²P / √P)` NVM writes.
//!
//! Both compute the true factorization (verified against a sequential
//! reference) on a block-cyclic layout; counters are charged per Figure 1's
//! boundaries.

use crate::collectives::charge_bcast;
use crate::machine::{replay_block_rw, replay_gemm, Machine, Staging};
use wa_core::Mat;

/// In-place unblocked LU of `a[d0..d1, d0..d1]`.
fn lu_base(a: &mut Mat, (d0, d1): (usize, usize)) {
    for k in d0..d1 {
        let akk = a[(k, k)];
        assert!(akk.abs() > 1e-300, "zero pivot");
        for i in k + 1..d1 {
            let lik = a[(i, k)] / akk;
            a[(i, k)] = lik;
            for j in k + 1..d1 {
                a[(i, j)] -= lik * a[(k, j)];
            }
        }
    }
}

/// `A[r, c] -= L[r, kk] · U[kk, c]` over block ranges.
fn gemm_sub(a: &mut Mat, r: (usize, usize), c: (usize, usize), kk: (usize, usize)) {
    for i in r.0..r.1 {
        for j in c.0..c.1 {
            let mut acc = a[(i, j)];
            for k in kk.0..kk.1 {
                acc -= a[(i, k)] * a[(k, j)];
            }
            a[(i, j)] = acc;
        }
    }
}

/// Solve `L[d,d]·X = A[d, c]` in place (unit lower-triangular diagonal).
fn trsm_lower_unit(a: &mut Mat, d: (usize, usize), c: (usize, usize)) {
    for j in c.0..c.1 {
        for i in d.0..d.1 {
            let mut acc = a[(i, j)];
            for k in d.0..i {
                acc -= a[(i, k)] * a[(k, j)];
            }
            a[(i, j)] = acc;
        }
    }
}

/// Solve `X·U[d,d] = A[r, d]` in place.
fn trsm_upper_right(a: &mut Mat, r: (usize, usize), d: (usize, usize)) {
    for i in r.0..r.1 {
        for c in d.0..d.1 {
            let mut acc = a[(i, c)];
            for t in d.0..c {
                acc -= a[(i, t)] * a[(t, c)];
            }
            a[(i, c)] = acc / a[(c, c)];
        }
    }
}

/// Which variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LunpVariant {
    LeftLooking,
    RightLooking,
}

/// Block-cyclic owner of block `(bi, bj)` on a `q×q` grid.
fn owner(bi: usize, bj: usize, q: usize) -> usize {
    (bi % q) * q + (bj % q)
}

/// Parallel LU without pivoting on a `q×q` grid (`machine.p() == q²`),
/// block size `b` (`n % b == 0`), data resident in NVM. `a` is overwritten
/// by `L\U`.
pub fn parallel_lu(m: &mut Machine, a: &mut Mat, b: usize, variant: LunpVariant) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert!(n.is_multiple_of(b));
    let nb = n / b;
    let q = (m.p() as f64).sqrt().round() as usize;
    assert_eq!(q * q, m.p(), "machine must be a square grid");
    let bw = (b * b) as u64;
    let rng = |blk: usize| (blk * b, (blk + 1) * b);

    // Symmetric rank-local layout: every rank reserves a slot per block it
    // can own under the cyclic distribution, plus receive buffers for the
    // L/U/diagonal blocks that arrive over the network. Block (bi, bj)
    // lives at the same local offset on whichever rank owns it.
    let slots = nb.div_ceil(q);
    let blk_base = m.alloc(slots * slots * b * b);
    let recv_a = m.alloc(b * b);
    let recv_b = m.alloc(b * b);
    let diag_buf = m.alloc(b * b);
    let addr = |bi: usize, bj: usize| blk_base + ((bi / q) * slots + (bj / q)) * (b * b);

    match variant {
        LunpVariant::RightLooking => {
            for i in 0..nb {
                let od = owner(i, i, q);
                // Factor the diagonal block (read from NVM, write back).
                m.l3_read_at(od, addr(i, i), bw);
                lu_base(a, rng(i));
                if m.has_sims() {
                    let mut mem = m.rank_mem(od);
                    replay_block_rw(&mut mem, addr(i, i), b);
                }
                m.l3_write_at(od, addr(i, i), bw);
                m.node_mut(od).flops += 2 * (b * b * b) as u64 / 3;
                // Broadcast the factored diagonal along its row and column.
                let col_party: Vec<usize> = (0..q).map(|r| owner(r + i, i, q)).collect();
                charge_bcast(m, od, &col_party, bw, Staging::L2, diag_buf);
                let row_party: Vec<usize> = (0..q).map(|c| owner(i, c + i, q)).collect();
                charge_bcast(m, od, &row_party, bw, Staging::L2, diag_buf);
                // Panel TRSMs.
                for j in i + 1..nb {
                    let oj = owner(j, i, q);
                    m.l3_read_at(oj, addr(j, i), bw);
                    trsm_upper_right(a, rng(j), rng(i));
                    if m.has_sims() {
                        let mut mem = m.rank_mem(oj);
                        replay_gemm(&mut mem, diag_buf, diag_buf, addr(j, i), b, b, b);
                    }
                    m.l3_write_at(oj, addr(j, i), bw);
                    m.node_mut(oj).flops += (b * b * b) as u64;
                    let ok = owner(i, j, q);
                    m.l3_read_at(ok, addr(i, j), bw);
                    trsm_lower_unit(a, rng(i), rng(j));
                    if m.has_sims() {
                        let mut mem = m.rank_mem(ok);
                        replay_gemm(&mut mem, diag_buf, diag_buf, addr(i, j), b, b, b);
                    }
                    m.l3_write_at(ok, addr(i, j), bw);
                    m.node_mut(ok).flops += (b * b * b) as u64;
                }
                // Broadcast panels: L(j,i) along row j; U(i,k) along col k.
                for j in i + 1..nb {
                    let parties: Vec<usize> = (0..q).map(|c| owner(j, c, q)).collect();
                    charge_bcast(m, owner(j, i, q), &parties, bw, Staging::L2, recv_a);
                    let parties: Vec<usize> = (0..q).map(|r| owner(r, j, q)).collect();
                    charge_bcast(m, owner(i, j, q), &parties, bw, Staging::L2, recv_b);
                }
                // Trailing update: the write-heavy part (each block read
                // from and written back to NVM every step).
                for j in i + 1..nb {
                    for k in i + 1..nb {
                        let o = owner(j, k, q);
                        m.l3_read_at(o, addr(j, k), bw);
                        gemm_sub(a, rng(j), rng(k), rng(i));
                        if m.has_sims() {
                            let mut mem = m.rank_mem(o);
                            replay_gemm(&mut mem, recv_a, recv_b, addr(j, k), b, b, b);
                        }
                        m.l3_write_at(o, addr(j, k), bw);
                        m.node_mut(o).flops += 2 * (b * b * b) as u64;
                    }
                }
            }
        }
        LunpVariant::LeftLooking => {
            for i in 0..nb {
                // Pull all updates from columns K < i into block column i,
                // top-down, interleaving the U TRSMs (Algorithm 5's loop).
                // Each A(j,i) is accumulated in L2 and written to NVM once.
                for j in 0..nb {
                    let o = owner(j, i, q);
                    m.l3_read_at(o, addr(j, i), bw); // A(j,i) into L2, stays resident
                    for k in 0..j.min(i) {
                        // L(j,k) travels along processor row j; U(k,i)
                        // along processor column i; both read from the
                        // owner's NVM and landing in the consumer's L2.
                        let ol = owner(j, k, q);
                        let la = if ol != o {
                            m.transfer(ol, o, bw, Staging::L3, Staging::L2, addr(j, k), recv_a);
                            recv_a
                        } else {
                            m.l3_read_at(o, addr(j, k), bw);
                            addr(j, k)
                        };
                        let ou = owner(k, i, q);
                        let ua = if ou != o {
                            m.transfer(ou, o, bw, Staging::L3, Staging::L2, addr(k, i), recv_b);
                            recv_b
                        } else {
                            m.l3_read_at(o, addr(k, i), bw);
                            addr(k, i)
                        };
                        gemm_sub(a, rng(j), rng(i), rng(k));
                        if m.has_sims() {
                            let mut mem = m.rank_mem(o);
                            replay_gemm(&mut mem, la, ua, addr(j, i), b, b, b);
                        }
                        m.node_mut(o).flops += 2 * (b * b * b) as u64;
                    }
                    if j < i {
                        // U(j,i) = L(j,j)⁻¹ A(j,i).
                        let od = owner(j, j, q);
                        let ld = if od != o {
                            m.transfer(od, o, bw, Staging::L3, Staging::L2, addr(j, j), diag_buf);
                            diag_buf
                        } else {
                            m.l3_read_at(o, addr(j, j), bw);
                            addr(j, j)
                        };
                        trsm_lower_unit(a, rng(j), rng(i));
                        if m.has_sims() {
                            let mut mem = m.rank_mem(o);
                            replay_gemm(&mut mem, ld, ld, addr(j, i), b, b, b);
                        }
                        m.node_mut(o).flops += (b * b * b) as u64;
                        m.l3_write_at(o, addr(j, i), bw); // final U block: written once
                    }
                }
                // Factor the diagonal and the sub-diagonal column.
                let od = owner(i, i, q);
                lu_base(a, rng(i));
                if m.has_sims() {
                    let mut mem = m.rank_mem(od);
                    replay_block_rw(&mut mem, addr(i, i), b);
                }
                m.node_mut(od).flops += 2 * (b * b * b) as u64 / 3;
                m.l3_write_at(od, addr(i, i), bw);
                let col_party: Vec<usize> = (0..q).map(|r| owner(r + i, i, q)).collect();
                charge_bcast(m, od, &col_party, bw, Staging::L2, diag_buf);
                for j in i + 1..nb {
                    let oj = owner(j, i, q);
                    trsm_upper_right(a, rng(j), rng(i));
                    if m.has_sims() {
                        let mut mem = m.rank_mem(oj);
                        replay_gemm(&mut mem, diag_buf, diag_buf, addr(j, i), b, b, b);
                    }
                    m.node_mut(oj).flops += (b * b * b) as u64;
                    m.l3_write_at(oj, addr(j, i), bw); // final L block: written once
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::CostParams;

    fn diagonally_dominant(n: usize, seed: u64) -> Mat {
        let mut a = Mat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] = a[(i, i)].abs() + n as f64;
        }
        a
    }

    fn reconstruct(lu: &Mat) -> Mat {
        let n = lu.rows();
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                lu[(i, j)]
            } else {
                0.0
            }
        });
        l.matmul_ref(&lu.upper_triangular())
    }

    #[test]
    fn both_variants_factor_correctly() {
        for v in [LunpVariant::LeftLooking, LunpVariant::RightLooking] {
            let n = 24;
            let a0 = diagonally_dominant(n, 77);
            let mut a = a0.clone();
            let mut m = Machine::new(4, CostParams::nvm_cluster());
            parallel_lu(&mut m, &mut a, 4, v);
            let back = reconstruct(&a);
            assert!(
                back.max_abs_diff(&a0) < 1e-8 * n as f64,
                "{v:?}: {}",
                back.max_abs_diff(&a0)
            );
        }
    }

    #[test]
    fn variants_agree_numerically() {
        let n = 32;
        let a0 = diagonally_dominant(n, 78);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut m1 = Machine::new(16, CostParams::nvm_cluster());
        let mut m2 = Machine::new(16, CostParams::nvm_cluster());
        parallel_lu(&mut m1, &mut a1, 4, LunpVariant::LeftLooking);
        parallel_lu(&mut m2, &mut a2, 4, LunpVariant::RightLooking);
        assert!(a1.max_abs_diff(&a2) < 1e-9);
    }

    /// The §7.2 trade-off, measured: LL writes ~output-size to NVM but
    /// talks more; RL is network-lean but write-heavy.
    #[test]
    fn ll_minimizes_nvm_writes_rl_minimizes_network() {
        let n = 48;
        let b = 4;
        let p = 16;
        let a0 = diagonally_dominant(n, 79);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut mll = Machine::new(p, CostParams::nvm_cluster());
        let mut mrl = Machine::new(p, CostParams::nvm_cluster());
        parallel_lu(&mut mll, &mut a1, b, LunpVariant::LeftLooking);
        parallel_lu(&mut mrl, &mut a2, b, LunpVariant::RightLooking);
        let ll = mll.max_counters();
        let rl = mrl.max_counters();
        assert!(
            ll.l3_write_words < rl.l3_write_words / 2,
            "LL NVM writes {} should undercut RL {}",
            ll.l3_write_words,
            rl.l3_write_words
        );
        assert!(
            rl.net_words() < ll.net_words(),
            "RL network {} should undercut LL {}",
            rl.net_words(),
            ll.net_words()
        );
        // LL writes per proc stay within a small factor of 2n²/P.
        let out = (2 * n * n / p) as u64;
        assert!(
            ll.l3_write_words <= 2 * out,
            "LL writes {} vs 2·n²/P = {out}",
            ll.l3_write_words
        );
    }
}
