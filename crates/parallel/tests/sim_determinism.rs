//! Property tests for the per-rank simulators (ISSUE 10 satellite).
//!
//! Each rank owns a private `MemSim`, so two guarantees must hold:
//!
//! 1. **Rank-interleaving invariance** — the global order in which ranks'
//!    accesses are replayed must not change any rank's counters, as long
//!    as each rank's own access sequence is preserved. The explicit
//!    kernels iterate ranks in different orders (row-major loops, skew
//!    loops, pipeline steps), so this is what makes their charging
//!    order-independent.
//! 2. **Repeat determinism** — running a simmed workload twice yields
//!    byte-identical boundaries (`harness run --repeat N` relies on it).

use parallel::machine::{Machine, SimKind};
use parallel::workloads::workloads;
use proptest::prelude::*;
use wa_core::{BackendKind, CostParams, RunCfg, Scale};

/// One rank-local access, replayed through that rank's private simulator.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read { addr: usize, words: usize },
    Write { addr: usize, words: usize },
    Writeback { addr: usize, words: usize },
}

fn apply(m: &mut Machine, rank: usize, op: Op) {
    match op {
        Op::Read { addr, words } => m.sim_read(rank, addr, words),
        Op::Write { addr, words } => m.sim_write(rank, addr, words),
        Op::Writeback { addr, words } => m.sim_writeback(rank, addr, words),
    }
}

/// Decode a flat `(kind, offset, len)` triple into an [`Op`] inside a
/// `heap_words`-sized rank heap.
fn decode(kind: u8, offset: usize, len: usize, heap_words: usize) -> Op {
    let words = 1 + len % 96;
    let addr = offset % (heap_words - words);
    match kind % 3 {
        0 => Op::Read { addr, words },
        1 => Op::Write { addr, words },
        _ => Op::Writeback { addr, words },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay the same per-rank access sequences in two different global
    /// interleavings (rank-major vs round-robin) and require identical
    /// per-rank boundary counters, for both 1- and 2-level rank
    /// hierarchies.
    #[test]
    fn per_rank_counters_ignore_rank_interleaving(
        p in 2usize..6,
        depth in 1usize..3,
        raw in prop::collection::vec((0u8..3, 0usize..4096, 0usize..96), 8..40),
    ) {
        let caps: &[usize] = if depth == 1 { &[512] } else { &[64, 512] };
        let heap = 448; // stays within the 512-word rank L2
        let mk = || {
            let mut m = Machine::with_sims(p, CostParams::nvm_cluster(), SimKind::Simmed, caps);
            let base = m.alloc(heap);
            (m, base)
        };
        // Deal the generated ops round-robin into per-rank sequences.
        let per_rank: Vec<Vec<Op>> = (0..p)
            .map(|r| {
                raw.iter()
                    .skip(r)
                    .step_by(p)
                    .map(|&(k, off, len)| decode(k, off, len, heap))
                    .collect()
            })
            .collect();

        // Order A: rank-major (rank 0's ops, then rank 1's, ...).
        let (mut ma, base_a) = mk();
        for (r, ops) in per_rank.iter().enumerate() {
            for &op in ops {
                apply(&mut ma, r, shift(op, base_a));
            }
        }
        // Order B: round-robin across ranks, per-rank order preserved.
        let (mut mb, base_b) = mk();
        let longest = per_rank.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (r, ops) in per_rank.iter().enumerate() {
                if let Some(&op) = ops.get(i) {
                    apply(&mut mb, r, shift(op, base_b));
                }
            }
        }

        for r in 0..p {
            prop_assert_eq!(ma.sim_boundaries_of(r), mb.sim_boundaries_of(r));
        }
        prop_assert_eq!(ma.sim_boundaries(), mb.sim_boundaries());
    }
}

/// Rebase an op onto the machine's allocated heap.
fn shift(op: Op, base: usize) -> Op {
    match op {
        Op::Read { addr, words } => Op::Read {
            addr: addr + base,
            words,
        },
        Op::Write { addr, words } => Op::Write {
            addr: addr + base,
            words,
        },
        Op::Writeback { addr, words } => Op::Writeback {
            addr: addr + base,
            words,
        },
    }
}

/// `--repeat` determinism: every parallel workload produces identical
/// simmed boundaries (and config echo) when run twice at every declared
/// depth.
#[test]
fn repeated_simmed_runs_are_identical() {
    for w in workloads() {
        for depth in [1, 2] {
            let cfg = RunCfg::with_depth(BackendKind::Simmed, Scale::Small, depth);
            let r1 = match w.run_cfg(cfg) {
                Ok(r) => r,
                Err(_) => continue, // depth not declared for this workload
            };
            let r2 = w.run_cfg(cfg).expect("second run must succeed too");
            assert_eq!(
                r1.boundaries,
                r2.boundaries,
                "{} depth {depth}: simmed boundaries changed between runs",
                w.name()
            );
            assert_eq!(
                r1.config,
                r2.config,
                "{} depth {depth}: config echo changed",
                w.name()
            );
            // Simmed layout: depth sim boundaries + one network boundary,
            // so node-local NVM is the second-to-last entry.
            let nvm = r1.boundaries[r1.boundaries.len() - 2];
            assert!(
                nvm.store_words > 0,
                "{} depth {depth}: assembled output must reach NVM",
                w.name()
            );
        }
    }
}
