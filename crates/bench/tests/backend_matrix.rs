//! Registry-driven conformance suite for the workload×backend matrix.
//!
//! Three layers of guarantees, all enumerated from the registry so a cell
//! cannot silently disappear or dodge its obligations:
//!
//! 1. **Snapshot** — the exact set of `(workload, backend, max_depth)`
//!    cells is pinned in `tests/snapshots/registry_cells.txt`. Dropping a
//!    backend (or a workload) is a test failure, not a silent regression;
//!    adding one requires blessing the snapshot
//!    (`UPDATE_SNAPSHOT=1 cargo test -p wa-bench --test backend_matrix`).
//! 2. **Schema** — every cell runs at every depth it advertises and its
//!    [`RunReport`] satisfies the structural invariants (identity echo,
//!    boundary/writes-per-level arity, CSV row arity, JSON keys).
//! 3. **Cross-model agreement** — every workload advertising *both* the
//!    explicit model and the cache simulator must appear in [`AGREEMENT`]
//!    with a declared tolerance, and its slow-memory write counts must
//!    agree boundary-by-boundary (counted from the fast end) at every
//!    shared depth and at both scales. WA cells agree exactly
//!    (Propositions 6.1/6.2 with line-aligned blockings); the documented
//!    exceptions are unit conversion (n-body counts particles), line
//!    granularity on triangular outputs (Cholesky), and eager rewrites
//!    coalescing in the simulated cache before reaching slow memory (the
//!    right-looking non-WA orders — the explicit model charges them, LRU
//!    absorbs some).

use wa_bench::registry::registry;
use wa_core::engine::{BackendKind, RunCfg};
use wa_core::report::RunReport;
use wa_core::Scale;

/// How a cell's explicit and simulated slow-write counts must relate.
#[derive(Clone, Copy, Debug)]
enum Agreement {
    /// Word-for-word equality at every shared boundary.
    Exact,
    /// Equality after converting explicit units (particles) to words.
    ExactTimes(u64),
    /// `|explicit − simmed| ≤ rel · explicit` at every shared boundary.
    Within(f64),
}

/// Every workload that advertises both `explicit` and `simmed` MUST have
/// an entry here — the suite fails if one is missing, so growing the
/// matrix forces a conformance decision.
const AGREEMENT: &[(&str, Agreement)] = &[
    ("matmul-wa", Agreement::Exact),
    ("matmul-nonwa", Agreement::Exact),
    ("trsm-wa", Agreement::Exact),
    // Right-looking TRSM eagerly rewrites B panels; under LRU most
    // rewrites coalesce in cache, so the simulator sees ~the output size
    // while the explicit model charges every panel store.
    ("trsm-rl", Agreement::Within(0.45)),
    // Line granularity: lines straddling the diagonal of the triangular
    // output are written back whole, while the explicit model counts
    // triangle words (measured: ≤ 7.3% at small scale, less at paper).
    ("cholesky-wa", Agreement::Within(0.08)),
    ("cholesky-rl", Agreement::Within(0.08)),
    ("lu-wa", Agreement::Exact),
    // Eager trailing updates rewrite blocks the simulated cache still
    // holds (measured: exactly one b² coalesces per factorization).
    ("lu-rl", Agreement::Within(0.12)),
    // The explicit n-body model counts particles, the simulator words.
    (
        "nbody-wa",
        Agreement::ExactTimes(nbody::force::WORDS_PER_BODY as u64),
    ),
    ("cg", Agreement::Exact),
    ("ca-cg", Agreement::Exact),
    ("ca-cg-streaming", Agreement::Exact),
    ("tsqr-stream", Agreement::Exact),
    ("tsqr-store", Agreement::Exact),
];

/// One line per workload: `name | group | backend:max_depth ...` in
/// registration order — the snapshot of which matrix cells exist.
fn render_cells() -> String {
    let mut out = String::new();
    for w in registry().iter() {
        let backends: Vec<String> = w
            .backends()
            .iter()
            .map(|&b| format!("{}:{}", b.as_str(), w.max_depth(b)))
            .collect();
        out.push_str(&format!(
            "{} | {} | {}\n",
            w.name(),
            w.group(),
            backends.join(" ")
        ));
    }
    out
}

fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("registry_cells.txt")
}

#[test]
fn registry_snapshot_matches_checked_in_cells() {
    let rendered = render_cells();
    let path = snapshot_path();
    if std::env::var("UPDATE_SNAPSHOT").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run UPDATE_SNAPSHOT=1 cargo test -p wa-bench \
             --test backend_matrix to create it",
            path.display()
        )
    });
    assert_eq!(
        on_disk, rendered,
        "the workload×backend matrix changed; if intentional, bless it with \
         UPDATE_SNAPSHOT=1 cargo test -p wa-bench --test backend_matrix"
    );
}

/// Structural invariants every report must satisfy, whatever produced it.
fn check_schema(r: &RunReport, name: &str, group: &str, backend: BackendKind, depth: usize) {
    let ctx = format!("{name} on {backend} depth {depth}");
    assert_eq!(r.workload, name, "{ctx}: workload echo");
    assert_eq!(r.backend, backend, "{ctx}: backend echo");
    match backend {
        BackendKind::Simmed | BackendKind::Explicit => {
            assert!(!r.boundaries.is_empty(), "{ctx}: boundary traffic");
            assert_eq!(
                r.writes_per_level.len(),
                r.boundaries.len() + 1,
                "{ctx}: one writes-per-level entry per level"
            );
            // The simulator models exactly `depth` cache levels; the
            // explicit side may model fewer (e.g. the Krylov tally's
            // single W12 boundary) but never more than requested. The
            // distributed workloads append one network boundary after
            // the per-rank cache boundaries.
            if backend == BackendKind::Simmed {
                let want = if group == "parallel" {
                    depth + 1
                } else {
                    depth
                };
                assert_eq!(r.boundaries.len(), want, "{ctx}: boundary arity");
            }
        }
        BackendKind::Stack => {
            // The stack backend models exactly one fast↔slow boundary (it
            // is a depth-1 projection) and must carry the capacity curve.
            assert_eq!(r.boundaries.len(), 1, "{ctx}: one projected boundary");
            assert_eq!(
                r.writes_per_level.len(),
                2,
                "{ctx}: one writes-per-level entry per level"
            );
            let curve = r.curve.as_ref().unwrap_or_else(|| panic!("{ctx}: curve"));
            assert!(
                r.to_json().contains("\"curve\":{\"line_words\":"),
                "{ctx}: JSON curve key"
            );
            // Fills are non-increasing in capacity along the default
            // ladder (the stack property, surfaced to every consumer).
            let fills: Vec<u64> = curve
                .points(&curve.default_ladder())
                .iter()
                .map(|p| p.fills)
                .collect();
            assert!(
                fills.windows(2).all(|w| w[0] >= w[1]),
                "{ctx}: fills must be monotone non-increasing, got {fills:?}"
            );
        }
        BackendKind::Raw | BackendKind::Traced => {
            assert!(r.boundaries.is_empty(), "{ctx}: no modeled hierarchy");
        }
    }
    // CSV row arity always matches the header.
    let cols = r.to_csv_row().split(',').count();
    assert_eq!(
        cols,
        RunReport::CSV_HEADER.split(',').count(),
        "{ctx}: CSV arity"
    );
    // JSON carries the stable schema keys.
    let json = r.to_json();
    for key in [
        "\"workload\":",
        "\"backend\":",
        "\"scale\":",
        "\"config\":",
        "\"boundaries\":",
        "\"writes_per_level\":",
        "\"flops\":",
        "\"wall_ns\":",
        "\"notes\":",
    ] {
        assert!(json.contains(key), "{ctx}: JSON missing {key}");
    }
}

#[test]
fn every_cell_runs_at_every_advertised_depth() {
    let reg = registry();
    let mut cells = 0usize;
    for w in reg.iter() {
        for &backend in w.backends() {
            for depth in 1..=w.max_depth(backend) {
                let r = w
                    .run_cfg(RunCfg::with_depth(backend, Scale::Small, depth))
                    .unwrap_or_else(|e| panic!("{} on {backend} depth {depth}: {e}", w.name()));
                check_schema(&r, w.name(), w.group(), backend, depth);
                cells += 1;
            }
        }
        // One past the advertised maximum must be a structured refusal,
        // not a panic or a silently shallow run.
        let backend = w.backends()[0];
        let over = w.max_depth(backend) + 1;
        assert!(
            w.run_cfg(RunCfg::with_depth(backend, Scale::Small, over))
                .is_err(),
            "{}: depth {over} must be rejected",
            w.name()
        );
    }
    assert!(
        cells >= 60,
        "expected a well-filled matrix, got {cells} cells"
    );
}

/// Slow-memory writes across boundary `i` (counted from the fast end).
fn store_words(r: &RunReport, i: usize) -> u64 {
    r.boundaries[i].writes_to_slow()
}

#[test]
fn explicit_and_simmed_writes_agree_on_every_dual_backend_cell() {
    let reg = registry();
    for w in reg.iter() {
        let dual = w.supports(BackendKind::Explicit) && w.supports(BackendKind::Simmed);
        if !dual {
            continue;
        }
        // The distributed workloads anchor their agreement at the SLOW end
        // (the explicit model's three boundaries and the per-rank
        // simulation's depth+1 don't line up from the fast end); they get
        // their own contract below.
        if w.group() == "parallel" {
            continue;
        }
        let agreement = AGREEMENT
            .iter()
            .find(|(n, _)| *n == w.name())
            .unwrap_or_else(|| {
                panic!(
                    "{} advertises explicit+simmed but has no AGREEMENT entry; \
                     declare its cross-model tolerance",
                    w.name()
                )
            })
            .1;
        let depths = w
            .max_depth(BackendKind::Explicit)
            .min(w.max_depth(BackendKind::Simmed));
        for scale in [Scale::Small, Scale::Paper] {
            for depth in 1..=depths {
                let exp = w
                    .run_cfg(RunCfg::with_depth(BackendKind::Explicit, scale, depth))
                    .unwrap_or_else(|e| panic!("{} explicit: {e}", w.name()));
                let sim = w
                    .run_cfg(RunCfg::with_depth(BackendKind::Simmed, scale, depth))
                    .unwrap_or_else(|e| panic!("{} simmed: {e}", w.name()));
                // Boundaries shared by the two models, anchored at the
                // fast end (the Krylov tally models only W12; the dense
                // multi-level kernels model all of them).
                let shared = exp.boundaries.len().min(sim.boundaries.len());
                assert!(shared >= 1, "{}: no shared boundary", w.name());
                for b in 0..shared {
                    let e = store_words(&exp, b);
                    let s = store_words(&sim, b);
                    let ctx = format!(
                        "{} @ {scale} depth {depth} boundary {b}: explicit {e} vs simmed {s}",
                        w.name()
                    );
                    assert!(e > 0, "{ctx}: explicit writes must be positive");
                    match agreement {
                        Agreement::Exact => assert_eq!(e, s, "{ctx}"),
                        Agreement::ExactTimes(f) => assert_eq!(e * f, s, "{ctx} (×{f})"),
                        Agreement::Within(rel) => {
                            let diff = e.abs_diff(s) as f64 / e as f64;
                            assert!(diff <= rel, "{ctx}: rel diff {diff:.4} > {rel}");
                        }
                    }
                }
            }
        }
    }
}

/// The single-pass stack backend is not an approximation: on every
/// workload that also advertises the cache simulator, its projection at
/// the cell's fast-memory capacity must equal the flushed depth-1
/// simulator *exactly* — words, messages, loads and stores alike — at
/// both scales. No tolerance table: FA-LRU obeys the stack property.
#[test]
fn stack_projection_equals_flushed_simmed_exactly_everywhere() {
    let reg = registry();
    let mut cells = 0usize;
    for w in reg.iter() {
        if !(w.supports(BackendKind::Stack) && w.supports(BackendKind::Simmed)) {
            continue;
        }
        // Parallel stack cells project the *critical rank's* curve while
        // simmed folds a componentwise max over all ranks, so exact
        // equality is not part of their contract (the per-rank equivalence
        // is exercised in `parallel`'s own suites).
        if w.group() == "parallel" {
            continue;
        }
        for scale in [Scale::Small, Scale::Paper] {
            let sim = w
                .run_cfg(RunCfg::with_depth(BackendKind::Simmed, scale, 1))
                .unwrap_or_else(|e| panic!("{} simmed: {e}", w.name()));
            let stk = w
                .run_cfg(RunCfg::with_depth(BackendKind::Stack, scale, 1))
                .unwrap_or_else(|e| panic!("{} stack: {e}", w.name()));
            assert_eq!(
                sim.boundaries[0],
                stk.boundaries[0],
                "{} @ {scale}: stack projection vs flushed simulator",
                w.name()
            );
            cells += 1;
        }
    }
    assert!(cells >= 30, "expected a well-filled matrix, got {cells}");
}

/// The distributed dual cells, anchored at the SLOW end of each report:
/// the explicit model's boundary 1 (L2↔node-local NVM) must equal the
/// simmed report's second-to-last boundary (LLC↔NVM) word-for-word in
/// *stores* — including the assembled output, which used to be charged as
/// free — and the network boundary (last in both) must agree verbatim.
/// NVM loads carry no contract: a warm simulated cache cold-fills a block
/// once where the explicit model charges every re-read.
#[test]
fn parallel_dual_cells_agree_at_the_slow_end() {
    let reg = registry();
    let mut cells = 0usize;
    for w in reg.iter() {
        if w.group() != "parallel"
            || !(w.supports(BackendKind::Explicit) && w.supports(BackendKind::Simmed))
        {
            continue;
        }
        for scale in [Scale::Small, Scale::Paper] {
            for depth in 1..=w.max_depth(BackendKind::Simmed) {
                let exp = w
                    .run_cfg(RunCfg::with_depth(BackendKind::Explicit, scale, 1))
                    .unwrap_or_else(|e| panic!("{} explicit: {e}", w.name()));
                let sim = w
                    .run_cfg(RunCfg::with_depth(BackendKind::Simmed, scale, depth))
                    .unwrap_or_else(|e| panic!("{} simmed depth {depth}: {e}", w.name()));
                let ctx = format!("{} @ {scale} depth {depth}", w.name());
                let nvm_e = exp.boundaries[1];
                let nvm_s = sim.boundaries[sim.boundaries.len() - 2];
                assert!(nvm_e.store_words > 0, "{ctx}: NVM stores must be positive");
                assert_eq!(
                    nvm_e.store_words, nvm_s.store_words,
                    "{ctx}: NVM stores (explicit vs per-rank simulation)"
                );
                assert_eq!(
                    exp.boundaries[2],
                    *sim.boundaries.last().unwrap(),
                    "{ctx}: network boundary"
                );
                cells += 1;
            }
        }
    }
    assert!(cells >= 20, "expected all parallel dual cells, got {cells}");
}

/// The assembly-accounting pin, end to end through the registry: classic
/// SUMMA at Small (n = 48 on a 4×4 grid) assembles one 12×12 C block per
/// rank, so both backends must report exactly n²/P = 144 NVM store words
/// — nonzero and identical, the issue's acceptance bar.
#[test]
fn summa_assembled_output_is_identical_across_backends() {
    let reg = registry();
    let w = reg.get("summa").expect("summa is registered");
    let exp = w
        .run_cfg(RunCfg::new(BackendKind::Explicit, Scale::Small))
        .unwrap();
    let sim = w
        .run_cfg(RunCfg::new(BackendKind::Simmed, Scale::Small))
        .unwrap();
    assert_eq!(exp.boundaries[1].store_words, 144);
    assert_eq!(
        sim.boundaries[sim.boundaries.len() - 2].store_words,
        144,
        "per-rank simulation must charge the same assembled output"
    );
}

#[test]
fn agreement_table_has_no_stale_entries() {
    let reg = registry();
    for (name, _) in AGREEMENT {
        let w = reg
            .get(name)
            .unwrap_or_else(|| panic!("AGREEMENT names unknown workload {name}"));
        assert!(
            w.supports(BackendKind::Explicit) && w.supports(BackendKind::Simmed),
            "{name} no longer advertises both explicit and simmed; prune the entry"
        );
    }
}
