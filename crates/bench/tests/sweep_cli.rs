//! CLI-level tests of `harness sweep`'s failure semantics: documented
//! exit codes, the per-cell `status` column, the incremental JSONL
//! journal, and `--resume` re-running only failed/missing cells.
//!
//! These drive the real binary (`CARGO_BIN_EXE_harness`), so they pin the
//! contract scripts and CI see, not just the library behavior.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_harness"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wa-sweep-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The small, fast sweep slice all these tests use.
fn sweep_args(journal: &Path) -> Vec<String> {
    [
        "sweep",
        "--group",
        "dense",
        "--backend",
        "explicit",
        "--csv",
        "--journal",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([journal.display().to_string()])
    .collect()
}

#[test]
fn clean_sweep_exits_zero_with_ok_status_column() {
    let dir = tmp_dir("clean");
    let journal = dir.join("j.jsonl");
    let out = harness().args(sweep_args(&journal)).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let csv = stdout(&out);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.ends_with(",status"), "{header}");
    let rows: Vec<&str> = lines.collect();
    assert!(rows.len() >= 6, "{csv}");
    for row in &rows {
        assert!(row.ends_with(",ok"), "{row}");
        assert_eq!(
            row.split(',').count(),
            header.split(',').count(),
            "CSV arity: {row}"
        );
    }
    assert!(journal.exists(), "sweep must journal unconditionally");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn faulted_sweep_exits_nonzero_journals_failures_and_resumes() {
    let dir = tmp_dir("faulted");
    let journal = dir.join("j.jsonl");

    // Pass 1: one injected panic + one injected stall (with a deadline
    // shorter than the stall). The process must survive, run every other
    // cell, exit 1, and journal both failures with distinct typed kinds.
    let out = harness()
        .args(sweep_args(&journal))
        .args([
            "--fault-plan",
            "matmul-wa:panic@1,lu-wa:stall=5000",
            "--timeout",
            "1.0",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "a sweep with failed cells must exit 1; stderr: {}",
        stderr(&out)
    );
    let csv = stdout(&out);
    assert!(
        csv.lines()
            .any(|l| l.starts_with("matmul-wa,") && l.ends_with(",panicked")),
        "{csv}"
    );
    assert!(
        csv.lines()
            .any(|l| l.starts_with("lu-wa,") && l.ends_with(",cancelled")),
        "stalled cells are cancelled cooperatively: {csv}"
    );
    let ok_rows = csv.lines().filter(|l| l.ends_with(",ok")).count();
    assert!(ok_rows >= 4, "untargeted cells must complete: {csv}");
    let j = std::fs::read_to_string(&journal).unwrap();
    assert!(j.contains("\"status\":\"panicked\""), "{j}");
    assert!(j.contains("\"status\":\"cancelled\""), "{j}");

    // Pass 2: --resume without faults re-runs ONLY the two failed cells
    // and exits 0; the journal ends up all-ok.
    let out = harness()
        .args(sweep_args(&journal))
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let csv = stdout(&out);
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 2, "resume must re-run only failed cells: {csv}");
    assert!(rows.iter().all(|r| r.ends_with(",ok")), "{csv}");
    assert!(
        rows.iter().any(|r| r.starts_with("matmul-wa,"))
            && rows.iter().any(|r| r.starts_with("lu-wa,")),
        "{csv}"
    );
    assert!(
        stderr(&out).contains("resume: skipping"),
        "{}",
        stderr(&out)
    );

    // Pass 3: resuming a fully-ok journal runs nothing and exits 0.
    let out = harness()
        .args(sweep_args(&journal))
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(
        stderr(&out).contains("nothing left to run"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fail_fast_skips_later_cells_and_resume_picks_them_up() {
    let dir = tmp_dir("failfast");
    let journal = dir.join("j.jsonl");
    // Single-threaded so ordering is deterministic: matmul-wa (the first
    // dense explicit cell) panics, everything after it is skipped.
    let out = harness()
        .args(sweep_args(&journal))
        .args([
            "--fault-plan",
            "matmul-wa:panic@1",
            "--fail-fast",
            "--threads",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("skipped"), "{err}");
    let journaled = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(journaled, 1, "only the failed cell may be journaled");

    // Resume re-runs the failed cell and every skipped (missing) cell.
    let out = harness()
        .args(sweep_args(&journal))
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let rows = stdout(&out).lines().count() - 1;
    assert!(rows >= 6, "skipped cells must re-run on resume, got {rows}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 2: a mid-file bit flip fails the record's FNV-1a checksum,
/// so `--resume` treats the cell as missing and re-runs exactly it.
#[test]
fn journal_bit_flip_fails_the_checksum_and_resume_reruns_that_cell() {
    let dir = tmp_dir("bitflip");
    let journal = dir.join("j.jsonl");
    let out = harness().args(sweep_args(&journal)).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    // Flip one byte inside a mid-file record (not a torn tail): the
    // second line's status field.
    let j = std::fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<String> = j.lines().map(str::to_string).collect();
    assert!(lines.len() >= 3, "{j}");
    let flipped = lines[1].replacen("\"status\":\"ok\"", "\"status\":\"oj\"", 1);
    assert_ne!(flipped, lines[1], "expected an ok record to corrupt");
    let victim = lines[1]
        .split("\"workload\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    lines[1] = flipped;
    std::fs::write(&journal, lines.join("\n") + "\n").unwrap();

    // The flipped record still *parses* — only the checksum catches it.
    let out = harness()
        .args(sweep_args(&journal))
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let csv = stdout(&out);
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(
        rows.len(),
        1,
        "exactly the checksum-failed cell re-runs: {csv}"
    );
    assert!(rows[0].starts_with(&format!("{victim},")), "{csv}");
    assert!(rows[0].ends_with(",ok"), "{csv}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 6 (the CI smoke, pinned as a test too): SIGINT mid-sweep
/// cancels the in-flight cell, flushes the journal, and exits the
/// documented resumable code 130; `--resume` then completes only the
/// unfinished cells.
#[test]
fn sigint_mid_sweep_exits_resumable_and_resume_completes_the_rest() {
    let dir = tmp_dir("sigint");
    let journal = dir.join("j.jsonl");
    // Single-threaded so the journal order is deterministic: the first
    // cells complete, then lu-wa stalls long enough to be interrupted.
    let child = harness()
        .args(sweep_args(&journal))
        .args(["--fault-plan", "lu-wa:stall=30000", "--threads", "1"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Wait until at least one cell is journaled, so resume has both
    // completed cells to skip and missing cells to run.
    let t0 = std::time::Instant::now();
    while std::fs::read_to_string(&journal)
        .map(|s| s.lines().count())
        .unwrap_or(0)
        < 1
    {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "sweep never journaled a cell"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let killed = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(130),
        "SIGINT must exit the documented resumable code; stderr: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("interrupted"), "{}", stderr(&out));
    assert!(stderr(&out).contains("--resume"), "{}", stderr(&out));
    let completed_before: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .filter(|l| l.contains("\"status\":\"ok\""))
        .map(|l| {
            l.split("\"workload\":\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string()
        })
        .collect();
    assert!(!completed_before.is_empty());

    // Resume (no fault plan) completes only the unfinished cells.
    let out = harness()
        .args(sweep_args(&journal))
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let csv = stdout(&out);
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert!(!rows.is_empty(), "the interrupted cells must re-run: {csv}");
    assert!(rows.iter().all(|r| r.ends_with(",ok")), "{csv}");
    for done in &completed_before {
        assert!(
            !rows.iter().any(|r| r.starts_with(&format!("{done},"))),
            "cell {done} completed before the interrupt and must not re-run: {csv}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn curve_sweep_journals_stack_cells_with_stable_keys_and_resumes() {
    let dir = tmp_dir("curve");
    let journal = dir.join("j.jsonl");
    // Pass 1: a --curve sweep is an ordinary sweep over stack-backend
    // cells — CSV status column, JSONL journal, exit 0.
    let args: Vec<String> = [
        "sweep",
        "--group",
        "krylov",
        "--curve",
        "--csv",
        "--journal",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([journal.display().to_string()])
    .collect();
    let out = harness().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let csv = stdout(&out);
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 5, "five krylov stack cells: {csv}");
    for row in &rows {
        assert!(
            row.contains(",stack,"),
            "curve cells run the stack backend: {row}"
        );
        assert!(row.ends_with(",ok"), "{row}");
    }
    let j1 = std::fs::read_to_string(&journal).unwrap();
    assert!(j1.contains("\"backend\":\"stack\""), "{j1}");
    let keys = |j: &str| -> Vec<String> {
        let mut ks: Vec<String> = j
            .lines()
            .map(|l| {
                let k = l
                    .split("\"key\":\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap();
                assert_eq!(k.len(), 16, "config-hash key: {l}");
                k.to_string()
            })
            .collect();
        ks.sort();
        ks
    };

    // Pass 2: --resume recomputes the same config-hash keys, so a fully
    // ok journal means nothing re-runs.
    let out = harness().args(&args).arg("--resume").output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("nothing left to run"),
        "{}",
        stderr(&out)
    );

    // Pass 3: a fresh journal of the same sweep carries identical keys —
    // the hash is a function of the cell config, not the run.
    let journal2 = dir.join("j2.jsonl");
    let args2: Vec<String> = args[..args.len() - 1]
        .iter()
        .cloned()
        .chain([journal2.display().to_string()])
        .collect();
    let out = harness().args(&args2).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let j2 = std::fs::read_to_string(&journal2).unwrap();
    assert_eq!(keys(&j1), keys(&j2), "cell keys must be stable across runs");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_subcommand_contains_panics_and_exits_one() {
    let out = harness()
        .args([
            "run",
            "matmul-wa",
            "--backend",
            "explicit",
            "--fault-plan",
            "matmul-wa:panic@1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("panicked"), "{}", stderr(&out));
    // With a retry budget the same invocation succeeds.
    let out = harness()
        .args([
            "run",
            "matmul-wa",
            "--backend",
            "explicit",
            "--fault-plan",
            "matmul-wa:panic@1",
            "--retries",
            "1",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("\"workload\":\"matmul-wa\""));
}

#[test]
fn degenerate_flags_are_usage_errors() {
    for args in [
        vec!["sweep", "--timeout", "0"],
        vec!["sweep", "--timeout", "nope"],
        vec!["sweep", "--retries", "-3"],
        vec!["sweep", "--fault-plan", "matmul-wa:explode"],
        vec!["sweep", "--mem-budget", "0"],
        vec!["sweep", "--mem-budget", "nope"],
        vec!["sweep", "--degrade"], // requires --mem-budget
        vec!["run", "matmul-wa", "--timeout", "0"],
        vec!["sweep", "--curve", "--backend", "simmed"],
        vec!["curve"],
        vec!["curve", "nonesuch"],
        vec!["curve", "nbody-symmetric"], // explicit-only: no stack cell
        vec!["curve", "matmul-wa", "--geometric", "0:5:3"],
        vec!["curve", "matmul-wa", "--geometric", "64:32:3"],
        vec!["curve", "matmul-wa", "--capacities", "12,nope"],
    ] {
        let out = harness().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
}
