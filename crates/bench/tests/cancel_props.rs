//! Property tests for cooperative cancellation inside the simulators:
//! firing the ambient token at an *arbitrary* access count always
//! surfaces as a typed `Cancelled` error — never a completed report,
//! never a leaked panic — and the cancellation point lands within one
//! check interval of the firing access, on both the word-level cache
//! simulator (`MemSim`) and the stack-distance simulator (`StackSim`).

use memsim::{MemSim, SimMem, StackMem};
use proptest::prelude::*;
use wa_core::cancel::{self, CHECK_INTERVAL};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, RunCfg, Workload};
use wa_core::report::RunReport;
use wa_core::{CancelReason, Registry, Scale};

/// Words the driven simulators hold; large enough that every access in
/// the loop below is in range.
const WORDS: usize = 4 * CHECK_INTERVAL as usize;

/// A workload that performs simulator accesses forever-ish, firing the
/// ambient cancel token after `fire_at` accesses. If cancellation were
/// lost it would finish all `total` accesses and return Ok — the
/// property rejects that.
fn driven_workload(fire_at: u64) -> Box<dyn Workload> {
    let total = fire_at + 3 * CHECK_INTERVAL;
    FnWorkload::boxed(
        "cancel-prop",
        "test",
        "fires the ambient token mid-simulation",
        &[BackendKind::Simmed, BackendKind::Stack],
        move |cfg: RunCfg| {
            let drive = |ld: &mut dyn FnMut(usize) -> f64| {
                for i in 0..total {
                    if i == fire_at {
                        cancel::current()
                            .expect("engine must install a token")
                            .cancel(CancelReason::Deadline);
                    }
                    ld((i as usize) % WORDS);
                }
            };
            match cfg.backend {
                BackendKind::Simmed => {
                    let sim = MemSim::single_level_lru(256);
                    let mut mem = SimMem::from_vec(vec![0.0; WORDS], sim);
                    drive(&mut |i| memsim::Mem::ld(&mut mem, i));
                }
                BackendKind::Stack => {
                    let mut mem = StackMem::from_vec(vec![0.0; WORDS]);
                    drive(&mut |i| memsim::Mem::ld(&mut mem, i));
                }
                other => unreachable!("undeclared backend {other}"),
            }
            Ok(RunReport::new("cancel-prop", cfg.backend, cfg.scale))
        },
    )
}

fn assert_cancels(
    backend: BackendKind,
    fire_at: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut reg = Registry::new();
    reg.register(driven_workload(fire_at));
    let res = reg.run_cfg("cancel-prop", RunCfg::new(backend, Scale::Small));
    match res {
        Err(EngineError::Cancelled {
            reason,
            after_accesses,
            ..
        }) => {
            prop_assert_eq!(reason, CancelReason::Deadline);
            // The simulators check the token at least every
            // CHECK_INTERVAL accesses, so the reported cancellation
            // point is after the firing access but within one interval
            // of it (plus the simulator's own pre-fire accesses — the
            // access clocks start together here).
            prop_assert!(
                after_accesses >= fire_at,
                "cancelled before the token fired: {} < {}",
                after_accesses,
                fire_at
            );
            prop_assert!(
                after_accesses <= fire_at + 2 * CHECK_INTERVAL,
                "stale cancellation point: {} for fire_at {}",
                after_accesses,
                fire_at
            );
            Ok(())
        }
        Err(other) => {
            prop_assert!(false, "expected Cancelled, got {:?}", other);
            Ok(())
        }
        Ok(_) => {
            prop_assert!(false, "a fired token must never yield a completed report");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn firing_at_any_access_count_cancels_the_simmed_backend(fire_at in 0u64..20_000) {
        assert_cancels(BackendKind::Simmed, fire_at)?;
    }

    #[test]
    fn firing_at_any_access_count_cancels_the_stack_backend(fire_at in 0u64..20_000) {
        assert_cancels(BackendKind::Stack, fire_at)?;
    }
}
