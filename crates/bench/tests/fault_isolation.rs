//! End-to-end proof that the engine's fault-isolation layer works against
//! the *real* registry: injected panics are contained to their cell,
//! injected stalls are cancelled cooperatively (the worker observes the
//! token and *joins* — no leaked threads), retries recover
//! deterministically, and injected counter corruption is rejected by the
//! report validator — while every untargeted cell of the sweep completes
//! normally.

use std::time::Duration;
use wa_bench::registry::registry;
use wa_core::engine::{BackendKind, EngineError, RunCfg, RunLimits};
use wa_core::fault::FaultPlan;
use wa_core::par::par_map_fallible;
use wa_core::{CancelReason, Scale};

/// The acceptance scenario: one cell panics, one stalls past its
/// deadline, and the sweep still completes every remaining cell, with the
/// two failures recorded under distinct typed error kinds.
#[test]
fn sweep_with_injected_panic_and_stall_completes_all_other_cells() {
    let mut reg = registry();
    reg.set_fault_plan(Some(
        FaultPlan::parse("matmul-wa:panic@1,lu-wa:stall=5000").unwrap(),
    ));
    let limits = RunLimits::new(Some(Duration::from_millis(250)), 0);

    // Every dense workload that advertises the explicit backend — a real
    // slice of the matrix, driven exactly like `harness sweep`.
    let cells: Vec<String> = reg
        .iter()
        .filter(|w| w.group() == "dense" && w.supports(BackendKind::Explicit))
        .map(|w| w.name().to_string())
        .collect();
    assert!(cells.len() >= 6, "expected a populated dense group");

    let results = par_map_fallible(&cells, 4, |name| {
        let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small).with_limits(limits);
        reg.run_cfg(name, cfg)
    });

    let mut kinds = std::collections::BTreeMap::new();
    for (name, res) in cells.iter().zip(&results) {
        // par_map_fallible itself never sees a panic: containment already
        // happened inside the registry dispatch.
        let res = res.as_ref().expect("engine leaked a panic past dispatch");
        match res {
            Ok(r) => assert_eq!(&r.workload, name),
            Err(e) => {
                if name == "lu-wa" {
                    // The stalled cell is cancelled *cooperatively*: the
                    // worker observed the token mid-stall and was joined,
                    // so the error carries the deadline reason.
                    match e {
                        EngineError::Cancelled { reason, .. } => {
                            assert_eq!(*reason, CancelReason::Deadline)
                        }
                        other => panic!("stalled cell must cancel, got {other:?}"),
                    }
                }
                kinds.insert(name.as_str(), e.kind());
            }
        }
    }
    assert_eq!(kinds.get("matmul-wa"), Some(&"panicked"));
    assert_eq!(kinds.get("lu-wa"), Some(&"cancelled"));
    assert_eq!(
        kinds.len(),
        2,
        "only the targeted cells may fail: {kinds:?}"
    );
}

/// Satellite 1: a deadline-cancelled worker must *join*, not leak. After
/// a stalled cell is cancelled, no `wa-cell-*` worker thread may remain
/// in this process's task list.
#[test]
fn cancelled_worker_threads_join_and_do_not_leak() {
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("trsm-wa:stall=5000").unwrap()));
    let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small)
        .with_limits(RunLimits::new(Some(Duration::from_millis(150)), 0));
    match reg.run_cfg("trsm-wa", cfg) {
        Err(EngineError::Cancelled {
            workload,
            reason,
            elapsed,
            ..
        }) => {
            assert_eq!(workload, "trsm-wa");
            assert_eq!(reason, CancelReason::Deadline);
            assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // run_cfg returned, so the worker was joined — its named thread must
    // be gone. Only this test runs trsm-wa with a deadline, so the exact
    // name cannot collide with workers of concurrently running tests.
    let leaked: Vec<String> = live_thread_names()
        .into_iter()
        .filter(|n| n == "wa-cell-trsm-wa")
        .collect();
    assert!(leaked.is_empty(), "leaked cell workers: {leaked:?}");
}

/// Every thread name in this process, via /proc (Linux-only, like CI).
fn live_thread_names() -> Vec<String> {
    let mut names = Vec::new();
    for e in std::fs::read_dir("/proc/self/task").unwrap() {
        if let Ok(n) = std::fs::read_to_string(e.unwrap().path().join("comm")) {
            names.push(n.trim().to_string());
        }
    }
    names
}

#[test]
fn injected_panic_carries_its_payload_and_spares_the_next_invocation() {
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("trsm-wa:panic@1").unwrap()));
    let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small);
    match reg.run_cfg("trsm-wa", cfg) {
        Err(EngineError::Panicked { workload, payload }) => {
            assert_eq!(workload, "trsm-wa");
            assert!(payload.contains("fault-injected"), "{payload}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The fault fired on invocation 1 only; the cell recovers.
    assert!(reg.run_cfg("trsm-wa", cfg).is_ok());
}

#[test]
fn stall_then_retry_succeeds_within_the_budget() {
    // Invocation 1 stalls past the deadline, invocation 2 (the retry) is
    // clean: the canonical timeout-retry-then-succeed path.
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("cholesky-wa:stall=5000@1").unwrap()));
    let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small)
        .with_limits(RunLimits::new(Some(Duration::from_millis(200)), 1));
    let (res, attempts) = reg.run_cfg_traced("cholesky-wa", cfg);
    assert!(res.is_ok(), "{res:?}");
    assert_eq!(attempts, 2);
    assert_eq!(reg.fault_plan().unwrap().invocations("cholesky-wa"), 2);
}

#[test]
fn panic_then_retry_succeeds_and_is_deterministic() {
    for _ in 0..2 {
        let mut reg = registry();
        reg.set_fault_plan(Some(FaultPlan::parse("matmul-wa:panic@1").unwrap()));
        let cfg =
            RunCfg::new(BackendKind::Explicit, Scale::Small).with_limits(RunLimits::new(None, 2));
        let (res, attempts) = reg.run_cfg_traced("matmul-wa", cfg);
        let r = res.expect("retry should recover from a one-shot panic");
        assert_eq!(attempts, 2, "panic@1 must cost exactly one retry");
        assert!(r.writes_to_slow() > 0);
    }
}

#[test]
fn corrupted_counters_are_rejected_by_the_report_validator() {
    // `corrupt` bumps writes_per_level and flops but leaves the boundary
    // traffic alone, so backing-store conservation breaks. The engine
    // validates every attempt's report, so the corruption surfaces as a
    // typed `ReportInvariant` at the faulted cell instead of poisoning a
    // cross-model comparison three tables later.
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("matmul-wa:corrupt@1").unwrap()));
    match reg.run_cfg("matmul-wa", RunCfg::new(BackendKind::Simmed, Scale::Small)) {
        Err(EngineError::ReportInvariant {
            workload,
            violation,
        }) => {
            assert_eq!(workload, "matmul-wa");
            assert!(
                violation.contains("backing-store conservation"),
                "{violation}"
            );
        }
        other => panic!("expected ReportInvariant, got {other:?}"),
    }
    // The fault fired on invocation 1 only, and an invariant violation is
    // retriable (a bit flip is transient): one retry recovers the cell.
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("matmul-wa:corrupt@1").unwrap()));
    let cfg = RunCfg::new(BackendKind::Simmed, Scale::Small).with_limits(RunLimits::new(None, 1));
    let (res, attempts) = reg.run_cfg_traced("matmul-wa", cfg);
    assert!(res.is_ok(), "{res:?}");
    assert_eq!(attempts, 2, "corrupt@1 must cost exactly one retry");
}

#[test]
fn timeout_limits_do_not_change_a_clean_cells_counters() {
    // The watchdog path runs the cell on a helper thread; counters must
    // be identical to the inline path.
    let reg = registry();
    let inline = reg
        .run_cfg(
            "matmul-wa",
            RunCfg::new(BackendKind::Explicit, Scale::Small),
        )
        .unwrap();
    let watched = reg
        .run_cfg(
            "matmul-wa",
            RunCfg::new(BackendKind::Explicit, Scale::Small)
                .with_limits(RunLimits::new(Some(Duration::from_secs(60)), 3)),
        )
        .unwrap();
    assert_eq!(inline.writes_per_level, watched.writes_per_level);
    assert_eq!(inline.flops, watched.flops);
}
