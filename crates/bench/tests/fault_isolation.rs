//! End-to-end proof that the engine's fault-isolation layer works against
//! the *real* registry: injected panics are contained to their cell,
//! injected stalls trip the watchdog, retries recover deterministically,
//! and injected counter corruption is visible downstream — while every
//! untargeted cell of the sweep completes normally.

use std::time::Duration;
use wa_bench::registry::registry;
use wa_core::engine::{BackendKind, EngineError, RunCfg, RunLimits};
use wa_core::fault::{FaultPlan, CORRUPTION_OFFSET};
use wa_core::par::par_map_fallible;
use wa_core::Scale;

/// The acceptance scenario: one cell panics, one stalls past its
/// deadline, and the sweep still completes every remaining cell, with the
/// two failures recorded under distinct typed error kinds.
#[test]
fn sweep_with_injected_panic_and_stall_completes_all_other_cells() {
    let mut reg = registry();
    reg.set_fault_plan(Some(
        FaultPlan::parse("matmul-wa:panic@1,lu-wa:stall=5000").unwrap(),
    ));
    let limits = RunLimits::new(Some(Duration::from_millis(250)), 0);

    // Every dense workload that advertises the explicit backend — a real
    // slice of the matrix, driven exactly like `harness sweep`.
    let cells: Vec<String> = reg
        .iter()
        .filter(|w| w.group() == "dense" && w.supports(BackendKind::Explicit))
        .map(|w| w.name().to_string())
        .collect();
    assert!(cells.len() >= 6, "expected a populated dense group");

    let results = par_map_fallible(&cells, 4, |name| {
        let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small).with_limits(limits);
        reg.run_cfg(name, cfg)
    });

    let mut kinds = std::collections::BTreeMap::new();
    for (name, res) in cells.iter().zip(&results) {
        // par_map_fallible itself never sees a panic: containment already
        // happened inside the registry dispatch.
        let res = res.as_ref().expect("engine leaked a panic past dispatch");
        match res {
            Ok(r) => assert_eq!(&r.workload, name),
            Err(e) => {
                kinds.insert(name.as_str(), e.kind());
            }
        }
    }
    assert_eq!(kinds.get("matmul-wa"), Some(&"panicked"));
    assert_eq!(kinds.get("lu-wa"), Some(&"timed-out"));
    assert_eq!(
        kinds.len(),
        2,
        "only the targeted cells may fail: {kinds:?}"
    );
}

#[test]
fn injected_panic_carries_its_payload_and_spares_the_next_invocation() {
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("trsm-wa:panic@1").unwrap()));
    let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small);
    match reg.run_cfg("trsm-wa", cfg) {
        Err(EngineError::Panicked { workload, payload }) => {
            assert_eq!(workload, "trsm-wa");
            assert!(payload.contains("fault-injected"), "{payload}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The fault fired on invocation 1 only; the cell recovers.
    assert!(reg.run_cfg("trsm-wa", cfg).is_ok());
}

#[test]
fn stall_then_retry_succeeds_within_the_budget() {
    // Invocation 1 stalls past the deadline, invocation 2 (the retry) is
    // clean: the canonical timeout-retry-then-succeed path.
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("cholesky-wa:stall=5000@1").unwrap()));
    let cfg = RunCfg::new(BackendKind::Explicit, Scale::Small)
        .with_limits(RunLimits::new(Some(Duration::from_millis(200)), 1));
    let (res, attempts) = reg.run_cfg_traced("cholesky-wa", cfg);
    assert!(res.is_ok(), "{res:?}");
    assert_eq!(attempts, 2);
    assert_eq!(reg.fault_plan().unwrap().invocations("cholesky-wa"), 2);
}

#[test]
fn panic_then_retry_succeeds_and_is_deterministic() {
    for _ in 0..2 {
        let mut reg = registry();
        reg.set_fault_plan(Some(FaultPlan::parse("matmul-wa:panic@1").unwrap()));
        let cfg =
            RunCfg::new(BackendKind::Explicit, Scale::Small).with_limits(RunLimits::new(None, 2));
        let (res, attempts) = reg.run_cfg_traced("matmul-wa", cfg);
        let r = res.expect("retry should recover from a one-shot panic");
        assert_eq!(attempts, 2, "panic@1 must cost exactly one retry");
        assert!(r.writes_to_slow() > 0);
    }
}

#[test]
fn corrupted_counters_break_cross_model_agreement() {
    // matmul-wa's explicit and simmed slow writes agree exactly (the
    // conformance suite's Exact cell); injecting corruption into the
    // simmed run must produce a detectable disagreement of exactly the
    // corruption offset — proving a counter-corruption fault cannot slip
    // through the agreement checks.
    let mut reg = registry();
    reg.set_fault_plan(Some(FaultPlan::parse("matmul-wa:corrupt@1").unwrap()));
    let corrupted = reg
        .run_cfg("matmul-wa", RunCfg::new(BackendKind::Simmed, Scale::Small))
        .unwrap();
    let clean_explicit = reg
        .run_cfg(
            "matmul-wa",
            RunCfg::new(BackendKind::Explicit, Scale::Small),
        )
        .unwrap();
    let c = corrupted.slow_traffic().writes_to_slow();
    let e = clean_explicit.slow_traffic().writes_to_slow();
    assert_eq!(c, e + CORRUPTION_OFFSET, "corruption must be visible");
    assert!(corrupted.notes.iter().any(|n| n.contains("fault-injected")));
}

#[test]
fn timeout_limits_do_not_change_a_clean_cells_counters() {
    // The watchdog path runs the cell on a helper thread; counters must
    // be identical to the inline path.
    let reg = registry();
    let inline = reg
        .run_cfg(
            "matmul-wa",
            RunCfg::new(BackendKind::Explicit, Scale::Small),
        )
        .unwrap();
    let watched = reg
        .run_cfg(
            "matmul-wa",
            RunCfg::new(BackendKind::Explicit, Scale::Small)
                .with_limits(RunLimits::new(Some(Duration::from_secs(60)), 3)),
        )
        .unwrap();
    assert_eq!(inline.writes_per_level, watched.writes_per_level);
    assert_eq!(inline.flops, watched.flops);
}
