//! Cross-model agreement: the explicit block-movement model and the cache
//! simulator are independent implementations of the paper's refined
//! model, so for the WA kernels their slow-memory write counts must
//! coincide — programmatically, through the registry, not by eyeball.
//!
//! Tolerances (documented per ISSUE 3):
//!
//! * `matmul-wa` — **exact**. Blocks are whole cache lines by
//!   construction (`sim_block_and_dim` rounds to 8-word lines) and the
//!   simulator is flushed, so LRU write-backs equal the explicit stores
//!   word-for-word (Proposition 6.1).
//! * `nbody-wa` — **2%**. The explicit model counts particles and the
//!   simulator counts words (4 words/body), so the comparison converts
//!   via `WORDS_PER_BODY`; line granularity (2 bodies/line) and LRU edge
//!   effects at block seams may cost a few lines either way. At the
//!   current geometry the counts agree exactly.

use wa_bench::registry::registry;
use wa_core::{BackendKind, Scale};

/// Slow-memory writes (words) for `name` on `backend`.
fn writes_to_slow(name: &str, backend: BackendKind) -> u64 {
    registry()
        .run(name, backend, Scale::Small)
        .unwrap_or_else(|e| panic!("{name} on {backend}: {e}"))
        .writes_to_slow()
}

#[test]
fn wa_matmul_explicit_and_simmed_slow_writes_agree_exactly() {
    let explicit = writes_to_slow("matmul-wa", BackendKind::Explicit);
    let simmed = writes_to_slow("matmul-wa", BackendKind::Simmed);
    assert!(explicit > 0);
    assert_eq!(
        explicit, simmed,
        "explicit {explicit} vs simulated {simmed} slow-memory writes"
    );
}

#[test]
fn wa_nbody_explicit_and_simmed_slow_writes_agree_within_2_percent() {
    // Explicit counts particles; convert to words before comparing.
    let explicit_particles = writes_to_slow("nbody-wa", BackendKind::Explicit);
    let explicit_words = explicit_particles * nbody::force::WORDS_PER_BODY as u64;
    let simmed_words = writes_to_slow("nbody-wa", BackendKind::Simmed);
    let diff = explicit_words.abs_diff(simmed_words) as f64;
    assert!(explicit_words > 0);
    assert!(
        diff / explicit_words as f64 <= 0.02,
        "explicit {explicit_words} vs simulated {simmed_words} slow-memory write words"
    );
}

#[test]
fn explicit_and_simmed_reports_share_the_json_schema() {
    let reg = registry();
    let exp = reg
        .run("matmul-wa", BackendKind::Explicit, Scale::Small)
        .unwrap()
        .to_json();
    let sim = reg
        .run("matmul-wa", BackendKind::Simmed, Scale::Small)
        .unwrap()
        .to_json();
    for key in [
        "\"workload\":",
        "\"backend\":",
        "\"scale\":",
        "\"config\":",
        "\"boundaries\":",
        "\"load_words\":",
        "\"store_words\":",
        "\"writes_per_level\":",
        "\"flops\":",
        "\"wall_ns\":",
        "\"notes\":",
    ] {
        assert!(exp.contains(key), "explicit report missing {key}");
        assert!(sim.contains(key), "simulated report missing {key}");
    }
}

#[test]
fn non_wa_matmul_writes_far_exceed_the_wa_count_on_both_models() {
    // The agreement is meaningful only if the models also agree on the
    // *contrast*: the non-WA order must write several times the output on
    // each model (n/b = 2 blocks per dimension here -> ~2x the output).
    for backend in [BackendKind::Explicit, BackendKind::Simmed] {
        let wa = writes_to_slow("matmul-wa", backend);
        let non = writes_to_slow("matmul-nonwa", backend);
        assert!(
            non >= 2 * wa,
            "{backend}: non-WA {non} vs WA {wa} slow-memory writes"
        );
    }
}
