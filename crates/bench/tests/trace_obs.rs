//! Trace-output guarantees: the Chrome trace JSON produced by an
//! installed [`wa_core::obs::Recorder`] is schema-valid (required keys,
//! monotone timestamps, balanced Begin/End pairs per thread) and — under
//! the logical clock — byte-deterministic across runs of the same cell.
//! One test function on purpose: the recorder slot is process-global, so
//! concurrent test threads must not share it.

use std::collections::HashMap;
use std::sync::Arc;
use wa_bench::registry::registry;
use wa_core::engine::{BackendKind, RunCfg, Scale};
use wa_core::obs::{self, Clock, Event, EventKind, PhaseRow, Recorder};

/// Run one simmed cell under a fresh logical-clock recorder and return
/// everything it captured.
fn capture(name: &str) -> (String, Vec<Event>, Vec<PhaseRow>) {
    let reg = registry();
    let rec = Arc::new(Recorder::new(Clock::logical()));
    obs::install(rec.clone());
    let (res, _) = reg.run_cfg_traced(
        name,
        RunCfg::with_depth(BackendKind::Simmed, Scale::Small, 1),
    );
    obs::uninstall();
    res.unwrap_or_else(|e| panic!("simmed {name} must succeed: {e}"));
    (rec.to_chrome_json(), rec.events(), rec.take_phase_rows())
}

#[test]
fn trace_json_is_schema_valid_deterministic_and_carries_phase_rows() {
    let (json1, events, phases_mm) = capture("matmul-wa");
    let (json2, _, _) = capture("matmul-wa");

    // Byte-determinism: same cell, logical clock, fresh recorder.
    assert_eq!(json1, json2, "logical-clock traces must be byte-identical");

    // Document shape + per-event required keys.
    assert!(json1.starts_with("{\"traceEvents\":[\n"));
    assert!(json1.ends_with("\n]}\n"));
    let body = &json1["{\"traceEvents\":[\n".len()..json1.len() - "\n]}\n".len()];
    assert!(!body.is_empty(), "trace must not be empty");
    for line in body.lines() {
        let line = line.trim_end_matches(',');
        for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(line.contains(key), "event missing {key}: {line}");
        }
    }

    // Timestamps monotone non-decreasing in emission order; Begin/End
    // balanced per thread with matching names.
    let mut last_ts = 0u64;
    let mut stacks: HashMap<u32, Vec<&str>> = HashMap::new();
    for e in &events {
        assert!(e.ts >= last_ts, "ts must be non-decreasing");
        last_ts = e.ts;
        match &e.kind {
            EventKind::Begin { name, .. } => stacks.entry(e.tid).or_default().push(name),
            EventKind::End { name, .. } => {
                let open = stacks.entry(e.tid).or_default().pop();
                assert_eq!(
                    open.map(str::to_string),
                    Some(name.clone()),
                    "End must close the innermost Begin on its thread"
                );
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // The engine instrumented this run: attempt + run spans, and the
    // simulator closed its counter tracks.
    let has_span = |want: &str| {
        events.iter().any(|e| {
            matches!(&e.kind, EventKind::Begin { name, cat } if name == want && *cat == "engine")
        })
    };
    assert!(has_span("attempt"), "missing engine attempt span");
    assert!(has_span("run"), "missing engine run span");
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Counter { name, .. } if name == "memsim DRAM")),
        "missing simulator counter track"
    );

    // Per-phase rows reached the recorder for `harness profile`: matmul's
    // kernel marks phases, and the flush write-backs are attributed.
    assert!(!phases_mm.is_empty(), "matmul-wa must report phase rows");
    assert!(
        phases_mm.iter().any(|p| p.phase == "gemm-read"),
        "phases: {:?}",
        phases_mm.iter().map(|p| &p.phase).collect::<Vec<_>>()
    );
    assert!(
        phases_mm.iter().map(|p| p.dram_writes).sum::<u64>() > 0,
        "matmul-wa phases must carry DRAM writes"
    );

    // And a Krylov workload: cg marks spmv/dot/vec-update through SimIo.
    let (_, _, phases_cg) = capture("cg");
    for want in ["spmv", "dot", "vec-update"] {
        assert!(
            phases_cg.iter().any(|p| p.phase == want),
            "cg missing phase {want}: {:?}",
            phases_cg.iter().map(|p| &p.phase).collect::<Vec<_>>()
        );
    }
    assert!(phases_cg.iter().map(|p| p.dram_writes).sum::<u64>() > 0);
}
