//! Property tests for the sweep journal's cell identity: the config hash
//! must be stable across `RunCfg` construction order, re-serialization
//! round trips, and execution-limit changes — otherwise `--resume` would
//! silently re-run (or worse, silently skip) cells.

use proptest::prelude::*;
use std::time::Duration;
use wa_core::engine::{BackendKind, RunCfg, RunLimits, Scale};

fn backend_from(i: usize) -> BackendKind {
    BackendKind::ALL[i % BackendKind::ALL.len()]
}

fn scale_from(b: bool) -> Scale {
    if b {
        Scale::Small
    } else {
        Scale::Paper
    }
}

const WORKLOADS: &[&str] = &[
    "matmul-wa",
    "matmul-nonwa",
    "cholesky-wa",
    "lu-rl",
    "cg",
    "tsqr-stream",
    "nbody-wa",
    "extsort",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Re-serialization round trip: key → parse → rebuild → same key and
    /// same hash.
    #[test]
    fn hash_survives_reserialization(
        bi in 0usize..4,
        small in any::<bool>(),
        depth in 1usize..4,
        wi in 0usize..8,
    ) {
        let workload = WORKLOADS[wi];
        let cfg = RunCfg::with_depth(backend_from(bi), scale_from(small), depth);
        let key = cfg.cell_key(workload);
        let (w2, cfg2) = RunCfg::parse_cell_key(&key).unwrap();
        prop_assert_eq!(w2.as_str(), workload);
        prop_assert_eq!(cfg2.cell_key(workload), key.clone());
        prop_assert_eq!(cfg2.config_hash(workload), cfg.config_hash(workload));
        // And a second round trip is a fixed point.
        let (_, cfg3) = RunCfg::parse_cell_key(&cfg2.cell_key(workload)).unwrap();
        prop_assert_eq!(cfg3.config_hash(workload), cfg.config_hash(workload));
    }

    /// Field order / construction path must not matter: building the same
    /// scenario through different constructors and literal orders yields
    /// one hash.
    #[test]
    fn hash_ignores_construction_order(
        bi in 0usize..4,
        small in any::<bool>(),
        depth in 1usize..4,
        wi in 0usize..8,
    ) {
        let workload = WORKLOADS[wi];
        let (backend, scale) = (backend_from(bi), scale_from(small));
        let a = RunCfg::with_depth(backend, scale, depth);
        let b = RunCfg { depth, scale, backend, limits: RunLimits::default() };
        let mut c = RunCfg::new(backend, scale);
        c.depth = depth;
        prop_assert_eq!(a.config_hash(workload), b.config_hash(workload));
        prop_assert_eq!(a.config_hash(workload), c.config_hash(workload));
    }

    /// Execution limits are policy, not identity: any timeout/retry
    /// combination hashes identically, so journals written under one
    /// deadline resume under another.
    #[test]
    fn hash_ignores_limits(
        bi in 0usize..4,
        small in any::<bool>(),
        depth in 1usize..4,
        timeout_ms in 0u64..10_000,
        retries in 0u32..16,
    ) {
        let base = RunCfg::with_depth(backend_from(bi), scale_from(small), depth);
        let timeout = if timeout_ms == 0 { None } else { Some(Duration::from_millis(timeout_ms)) };
        let limited = base.with_limits(RunLimits::new(timeout, retries));
        prop_assert_eq!(limited.config_hash("matmul-wa"), base.config_hash("matmul-wa"));
        prop_assert_eq!(limited.cell_key("matmul-wa"), base.cell_key("matmul-wa"));
    }

    /// Distinct cells get distinct hashes (across the whole scenario
    /// space this sweep can address — small enough to demand no
    /// collisions outright).
    #[test]
    fn distinct_cells_hash_distinctly(
        bi in 0usize..4,
        bj in 0usize..4,
        small_i in any::<bool>(),
        small_j in any::<bool>(),
        di in 1usize..4,
        dj in 1usize..4,
        wi in 0usize..8,
        wj in 0usize..8,
    ) {
        let a = RunCfg::with_depth(backend_from(bi), scale_from(small_i), di);
        let b = RunCfg::with_depth(backend_from(bj), scale_from(small_j), dj);
        let (wa, wb) = (WORKLOADS[wi], WORKLOADS[wj]);
        prop_assume!(a.cell_key(wa) != b.cell_key(wb));
        prop_assert!(a.config_hash(wa) != b.config_hash(wb));
    }
}
