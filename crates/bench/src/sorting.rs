//! §9 conjecture exploration: sorting's read/write frontier.
//!
//! The paper conjectures no sorting algorithm performs `o(n log_M n)`
//! writes and `O(n log_M n)` reads simultaneously. We chart both ends:
//! the I/O-optimal merge sort (writes ≈ reads ≈ n·passes) and the
//! write-minimal selection sort (writes = n, reads = n²/M).

use crate::util::print_table;
use extsort::merge::external_merge_sort;
use extsort::selection::low_write_sort;
use extsort::SortIo;
use wa_core::XorShift;

pub fn run(n: usize, m: usize) {
    let mut rng = XorShift::new(515);
    let data: Vec<f64> = (0..n).map(|_| rng.next_unit()).collect();

    let mut d1 = data.clone();
    let mut io1 = SortIo::default();
    external_merge_sort(&mut d1, m, m / 2, &mut io1);

    let mut d2 = data.clone();
    let mut io2 = SortIo::default();
    low_write_sort(&mut d2, m, &mut io2);
    assert_eq!(d1, d2, "sorts disagree");

    let rows = vec![
        vec![
            "k-way merge sort".to_string(),
            io1.reads().to_string(),
            io1.writes().to_string(),
            io1.passes.to_string(),
            format!("{:.2}", io1.write_fraction()),
        ],
        vec![
            "low-write selection".to_string(),
            io2.reads().to_string(),
            io2.writes().to_string(),
            io2.passes.to_string(),
            format!("{:.2}", io2.write_fraction()),
        ],
    ];
    print_table(
        &format!("§9 sorting conjecture (n = {n}, M = {m} elements)"),
        &["algorithm", "reads", "writes", "passes", "write frac"],
        &rows,
    );
    println!(
        "conjecture: o(n log_M n) writes (here: n = {}) forces ω(n log_M n) reads (here: n²/M = {})",
        n,
        n * n / m
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_clean() {
        super::run(2048, 64);
    }
}
