//! Theorem 4 — the Model 2.2 impossibility, measured.
//!
//! No algorithm attains both the interprocessor-word bound `W2` and the
//! NVM-write bound `W1`. Sweeping the replication factor, the 2.5D
//! out-of-L2 algorithm rides the `W2` curve while its NVM writes stay
//! `Ω(n²/P^{2/3})`-high; SUMMAL3ooL2 pins NVM writes at `W1` while its
//! network volume blows past `W2`.

use crate::util::{print_table, sci};
use parallel::machine::{Machine, Staging};
use parallel::mm25d::{mm25d, Mm25Config};
use parallel::summa::summa_l3_ool2;
use wa_core::{CostParams, Mat};

pub struct T4Row {
    pub algo: String,
    pub c: usize,
    pub net_words: u64,
    pub nvm_writes: u64,
    pub w1: f64,
    pub w2: f64,
}

pub fn run_rows(n: usize, p: usize, cs: &[usize], m2: u64) -> Vec<T4Row> {
    let a = Mat::random(n, n, 21);
    let b = Mat::random(n, n, 22);
    let cp = CostParams::nvm_cluster();
    let mut out = Vec::new();
    for &c in cs {
        let q2 = (p / c) as f64;
        if (q2.sqrt().round() as usize).pow(2) * c != p {
            continue;
        }
        let mut m = Machine::new(p, cp);
        let _ = mm25d(
            &mut m,
            &a,
            &b,
            Mm25Config {
                p,
                c,
                at: Staging::L3,
                ool2: true,
                m2,
            },
        );
        let mc = m.max_counters();
        out.push(T4Row {
            algo: "2.5DMML3ooL2".into(),
            c,
            net_words: mc.net_recv_words,
            nvm_writes: mc.l3_write_words,
            w1: (n * n) as f64 / p as f64,
            w2: (n * n) as f64 / ((p * c) as f64).sqrt(),
        });
    }
    // SUMMA variant (2D grid, c = 1).
    let q = (p as f64).sqrt().round() as usize;
    if q * q == p {
        let mut m = Machine::new(p, cp);
        let _ = summa_l3_ool2(&mut m, &a, &b, q, m2);
        let mc = m.max_counters();
        out.push(T4Row {
            algo: "SUMMAL3ooL2".into(),
            c: 1,
            net_words: mc.net_recv_words,
            nvm_writes: mc.l3_write_words,
            w1: (n * n) as f64 / p as f64,
            w2: (n * n) as f64 / (p as f64).sqrt(),
        });
    }
    out
}

pub fn run(n: usize, p: usize, m2: u64) {
    let rows = run_rows(n, p, &[1, 2, 4], m2);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.c.to_string(),
                r.net_words.to_string(),
                r.nvm_writes.to_string(),
                sci(r.w2),
                sci(r.w1),
            ]
        })
        .collect();
    print_table(
        &format!("Theorem 4 trade-off, measured (n={n}, P={p}, per-node words)"),
        &[
            "algorithm",
            "c",
            "net recv",
            "NVM writes",
            "W2 bound",
            "W1 bound",
        ],
        &body,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_is_visible() {
        // c = 1 only: replication overheads need P ≫ c³ to amortize (see
        // the mm25d tests); the Theorem 4 trade-off itself is c-free.
        let rows = run_rows(32, 16, &[1], 48);
        let ool2: Vec<&T4Row> = rows.iter().filter(|r| r.algo.starts_with("2.5D")).collect();
        let summa = rows.iter().find(|r| r.algo.starts_with("SUMMA")).unwrap();
        // SUMMA attains W1 exactly; its network exceeds the 2.5D runs'.
        assert_eq!(summa.nvm_writes as f64, summa.w1);
        for r in &ool2 {
            assert!(
                r.nvm_writes as f64 > r.w1,
                "{} c={} writes {} vs W1 {}",
                r.algo,
                r.c,
                r.nvm_writes,
                r.w1
            );
            assert!(
                summa.net_words > r.net_words,
                "SUMMA net {} must exceed ooL2 net {}",
                summa.net_words,
                r.net_words
            );
        }
    }
}
