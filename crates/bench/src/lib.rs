//! # wa-bench — experiment harness
//!
//! One module per paper artifact; the `harness` binary dispatches to them.
//! See DESIGN.md's per-experiment index (E1–E16) and EXPERIMENTS.md for
//! recorded outputs.
//!
//! All experiments run at a *scaled* geometry by default (capacities ÷256
//! vs. the paper's Xeon 7560, dimensions ÷16) and at the reference scale
//! (÷64 capacities, ÷8 dimensions) with `--scale paper`; see
//! [`scale::Scale`] for the exact mapping and `memsim::xeon` for why the
//! block-per-cache ratios — which drive every observed effect — are
//! preserved.

pub mod bounds_exp;
pub mod fig2;
pub mod fig5;
pub mod ksm;
pub mod lu_par;
pub mod props;
pub mod registry;
pub mod scale;
pub mod sorting;
pub mod sweep;
pub mod tables;
pub mod theorem4;
pub mod util;
pub mod waopt;
