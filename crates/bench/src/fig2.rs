//! Figure 2 — L3 cache-counter measurements of classical matmul variants.
//!
//! Six plots in the paper, all with outer dimensions 4000 fixed and the
//! middle dimension `m` swept: (a) cache-oblivious recursive, (b) MKL
//! (our `tuned` stand-in), (c)–(f) two-level WA with L3 blocking sizes
//! {700, 800, 900, 1023}. Reported events per run: `L3_VICTIMS.M`
//! (write-backs to DRAM), `L3_VICTIMS.E` (clean evictions),
//! `LLC_S_FILLS.E` (DRAM reads), the write lower bound (C's size in
//! lines), and — for the CO variant — the ideal-cache miss model.

use crate::scale::{Repl, Scale};
use crate::util::{mil, print_table, setup_matmul};
use dense::matmul::{co_matmul, ml_matmul, tuned_matmul, RecOrder};
use memsim::ideal::co_matmul_ideal_misses;
use memsim::Policy;

/// Which Figure 2 panel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig2Variant {
    /// (a) recursive cache-oblivious.
    CacheOblivious,
    /// (b) tuned, write-oblivious ("MKL" stand-in).
    Tuned,
    /// (c)–(f) two-level WA with this L3 block size (slab order below).
    TwoLevelWa(usize),
}

/// One measured row of a Figure 2 panel.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Row {
    pub m: usize,
    pub victims_m: u64,
    pub victims_e: u64,
    pub fills: u64,
    pub write_lb_lines: u64,
    pub ideal_misses: Option<f64>,
}

/// Run one variant at one middle dimension.
pub fn run_point(scale: Scale, variant: Fig2Variant, m: usize, repl: Repl) -> Fig2Row {
    let n = scale.outer_dim();
    let geo = scale.geometry(Policy::Lru);
    let (mut mem, d) = setup_matmul(n, m, n, scale.build_sim(repl), || scale.build_sim(repl));
    let (b2, b1) = scale.inner_blocks();
    match variant {
        Fig2Variant::CacheOblivious => co_matmul(&mut mem, d[0], d[1], d[2], b1),
        Fig2Variant::Tuned => tuned_matmul(&mut mem, d[0], d[1], d[2], b2),
        Fig2Variant::TwoLevelWa(b3) => ml_matmul(
            &mut mem,
            d[0],
            d[1],
            d[2],
            &[b3, b2, b1],
            RecOrder::COuter,
            RecOrder::AOuter,
        ),
    }
    let c = mem.sim.llc();
    let lw = geo.line_words as u64;
    let ideal = match variant {
        Fig2Variant::CacheOblivious => Some(co_matmul_ideal_misses(
            n as u64,
            m as u64,
            n as u64,
            geo.l3_words as u64,
            lw,
        )),
        _ => None,
    };
    Fig2Row {
        m,
        victims_m: c.victims_m,
        victims_e: c.victims_e,
        fills: c.fills,
        write_lb_lines: (n * n) as u64 / lw,
        ideal_misses: ideal,
    }
}

/// Run a full panel (sweep of `m`).
pub fn run_panel(scale: Scale, variant: Fig2Variant, repl: Repl) -> Vec<Fig2Row> {
    scale
        .m_sweep()
        .into_iter()
        .map(|m| run_point(scale, variant, m, repl))
        .collect()
}

/// Print one panel in the paper's layout.
pub fn print_panel(title: &str, rows: &[Fig2Row]) {
    let header = [
        "m",
        "L3_VICTIMS.M",
        "L3_VICTIMS.E",
        "LLC_S_FILLS.E",
        "Write L.B.",
        "Ideal misses",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                mil(r.victims_m),
                mil(r.victims_e),
                mil(r.fills),
                mil(r.write_lb_lines),
                r.ideal_misses
                    .map(|x| format!("{:.3}M", x / 1e6))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(title, &header, &body);
}

/// Run and print all six panels (the whole figure).
pub fn run_figure(scale: Scale, repl: Repl) {
    let blocks = scale.l3_blocks();
    print_panel(
        "Fig 2a: cache-oblivious recursive matmul",
        &run_panel(scale, Fig2Variant::CacheOblivious, repl),
    );
    print_panel(
        "Fig 2b: tuned write-oblivious matmul (MKL stand-in)",
        &run_panel(scale, Fig2Variant::Tuned, repl),
    );
    for &(b3, label) in &blocks {
        print_panel(
            &format!("Fig 2c-f: two-level WA, L3 block {b3} (paper {label})"),
            &run_panel(scale, Fig2Variant::TwoLevelWa(b3), repl),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's headline shapes, at tiny scale: WA write-backs flat
    /// near the bound, CO/tuned write-backs growing with m.
    #[test]
    fn shapes_reproduce() {
        let scale = Scale::Small;
        let blocks = scale.l3_blocks();
        let b3 = blocks.last().unwrap().0;
        // The growth regime needs A and B to overflow L3 by a wide margin
        // (paper: growth starts once 2·4000·m exceeds the 3.1M-word L3).
        let small_m = 8;
        let big_m = 256;
        let repl = Repl::FaLru;

        let wa_small = run_point(scale, Fig2Variant::TwoLevelWa(b3), small_m, repl);
        let wa_big = run_point(scale, Fig2Variant::TwoLevelWa(b3), big_m, repl);
        // WA stays within a modest factor of the bound across the sweep.
        assert!(
            wa_big.victims_m < 3 * wa_big.write_lb_lines,
            "WA {} vs bound {}",
            wa_big.victims_m,
            wa_big.write_lb_lines
        );
        assert!(wa_big.victims_m < 4 * wa_small.victims_m.max(1));

        let co_small = run_point(scale, Fig2Variant::CacheOblivious, small_m, repl);
        let co_big = run_point(scale, Fig2Variant::CacheOblivious, big_m, repl);
        // CO write-backs grow with m (32x dim -> >3x events).
        assert!(
            co_big.victims_m > 3 * co_small.victims_m,
            "CO {} -> {}",
            co_small.victims_m,
            co_big.victims_m
        );
        assert!(co_big.victims_m > 2 * wa_big.victims_m);

        let tuned_big = run_point(scale, Fig2Variant::Tuned, big_m, repl);
        assert!(tuned_big.victims_m > 2 * wa_big.victims_m);
    }

    #[test]
    fn co_fills_track_ideal_model() {
        let r = run_point(Scale::Small, Fig2Variant::CacheOblivious, 32, Repl::FaLru);
        let ideal = r.ideal_misses.unwrap();
        let ratio = r.fills as f64 / ideal;
        assert!(
            (0.4..6.0).contains(&ratio),
            "fills {} vs ideal {ideal}: ratio {ratio}",
            r.fills
        );
    }
}
