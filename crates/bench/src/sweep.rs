//! Sweep journaling: the crash-safe record behind `harness sweep`'s
//! `--resume` and per-cell `status` reporting.
//!
//! Each completed cell — success *or* typed failure — appends one JSON
//! line to the journal, flushed immediately, so a killed sweep loses at
//! most the cells still in flight. Lines are keyed by the cell's stable
//! config hash ([`wa_core::RunCfg::config_hash`], hex), which excludes
//! execution limits: re-running with a different `--timeout`/`--retries`
//! resumes the same journal. On `--resume`, cells whose *last* journaled
//! status is `ok` are skipped; failed and missing cells re-run, and their
//! new outcomes append (last record wins).
//!
//! Line schema (stable field order):
//!
//! ```json
//! {"key":"9f..","workload":"matmul-wa","backend":"explicit","scale":"small",
//!  "depth":1,"status":"ok","attempts":1,"retries_used":0,"wall_ns":123456,
//!  "wall_ms":0.123,"error":null,"crc":"0123456789abcdef"}
//! ```
//!
//! `status` is `ok` or an [`wa_core::EngineError::kind`] tag
//! (`panicked`, `timed-out`, `cancelled`, `failed`, …). `crc` is the
//! FNV-1a-64 hash (16 hex digits) of the record *without* the crc field:
//! a record whose checksum fails to verify — a bit flip, not just a torn
//! tail — is treated as missing on `--resume`, so the cell re-runs.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use wa_core::engine::{BackendKind, Scale};

/// One journaled cell outcome.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Hex-encoded stable config hash — the resume key.
    pub key: String,
    pub workload: String,
    pub backend: BackendKind,
    pub scale: Scale,
    pub depth: usize,
    /// `ok` or an `EngineError::kind` tag.
    pub status: String,
    /// Dispatch attempts consumed (retries included) across all repeats.
    pub attempts: u32,
    /// Retries beyond the first attempt of each dispatch
    /// (`attempts − dispatches`); nonzero only when the cell was faulty.
    pub retries_used: u32,
    /// Median wall time of the successful run; 0 on failure.
    pub wall_ns: u128,
    /// Rendered error for failed cells.
    pub error: Option<String>,
}

impl CellOutcome {
    /// One JSONL line, stable field order, no trailing newline. The final
    /// `crc` field is the FNV-1a-64 hash of everything before it (the
    /// record body up to and including `"error":…`), so readers can
    /// detect mid-file corruption, not just torn tails.
    pub fn to_jsonl(&self) -> String {
        let error = match &self.error {
            None => "null".to_string(),
            Some(e) => format!("\"{}\"", escape(e)),
        };
        let body = format!(
            "{{\"key\":\"{}\",\"workload\":\"{}\",\"backend\":\"{}\",\"scale\":\"{}\",\
             \"depth\":{},\"status\":\"{}\",\"attempts\":{},\"retries_used\":{},\
             \"wall_ns\":{},\"wall_ms\":{:.3},\"error\":{}",
            self.key,
            escape(&self.workload),
            self.backend.as_str(),
            self.scale.as_str(),
            self.depth,
            escape(&self.status),
            self.attempts,
            self.retries_used,
            self.wall_ns,
            self.wall_ns as f64 / 1e6,
            error
        );
        let crc = wa_core::engine::fnv1a64(body.as_bytes());
        format!("{body},\"crc\":\"{crc:016x}\"}}")
    }
}

/// Verify a journal line's trailing `crc` field against the body it
/// covers. Returns false for lines without a crc (pre-checksum journals
/// are conservatively re-run) and for any mismatch.
fn crc_ok(line: &str) -> bool {
    let Some(idx) = line.rfind(",\"crc\":\"") else {
        return false;
    };
    let body = &line[..idx];
    let rest = &line[idx + ",\"crc\":\"".len()..];
    let Some(hex) = rest.strip_suffix("\"}") else {
        return false;
    };
    let Ok(stored) = u64::from_str_radix(hex, 16) else {
        return false;
    };
    wa_core::engine::fnv1a64(body.as_bytes()) == stored
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract the value of a simple string field (`"name":"value"`) from one
/// journal line. Key and status values never contain escapes, so plain
/// slicing suffices for resume bookkeeping.
fn extract_str_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let tag = format!("\"{field}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Read a journal, returning each cell key's *last* recorded status.
/// Malformed lines (a torn write from a killed sweep) and lines whose
/// trailing checksum fails to verify (a mid-file bit flip) are skipped,
/// so the cells they named re-run on `--resume`.
pub fn completed_cells(path: &Path) -> std::io::Result<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    let f = BufReader::new(File::open(path)?);
    for line in f.lines() {
        let line = line?;
        if !crc_ok(&line) {
            continue;
        }
        if let (Some(key), Some(status)) = (
            extract_str_field(&line, "key"),
            extract_str_field(&line, "status"),
        ) {
            map.insert(key.to_string(), status.to_string());
        }
    }
    Ok(map)
}

/// Append-mode journal writer shared across sweep worker threads; every
/// [`Journal::record`] writes one line and flushes it to disk.
pub struct Journal {
    path: PathBuf,
    w: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Open `path` for journaling. `append = false` truncates (a fresh
    /// sweep); `append = true` extends an existing journal (`--resume`).
    pub fn open(path: &Path, append: bool) -> std::io::Result<Journal> {
        let f = OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            w: Mutex::new(BufWriter::new(f)),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one outcome and flush, so the line survives a process kill.
    pub fn record(&self, o: &CellOutcome) -> std::io::Result<()> {
        let mut w = self.w.lock().unwrap();
        writeln!(w, "{}", o.to_jsonl())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(key: &str, status: &str, error: Option<&str>) -> CellOutcome {
        CellOutcome {
            key: key.to_string(),
            workload: "matmul-wa".to_string(),
            backend: BackendKind::Explicit,
            scale: Scale::Small,
            depth: 1,
            status: status.to_string(),
            attempts: 1,
            retries_used: 0,
            wall_ns: 42,
            error: error.map(str::to_string),
        }
    }

    #[test]
    fn jsonl_line_is_stable_and_escaped() {
        let line = outcome("abc123", "panicked", Some("oh \"no\"\nnewline")).to_jsonl();
        assert!(line.starts_with("{\"key\":\"abc123\",\"workload\":\"matmul-wa\""));
        assert!(line.contains("\"status\":\"panicked\""));
        assert!(line.contains("\"retries_used\":0"));
        assert!(line.contains("\"wall_ms\":0.000"));
        assert!(line.contains("\\\"no\\\"\\nnewline"));
        let ok = outcome("abc123", "ok", None).to_jsonl();
        assert!(ok.contains("\"error\":null,\"crc\":\""));
        assert!(ok.ends_with("\"}"));
    }

    #[test]
    fn crc_verifies_and_rejects_flips() {
        let line = outcome("abc123", "ok", None).to_jsonl();
        assert!(crc_ok(&line), "freshly written line must verify");
        // A single-character flip in the body invalidates the checksum.
        let flipped = line.replacen("\"status\":\"ok\"", "\"status\":\"oj\"", 1);
        assert_ne!(line, flipped);
        assert!(!crc_ok(&flipped));
        // Lines without a crc (legacy journals) are conservatively
        // treated as unverified.
        assert!(!crc_ok("{\"key\":\"k\",\"status\":\"ok\",\"error\":null}"));
        // A corrupted crc field itself also fails.
        let bad_crc = line[..line.len() - 3].to_string() + "zz\"}";
        assert!(!crc_ok(&bad_crc));
    }

    #[test]
    fn journal_round_trips_last_status_wins() {
        let dir = std::env::temp_dir().join(format!("wa-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        {
            let j = Journal::open(&path, false).unwrap();
            j.record(&outcome("k1", "panicked", Some("boom"))).unwrap();
            j.record(&outcome("k2", "ok", None)).unwrap();
        }
        {
            // Resume appends; k1 recovers.
            let j = Journal::open(&path, true).unwrap();
            j.record(&outcome("k1", "ok", None)).unwrap();
        }
        // A torn final line must not poison the parse.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"k3\",\"work").unwrap();
        }
        let map = completed_cells(&path).unwrap();
        assert_eq!(map.get("k1").map(String::as_str), Some("ok"));
        assert_eq!(map.get("k2").map(String::as_str), Some("ok"));
        assert!(!map.contains_key("k3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncating_open_discards_old_journal() {
        let dir = std::env::temp_dir().join(format!("wa-journal-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        Journal::open(&path, false)
            .unwrap()
            .record(&outcome("old", "ok", None))
            .unwrap();
        Journal::open(&path, false)
            .unwrap()
            .record(&outcome("new", "ok", None))
            .unwrap();
        let map = completed_cells(&path).unwrap();
        assert!(!map.contains_key("old"));
        assert!(map.contains_key("new"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
