//! Tables 1 and 2 — parallel matmul communication costs: the paper's
//! closed-form entries next to the event simulator's measured counts.

use crate::util::{print_table, sci};
use parallel::costmodel::{
    table1_25dmml2, table1_25dmml3, table1_2dmml2, table2_25dmml3_ool2, table2_summal3_ool2,
    CommCosts,
};
use parallel::machine::{Machine, Staging};
use parallel::mm25d::{mm25d, Mm25Config};
use parallel::summa::summa_l3_ool2;
use wa_core::{CostParams, Mat};

fn model_row(name: &str, c: &CommCosts) -> Vec<String> {
    vec![
        name.to_string(),
        sci(c.l21_words),
        sci(c.l12_words),
        sci(c.nw_words),
        sci(c.l32_words),
        sci(c.l23_words),
    ]
}

/// Print Table 1 (Model 2.1) for given parameters.
pub fn table1(n: f64, p: f64, c2: f64, c3: f64, cp: &CostParams) {
    let rows = vec![
        model_row("2DMML2", &table1_2dmml2(n, p, cp)),
        model_row("2.5DMML2", &table1_25dmml2(n, p, c2, cp)),
        model_row("2.5DMML3", &table1_25dmml3(n, p, c2, c3, cp)),
    ];
    print_table(
        &format!("Table 1 (words): n={n:.0} P={p:.0} c2={c2:.0} c3={c3:.0}"),
        &[
            "algorithm",
            "L2->L1",
            "L1->L2",
            "network",
            "L3->L2",
            "L2->L3",
        ],
        &rows,
    );
    println!(
        "Model 2.1 decision ratio sqrt(c3/c2)*bNW/(bNW+1.5*b23+b32) = {:.3}  (>1 favors NVM replication)",
        parallel::costmodel::model21_decision_ratio(c2, c3, cp)
    );
}

/// Print Table 2 (Model 2.2).
pub fn table2(n: f64, p: f64, c3: f64, cp: &CostParams) {
    let rows = vec![
        model_row("2.5DMML3ooL2", &table2_25dmml3_ool2(n, p, c3, cp)),
        model_row("SUMMAL3ooL2", &table2_summal3_ool2(n, p, cp)),
    ];
    print_table(
        &format!("Table 2 (words): n={n:.0} P={p:.0} c3={c3:.0}"),
        &[
            "algorithm",
            "L2->L1",
            "L1->L2",
            "network",
            "L3->L2",
            "L2->L3",
        ],
        &rows,
    );
}

/// Measured counterpart: run the simulator at an executable size and
/// compare network words and NVM writes against the model's leading terms.
pub fn measured_comparison(n: usize, p: usize, c: usize, m2: u64) {
    let a = Mat::random(n, n, 11);
    let b = Mat::random(n, n, 12);
    let cp = CostParams::nvm_cluster();

    let mut m1 = Machine::new(p, cp);
    let _ = mm25d(
        &mut m1,
        &a,
        &b,
        Mm25Config {
            p,
            c: 1,
            at: Staging::L2,
            ool2: false,
            m2,
        },
    );
    let mut mc = Machine::new(p, cp);
    let _ = mm25d(
        &mut mc,
        &a,
        &b,
        Mm25Config {
            p,
            c,
            at: Staging::L2,
            ool2: false,
            m2,
        },
    );
    let q = (p as f64).sqrt();
    let rows = vec![
        vec![
            "2D (c=1) measured".into(),
            m1.max_counters().net_recv_words.to_string(),
            sci(2.0 * (n * n) as f64 / q),
        ],
        vec![
            format!("2.5D (c={c}) measured"),
            mc.max_counters().net_recv_words.to_string(),
            sci(2.0 * (n * n) as f64 / ((p * c) as f64).sqrt()),
        ],
    ];
    print_table(
        &format!("Measured vs model leading network term: n={n} P={p}"),
        &["run", "measured words", "model 2n²/√(Pc)"],
        &rows,
    );

    // Model 2.2 pair.
    let mut mo = Machine::new(p, cp);
    let _ = mm25d(
        &mut mo,
        &a,
        &b,
        Mm25Config {
            p,
            c,
            at: Staging::L3,
            ool2: true,
            m2,
        },
    );
    let q2 = ((p / c) as f64).sqrt() as usize;
    let mut ms = Machine::new(q2 * q2, cp);
    let _ = summa_l3_ool2(&mut ms, &a, &b, q2, m2);
    let rows = vec![
        vec![
            "2.5DMML3ooL2".into(),
            mo.max_counters().net_recv_words.to_string(),
            mo.max_counters().l3_write_words.to_string(),
        ],
        vec![
            "SUMMAL3ooL2".into(),
            ms.max_counters().net_recv_words.to_string(),
            ms.max_counters().l3_write_words.to_string(),
        ],
    ];
    print_table(
        "Model 2.2 measured trade-off (per-node words)",
        &["algorithm", "network recv", "NVM writes"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic_and_models_are_consistent() {
        let cp = CostParams::nvm_cluster();
        table1(1e5, 4096.0, 4.0, 16.0, &cp);
        table2(1e6, 65536.0, 8.0, &cp);
        measured_comparison(32, 64, 4, 48);
    }
}
