//! Section 3 / Theorem 1 experiments: measured traffic vs lower bounds for
//! the FFT (Corollary 2), Strassen (Corollary 3), and the Theorem 1
//! invariant across kernels.

use crate::util::{print_table, sci};
use cdag::fft::fft_mem;
use cdag::strassen::{strassen_mem, strassen_scratch_words};
use dense::desc::alloc_layout;
use memsim::{CacheConfig, Mem, MemSim, Policy, SimMem};
use wa_core::bounds;
use wa_core::Mat;

fn cache(words: usize) -> CacheConfig {
    CacheConfig {
        capacity_words: words,
        line_words: 8,
        ways: 0,
        policy: Policy::Lru,
    }
}

/// Corollary 2: FFT write-backs are a constant fraction of total traffic.
pub fn fft_table(sizes: &[usize], m: usize) {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut mem = SimMem::new(2 * n, MemSim::two_level(cache(m)));
        for i in 0..2 * n {
            mem.st(i, ((i * 31 + 7) % 97) as f64 / 97.0);
        }
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cache(m)));
        fft_mem(&mut mem, 0, n);
        mem.sim.flush();
        let c = mem.sim.llc();
        let writes = (c.victims_m + c.flush_victims_m) * 8;
        let reads = c.fills * 8;
        let lb = bounds::fft_write_lower(n as u64, m as u64);
        rows.push(vec![
            n.to_string(),
            reads.to_string(),
            writes.to_string(),
            format!("{:.2}", writes as f64 / reads as f64),
            sci(lb),
            format!("{:.2}", writes as f64 / lb),
        ]);
    }
    print_table(
        &format!("Corollary 2: Cooley-Tukey FFT (M = {m} words; counts in words)"),
        &["n", "reads", "writes", "w/r", "write L.B.", "w/L.B."],
        &rows,
    );
}

/// Corollary 3: Strassen write-backs vs the Ω(n^ω0/M^{ω0/2−1}) bound, next
/// to the WA classical algorithm's writes at the same size.
pub fn strassen_table(sizes: &[usize], m: usize) {
    let mut rows = Vec::new();
    for &n in sizes {
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let total = words + strassen_scratch_words(n);
        let mut mem = SimMem::new(total, MemSim::two_level(cache(m)));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cache(m)));
        strassen_mem(&mut mem, d[0], d[1], d[2], words, 8);
        mem.sim.flush();
        let c = mem.sim.llc();
        let writes = (c.victims_m + c.flush_victims_m) * 8;

        // Classical WA at the same size and cache.
        let (d2, w2) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem2 = SimMem::new(w2, MemSim::two_level(cache(m)));
        d2[0].store_mat(&mut mem2, &Mat::random(n, n, 1));
        d2[1].store_mat(&mut mem2, &Mat::random(n, n, 2));
        let data2 = std::mem::take(&mut mem2.data);
        let mut mem2 = SimMem::from_vec(data2, MemSim::two_level(cache(m)));
        let b = ((m / 3) as f64).sqrt() as usize;
        dense::matmul::blocked_matmul(
            &mut mem2,
            d2[0],
            d2[1],
            d2[2],
            b,
            dense::matmul::LoopOrder::Ijk,
        );
        mem2.sim.flush();
        let cw = mem2.sim.llc();
        let wa_writes = (cw.victims_m + cw.flush_victims_m) * 8;

        let lb = bounds::strassen_write_lower(n as u64, m as u64);
        rows.push(vec![
            n.to_string(),
            writes.to_string(),
            sci(lb),
            wa_writes.to_string(),
            (n * n).to_string(),
        ]);
    }
    print_table(
        &format!("Corollary 3: Strassen vs WA classical (M = {m} words; counts in words)"),
        &[
            "n",
            "Strassen writes",
            "Strassen write L.B.",
            "WA classical writes",
            "output size",
        ],
        &rows,
    );
}

/// Theorem 1 check across explicit-model kernels: writes-to-fast ≥ half
/// the total loads+stores.
pub fn theorem1_table() {
    use memsim::ExplicitHier;
    let mut rows = Vec::new();

    let a = Mat::random(24, 24, 1);
    let b = Mat::random(24, 24, 2);
    let mut c = Mat::zeros(24, 24);
    let mut h = ExplicitHier::two_level(48);
    dense::explicit_mm::explicit_mm_two_level(
        &a,
        &b,
        &mut c,
        &mut h,
        dense::matmul::LoopOrder::Ijk,
    );
    let (wf, tot) = h.theorem1_check(0);
    rows.push(vec![
        "matmul (WA)".to_string(),
        wf.to_string(),
        tot.to_string(),
    ]);

    let t = Mat::random_upper_triangular(24, 3);
    let mut bb = Mat::random(24, 24, 4);
    let mut h = ExplicitHier::two_level(48);
    dense::explicit_trsm::explicit_trsm_wa(&t, &mut bb, &mut h);
    let (wf, tot) = h.theorem1_check(0);
    rows.push(vec![
        "TRSM (WA)".to_string(),
        wf.to_string(),
        tot.to_string(),
    ]);

    let mut spd = Mat::random_spd(24, 5);
    let mut h = ExplicitHier::two_level(48);
    dense::explicit_cholesky::explicit_cholesky_ll(&mut spd, &mut h);
    let (wf, tot) = h.theorem1_check(0);
    rows.push(vec![
        "Cholesky (LL)".to_string(),
        wf.to_string(),
        tot.to_string(),
    ]);

    let cloud = nbody::force::Particle::random_cloud(64, 6);
    let mut h = ExplicitHier::two_level(12);
    let _ = nbody::explicit::explicit_nbody_wa(&cloud, &mut h);
    let (wf, tot) = h.theorem1_check(0);
    rows.push(vec![
        "N-body (WA)".to_string(),
        wf.to_string(),
        tot.to_string(),
    ]);

    print_table(
        "Theorem 1: writes to fast memory ≥ (loads+stores)/2",
        &["kernel", "writes to fast", "loads+stores"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_run_clean() {
        super::fft_table(&[256, 1024], 128);
        super::strassen_table(&[16, 32], 192);
        super::theorem1_table();
    }
}
