//! §8 — Krylov methods: slow-memory writes of CG vs CA-CG vs streaming
//! CA-CG on a (2b+1)^d-point stencil.

use crate::util::print_table;
use krylov::basis::BasisKind;
use krylov::cacg::{ca_cg, CaCgOptions};
use krylov::cg::cg;
use krylov::counter::IoTally;
use krylov::stencil::laplacian_2d;

pub struct KsmRow {
    pub method: String,
    pub steps: usize,
    pub writes: u64,
    pub reads: u64,
    pub flops: u64,
    pub residual: f64,
}

/// Fixed-work comparison: `outers × s` CG-step equivalents on an
/// `nx × nx` 5-point Poisson problem.
pub fn run_rows(nx: usize, s: usize, outers: usize) -> Vec<KsmRow> {
    let a = laplacian_2d(nx, nx, 0.1);
    let n = a.rows;
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let x0 = vec![0.0; n];
    let steps = outers * s;
    let mut out = Vec::new();

    let mut io = IoTally::default();
    let r = cg(&a, &b, &x0, 1e-30, steps, &mut io);
    out.push(KsmRow {
        method: "CG".into(),
        steps,
        writes: io.writes(),
        reads: io.reads(),
        flops: io.flops,
        residual: r.residual,
    });

    for (streaming, name) in [(false, "CA-CG (storing)"), (true, "CA-CG (streaming)")] {
        let mut io = IoTally::default();
        let r = ca_cg(
            &a,
            &b,
            &x0,
            &CaCgOptions {
                s,
                basis: BasisKind::Monomial,
                streaming,
                block_rows: 4 * nx,
                tol: 1e-30,
                max_outer: outers,
            },
            &mut io,
        );
        out.push(KsmRow {
            method: name.into(),
            steps,
            writes: io.writes(),
            reads: io.reads(),
            flops: io.flops,
            residual: r.residual,
        });
    }
    out
}

pub fn run(nx: usize, s: usize, outers: usize) {
    let rows = run_rows(nx, s, outers);
    let n = (nx * nx) as f64;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.steps.to_string(),
                r.writes.to_string(),
                format!("{:.2}", r.writes as f64 / r.steps as f64 / n),
                r.reads.to_string(),
                r.flops.to_string(),
                format!("{:.2e}", r.residual),
            ]
        })
        .collect();
    print_table(
        &format!("KSM writes (2-D 5-point stencil, {nx}×{nx}, s={s}, {outers} outer iters)"),
        &[
            "method",
            "steps",
            "writes",
            "writes/step/n",
            "reads",
            "flops",
            "residual",
        ],
        &body,
    );
    println!("paper §8: streaming reduces writes by Θ(s) for ≤2× reads/flops");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_hierarchy_matches_paper() {
        let s = 6;
        let rows = run_rows(20, s, 8);
        let cg_w = rows[0].writes as f64;
        let store_w = rows[1].writes as f64;
        let stream_w = rows[2].writes as f64;
        // Storing CA-CG is the same order as CG (it writes the basis);
        // streaming is ~s/..x lower than both.
        assert!(stream_w * (s as f64) / 2.0 < cg_w);
        assert!(stream_w * (s as f64) / 2.0 < store_w);
        assert!(store_w < 2.0 * cg_w);
        // Reads at most ~2x of storing.
        assert!(rows[2].reads < 2 * rows[1].reads + 1000);
        // All methods actually converged to the same solve (same work).
        assert!(rows[2].residual.is_finite());
    }
}
