//! Propositions 6.1 / 6.2 — exact LRU write-back counts.
//!
//! With a fully-associative true-LRU cache holding five blocks (plus one
//! line), the two-level WA schedules write back exactly the output:
//! `mn` lines-worth for matmul, `n·nrhs` for TRSM, `~n²/2` for Cholesky,
//! `N` for the direct N-body problem, irrespective of the instruction
//! order inside the block kernels.

use crate::util::print_table;
use dense::desc::alloc_layout;
use dense::matmul::{ml_matmul, RecOrder};
use dense::trsm::{blocked_trsm, TrsmVariant};
use memsim::{CacheConfig, MemSim, Policy, SimMem};
use nbody::force::{Particle, WORDS_PER_BODY};
use nbody::simmed::{simmed_nbody_wa, store_cloud};
use wa_core::Mat;

/// Fully-associative LRU cache holding `k` blocks of `b×b` words plus one
/// line.
fn lru_cache(k: usize, b: usize) -> CacheConfig {
    let words = k * b * b + 8;
    CacheConfig {
        capacity_words: words.div_ceil(8) * 8,
        line_words: 8,
        ways: 0,
        policy: Policy::Lru,
    }
}

/// One proposition check: returns (kernel, measured write-backs incl.
/// flush, output lines, ratio).
pub struct PropRow {
    pub kernel: &'static str,
    pub writebacks: u64,
    pub output_lines: u64,
}

pub fn run_all(n: usize, b: usize) -> Vec<PropRow> {
    let mut rows = Vec::new();

    // Matmul, five blocks fit (Prop 6.1).
    {
        let cfg = lru_cache(5, b);
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        ml_matmul(
            &mut mem,
            d[0],
            d[1],
            d[2],
            &[b],
            RecOrder::COuter,
            RecOrder::COuter,
        );
        mem.sim.flush();
        let c = mem.sim.llc();
        rows.push(PropRow {
            kernel: "matmul (Prop 6.1)",
            writebacks: c.victims_m + c.flush_victims_m,
            output_lines: (n * n / 8) as u64,
        });
    }

    // TRSM (Prop 6.2).
    {
        let cfg = lru_cache(5, b);
        let t = Mat::random_upper_triangular(n, 3);
        let bm = Mat::random(n, n, 4);
        let (d, words) = alloc_layout(&[(n, n), (n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &t);
        d[1].store_mat(&mut mem, &bm);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        blocked_trsm(&mut mem, d[0], d[1], b, TrsmVariant::WriteAvoiding);
        mem.sim.flush();
        let c = mem.sim.llc();
        rows.push(PropRow {
            kernel: "TRSM (Prop 6.2)",
            writebacks: c.victims_m + c.flush_victims_m,
            output_lines: (n * n / 8) as u64,
        });
    }

    // Cholesky (Prop 6.2). Line granularity makes the touched footprint
    // the full lower-triangle rows, ~n²/2 words -> ~n²/16 lines plus
    // diagonal-straddling lines.
    {
        let cfg = lru_cache(5, b);
        let a = Mat::random_spd(n, 5);
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &a);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        dense::cholesky::blocked_cholesky(
            &mut mem,
            d[0],
            b,
            dense::cholesky::CholVariant::LeftLooking,
        );
        mem.sim.flush();
        let c = mem.sim.llc();
        rows.push(PropRow {
            kernel: "Cholesky (Prop 6.2)",
            writebacks: c.victims_m + c.flush_victims_m,
            // lower-triangle lines, rounded up per row
            output_lines: (0..n).map(|i| (i + 1).div_ceil(8) as u64).sum(),
        });
    }

    // N-body (Prop 6.2). Block of b particles = 4b words.
    {
        let np = n; // particles
        let pb = b.max(8) / 2;
        let cfg = lru_cache(5, (pb * WORDS_PER_BODY).isqrt().max(8));
        let cfg = CacheConfig {
            capacity_words: 5 * pb * WORDS_PER_BODY + 8,
            ..cfg
        };
        let cloud = Particle::random_cloud(np, 6);
        let mut mem = SimMem::new(2 * np * WORDS_PER_BODY, MemSim::two_level(cfg));
        store_cloud(&mut mem, &cloud);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        simmed_nbody_wa(&mut mem, np, pb);
        mem.sim.flush();
        let c = mem.sim.llc();
        rows.push(PropRow {
            kernel: "N-body (Prop 6.2)",
            writebacks: c.victims_m + c.flush_victims_m,
            output_lines: (np * WORDS_PER_BODY / 8) as u64,
        });
    }

    rows
}

/// Run and print.
pub fn run(n: usize, b: usize) {
    let rows = run_all(n, b);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                r.writebacks.to_string(),
                r.output_lines.to_string(),
                format!("{:.3}", r.writebacks as f64 / r.output_lines as f64),
            ]
        })
        .collect();
    print_table(
        "Propositions 6.1/6.2: LRU write-backs vs output size (5 blocks + 1 line)",
        &["kernel", "write-backs (lines)", "output (lines)", "ratio"],
        &body,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_write_close_to_output_size() {
        for r in run_all(64, 16) {
            let ratio = r.writebacks as f64 / r.output_lines as f64;
            assert!(
                ratio <= 1.6,
                "{}: write-backs {} vs output {} (ratio {ratio})",
                r.kernel,
                r.writebacks,
                r.output_lines
            );
            assert!(ratio >= 0.9, "{}: suspiciously few write-backs", r.kernel);
        }
    }
}
