//! E15 — explicit-model write optimality of the Section 4 algorithms:
//! stores to slow memory equal the output size exactly, and the multi-
//! level induction holds at three levels.

use crate::util::print_table;
use dense::explicit_cholesky::explicit_cholesky_ll;
use dense::explicit_mm::{explicit_mm_multilevel, explicit_mm_two_level};
use dense::explicit_trsm::explicit_trsm_wa;
use dense::matmul::LoopOrder;
use memsim::ExplicitHier;
use nbody::explicit::explicit_nbody_wa;
use nbody::force::Particle;
use wa_core::Mat;

pub fn run(n: usize) {
    let mut rows = Vec::new();

    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, n, 2);
    let mut c = Mat::zeros(n, n);
    let mut h = ExplicitHier::two_level(48);
    explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Ijk);
    rows.push(vec![
        "matmul (Alg 1)".to_string(),
        h.traffic().boundary(0).store_words.to_string(),
        (n * n).to_string(),
        h.traffic().boundary(0).load_words.to_string(),
    ]);

    let t = Mat::random_upper_triangular(n, 3);
    let mut bm = Mat::random(n, n, 4);
    let mut h = ExplicitHier::two_level(48);
    explicit_trsm_wa(&t, &mut bm, &mut h);
    rows.push(vec![
        "TRSM (Alg 2)".to_string(),
        h.traffic().boundary(0).store_words.to_string(),
        (n * n).to_string(),
        h.traffic().boundary(0).load_words.to_string(),
    ]);

    let mut spd = Mat::random_spd(n, 5);
    let mut h = ExplicitHier::two_level(48);
    explicit_cholesky_ll(&mut spd, &mut h);
    rows.push(vec![
        "Cholesky (Alg 3)".to_string(),
        h.traffic().boundary(0).store_words.to_string(),
        format!("~{}", n * n / 2),
        h.traffic().boundary(0).load_words.to_string(),
    ]);

    let cloud = Particle::random_cloud(n * n / 8, 6);
    let mut h = ExplicitHier::two_level(12);
    let _ = explicit_nbody_wa(&cloud, &mut h);
    rows.push(vec![
        "N-body (Alg 4)".to_string(),
        h.traffic().boundary(0).store_words.to_string(),
        (n * n / 8).to_string(),
        h.traffic().boundary(0).load_words.to_string(),
    ]);

    print_table(
        &format!("Explicit-model WA optimality (two-level, n={n}): stores == output"),
        &["algorithm", "stores to slow", "output size", "loads"],
        &rows,
    );

    // Multi-level induction at three levels.
    let (m, l) = (2 * n, 2 * n);
    let a = Mat::random(m, m, 7);
    let b = Mat::random(m, l, 8);
    let mut c = Mat::zeros(m, l);
    let mut h3 = ExplicitHier::new(&[12, 192, u64::MAX]);
    explicit_mm_multilevel(&a, &b, &mut c, &mut h3);
    let rows3 = vec![vec![
        "matmul, 3 levels".to_string(),
        h3.writes_into_level(1).to_string(),
        h3.writes_into_level(2).to_string(),
        h3.writes_into_level(3).to_string(),
        (m * l).to_string(),
    ]];
    print_table(
        "Multi-level WA: writes per level decrease toward the bottom",
        &["algorithm", "writes L1", "writes L2", "writes L3", "output"],
        &rows3,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_clean() {
        super::run(16);
    }
}
