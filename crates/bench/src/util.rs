//! Shared plumbing: simulated-memory setup and table printing.

use dense::desc::{alloc_layout, MatDesc};
use memsim::{MemSim, SimMem};
use wa_core::Mat;

/// Allocate A (`l×m`), B (`m×n`), C (`l×n`) in a fresh [`SimMem`], fill A
/// and B with random data *before* attaching the measured simulator (cold
/// cache, untouched counters — the paper's protocol).
pub fn setup_matmul(
    l: usize,
    m: usize,
    n: usize,
    sim: MemSim,
    rebuild: impl Fn() -> MemSim,
) -> (SimMem, [MatDesc; 3]) {
    let (d, words) = alloc_layout(&[(l, m), (m, n), (l, n)]);
    let mut mem = SimMem::new(words, sim);
    d[0].store_mat(&mut mem, &Mat::random(l, m, 0xA));
    d[1].store_mat(&mut mem, &Mat::random(m, n, 0xB));
    let data = std::mem::take(&mut mem.data);
    (SimMem::from_vec(data, rebuild()), [d[0], d[1], d[2]])
}

/// Print a row-aligned table: `header` then rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Millions with one decimal, matching the paper's "millions of cache
/// lines" axes.
pub fn mil(x: u64) -> String {
    format!("{:.3}M", x as f64 / 1e6)
}

/// Compact scientific formatting for cost-model outputs.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else {
        format!("{x:.3e}")
    }
}
