//! Figure 5 — multi-level WA order (Fig 4a) vs slab order (Fig 4b) across
//! L3 blocking sizes.
//!
//! Left column of the paper's figure: the Fig 4a instruction order
//! (C-perpendicular columns at every recursion level); write-backs
//! degrade as the L3 block grows toward three-blocks-fit. Right column:
//! the Fig 4b order (slabs parallel to C below the top level); write-backs
//! stay near the bound for *all* block sizes, letting larger blocks
//! minimize fills too.

use crate::fig2::Fig2Row;
use crate::scale::{Repl, Scale};
use crate::util::{mil, print_table, setup_matmul};
use dense::matmul::{ml_matmul, RecOrder};
use memsim::Policy;

/// Instruction order of one Figure 5 column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig5Order {
    /// Fig 4a: C-outer at every level (left column).
    MultiLevel,
    /// Fig 4b: C-outer at the top, A/B slabs below (right column).
    Slab,
}

/// One point: a given order, L3 block size and middle dimension.
pub fn run_point(scale: Scale, order: Fig5Order, b3: usize, m: usize, repl: Repl) -> Fig2Row {
    let n = scale.outer_dim();
    let geo = scale.geometry(Policy::Lru);
    let (b2, b1) = scale.inner_blocks();
    let rest = match order {
        Fig5Order::MultiLevel => RecOrder::COuter,
        Fig5Order::Slab => RecOrder::AOuter,
    };
    let (mut mem, d) = setup_matmul(n, m, n, scale.build_sim(repl), || scale.build_sim(repl));
    ml_matmul(
        &mut mem,
        d[0],
        d[1],
        d[2],
        &[b3, b2, b1],
        RecOrder::COuter,
        rest,
    );
    let c = mem.sim.llc();
    Fig2Row {
        m,
        victims_m: c.victims_m,
        victims_e: c.victims_e,
        fills: c.fills,
        write_lb_lines: (n * n / geo.line_words) as u64,
        ideal_misses: None,
    }
}

/// One panel: a given order and L3 block size over the m sweep.
pub fn run_panel(scale: Scale, order: Fig5Order, b3: usize, repl: Repl) -> Vec<Fig2Row> {
    scale
        .m_sweep()
        .into_iter()
        .map(|m| run_point(scale, order, b3, m, repl))
        .collect()
}

/// Run and print the whole figure (two columns × four block sizes).
pub fn run_figure(scale: Scale, repl: Repl) {
    for &(b3, label) in scale.l3_blocks().iter().rev() {
        for (order, name) in [
            (Fig5Order::MultiLevel, "multi-level WA order (Fig 4a)"),
            (Fig5Order::Slab, "slab order (Fig 4b)"),
        ] {
            let rows = run_panel(scale, order, b3, repl);
            let body: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.m.to_string(),
                        mil(r.victims_m),
                        mil(r.victims_e),
                        mil(r.fills),
                        mil(r.write_lb_lines),
                    ]
                })
                .collect();
            print_table(
                &format!("Fig 5: {name}, L3 block {b3} (paper {label})"),
                &[
                    "m",
                    "L3_VICTIMS.M",
                    "L3_VICTIMS.E",
                    "LLC_S_FILLS.E",
                    "Write L.B.",
                ],
                &body,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's content: at the largest block (3 fit), the slab order
    /// holds write-backs near the bound while the multi-level order does
    /// not; at the smallest block (5+ fit) both behave.
    #[test]
    fn left_column_degrades_right_column_does_not() {
        let scale = Scale::Small;
        let blocks = scale.l3_blocks();
        let big = blocks.last().unwrap().0; // ~3 blocks fit
        let small = blocks[0].0; // ~6.4 blocks fit
                                 // Needs several top-level shared-dimension blocks so that a C
                                 // block must survive from one J step to the next (the LRU
                                 // priority effect of Fig 3 only matters then).
        let m = 256;
        let repl = Repl::FaLru;

        let slab_big = run_point(scale, Fig5Order::Slab, big, m, repl);
        let ml_big = run_point(scale, Fig5Order::MultiLevel, big, m, repl);
        let ml_small = run_point(scale, Fig5Order::MultiLevel, small, m, repl);
        let lb = slab_big.write_lb_lines;

        assert!(
            slab_big.victims_m < 3 * lb,
            "slab at big block: {} vs bound {lb}",
            slab_big.victims_m
        );
        assert!(
            ml_big.victims_m > 2 * slab_big.victims_m,
            "multi-level at big block ({}) must thrash vs slab ({})",
            ml_big.victims_m,
            slab_big.victims_m
        );
        assert!(
            ml_small.victims_m < ml_big.victims_m,
            "smaller blocks must help the multi-level order: {} vs {}",
            ml_small.victims_m,
            ml_big.victims_m
        );
    }
}
