//! §7.2 — LL-LUNP vs RL-LUNP, measured and modeled.

use crate::util::{print_table, sci};
use parallel::costmodel::{dom_cost_ll_lunp, dom_cost_rl_lunp};
use parallel::lu::{parallel_lu, LunpVariant};
use parallel::machine::Machine;
use wa_core::{CostParams, Mat};

pub fn run(n: usize, p: usize, b: usize) {
    let cp = CostParams::nvm_cluster();
    let mut a0 = Mat::random(n, n, 31);
    for i in 0..n {
        a0[(i, i)] = a0[(i, i)].abs() + n as f64;
    }

    let mut rows = Vec::new();
    for (v, name) in [
        (LunpVariant::LeftLooking, "LL-LUNP"),
        (LunpVariant::RightLooking, "RL-LUNP"),
    ] {
        let mut a = a0.clone();
        let mut m = Machine::new(p, cp);
        parallel_lu(&mut m, &mut a, b, v);
        let mc = m.max_counters();
        rows.push(vec![
            name.to_string(),
            mc.net_words().to_string(),
            mc.l3_read_words.to_string(),
            mc.l3_write_words.to_string(),
            format!("{:.2e}", mc.time(&cp)),
        ]);
    }
    print_table(
        &format!("LU without pivoting (n={n}, P={p}, block {b}; per-node words)"),
        &[
            "algorithm",
            "network",
            "NVM reads",
            "NVM writes",
            "est. time",
        ],
        &rows,
    );
    println!(
        "model domβcost: LL = {}, RL = {}   (large-scale formulas, §7.2)",
        sci(dom_cost_ll_lunp(1e6, 4096.0, &cp)),
        sci(dom_cost_rl_lunp(1e6, 4096.0, &cp)),
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_clean() {
        super::run(32, 16, 4);
    }
}
