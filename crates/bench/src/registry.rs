//! The workspace-wide [`Registry`]: every algorithm crate contributes its
//! workload registrations here, and the `harness` binary (plus the
//! cross-model integration tests) drive them through one uniform surface.

use wa_core::Registry;

/// Build the full registry. Registration order groups by crate; names are
/// unique workspace-wide (the registry panics on a duplicate).
pub fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_all(dense::workloads::workloads());
    r.register_all(cdag::workloads::workloads());
    r.register_all(krylov::workloads::workloads());
    r.register_all(nbody::workloads::workloads());
    r.register_all(extsort::workloads::workloads());
    r.register_all(parallel::workloads::workloads());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_populated() {
        let r = registry();
        assert!(
            r.len() >= 10,
            "expected at least 10 registered workloads, got {}",
            r.len()
        );
    }

    #[test]
    fn every_workload_declares_at_least_one_backend() {
        for w in registry().iter() {
            assert!(!w.backends().is_empty(), "{}", w.name());
            assert!(!w.description().is_empty(), "{}", w.name());
        }
    }
}
