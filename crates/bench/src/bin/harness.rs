//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! harness <command> [--scale small|paper]
//!
//! commands:
//!   fig2        Figure 2 panels (L3 counters, matmul variants)
//!   fig5        Figure 5 (multi-level vs slab order × block sizes)
//!   lru-props   Propositions 6.1/6.2 (exact LRU write-backs)
//!   table1      Table 1 cost model (Model 2.1)
//!   table2      Table 2 cost model + measured comparison (Model 2.2)
//!   theorem4    Theorem 4 trade-off, measured
//!   lu-parallel LL-LUNP vs RL-LUNP (§7.2)
//!   ksm         CG vs CA-CG vs streaming CA-CG writes (§8)
//!   bounds      Corollaries 2/3 and Theorem 1 checks
//!   wa-optimal  Explicit-model write optimality of Algorithms 1–4
//!   sorting     §9 sorting conjecture: merge sort vs low-write selection
//!   model1      §7 Model 1: the Θ(√P) local-write gap and its memory price
//!   all         everything above
//! ```

use wa_bench::scale::{Repl, Scale};
use parallel;
use wa_bench::{bounds_exp, fig2, fig5, ksm, lu_par, props, sorting, tables, theorem4, waopt};
use wa_core::CostParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Small);
    let repl = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Repl::parse(s))
        .unwrap_or(Repl::FaLru);

    let run = |c: &str| match c {
        "fig2" => fig2::run_figure(scale, repl),
        "fig5" => fig5::run_figure(scale, repl),
        "lru-props" => props::run(128, 24),
        "table1" => {
            let cp = CostParams::nvm_cluster();
            tables::table1(1e5, 4096.0, 4.0, 16.0, &cp);
        }
        "table2" => {
            let cp = CostParams::nvm_cluster();
            tables::table2(1e6, 65536.0, 8.0, &cp);
            tables::measured_comparison(48, 64, 4, 48);
        }
        "theorem4" => theorem4::run(64, 16, 48),
        "lu-parallel" => lu_par::run(64, 16, 4),
        "ksm" => ksm::run(32, 8, 10),
        "bounds" => {
            bounds_exp::fft_table(&[1 << 10, 1 << 12, 1 << 14], 256);
            bounds_exp::strassen_table(&[32, 64], 384);
            bounds_exp::theorem1_table();
        }
        "wa-optimal" => waopt::run(24),
        "sorting" => sorting::run(4096, 64),
        "model1" => {
            use parallel::machine::Machine;
            use parallel::model1::{summa_hoarded, summa_local_wa};
            use wa_core::Mat;
            let (n, q) = (64usize, 4usize);
            let a = Mat::random(n, n, 51);
            let b = Mat::random(n, n, 52);
            let mut m1 = Machine::new(q * q, CostParams::nvm_cluster());
            let (_, step) = summa_local_wa(&mut m1, &a, &b, q, 1 << 20);
            let mut m2 = Machine::new(q * q, CostParams::nvm_cluster());
            let (_, hoard) = summa_hoarded(&mut m2, &a, &b, q, 1 << 20);
            println!("\n== Model 1 (n={n}, P={}): writes to L2 from L1 vs W1 ==", q * q);
            println!("{:<22} {:>12} {:>8} {:>14}", "variant", "L1->L2 words", "W1", "L2 words needed");
            println!("{:<22} {:>12} {:>8} {:>14}", "SUMMA + local WA", step.l2_writes_from_l1, step.w1, step.l2_capacity_needed);
            println!("{:<22} {:>12} {:>8} {:>14}", "SUMMA hoarded panels", hoard.l2_writes_from_l1, hoard.w1, hoard.l2_capacity_needed);
            println!("the bound is attainable only with ~sqrt(P) times the L2 capacity (paper: 'likely not realistic')");
        }
        other => {
            eprintln!("unknown command `{other}`; see the harness docs");
            std::process::exit(2);
        }
    };

    if cmd == "all" {
        for c in [
            "wa-optimal",
            "bounds",
            "lru-props",
            "fig2",
            "fig5",
            "table1",
            "table2",
            "theorem4",
            "lu-parallel",
            "ksm",
            "sorting",
            "model1",
        ] {
            run(c);
        }
    } else {
        run(cmd);
    }
}
