//! Registry-driven experiment harness.
//!
//! ```text
//! harness list [--json|--markdown]
//!     Enumerate every registered workload (name, group, backends);
//!     --markdown emits the README workload×backend support table.
//!
//! harness run <workload> [--backend B] [--scale S] [--depth D] [--json]
//!             [--trace out.json] [--trace-clock wall|logical]
//!     Execute one workload on one backend and print its RunReport.
//!     B: raw | simmed | traced | explicit (default: the workload's first
//!     declared backend). S: small | paper (default small). D: modeled
//!     hierarchy depth for traffic-counting backends (default 1).
//!     --trace writes a Chrome trace-event JSON (engine spans, simulator
//!     counter tracks) openable in Perfetto / chrome://tracing.
//!
//! harness profile <workload> [--backend B] [--scale S] [--depth D] [--reuse]
//!     Run one cell with the simulator probe attached and print the
//!     per-phase table: accesses, per-level fills/write-backs, DRAM
//!     lines, memo hit rate, wall time per kernel-marked phase.
//!
//! harness curve <workload> [--capacities a,b,c|--geometric lo:hi:steps]
//!               [--scale S] [--json|--csv]
//!     One stack-backend pass over the workload's access stream, then
//!     project exact FA-LRU fills/write-backs at every requested
//!     capacity (words). Default ladder: powers of two from one line to
//!     the footprint. The trace is simulated ONCE regardless of how many
//!     capacities are asked for (Mattson stack distances).
//!
//! harness sweep [--group G] [--backend B] [--scale S] [--depth D]
//!               [--threads N] [--curve] [--json|--csv]
//!     Run every (workload, backend) scenario — optionally filtered by
//!     group or backend, restricted at depth D > 1 to the cells that
//!     model that depth — in parallel across N worker threads (default:
//!     available parallelism). `--json` emits a JSON array of RunReports.
//!     `--curve` sweeps only the stack-backend cells: each workload's
//!     whole capacity curve from a single pass instead of per-capacity
//!     re-runs.
//!
//! harness exp <command> [--scale small|paper] [--policy P]
//!     The paper-artifact reproductions (figures/tables); `exp all` runs
//!     everything. Commands: fig2 fig5 lru-props table1 table2 theorem4
//!     lu-parallel ksm bounds wa-optimal sorting model1.
//! ```
//!
//! Every `--json` report uses the stable [`wa_core::report::RunReport`]
//! schema regardless of backend, so explicit-vs-simulated comparisons are
//! a diff of two JSON documents.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wa_bench::registry::registry;
use wa_bench::scale::Repl;
use wa_bench::sweep::{completed_cells, CellOutcome, Journal};
use wa_bench::{bounds_exp, fig2, fig5, ksm, lu_par, props, sorting, tables, theorem4, waopt};
use wa_core::engine::{BackendKind, EngineError, RunCfg, RunLimits, Workload};
use wa_core::fault::FaultPlan;
use wa_core::obs::{self, Clock, PhaseRow, Recorder};
use wa_core::par::{default_threads, par_map};
use wa_core::report::{median_wall_ns, RunReport};
use wa_core::{CostParams, Registry, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "list" => list(
            &registry(),
            has_flag(rest, "--json"),
            has_flag(rest, "--markdown"),
        ),
        "run" => run(&faulted_registry(rest), rest),
        "profile" => profile(&faulted_registry(rest), rest),
        "curve" => curve(&faulted_registry(rest), rest),
        "sweep" => sweep(&faulted_registry(rest), rest),
        "exp" => exp(rest),
        "help" | "--help" | "-h" => usage(0),
        other => {
            eprintln!("unknown command `{other}`");
            usage(2);
        }
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage:\n  harness list [--json|--markdown]\n  harness run <workload> [--backend B] [--scale S] [--depth D] [--repeat N] [--timeout SECS] [--retries N]\n                [--mem-budget BYTES] [--degrade]\n                [--trace PATH] [--trace-clock wall|logical] [--reuse] [--json]\n  harness profile <workload> [--backend B] [--scale S] [--depth D] [--reuse]\n  harness curve <workload> [--capacities W,W,...|--geometric LO:HI:STEPS] [--scale S] [--json|--csv]\n  harness sweep [--group G] [--backend B] [--scale S] [--depth D] [--threads N] [--repeat N]\n                [--timeout SECS] [--retries N] [--mem-budget BYTES] [--degrade]\n                [--fail-fast] [--journal PATH] [--resume]\n                [--metrics PATH] [--curve] [--json|--csv]\n  harness exp <command> [--scale small|paper] [--policy P]   (exp all = every paper artifact)\n\n  --depth D        hierarchy depth (cache levels) for traffic-counting backends; default 1\n  --capacities W,… curve only: comma-separated fast-memory capacities in words\n  --geometric L:H:S curve only: S capacities geometrically spaced from L to H words\n  --curve          sweep only: stack-backend cells only — every workload's full capacity\n                   curve from one simulation pass (no per-capacity re-runs)\n  --repeat N       run each scenario N times; the report carries the median wall time\n  --timeout SECS   per-cell wall-clock deadline (float seconds); the watchdog fires the\n                   cancel token and the worker joins as `cancelled` (a worker stuck in\n                   uncancellable code is detached as legacy `timed-out`)\n  --retries N      re-attempt panicked/cancelled/timed-out/retriable cells N times\n                   (deterministic backoff)\n  --mem-budget B   per-cell footprint budget in bytes (K/M/G suffixes); over-budget\n                   cells are rejected as invalid-config before they run\n  --degrade        with --mem-budget: downgrade over-budget cells (depth->1, scale->small,\n                   backend->traced) instead of rejecting; substitutions are noted in the report\n  --trace PATH     run only: write a Chrome trace-event JSON (engine spans + simulator\n                   counter tracks); open in Perfetto or chrome://tracing\n  --trace-clock C  wall (default, microseconds) or logical (deterministic event ticks)\n  --reuse          run/profile: also collect the simulator's reuse-distance histogram\n  --fail-fast      sweep only: stop scheduling new cells after the first failure\n  --journal PATH   sweep only: per-cell JSONL journal (default sweep.journal.jsonl)\n  --resume         sweep only: skip cells the journal already records as ok; append new outcomes\n  --metrics PATH   sweep only: write a JSON rollup (failure counts per kind, retry and\n                   wall-time totals, cache-memo rates)\n  --fault-plan S   deterministic fault injection, e.g. `matmul-wa:panic@1,lu-wa:stall=2000`\n                   (also via env WA_FAULT_PLAN); kinds: panic | corrupt | stall=MS\n  --csv            sweep only: one CSV row per scenario (RunReport::CSV_HEADER +\n                   wall_ms,retries_used,status)\n  --markdown       list only: the README workload×backend support table\n\nexit codes: 0 = all cells ok, 1 = at least one cell failed, 2 = usage/config error,\n            130 = interrupted (SIGINT): journal flushed, resume with `sweep --resume`"
    );
    std::process::exit(code);
}

/// The workspace registry, with the `--fault-plan` / `WA_FAULT_PLAN`
/// injection plan installed when one is given. A malformed spec is a
/// usage error: silently ignoring a typo'd plan would fake coverage.
fn faulted_registry(args: &[String]) -> Registry {
    let spec = flag_value(args, "--fault-plan")
        .map(str::to_string)
        .or_else(|| std::env::var("WA_FAULT_PLAN").ok());
    let mut reg = registry();
    if let Some(spec) = spec {
        match FaultPlan::parse(&spec) {
            Ok(plan) => reg.set_fault_plan(Some(plan)),
            Err(e) => {
                eprintln!("bad fault plan: {e}");
                std::process::exit(2);
            }
        }
    }
    reg
}

/// Parse a byte size with an optional K/M/G suffix (binary multiples),
/// e.g. `65536`, `512K`, `64M`, `2G`.
fn parse_size(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_mul(mult).filter(|&b| b > 0)
}

/// Parse `--timeout SECS` (float), `--retries N`, `--mem-budget BYTES`
/// (K/M/G suffixes) and `--degrade` into [`RunLimits`].
fn parse_limits(args: &[String]) -> RunLimits {
    let timeout = flag_value(args, "--timeout").map(|s| match s.parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Duration::from_secs_f64(secs),
        _ => {
            eprintln!("bad --timeout `{s}` (expected seconds > 0)");
            std::process::exit(2);
        }
    });
    let retries = match flag_value(args, "--retries") {
        None => 0,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad --retries `{s}` (expected a non-negative integer)");
            std::process::exit(2);
        }),
    };
    let mut limits = RunLimits::new(timeout, retries);
    limits.mem_budget = flag_value(args, "--mem-budget").map(|s| match parse_size(s) {
        Some(bytes) => bytes,
        None => {
            eprintln!("bad --mem-budget `{s}` (expected bytes, optionally with K/M/G)");
            std::process::exit(2);
        }
    });
    limits.degrade = has_flag(args, "--degrade");
    if limits.degrade && limits.mem_budget.is_none() {
        eprintln!("--degrade requires --mem-budget");
        std::process::exit(2);
    }
    limits
}

/// Parse `--repeat N` (default 1).
fn parse_repeat(args: &[String]) -> usize {
    match flag_value(args, "--repeat") {
        None => 1,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("bad --repeat `{s}` (expected a positive integer)");
                std::process::exit(2);
            }
        },
    }
}

/// Run one scenario `repeat` times through the registry's fault-isolated
/// dispatch; the returned report is the last run's with the *median* wall
/// time over all runs (echoed in config when repeated), so sweep timings
/// are stable against scheduler noise. Also returns the total dispatch
/// attempts consumed (retries included) and the number of dispatches made
/// — `attempts − dispatches` is the retry count the cell actually burned.
fn run_repeated(
    reg: &Registry,
    name: &str,
    cfg: RunCfg,
    repeat: usize,
) -> (Result<RunReport, EngineError>, u32, u32) {
    let mut walls = Vec::with_capacity(repeat);
    let mut last = None;
    let mut total_attempts = 0u32;
    let mut dispatches = 0u32;
    for _ in 0..repeat {
        let (res, attempts) = reg.run_cfg_traced(name, cfg);
        dispatches += 1;
        total_attempts += attempts;
        match res {
            Ok(r) => {
                walls.push(r.wall_ns);
                last = Some(r);
            }
            Err(e) => return (Err(e), total_attempts, dispatches),
        }
    }
    let mut r = last.expect("repeat >= 1");
    r.wall_ns = median_wall_ns(&walls);
    if repeat > 1 {
        r = r.config("repeat", repeat);
    }
    if total_attempts > repeat as u32 {
        r = r.config("attempts", total_attempts);
    }
    (Ok(r), total_attempts, dispatches)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_scale(args: &[String]) -> Scale {
    match flag_value(args, "--scale") {
        None => Scale::Small,
        Some(s) => Scale::parse(s).unwrap_or_else(|| {
            eprintln!("bad --scale `{s}` (small | paper)");
            std::process::exit(2);
        }),
    }
}

fn parse_backend(args: &[String]) -> Option<BackendKind> {
    flag_value(args, "--backend").map(|s| {
        BackendKind::parse(s).unwrap_or_else(|| {
            eprintln!("bad --backend `{s}` (raw | simmed | traced | explicit | stack)");
            std::process::exit(2);
        })
    })
}

/// Backend cell for the markdown support table: `✓` (depth 1) or `✓³`
/// (models hierarchies up to that depth); empty when unsupported.
fn md_cell(w: &dyn Workload, b: BackendKind) -> String {
    if !w.supports(b) {
        return String::new();
    }
    match w.max_depth(b) {
        1 => "✓".to_string(),
        d => format!("✓{}", superscript(d)),
    }
}

fn superscript(d: usize) -> char {
    match d {
        2 => '²',
        3 => '³',
        _ => '⁺',
    }
}

fn list(reg: &Registry, json: bool, markdown: bool) {
    if markdown {
        println!("| workload | group | raw | simmed | traced | explicit | stack |");
        println!("|----------|-------|:---:|:------:|:------:|:--------:|:-----:|");
        for w in reg.iter() {
            println!(
                "| `{}` | {} | {} | {} | {} | {} | {} |",
                w.name(),
                w.group(),
                md_cell(w, BackendKind::Raw),
                md_cell(w, BackendKind::Simmed),
                md_cell(w, BackendKind::Traced),
                md_cell(w, BackendKind::Explicit),
                md_cell(w, BackendKind::Stack),
            );
        }
        return;
    }
    if json {
        let mut s = String::from("[");
        for (i, w) in reg.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let backends: Vec<String> = w
                .backends()
                .iter()
                .map(|b| format!("\"{}\"", b.as_str()))
                .collect();
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"group\":\"{}\",\"backends\":[{}],\"description\":\"{}\"}}",
                w.name(),
                w.group(),
                backends.join(","),
                w.description().replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push(']');
        println!("{s}");
        return;
    }
    println!(
        "{:<18} {:<9} {:<28} description",
        "workload", "group", "backends"
    );
    for w in reg.iter() {
        let backends: Vec<&str> = w.backends().iter().map(|b| b.as_str()).collect();
        println!(
            "{:<18} {:<9} {:<28} {}",
            w.name(),
            w.group(),
            backends.join(","),
            w.description()
        );
    }
    println!("\n{} workloads registered", reg.len());
}

/// Build and install a recorder for `--trace`/`profile`; returns the
/// handle the caller drains after the run.
fn install_recorder(args: &[String]) -> Arc<Recorder> {
    let clock = match flag_value(args, "--trace-clock") {
        None | Some("wall") => Clock::wall(),
        Some("logical") => Clock::logical(),
        Some(other) => {
            eprintln!("bad --trace-clock `{other}` (wall | logical)");
            std::process::exit(2);
        }
    };
    let mut rec = Recorder::new(clock);
    if has_flag(args, "--reuse") {
        rec = rec.with_reuse();
    }
    let rec = Arc::new(rec);
    obs::install(rec.clone());
    rec
}

fn run(reg: &Registry, args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("`harness run` needs a workload name (see `harness list`)");
        std::process::exit(2);
    };
    let Some(w) = reg.get(name) else {
        eprintln!("unknown workload `{name}` (see `harness list`)");
        std::process::exit(2);
    };
    let backend = parse_backend(args).unwrap_or_else(|| w.backends()[0]);
    let scale = parse_scale(args);
    let depth = parse_depth(args);
    let trace_path = flag_value(args, "--trace").map(std::path::PathBuf::from);
    let rec = trace_path.as_ref().map(|_| install_recorder(args));
    let cfg = RunCfg::with_depth(backend, scale, depth).with_limits(parse_limits(args));
    let res = run_repeated(reg, name, cfg, parse_repeat(args)).0;
    // Write the trace on success *and* failure: a trace of the run that
    // panicked or timed out is exactly the one worth looking at.
    if let (Some(path), Some(rec)) = (&trace_path, &rec) {
        obs::uninstall();
        match std::fs::write(path, rec.to_chrome_json()) {
            Ok(()) => eprintln!("trace: {} events -> {}", rec.num_events(), path.display()),
            Err(e) => {
                eprintln!("cannot write trace {} ({e})", path.display());
                std::process::exit(2);
            }
        }
    }
    match res {
        Ok(report) => {
            if has_flag(args, "--json") {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// `harness profile <workload>`: run one cell with the observer installed
/// and print the per-phase table the simulator's probe collected — writes
/// (fills/write-backs) per level, DRAM traffic, memo rates, wall time.
fn profile(reg: &Registry, args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("`harness profile` needs a workload name (see `harness list`)");
        std::process::exit(2);
    };
    let Some(w) = reg.get(name) else {
        eprintln!("unknown workload `{name}` (see `harness list`)");
        std::process::exit(2);
    };
    let backend = parse_backend(args).unwrap_or(BackendKind::Simmed);
    if !w.supports(backend) {
        eprintln!(
            "`{name}` does not support backend `{}` (see `harness list`)",
            backend.as_str()
        );
        std::process::exit(2);
    }
    let scale = parse_scale(args);
    let depth = parse_depth(args);
    let rec = install_recorder(args);
    let cfg = RunCfg::with_depth(backend, scale, depth).with_limits(parse_limits(args));
    let res = run_repeated(reg, name, cfg, 1).0;
    obs::uninstall();
    let report = match res {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let rows = rec.take_phase_rows();
    println!(
        "== profile {name} ({}, {}, depth {}) ==",
        backend.as_str(),
        scale.as_str(),
        depth
    );
    if rows.is_empty() {
        println!(
            "no phase data: the `{}` backend runs without the cache \
             simulator's probe (try --backend simmed)",
            backend.as_str()
        );
        return;
    }
    print_phase_table(&rows);
    if let Some((_, hist)) = report.config.iter().find(|(k, _)| k == "reuse_hist") {
        println!("\nreuse-distance histogram (lines): {hist}");
    }
}

/// Render the per-phase probe table: one row per phase, per-level fill and
/// write-back line counts, DRAM lines, memo hit rate, wall time.
fn print_phase_table(rows: &[PhaseRow]) {
    let levels = rows.iter().map(|r| r.fills.len()).max().unwrap_or(0);
    let mut header = format!("{:<14} {:>9} {:>12}", "phase", "wall_ms", "accesses");
    for l in 0..levels {
        header.push_str(&format!(
            " {:>10} {:>10}",
            format!("L{}fill", l + 1),
            format!("L{}wb", l + 1)
        ));
    }
    header.push_str(&format!(
        " {:>10} {:>10} {:>8}",
        "dram_rd", "dram_wr", "memo%"
    ));
    println!("{header}");
    let mut total = PhaseRow {
        phase: "total".to_string(),
        wall_ns: 0,
        accesses: 0,
        fills: vec![0; levels],
        writebacks: vec![0; levels],
        dram_reads: 0,
        dram_writes: 0,
        memo_hits: 0,
        memo_misses: 0,
    };
    for r in rows {
        print_phase_row(r, levels);
        total.wall_ns += r.wall_ns;
        total.accesses += r.accesses;
        for (t, v) in total.fills.iter_mut().zip(&r.fills) {
            *t += v;
        }
        for (t, v) in total.writebacks.iter_mut().zip(&r.writebacks) {
            *t += v;
        }
        total.dram_reads += r.dram_reads;
        total.dram_writes += r.dram_writes;
        total.memo_hits += r.memo_hits;
        total.memo_misses += r.memo_misses;
    }
    println!("{}", "-".repeat(37 + 22 * levels + 30));
    print_phase_row(&total, levels);
}

fn print_phase_row(r: &PhaseRow, levels: usize) {
    let memo = r.memo_hits + r.memo_misses;
    let rate = if memo == 0 {
        "-".to_string()
    } else {
        format!("{:.1}", 100.0 * r.memo_hits as f64 / memo as f64)
    };
    let mut line = format!(
        "{:<14} {:>9.3} {:>12}",
        r.phase,
        r.wall_ns as f64 / 1e6,
        r.accesses
    );
    for l in 0..levels {
        line.push_str(&format!(
            " {:>10} {:>10}",
            r.fills.get(l).copied().unwrap_or(0),
            r.writebacks.get(l).copied().unwrap_or(0)
        ));
    }
    line.push_str(&format!(
        " {:>10} {:>10} {:>8}",
        r.dram_reads, r.dram_writes, rate
    ));
    println!("{line}");
}

/// Parse the `curve` capacity list: `--capacities a,b,c` (words) or
/// `--geometric lo:hi:steps`; `None` means the curve's default ladder.
fn parse_capacities(args: &[String]) -> Option<Vec<u64>> {
    if let Some(spec) = flag_value(args, "--capacities") {
        let caps: Vec<u64> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .ok()
                    .filter(|&c| c > 0)
                    .unwrap_or_else(|| {
                        eprintln!("bad --capacities `{spec}` (comma-separated positive words)");
                        std::process::exit(2);
                    })
            })
            .collect();
        return Some(caps);
    }
    if let Some(spec) = flag_value(args, "--geometric") {
        let bad = || -> ! {
            eprintln!("bad --geometric `{spec}` (LO:HI:STEPS with 0 < LO <= HI, STEPS >= 2)");
            std::process::exit(2);
        };
        let parts: Vec<u64> = spec
            .split(':')
            .map(|s| s.trim().parse::<u64>().unwrap_or_else(|_| bad()))
            .collect();
        let [lo, hi, steps] = parts[..] else { bad() };
        if lo == 0 || hi < lo || steps < 2 {
            bad();
        }
        let ratio = (hi as f64 / lo as f64).powf(1.0 / (steps - 1) as f64);
        let mut caps: Vec<u64> = (0..steps)
            .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
            .collect();
        *caps.last_mut().expect("steps >= 2") = hi;
        caps.dedup();
        return Some(caps);
    }
    None
}

/// `harness curve <workload>`: one stack-backend pass, projected at every
/// requested capacity. The kernel runs once however many capacities are
/// asked for — that is the point of the Mattson stack backend.
fn curve(reg: &Registry, args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("`harness curve` needs a workload name (see `harness list`)");
        std::process::exit(2);
    };
    let Some(w) = reg.get(name) else {
        eprintln!("unknown workload `{name}` (see `harness list`)");
        std::process::exit(2);
    };
    if !w.supports(BackendKind::Stack) {
        eprintln!(
            "`{name}` does not support the stack backend (see `harness list`); \
             only access-driven workloads can be stack-simulated"
        );
        std::process::exit(2);
    }
    let scale = parse_scale(args);
    let cfg = RunCfg::with_depth(BackendKind::Stack, scale, 1).with_limits(parse_limits(args));
    let report = match run_repeated(reg, name, cfg, parse_repeat(args)).0 {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let curve = report
        .curve
        .as_ref()
        .expect("stack-backend reports always carry a curve");
    let caps = parse_capacities(args).unwrap_or_else(|| curve.default_ladder());
    if has_flag(args, "--json") {
        println!("{}", curve.to_json(&caps));
        return;
    }
    if has_flag(args, "--csv") {
        println!(
            "capacity_words,capacity_lines,fills,writebacks,flush_writebacks,\
             dram_reads_lines,dram_writes_lines,hits,misses"
        );
        for p in curve.points(&caps) {
            println!(
                "{},{},{},{},{},{},{},{},{}",
                p.capacity_words,
                p.capacity_lines,
                p.fills,
                p.writebacks,
                p.flush_writebacks,
                p.dram_reads_lines(),
                p.dram_writes_lines(),
                p.hits,
                p.misses
            );
        }
        return;
    }
    println!(
        "== capacity curve: {name} ({}, one stack pass, {} word accesses over {} lines) ==",
        scale.as_str(),
        curve.word_accesses,
        curve.footprint_lines
    );
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "cap_words", "cap_lines", "fills", "writebacks", "flush_wb", "dram_rd", "dram_wr", "miss%"
    );
    for p in curve.points(&caps) {
        let miss = if curve.word_accesses == 0 {
            0.0
        } else {
            100.0 * p.misses as f64 / curve.word_accesses as f64
        };
        println!(
            "{:>14} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>8.3}",
            p.capacity_words,
            p.capacity_lines,
            p.fills,
            p.writebacks,
            p.flush_writebacks,
            p.dram_reads_lines(),
            p.dram_writes_lines(),
            miss
        );
    }
}

/// Parse `--depth D` (default 1, the two-level model).
fn parse_depth(args: &[String]) -> usize {
    match flag_value(args, "--depth") {
        None => 1,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad --depth `{s}` (expected a positive integer)");
            std::process::exit(2);
        }),
    }
}

/// One cell of a sweep: a (workload, backend) pair plus its full
/// scenario config and journal key.
struct Scenario<'a> {
    name: &'a str,
    backend: BackendKind,
    cfg: RunCfg,
    key: String,
}

/// What one sweep cell produced: its journaled outcome plus the report
/// (successes only). `None` when `--fail-fast` skipped the cell.
type CellResult = Option<(CellOutcome, Option<RunReport>)>;

fn sweep(reg: &Registry, args: &[String]) {
    let scale = parse_scale(args);
    // --curve restricts the sweep to stack-backend cells: one pass per
    // workload yields its whole capacity curve, so there is nothing to
    // gain from re-running the same cell at other simulated capacities.
    let only_backend = match (parse_backend(args), has_flag(args, "--curve")) {
        (Some(b), true) if b != BackendKind::Stack => {
            eprintln!("--curve sweeps the stack backend; drop --backend or pass --backend stack");
            std::process::exit(2);
        }
        (_, true) => Some(BackendKind::Stack),
        (b, false) => b,
    };
    let only_group = flag_value(args, "--group");
    let json = has_flag(args, "--json");
    let csv = has_flag(args, "--csv");
    let repeat = parse_repeat(args);
    let depth = parse_depth(args);
    let limits = parse_limits(args);
    let fail_fast = has_flag(args, "--fail-fast");
    let resume = has_flag(args, "--resume");
    let journal_path =
        std::path::PathBuf::from(flag_value(args, "--journal").unwrap_or("sweep.journal.jsonl"));
    if json && csv {
        eprintln!("--json and --csv are mutually exclusive");
        std::process::exit(2);
    }

    // Cells a previous run of this sweep already completed successfully
    // (journal keyed by the limits-independent config hash).
    let done = if resume {
        match completed_cells(&journal_path) {
            Ok(map) => map,
            Err(e) => {
                eprintln!(
                    "--resume: cannot read journal {} ({e})",
                    journal_path.display()
                );
                std::process::exit(2);
            }
        }
    } else {
        Default::default()
    };

    // At depth > 1 the sweep covers exactly the cells that model that
    // depth (running the rest at a shallower depth would silently mix
    // hierarchies in one table).
    let mut resumed = 0usize;
    let scenarios: Vec<Scenario> = reg
        .iter()
        .filter(|w| only_group.is_none_or(|g| w.group() == g))
        .flat_map(|w| {
            w.backends()
                .iter()
                .filter(|b| only_backend.is_none_or(|ob| ob == **b))
                .filter(|&&b| w.max_depth(b) >= depth)
                .map(move |&backend| {
                    let cfg = RunCfg::with_depth(backend, scale, depth).with_limits(limits);
                    let key = format!("{:016x}", cfg.config_hash(w.name()));
                    Scenario {
                        name: w.name(),
                        backend,
                        cfg,
                        key,
                    }
                })
                .collect::<Vec<_>>()
        })
        .filter(|s| {
            let ok_already = done.get(&s.key).map(String::as_str) == Some("ok");
            resumed += ok_already as usize;
            !ok_already
        })
        .collect();
    if resumed > 0 {
        eprintln!("resume: skipping {resumed} cells already journaled ok");
    }
    if scenarios.is_empty() {
        if resume && resumed > 0 {
            eprintln!("resume: nothing left to run");
            return;
        }
        eprintln!("no scenarios match the given filters");
        std::process::exit(2);
    }

    let journal = Journal::open(&journal_path, resume).unwrap_or_else(|e| {
        eprintln!("cannot open journal {} ({e})", journal_path.display());
        std::process::exit(2);
    });

    let threads = match flag_value(args, "--threads") {
        None => default_threads(scenarios.len()),
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad --threads `{s}` (expected a positive integer)");
            std::process::exit(2);
        }),
    };
    eprintln!(
        "sweeping {} scenarios at scale {} depth {} on {} threads (journal: {})",
        scenarios.len(),
        scale,
        depth,
        threads,
        journal_path.display()
    );

    // Cells run in parallel; each journals its outcome the moment it
    // finishes, so a killed sweep loses only the in-flight cells. With
    // --fail-fast, the first failure stops *scheduling* (in-flight cells
    // drain); skipped cells stay out of the journal and re-run on resume.
    // On a terminal, a live progress line tracks completion and ETA.
    //
    // Ctrl-C is cooperative: the first SIGINT bumps the process interrupt
    // epoch, which cancels every in-flight cell (they journal as
    // `cancelled`), stops scheduling new ones, and exits 130 after the
    // journal is flushed — `--resume` picks up exactly there. A second
    // SIGINT exits immediately.
    wa_core::cancel::install_sigint_handler();
    let gen0 = wa_core::cancel::process_generation();
    let abort = AtomicBool::new(false);
    let live = std::io::stderr().is_terminal();
    let done = AtomicUsize::new(0);
    let failed_cells = AtomicUsize::new(0);
    let started = Instant::now();
    let total = scenarios.len();
    let results: Vec<CellResult> = par_map(&scenarios, threads, |s| {
        if (fail_fast && abort.load(Ordering::Relaxed)) || wa_core::cancel::interrupted_since(gen0)
        {
            // Unstarted cells stay out of the journal, so they re-run on
            // --resume.
            return None;
        }
        let (res, attempts, dispatches) = run_repeated(reg, s.name, s.cfg, repeat);
        let outcome = CellOutcome {
            key: s.key.clone(),
            workload: s.name.to_string(),
            backend: s.backend,
            scale,
            depth,
            status: res
                .as_ref()
                .map_or_else(|e| e.kind().to_string(), |_| "ok".to_string()),
            attempts,
            retries_used: attempts.saturating_sub(dispatches),
            wall_ns: res.as_ref().map_or(0, |r| r.wall_ns),
            error: res.as_ref().err().map(|e| e.to_string()),
        };
        if let Err(e) = journal.record(&outcome) {
            eprintln!("journal write failed for {}: {e}", s.name);
        }
        if res.is_err() {
            failed_cells.fetch_add(1, Ordering::Relaxed);
            if fail_fast {
                abort.store(true, Ordering::Relaxed);
            }
        }
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if live {
            let f = failed_cells.load(Ordering::Relaxed);
            let eta = started.elapsed().as_secs_f64() / d as f64 * (total - d) as f64;
            eprint!("\r[sweep] {d}/{total} done, {f} failed, ETA {eta:.0}s   ");
        }
        Some((outcome, res.ok()))
    });
    if live {
        eprintln!();
    }

    let mut failures = 0usize;
    let mut skipped = 0usize;
    if csv {
        println!("{},wall_ms,retries_used,status", RunReport::CSV_HEADER);
    } else if json {
        print!("[");
    }
    let mut first = true;
    for cell in &results {
        let Some((outcome, report)) = cell else {
            skipped += 1;
            continue;
        };
        let failed = outcome.status != "ok";
        failures += failed as usize;
        let wall_ms = outcome.wall_ns as f64 / 1e6;
        if csv {
            match report {
                Some(r) => println!(
                    "{},{:.3},{},{}",
                    r.to_csv_row(),
                    wall_ms,
                    outcome.retries_used,
                    outcome.status
                ),
                None => {
                    // Same arity as the header: identity, 8 empty metric
                    // columns + empty wall_ms, then retries and status
                    // (status stays the last column).
                    let empties = ",".repeat(9);
                    println!(
                        "{},{},{}{},{},{}",
                        outcome.workload,
                        outcome.backend.as_str(),
                        scale.as_str(),
                        empties,
                        outcome.retries_used,
                        outcome.status
                    );
                }
            }
        } else if json {
            if !first {
                print!(",");
            }
            first = false;
            let body = match report {
                Some(r) => format!("\"report\":{}", r.to_json()),
                None => format!(
                    "\"error\":\"{}\"",
                    outcome
                        .error
                        .as_deref()
                        .unwrap_or("")
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                ),
            };
            print!(
                "{{\"workload\":\"{}\",\"backend\":\"{}\",\"scale\":\"{}\",\"depth\":{},\
                 \"status\":\"{}\",\"attempts\":{},\"retries_used\":{},\"wall_ms\":{wall_ms:.3},\
                 {body}}}",
                outcome.workload,
                outcome.backend.as_str(),
                scale.as_str(),
                depth,
                outcome.status,
                outcome.attempts,
                outcome.retries_used
            );
        } else if let Some(r) = report {
            print!("{}", r.render_text());
        }
        if failed {
            eprintln!(
                "FAIL {} on {} [{}]: {}",
                outcome.workload,
                outcome.backend,
                outcome.status,
                outcome.error.as_deref().unwrap_or("")
            );
        }
    }
    if json {
        println!("]");
    }
    if let Some(path) = flag_value(args, "--metrics") {
        let json = metrics_rollup(&results, skipped);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write metrics {path} ({e})");
            std::process::exit(2);
        }
        eprintln!("metrics rollup -> {path}");
    }
    eprintln!(
        "sweep complete: {} ok, {} failed, {} skipped{}",
        results.len() - failures - skipped,
        failures,
        skipped,
        if resumed > 0 {
            format!(" ({resumed} resumed as ok)")
        } else {
            String::new()
        }
    );
    if wa_core::cancel::interrupted_since(gen0) {
        eprintln!(
            "interrupted: journal flushed to {}; re-run with --resume to finish the rest",
            journal_path.display()
        );
        std::process::exit(wa_core::cancel::INTERRUPT_EXIT_CODE);
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Aggregate a sweep's outcomes into the `--metrics` JSON rollup:
/// per-status cell counts, attempt/retry totals, wall-time total, and the
/// simulator's last-line-memo hit rate summed over every simmed report.
fn metrics_rollup(results: &[CellResult], skipped: usize) -> String {
    let mut status_counts: std::collections::BTreeMap<&str, u64> = Default::default();
    let (mut ok, mut failed) = (0u64, 0u64);
    let (mut attempts_total, mut retries_total) = (0u64, 0u64);
    let mut wall_ns_total = 0u128;
    let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
    for cell in results.iter().flatten() {
        let (outcome, report) = cell;
        *status_counts.entry(outcome.status.as_str()).or_insert(0) += 1;
        if outcome.status == "ok" {
            ok += 1;
        } else {
            failed += 1;
        }
        attempts_total += outcome.attempts as u64;
        retries_total += outcome.retries_used as u64;
        wall_ns_total += outcome.wall_ns;
        if let Some(r) = report {
            for (k, v) in &r.config {
                match (k.as_str(), v.parse::<u64>()) {
                    ("memo_hits", Ok(n)) => memo_hits += n,
                    ("memo_misses", Ok(n)) => memo_misses += n,
                    _ => {}
                }
            }
        }
    }
    let statuses: Vec<String> = status_counts
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    let memo_total = memo_hits + memo_misses;
    let memo_rate = if memo_total == 0 {
        0.0
    } else {
        memo_hits as f64 / memo_total as f64
    };
    format!(
        "{{\"cells\":{},\"ok\":{ok},\"failed\":{failed},\"skipped\":{skipped},\
         \"status_counts\":{{{}}},\"attempts_total\":{attempts_total},\
         \"retries_total\":{retries_total},\"wall_ms_total\":{:.3},\
         \"memo_hits\":{memo_hits},\"memo_misses\":{memo_misses},\
         \"memo_hit_rate\":{memo_rate:.6}}}\n",
        ok + failed,
        statuses.join(","),
        wall_ns_total as f64 / 1e6
    )
}

/// The legacy paper-artifact commands, verbatim from the pre-registry
/// dispatcher (they print hand-formatted tables rather than RunReports).
fn exp(args: &[String]) {
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = flag_value(args, "--scale")
        .and_then(wa_bench::scale::Scale::parse)
        .unwrap_or(wa_bench::scale::Scale::Small);
    let repl = flag_value(args, "--policy")
        .and_then(Repl::parse)
        .unwrap_or(Repl::FaLru);

    let run = |c: &str| match c {
        "fig2" => fig2::run_figure(scale, repl),
        "fig5" => fig5::run_figure(scale, repl),
        "lru-props" => props::run(128, 24),
        "table1" => {
            let cp = CostParams::nvm_cluster();
            tables::table1(1e5, 4096.0, 4.0, 16.0, &cp);
        }
        "table2" => {
            let cp = CostParams::nvm_cluster();
            tables::table2(1e6, 65536.0, 8.0, &cp);
            tables::measured_comparison(48, 64, 4, 48);
        }
        "theorem4" => theorem4::run(64, 16, 48),
        "lu-parallel" => lu_par::run(64, 16, 4),
        "ksm" => ksm::run(32, 8, 10),
        "bounds" => {
            bounds_exp::fft_table(&[1 << 10, 1 << 12, 1 << 14], 256);
            bounds_exp::strassen_table(&[32, 64], 384);
            bounds_exp::theorem1_table();
        }
        "wa-optimal" => waopt::run(24),
        "sorting" => sorting::run(4096, 64),
        "model1" => {
            use parallel::machine::Machine;
            use parallel::model1::{summa_hoarded, summa_local_wa};
            use wa_core::Mat;
            let (n, q) = (64usize, 4usize);
            let a = Mat::random(n, n, 51);
            let b = Mat::random(n, n, 52);
            let mut m1 = Machine::new(q * q, CostParams::nvm_cluster());
            let (_, step) = summa_local_wa(&mut m1, &a, &b, q, 1 << 20);
            let mut m2 = Machine::new(q * q, CostParams::nvm_cluster());
            let (_, hoard) = summa_hoarded(&mut m2, &a, &b, q, 1 << 20);
            println!(
                "\n== Model 1 (n={n}, P={}): writes to L2 from L1 vs W1 ==",
                q * q
            );
            println!(
                "{:<22} {:>12} {:>8} {:>14}",
                "variant", "L1->L2 words", "W1", "L2 words needed"
            );
            println!(
                "{:<22} {:>12} {:>8} {:>14}",
                "SUMMA + local WA", step.l2_writes_from_l1, step.w1, step.l2_capacity_needed
            );
            println!(
                "{:<22} {:>12} {:>8} {:>14}",
                "SUMMA hoarded panels", hoard.l2_writes_from_l1, hoard.w1, hoard.l2_capacity_needed
            );
            println!("the bound is attainable only with ~sqrt(P) times the L2 capacity (paper: 'likely not realistic')");
        }
        other => {
            eprintln!("unknown experiment `{other}`; see `harness help`");
            std::process::exit(2);
        }
    };

    if cmd == "all" {
        for c in [
            "wa-optimal",
            "bounds",
            "lru-props",
            "fig2",
            "fig5",
            "table1",
            "table2",
            "theorem4",
            "lu-parallel",
            "ksm",
            "sorting",
            "model1",
        ] {
            run(c);
        }
    } else {
        run(cmd);
    }
}
