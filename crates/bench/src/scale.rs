//! Experiment scales: how the paper's Xeon 7560 + 4000×m×4000 workloads
//! map onto tractable simulations.
//!
//! Capacities scale by `1/k²` and linear matrix dimensions by `1/k`, so
//! every "blocks per cache" ratio is preserved exactly (see
//! `memsim::xeon`). The figures depend only on those ratios:
//!
//! | quantity | paper | `Paper` scale (k=8) | `Small` scale (k=16) |
//! |----------|-------|---------------------|----------------------|
//! | L3 words | 3 Mi  | 48 Ki               | 12 Ki                |
//! | outer dims | 4000 | 500                | 250                  |
//! | m sweep  | 128…32 Ki | 16…4 Ki         | 8…2 Ki (capped 512)  |
//! | L3 block "1023" (3 fit) | 1023 | 128   | 64                   |
//! | L3 block "700" (5+ fit) | 700  | 87    | 44                   |

use memsim::xeon::XeonGeometry;
use memsim::{CacheConfig, MemSim, Policy};

/// Which scale to run at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Fast default: L3 ÷256 (L1/L2 stay at the ÷64 floor), dimensions
    /// ÷16, m capped at 512.
    Small,
    /// Reference: capacities ÷64, dimensions ÷8, full m sweep.
    Paper,
}

/// Replacement-policy configuration for the figure simulations.
///
/// The figures default to fully-associative true LRU — the setting of
/// Propositions 6.1/6.2. At 1/256-scale capacities a 16-way cache has only
/// ~100 sets, so set-conflict evictions (absent at hardware scale, where
/// there are tens of thousands of sets) would dominate the counts; and the
/// 3-bit clock's markers saturate under the dense re-touch patterns of
/// these kernels, degenerating toward FIFO. Both effects are artifacts of
/// scaling, not of the algorithms; `Clock` is retained as an ablation
/// (`benches/cache_sim.rs`, harness `--policy clock`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repl {
    /// Fully-associative true LRU at every level (default).
    FaLru,
    /// Set-associative 3-bit clock (Nehalem-like geometry).
    Clock,
}

impl Repl {
    pub fn parse(s: &str) -> Option<Repl> {
        match s {
            "lru" => Some(Repl::FaLru),
            "clock" => Some(Repl::Clock),
            _ => None,
        }
    }
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Cache geometry (3 levels) — delegates to [`XeonGeometry::for_scale`]
    /// so the legacy figures and the engine backends can never drift.
    pub fn geometry(&self, policy: Policy) -> XeonGeometry {
        XeonGeometry::for_scale(
            match self {
                Scale::Paper => wa_core::Scale::Paper,
                Scale::Small => wa_core::Scale::Small,
            },
            policy,
        )
    }

    /// Outer matrix dimensions (the paper's fixed 4000).
    pub fn outer_dim(&self) -> usize {
        match self {
            Scale::Paper => 500,
            Scale::Small => 250,
        }
    }

    /// The middle-dimension sweep (the paper's 128…32 Ki).
    pub fn m_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Paper => vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
            Scale::Small => vec![8, 16, 32, 64, 128, 256, 512],
        }
    }

    /// L3 blocking sizes analogous to the paper's {700, 800, 900, 1023}
    /// (i.e. k = M3/b² ≈ {6.4, 4.9, 3.9, 3.0} blocks fitting), largest
    /// last to match the paper's figure order.
    pub fn l3_blocks(&self) -> Vec<(usize, &'static str)> {
        let g = self.geometry(Policy::Clock3);
        let b = |k: f64| ((g.l3_words as f64 / k).sqrt().floor()) as usize;
        vec![
            (b(6.4), "~700"),
            (b(4.9), "~800"),
            (b(3.9), "~900"),
            (b(3.0), "~1023"),
        ]
    }

    /// L2 / L1 blocking sizes (3 blocks fit, the paper's {100, 32} scaled).
    pub fn inner_blocks(&self) -> (usize, usize) {
        let g = self.geometry(Policy::Clock3);
        let b2 = ((g.l2_words as f64 / 3.0).sqrt().floor()) as usize;
        let b1 = ((g.l1_words as f64 / 3.0).sqrt().floor()) as usize;
        (b2, b1)
    }

    /// Build the 3-level simulator under the given replacement
    /// configuration.
    pub fn build_sim(&self, repl: Repl) -> MemSim {
        match repl {
            Repl::Clock => self.geometry(Policy::Clock3).build(),
            Repl::FaLru => {
                let g = self.geometry(Policy::Lru);
                let fa = |words: usize| CacheConfig {
                    capacity_words: words,
                    line_words: g.line_words,
                    ways: 0,
                    policy: Policy::Lru,
                };
                MemSim::new(&[fa(g.l1_words), fa(g.l2_words), fa(g.l3_words)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_geometry_ratios_match_paper() {
        let s = Scale::Small;
        let g = s.geometry(Policy::Clock3);
        // 3 blocks of the largest block size fill L3 like 3×1023² fills
        // 24 MB.
        let (b_small, label) = *s.l3_blocks().last().unwrap();
        assert_eq!(label, "~1023");
        let fill = 3.0 * (b_small * b_small) as f64 / g.l3_words as f64;
        assert!((0.9..=1.0).contains(&fill), "fill {fill}");
        // Output exceeds L3 by ~5x as in the paper (122 MB vs 24 MB).
        let n = s.outer_dim();
        let ratio = (n * n) as f64 / g.l3_words as f64;
        assert!((4.0..7.0).contains(&ratio), "C/L3 ratio {ratio}");
    }

    #[test]
    fn paper_scale_matches_xeon_module() {
        let s = Scale::Paper;
        assert_eq!(s.geometry(Policy::Clock3).l3_words, 48 << 10);
        assert_eq!(s.outer_dim(), 500);
        let blocks = s.l3_blocks();
        assert_eq!(blocks.last().unwrap().0, 128); // ≙ paper's 1023
        assert_eq!(blocks[0].0, 87); // ≙ paper's 700
    }

    #[test]
    fn inner_blocks_fit_three_in_their_caches() {
        for s in [Scale::Small, Scale::Paper] {
            let g = s.geometry(Policy::Clock3);
            let (b2, b1) = s.inner_blocks();
            assert!(3 * b2 * b2 <= g.l2_words);
            assert!(3 * b1 * b1 <= g.l1_words);
        }
    }
}
