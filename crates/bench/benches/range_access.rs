//! Per-word vs line-granular simulator paths (ISSUE 4 tentpole bench).
//!
//! Three ways to push the same word stream through `MemSim`:
//!
//! * `word_reference` — the pre-memo per-word walk (`disable_fast_path`),
//!   the old behavior of every `read`/`write` call;
//! * `word_memo` — per-word calls with the last-line memo active (what
//!   unconverted kernels get for free);
//! * `read_range` / `run_bulk` — the line-granular range decomposition
//!   and the batched `AccessRun` API the converted kernels use.
//!
//! All four produce byte-identical counters (see
//! `memsim/tests/range_equiv.rs`); only the wall time differs. Numbers
//! are recorded in `BENCH_simulator.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsim::xeon::XeonGeometry;
use memsim::{AccessRun, MemSim};

/// Streaming read+write sweep: `passes` passes over a `words`-word
/// buffer, reads then writes, like a kernel scanning its operands.
fn drive_words(sim: &mut MemSim, words: usize, passes: usize) -> u64 {
    for _ in 0..passes {
        for a in 0..words {
            sim.read(a);
        }
        for a in 0..words {
            sim.write(a);
        }
    }
    sim.llc().hits
}

fn drive_ranges(sim: &mut MemSim, words: usize, passes: usize) -> u64 {
    for _ in 0..passes {
        sim.read_range(0, words);
        sim.write_range(0, words);
    }
    sim.llc().hits
}

fn drive_bulk(sim: &mut MemSim, words: usize, passes: usize) -> u64 {
    let runs = [AccessRun::read(0, words), AccessRun::write(0, words)];
    for _ in 0..passes {
        sim.run(&runs);
    }
    sim.llc().hits
}

fn bench_paths(c: &mut Criterion) {
    let words = 1 << 14; // 4x the single-level cache below
    let passes = 4;
    let single = || MemSim::single_level_lru(1 << 12);
    let xeon = || XeonGeometry::default_scaled().build();

    for (geom, make) in [
        ("l3_fa_lru", &single as &dyn Fn() -> MemSim),
        ("xeon_3level", &xeon),
    ] {
        let mut g = c.benchmark_group(format!("range_access/{geom}"));
        g.throughput(Throughput::Elements((2 * words * passes) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("word_reference"),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut s = make();
                    s.disable_fast_path();
                    drive_words(&mut s, words, passes)
                });
            },
        );
        g.bench_with_input(BenchmarkId::from_parameter("word_memo"), &(), |b, _| {
            b.iter(|| drive_words(&mut make(), words, passes));
        });
        g.bench_with_input(BenchmarkId::from_parameter("read_range"), &(), |b, _| {
            b.iter(|| drive_ranges(&mut make(), words, passes));
        });
        g.bench_with_input(BenchmarkId::from_parameter("run_bulk"), &(), |b, _| {
            b.iter(|| drive_bulk(&mut make(), words, passes));
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_paths
}
criterion_main!(benches);
