//! TRSM / Cholesky / LU variant benches (Algorithms 2 and 3 and the §7.2
//! sequential substrate): write-avoiding vs eager orders at wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense::cholesky::{blocked_cholesky, CholVariant};
use dense::desc::alloc_layout;
use dense::lu::{blocked_lu, LuVariant};
use dense::trsm::{blocked_trsm, TrsmVariant};
use memsim::RawMem;
use wa_core::Mat;

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm/variant");
    let n = 128;
    let t = Mat::random_upper_triangular(n, 1);
    let rhs = Mat::random(n, n, 2);
    for (name, v) in [
        ("write_avoiding", TrsmVariant::WriteAvoiding),
        ("right_looking", TrsmVariant::RightLooking),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &v, |b, &v| {
            let (d, words) = alloc_layout(&[(n, n), (n, n)]);
            let mut mem = RawMem::new(words);
            d[0].store_mat(&mut mem, &t);
            b.iter(|| {
                d[1].store_mat(&mut mem, &rhs);
                blocked_trsm(&mut mem, d[0], d[1], 32, v);
            });
        });
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky/variant");
    let n = 128;
    let a = Mat::random_spd(n, 3);
    for (name, v) in [
        ("left_looking", CholVariant::LeftLooking),
        ("right_looking", CholVariant::RightLooking),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &v, |b, &v| {
            let (d, words) = alloc_layout(&[(n, n)]);
            let mut mem = RawMem::new(words);
            b.iter(|| {
                d[0].store_mat(&mut mem, &a);
                blocked_cholesky(&mut mem, d[0], 32, v);
            });
        });
    }
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu/variant");
    let n = 128;
    let mut a = Mat::random(n, n, 4);
    for i in 0..n {
        a[(i, i)] = a[(i, i)].abs() + n as f64;
    }
    for (name, v) in [
        ("left_looking", LuVariant::LeftLooking),
        ("right_looking", LuVariant::RightLooking),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &v, |b, &v| {
            let (d, words) = alloc_layout(&[(n, n)]);
            let mut mem = RawMem::new(words);
            b.iter(|| {
                d[0].store_mat(&mut mem, &a);
                blocked_lu(&mut mem, d[0], 32, v);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_trsm, bench_cholesky, bench_lu
}
criterion_main!(benches);
