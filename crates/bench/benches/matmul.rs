//! Matmul kernel benches: the loop-order ablation (Algorithm 1's WA
//! property is exactly the k-innermost choice), the cache-oblivious and
//! tuned baselines, and the multi-level recursion (E1–E5's kernels at
//! wall-clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense::desc::alloc_layout;
use dense::matmul::{blocked_matmul, co_matmul, ml_matmul, tuned_matmul, LoopOrder, RecOrder};
use dense::MatDesc;
use memsim::RawMem;
use wa_core::Mat;

fn setup(n: usize) -> (RawMem, [MatDesc; 3]) {
    let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
    let mut mem = RawMem::new(words);
    d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
    d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
    (mem, [d[0], d[1], d[2]])
}

fn bench_loop_orders(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul/loop_order");
    let n = 128;
    for order in LoopOrder::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{order:?}")),
            &order,
            |b, &order| {
                let (mut mem, d) = setup(n);
                b.iter(|| blocked_matmul(&mut mem, d[0], d[1], d[2], 32, order));
            },
        );
    }
    g.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul/variant");
    let n = 128;
    g.bench_function("naive", |b| {
        let (mut mem, d) = setup(n);
        b.iter(|| dense::matmul::naive_matmul(&mut mem, d[0], d[1], d[2]));
    });
    g.bench_function("cache_oblivious", |b| {
        let (mut mem, d) = setup(n);
        b.iter(|| co_matmul(&mut mem, d[0], d[1], d[2], 16));
    });
    g.bench_function("tuned", |b| {
        let (mut mem, d) = setup(n);
        b.iter(|| tuned_matmul(&mut mem, d[0], d[1], d[2], 32));
    });
    g.bench_function("multilevel_fig4a", |b| {
        let (mut mem, d) = setup(n);
        b.iter(|| {
            ml_matmul(
                &mut mem,
                d[0],
                d[1],
                d[2],
                &[64, 16],
                RecOrder::COuter,
                RecOrder::COuter,
            )
        });
    });
    g.bench_function("multilevel_fig4b", |b| {
        let (mut mem, d) = setup(n);
        b.iter(|| {
            ml_matmul(
                &mut mem,
                d[0],
                d[1],
                d[2],
                &[64, 16],
                RecOrder::COuter,
                RecOrder::AOuter,
            )
        });
    });
    g.finish();
}

fn bench_explicit_model(c: &mut Criterion) {
    // The explicit-movement accounting overhead (Algorithm 1 bookkeeping).
    let mut g = c.benchmark_group("matmul/explicit_model");
    let n = 96;
    let a = Mat::random(n, n, 1);
    let bm = Mat::random(n, n, 2);
    for order in [LoopOrder::Ijk, LoopOrder::Kij] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{order:?}")),
            &order,
            |b, &order| {
                b.iter(|| {
                    let mut cm = Mat::zeros(n, n);
                    let mut h = memsim::ExplicitHier::two_level(768);
                    dense::explicit_mm::explicit_mm_two_level(&a, &bm, &mut cm, &mut h, order);
                    h.traffic().boundary(0).store_words
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_loop_orders, bench_variants, bench_explicit_model
}
criterion_main!(benches);
