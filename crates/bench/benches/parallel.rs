//! Parallel-algorithm benches: the 2.5D replication-factor sweep (the
//! Model 2.1 ablation) and the Model 2.2 pair, timing the event simulator
//! with real arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parallel::cannon::cannon;
use parallel::lu::{parallel_lu, LunpVariant};
use parallel::machine::{Machine, Staging};
use parallel::mm25d::{mm25d, Mm25Config};
use parallel::summa::{summa, summa_l3_ool2};
use wa_core::{CostParams, Mat};

fn bench_matmul_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/matmul");
    g.sample_size(10);
    let n = 64;
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, n, 2);

    g.bench_function("summa_p16", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(16, CostParams::nvm_cluster());
            summa(&mut m, &a, &b, 4, 16, Staging::L2)
        });
    });
    g.bench_function("cannon_p16", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(16, CostParams::nvm_cluster());
            cannon(&mut m, &a, &b, 4, Staging::L2)
        });
    });
    for c_factor in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("mm25d_p64_c", c_factor),
            &c_factor,
            |bch, &cf| {
                bch.iter(|| {
                    let mut m = Machine::new(64, CostParams::nvm_cluster());
                    mm25d(
                        &mut m,
                        &a,
                        &b,
                        Mm25Config {
                            p: 64,
                            c: cf,
                            at: Staging::L2,
                            ool2: false,
                            m2: 48,
                        },
                    )
                });
            },
        );
    }
    g.bench_function("summa_l3_ool2_p16", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(16, CostParams::nvm_cluster());
            summa_l3_ool2(&mut m, &a, &b, 4, 48)
        });
    });
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/lu");
    g.sample_size(10);
    let n = 48;
    let mut a0 = Mat::random(n, n, 3);
    for i in 0..n {
        a0[(i, i)] = a0[(i, i)].abs() + n as f64;
    }
    for (name, v) in [
        ("ll_lunp", LunpVariant::LeftLooking),
        ("rl_lunp", LunpVariant::RightLooking),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &v, |bch, &v| {
            bch.iter(|| {
                let mut a = a0.clone();
                let mut m = Machine::new(16, CostParams::nvm_cluster());
                parallel_lu(&mut m, &mut a, 4, v);
                m.max_counters().l3_write_words
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul_algorithms, bench_lu
}
criterion_main!(benches);
