//! Cache-simulator benches and the replacement-policy ablation called out
//! in DESIGN.md: LRU vs 3-bit clock vs FIFO, fully-associative vs
//! set-associative, driven by the Fig 4a/4b instruction orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dense::desc::alloc_layout;
use dense::matmul::{ml_matmul, RecOrder};
use memsim::{CacheConfig, MemSim, Policy, SimMem};
use wa_core::Mat;

fn run_workload(cfgs: &[CacheConfig], n: usize, order_rest: RecOrder) -> u64 {
    let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
    let mut mem = SimMem::new(words, MemSim::new(cfgs));
    d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
    d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
    let data = std::mem::take(&mut mem.data);
    let mut mem = SimMem::from_vec(data, MemSim::new(cfgs));
    ml_matmul(
        &mut mem,
        d[0],
        d[1],
        d[2],
        &[32, 8],
        RecOrder::COuter,
        order_rest,
    );
    mem.sim.llc().victims_m
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim/policy");
    let n = 64;
    let accesses = (2 * n * n * n + 2 * n * n) as u64 * 2;
    g.throughput(Throughput::Elements(accesses));
    let cases: Vec<(&str, CacheConfig)> = vec![
        (
            "fa_lru",
            CacheConfig {
                capacity_words: 3 * 32 * 32 + 8,
                line_words: 8,
                ways: 0,
                policy: Policy::Lru,
            },
        ),
        (
            "clock_16way",
            CacheConfig {
                capacity_words: 3328, // 416 lines: a multiple of 16-way sets
                line_words: 8,
                ways: 16,
                policy: Policy::Clock3,
            },
        ),
        (
            "fifo_16way",
            CacheConfig {
                capacity_words: 3328,
                line_words: 8,
                ways: 16,
                policy: Policy::Fifo,
            },
        ),
    ];
    for (name, cfg) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run_workload(&[*cfg], n, RecOrder::AOuter));
        });
    }
    g.finish();
}

fn bench_orders_under_lru(c: &mut Criterion) {
    // The Fig 5 ablation as a bench: slab vs multi-level order through the
    // full 3-level simulator.
    let mut g = c.benchmark_group("cache_sim/fig5_order");
    let cfgs = [
        CacheConfig {
            capacity_words: 64,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        },
        CacheConfig {
            capacity_words: 512,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        },
        CacheConfig {
            capacity_words: 3 * 32 * 32 + 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        },
    ];
    for (name, rest) in [("multilevel", RecOrder::COuter), ("slab", RecOrder::AOuter)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &rest, |b, &rest| {
            b.iter(|| run_workload(&cfgs, 64, rest));
        });
    }
    g.finish();
}

fn bench_belady(c: &mut Criterion) {
    use memsim::ideal::simulate_belady;
    use memsim::mem::{Access, TraceMem};
    let mut g = c.benchmark_group("cache_sim/belady");
    // Record a modest matmul trace once, replay through Belady.
    let n = 48;
    let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
    let mut tm = TraceMem::new(words);
    d[0].store_mat(&mut tm, &Mat::random(n, n, 1));
    d[1].store_mat(&mut tm, &Mat::random(n, n, 2));
    tm.trace.clear();
    ml_matmul(
        &mut tm,
        d[0],
        d[1],
        d[2],
        &[16],
        RecOrder::COuter,
        RecOrder::COuter,
    );
    let trace: Vec<Access> = tm.trace;
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("offline_min", |b| {
        b.iter(|| simulate_belady(&trace, 96, 8));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_policies, bench_orders_under_lru, bench_belady
}
criterion_main!(benches);
