//! Direct N-body benches: WA (Algorithm 4) vs symmetry-exploiting orders,
//! and the (N,3)-body kernel. The paper's §4.4 trade-off — half the flops
//! vs minimal writes — shows up here as wall-clock vs (tested elsewhere)
//! traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsim::ExplicitHier;
use nbody::explicit::{explicit_kbody_wa, explicit_nbody_wa};
use nbody::force::Particle;
use nbody::symmetric::explicit_nbody_symmetric;

fn bench_2body(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbody/2body");
    for n in [256usize, 1024] {
        let cloud = Particle::random_cloud(n, 7);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("wa", n), &cloud, |b, cloud| {
            b.iter(|| {
                let mut h = ExplicitHier::two_level(96);
                explicit_nbody_wa(cloud, &mut h)
            });
        });
        g.bench_with_input(BenchmarkId::new("symmetric", n), &cloud, |b, cloud| {
            b.iter(|| {
                let mut h = ExplicitHier::two_level(128);
                explicit_nbody_symmetric(cloud, &mut h)
            });
        });
    }
    g.finish();
}

fn bench_3body(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbody/3body");
    g.sample_size(10);
    for n in [48usize, 96] {
        let cloud = Particle::random_cloud(n, 8);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("wa", n), &cloud, |b, cloud| {
            b.iter(|| {
                let mut h = ExplicitHier::two_level(64);
                explicit_kbody_wa(cloud, &mut h)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_2body, bench_3body
}
criterion_main!(benches);
