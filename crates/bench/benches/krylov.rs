//! Krylov benches: CG vs CA-CG (storing vs streaming — the ablation of the
//! §8 write optimization) and the parallel SpMV substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krylov::cacg::{ca_cg, CaCgOptions};
use krylov::cg::cg;
use krylov::counter::IoTally;
use krylov::stencil::laplacian_2d;

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("krylov/solver");
    g.sample_size(10);
    let nx = 48;
    let a = laplacian_2d(nx, nx, 0.1);
    let n = a.rows;
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let x0 = vec![0.0; n];
    let s = 4;
    let outers = 12;

    g.bench_function("cg", |bch| {
        bch.iter(|| {
            let mut io = IoTally::default();
            cg(&a, &b, &x0, 1e-30, outers * s, &mut io)
        });
    });
    for (name, streaming) in [("cacg_storing", false), ("cacg_streaming", true)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &streaming,
            |bch, &streaming| {
                bch.iter(|| {
                    let mut io = IoTally::default();
                    ca_cg(
                        &a,
                        &b,
                        &x0,
                        &CaCgOptions {
                            s,
                            streaming,
                            tol: 1e-30,
                            max_outer: outers,
                            block_rows: 4 * nx,
                            ..Default::default()
                        },
                        &mut io,
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("krylov/spmv");
    let a = laplacian_2d(256, 256, 0.0);
    let n = a.rows;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("serial", |b| {
        let mut y = vec![0.0; n];
        b.iter(|| a.spmv(&x, &mut y));
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                let mut y = vec![0.0; n];
                b.iter(|| a.spmv_parallel(&x, &mut y, threads));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_solvers, bench_spmv
}
criterion_main!(benches);
