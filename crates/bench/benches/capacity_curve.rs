//! Single-pass capacity curve vs per-capacity re-simulation (ISSUE 8
//! tentpole bench).
//!
//! The question a capacity sweep answers — "how do fills and write-backs
//! move as fast memory grows?" — used to cost one full kernel
//! re-simulation per capacity. The Mattson stack backend answers it for
//! *every* capacity from one pass. This bench pins the ratio on the
//! paper-scale WA matmul:
//!
//! * `stack_single_pass` — the kernel once through [`StackMem`], curve
//!   projected at every capacity of the default ladder (what
//!   `harness curve matmul-wa --scale paper` prints);
//! * `memsim_per_capacity` — the kernel through a flushed
//!   [`MemSim::single_level_lru`] at each of those same capacities, the
//!   sweep the stack backend replaces.
//!
//! Both produce identical fills/write-backs per capacity
//! (`memsim/tests/stack_equiv.rs`); only the wall time differs. Numbers
//! are recorded in `BENCH_capacity.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use dense::desc::alloc_layout;
use dense::matmul::blocked_matmul;
use dense::workloads::{fast_words, sim_block_and_dim};
use dense::{LoopOrder, MatDesc};
use memsim::{MemSim, RawMem, SimMem, StackMem};
use wa_core::{Mat, Scale};

/// The paper-scale WA matmul inputs, staged once; every iteration clones
/// the flat data vector (both paths pay the same clone).
fn stage(scale: Scale) -> (Vec<MatDesc>, Vec<f64>, usize) {
    let (bsize, n) = sim_block_and_dim(scale);
    let a = Mat::random(n, n, 11);
    let b = Mat::random(n, n, 12);
    let c = Mat::zeros(n, n);
    let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
    let mut raw = RawMem::new(words);
    d[0].store_mat(&mut raw, &a);
    d[1].store_mat(&mut raw, &b);
    d[2].store_mat(&mut raw, &c);
    (d, raw.data, bsize)
}

fn bench_curve(c: &mut Criterion) {
    let scale = Scale::Paper;
    let (d, data, bsize) = stage(scale);
    // The exact capacity list the curve command reports by default:
    // powers of two from one line up to the trace footprint (a setup
    // pre-pass discovers it; the sweep under test re-runs per entry).
    let caps: Vec<usize> = {
        let mut mem = StackMem::from_vec(data.clone());
        blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, LoopOrder::Ijk);
        let ladder = mem.sim.curve().default_ladder();
        ladder.iter().map(|&w| w as usize).collect()
    };
    eprintln!(
        "capacity_curve: {} capacities (default ladder), L3 = {} words",
        caps.len(),
        fast_words(scale)
    );

    let mut g = c.benchmark_group("capacity_curve/matmul-wa-paper");
    g.sample_size(10);
    g.bench_function("stack_single_pass", |b| {
        b.iter(|| {
            let mut mem = StackMem::from_vec(data.clone());
            blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, LoopOrder::Ijk);
            let curve = mem.sim.curve();
            caps.iter().map(|&c| curve.at(c as u64).fills).sum::<u64>()
        });
    });
    let sweep_id = format!("memsim_per_capacity_x{}", caps.len());
    g.bench_function(sweep_id.as_str(), |b| {
        b.iter(|| {
            let mut fills = 0u64;
            for &cap in &caps {
                let mut mem = SimMem::from_vec(data.clone(), MemSim::single_level_lru(cap));
                blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, LoopOrder::Ijk);
                mem.sim.flush();
                fills += mem.sim.llc().fills;
            }
            fills
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_curve
}
criterion_main!(benches);
