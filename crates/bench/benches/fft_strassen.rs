//! FFT and Strassen benches — the Section 3 "no WA schedule exists"
//! algorithms at wall-clock, next to the WA classical matmul.

use cdag::fft::fft_mem;
use cdag::strassen::{strassen_mem, strassen_scratch_words};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dense::desc::alloc_layout;
use dense::matmul::{blocked_matmul, LoopOrder};
use memsim::{Mem, RawMem};
use wa_core::Mat;

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [1usize << 10, 1 << 14] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("cooley_tukey", n), &n, |b, &n| {
            let mut mem = RawMem::new(2 * n);
            for i in 0..2 * n {
                mem.st(i, (i as f64 * 0.7).sin());
            }
            b.iter(|| fft_mem(&mut mem, 0, n));
        });
    }
    g.finish();
}

fn bench_strassen_vs_classical(c: &mut Criterion) {
    let mut g = c.benchmark_group("strassen");
    g.sample_size(20);
    for n in [64usize, 128] {
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        g.bench_with_input(BenchmarkId::new("strassen_cutoff16", n), &n, |b, &n| {
            let mut mem = RawMem::new(words + strassen_scratch_words(n));
            d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
            d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
            b.iter(|| strassen_mem(&mut mem, d[0], d[1], d[2], words, 16));
        });
        g.bench_with_input(BenchmarkId::new("classical_wa", n), &n, |b, &n| {
            let mut mem = RawMem::new(words);
            d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
            d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
            b.iter(|| blocked_matmul(&mut mem, d[0], d[1], d[2], 32, LoopOrder::Ijk));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fft, bench_strassen_vs_classical
}
criterion_main!(benches);
