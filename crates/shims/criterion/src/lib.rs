//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment for this repository is fully offline, so the real
//! criterion cannot be vendored. This shim implements exactly the API
//! surface the in-tree benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` — and reports median / min /
//! max wall time per benchmark (plus derived throughput when declared).
//!
//! It is intentionally simple: fixed-count timing loops, no statistical
//! outlier analysis, no HTML reports. Numbers are comparable within one
//! machine and build, which is what the in-tree perf satellites need.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported so call sites using `criterion::black_box` keep working.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples; each sample runs `f`
    /// enough times to exceed ~1 ms so short routines are measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations take ≥ 1 ms?
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().div_f64(iters_per_sample as f64));
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, id);
            return;
        }
        let mut s: Vec<Duration> = samples.to_vec();
        s.sort();
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], *s.last().unwrap());
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => format!(
                "  {:>12.3} MiB/s",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            ),
        });
        println!(
            "{}/{:<28} median {:>12?}  [min {:>12?} .. max {:>12?}]{}",
            self.name,
            id.to_string(),
            median,
            lo,
            hi,
            rate.unwrap_or_default()
        );
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim's fixed loops ignore it.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim's fixed loops ignore it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
            _parent: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
