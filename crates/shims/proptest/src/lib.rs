//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so the real proptest cannot be
//! vendored. This shim implements the subset the in-tree property tests
//! use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header and
//!   `fn name(pat in strategy, ...) { ... }` items;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies over the integer types and `f64`, tuple strategies,
//!   `any::<bool>()`, `prop::collection::vec`, and `prop::sample::select`.
//!
//! Generation is a deterministic xorshift stream seeded from the test name
//! and case index, so failures are reproducible run-to-run (the shim does
//! not implement shrinking; the failing inputs are printed instead).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod sample {
    pub use crate::strategy::select;
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`, giving access to
    /// `prop::collection::vec` and `prop::sample::select`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The `proptest!` macro: expands each `fn name(arg in strategy, ...)`
/// item into a `#[test]` (the `#[test]` attribute is written at the call
/// site and re-emitted) that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*);
    };
    (@expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __ran: u32 = 0;
                let mut __case: u64 = 0;
                // Run until `cases` non-rejected executions (or a cap on
                // total attempts, mirroring proptest's rejection limit).
                while __ran < __cfg.cases {
                    assert!(
                        __case < 20 * __cfg.cases as u64 + 1000,
                        "proptest shim: too many rejected cases in {__test_name}"
                    );
                    let mut __rng =
                        $crate::test_runner::ShimRng::for_case(__test_name, __case);
                    __case += 1;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);
                    )+
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => __ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs:\n{}",
                                __case - 1, __test_name, msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
