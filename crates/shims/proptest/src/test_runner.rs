//! Case driver support: configuration, error type, deterministic RNG.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic xorshift64* stream, seeded from (test name, case index) so
/// every run of a test sees the same input sequence.
pub struct ShimRng {
    state: u64,
}

impl ShimRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ShimRng {
            state: if seed == 0 { 0xdead_beef } else { seed },
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
