//! Value-generation strategies: the `Strategy` trait and the combinators
//! the in-tree tests use (ranges, tuples, `any`, `vec`, `select`).

use crate::test_runner::ShimRng;
use std::ops::Range;

/// A source of random values of one type. Unlike real proptest there is no
/// shrinking tree; `gen_value` draws a value directly.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn gen_value(&self, rng: &mut ShimRng) -> Self::Value;

    /// `strategy.prop_map(f)` — generate a value, then transform it.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The combinator behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn gen_value(&self, rng: &mut ShimRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut ShimRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut ShimRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut ShimRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// `any::<T>()` for the types the tests draw without a range.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut ShimRng) -> bool {
        rng.below(2) == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut ShimRng) -> f64 {
        // Bounded uniform; adequate for numeric property tests.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut ShimRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `prop::collection::vec(element_strategy, len_range)`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut ShimRng) -> Vec<S::Value> {
        let n = self.len.gen_value(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `prop::sample::select(options)` — uniform choice from a non-empty list.
pub struct Select<T> {
    options: Vec<T>,
}

pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut ShimRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Boxed strategies so helper fns can return `impl Strategy<Value = T>`
/// (already supported) or trait objects if ever needed.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut ShimRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}
