//! Process-wide interrupt semantics (the in-process equivalent of
//! Ctrl-C), isolated in their own test binary: bumping the process
//! interrupt epoch poisons every token born earlier in the *same*
//! process, so these tests cannot share a binary with the rest of the
//! cancellation suite.

use wa_core::cancel::{self, CancelReason, CancelToken};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, RunCfg, RunLimits};
use wa_core::{Registry, Scale};

/// One test drives the whole lifecycle so the epoch bumps are ordered:
/// tokens born before an interrupt observe it (with the non-retriable
/// `Interrupt` reason), tokens born after do not, and the engine's retry
/// loop refuses to burn retries once the interrupt arrives mid-dispatch.
#[test]
fn interrupt_cancels_prior_tokens_and_suppresses_engine_retries() {
    // --- token-level semantics -----------------------------------------
    let before = CancelToken::new();
    let gen0 = cancel::process_generation();
    assert!(!before.is_cancelled());
    assert!(!cancel::interrupted_since(gen0));

    cancel::interrupt_now();

    assert!(cancel::interrupted_since(gen0));
    assert!(before.is_cancelled(), "pre-interrupt tokens must fire");
    assert_eq!(before.reason(), Some(CancelReason::Interrupt));

    // A token born after the interrupt is clean: new work (a --resume
    // run) is not poisoned by a stale epoch.
    let after = CancelToken::new();
    assert!(!after.is_cancelled());
    assert_eq!(after.reason(), None);

    // Interrupt cancellation is not retriable — retrying Ctrl-C'd work
    // would fight the user.
    let e = EngineError::Cancelled {
        workload: "w".to_string(),
        reason: CancelReason::Interrupt,
        after_accesses: 0,
        elapsed: std::time::Duration::ZERO,
    };
    assert!(!e.is_retriable());
    let e = EngineError::Cancelled {
        workload: "w".to_string(),
        reason: CancelReason::Deadline,
        after_accesses: 0,
        elapsed: std::time::Duration::ZERO,
    };
    assert!(e.is_retriable(), "deadline cancellations stay retriable");

    // --- engine retry loop ---------------------------------------------
    // The workload panics every invocation and *also* interrupts the
    // process on the first one. With a 3-retry budget the engine would
    // normally attempt 4 times; the mid-dispatch interrupt must cap it
    // at the one attempt already made.
    let mut reg = Registry::new();
    reg.register(FnWorkload::boxed(
        "interruptive",
        "test",
        "interrupts the process then panics",
        &[BackendKind::Raw],
        |_| {
            cancel::interrupt_now();
            panic!("boom");
        },
    ));
    let cfg = RunCfg::new(BackendKind::Raw, Scale::Small).with_limits(RunLimits::new(None, 3));
    let (res, attempts) = reg.run_cfg_traced("interruptive", cfg);
    assert!(res.is_err());
    assert_eq!(
        attempts, 1,
        "an interrupt arriving mid-dispatch must suppress further retries"
    );
}
