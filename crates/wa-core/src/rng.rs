//! Minimal deterministic pseudo-random generator (xorshift64*).
//!
//! All workloads in the workspace are generated from explicit seeds so every
//! experiment is bit-reproducible; a tiny local generator avoids coupling
//! library crates to a specific `rand` version (benches and examples may
//! still use `rand` freely).

/// xorshift64* generator. Not cryptographic; plenty for workload synthesis.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Create a generator; a zero seed is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        // 53 high bits -> [0,1)
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_samples_in_range_and_spread() {
        let mut r = XorShift::new(99);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let x = r.next_unit();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "lo half got {lo}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
