//! Zero-cost-when-off observability: a span/event recorder the engine,
//! the memory simulator's probes, and the harness all share.
//!
//! A [`Recorder`] collects timestamped events — `B`/`E` span pairs,
//! instants, and counter samples — in memory, and serializes them as
//! Chrome trace-event JSON ([`Recorder::to_chrome_json`]) that Perfetto
//! and `chrome://tracing` open directly. Recording is opt-in per run:
//! the harness [`install`]s a recorder, instrumented code checks the
//! one-atomic-load [`is_active`] flag (or goes through the free
//! functions, which no-op when nothing is installed), and the harness
//! [`uninstall`]s to harvest. With no recorder installed the entire
//! layer costs one relaxed atomic load per instrumentation site.
//!
//! Timestamps come from an injected [`Clock`]: wall time (microseconds,
//! the Chrome convention) for profiling, or a logical tick counter for
//! byte-deterministic traces (same cell, same binary → same bytes; the
//! trace tests pin this). The timestamp is read *inside* the event-list
//! lock, so the emitted stream is monotonically non-decreasing in `ts`
//! under either clock — a property the schema tests also pin.
//!
//! Thread ids are assigned per recorder in first-use order (main thread
//! of a single-threaded run = 0), keeping ids stable across runs even
//! though the OS recycles native thread ids.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Injected time source for a [`Recorder`].
pub enum Clock {
    /// Microseconds since the recorder was created (Chrome's `ts` unit).
    Wall(Instant),
    /// A logical tick per event — deterministic across runs.
    Logical(AtomicU64),
}

impl Clock {
    pub fn wall() -> Clock {
        Clock::Wall(Instant::now())
    }

    pub fn logical() -> Clock {
        Clock::Logical(AtomicU64::new(0))
    }

    fn now(&self) -> u64 {
        match self {
            Clock::Wall(t0) => t0.elapsed().as_micros() as u64,
            Clock::Logical(t) => t.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// What one recorded [`Event`] is.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// Span open (`ph:"B"`).
    Begin { name: String, cat: &'static str },
    /// Span close (`ph:"E"`); carries the name for viewer robustness.
    End { name: String, cat: &'static str },
    /// Point event (`ph:"i"`, thread-scoped).
    Instant { name: String, cat: &'static str },
    /// Counter sample (`ph:"C"`): one track, one or more stacked series.
    Counter {
        name: String,
        series: Vec<(String, u64)>,
    },
}

/// One recorded event. `ts` is clock units ([`Clock`]), `tid` the
/// recorder-assigned thread id.
#[derive(Clone, Debug)]
pub struct Event {
    pub ts: u64,
    pub tid: u32,
    pub kind: EventKind,
}

/// One per-phase simulator row, pushed by `memsim`'s report adapter so
/// `harness profile` can render a table without re-parsing the trace.
/// `fills`/`writebacks` are per level, fastest first, in lines.
#[derive(Clone, Debug, Default)]
pub struct PhaseRow {
    pub phase: String,
    pub wall_ns: u128,
    /// Simulator accesses attributed to the phase (words touched).
    pub accesses: u64,
    pub fills: Vec<u64>,
    pub writebacks: Vec<u64>,
    pub dram_reads: u64,
    pub dram_writes: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
}

struct TidAssign {
    map: HashMap<ThreadId, u32>,
    next: u32,
}

/// In-memory event collector. Cheap to share (`Arc`); all methods take
/// `&self`.
pub struct Recorder {
    clock: Clock,
    reuse: bool,
    events: Mutex<Vec<Event>>,
    tids: Mutex<TidAssign>,
    phases: Mutex<Vec<PhaseRow>>,
}

impl Recorder {
    pub fn new(clock: Clock) -> Recorder {
        Recorder {
            clock,
            reuse: false,
            events: Mutex::new(Vec::new()),
            tids: Mutex::new(TidAssign {
                map: HashMap::new(),
                next: 0,
            }),
            phases: Mutex::new(Vec::new()),
        }
    }

    /// Request the (more expensive) reuse-distance histogram from any
    /// probe that attaches while this recorder is installed.
    pub fn with_reuse(mut self) -> Recorder {
        self.reuse = true;
        self
    }

    pub fn wants_reuse(&self) -> bool {
        self.reuse
    }

    fn tid(&self) -> u32 {
        let mut t = self.tids.lock().unwrap();
        let id = std::thread::current().id();
        if let Some(&v) = t.map.get(&id) {
            return v;
        }
        let v = t.next;
        t.next += 1;
        t.map.insert(id, v);
        v
    }

    fn push(&self, kind: EventKind) {
        let tid = self.tid();
        let mut ev = self.events.lock().unwrap();
        // Read the clock inside the lock: list order == ts order.
        let ts = self.clock.now();
        ev.push(Event { ts, tid, kind });
    }

    pub fn begin(&self, name: &str, cat: &'static str) {
        self.push(EventKind::Begin {
            name: name.to_string(),
            cat,
        });
    }

    pub fn end(&self, name: &str, cat: &'static str) {
        self.push(EventKind::End {
            name: name.to_string(),
            cat,
        });
    }

    pub fn instant(&self, name: &str, cat: &'static str) {
        self.push(EventKind::Instant {
            name: name.to_string(),
            cat,
        });
    }

    pub fn counter(&self, name: &str, series: &[(&str, u64)]) {
        self.push(EventKind::Counter {
            name: name.to_string(),
            series: series.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Open a span closed by the returned guard's drop (panic-safe: an
    /// unwind through the guard still emits the `E`).
    pub fn span(self: &Arc<Self>, name: &str, cat: &'static str) -> SpanGuard {
        self.begin(name, cat);
        SpanGuard {
            inner: Some((Arc::clone(self), name.to_string(), cat)),
        }
    }

    pub fn push_phase_rows(&self, rows: Vec<PhaseRow>) {
        self.phases.lock().unwrap().extend(rows);
    }

    pub fn take_phase_rows(&self) -> Vec<PhaseRow> {
        std::mem::take(&mut self.phases.lock().unwrap())
    }

    pub fn num_events(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Snapshot of the recorded events (tests / ad-hoc inspection).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Serialize as Chrome trace-event JSON (object form, `traceEvents`
    /// array), one event per line. Opens in Perfetto / chrome://tracing.
    pub fn to_chrome_json(&self) -> String {
        let ev = self.events.lock().unwrap();
        let mut s = String::with_capacity(ev.len() * 96 + 32);
        s.push_str("{\"traceEvents\":[");
        for (i, e) in ev.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n{");
            match &e.kind {
                EventKind::Begin { name, cat } => {
                    let _ = write!(
                        s,
                        "\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"B\"",
                        esc(name)
                    );
                }
                EventKind::End { name, cat } => {
                    let _ = write!(
                        s,
                        "\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"E\"",
                        esc(name)
                    );
                }
                EventKind::Instant { name, cat } => {
                    let _ = write!(
                        s,
                        "\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\"",
                        esc(name)
                    );
                }
                EventKind::Counter { name, .. } => {
                    let _ = write!(s, "\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"C\"", esc(name));
                }
            }
            let _ = write!(s, ",\"ts\":{},\"pid\":1,\"tid\":{}", e.ts, e.tid);
            if let EventKind::Counter { series, .. } = &e.kind {
                s.push_str(",\"args\":{");
                for (j, (k, v)) in series.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{v}", esc(k));
                }
                s.push('}');
            }
            s.push('}');
        }
        s.push_str("\n]}\n");
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// RAII span: emits the matching `E` on drop. A disabled guard (no
/// recorder installed at open) is a no-op.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    inner: Option<(Arc<Recorder>, String, &'static str)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((rec, name, cat)) = self.inner.take() {
            rec.end(&name, cat);
        }
    }
}

// ---- global install point -------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<Recorder>>> {
    static S: OnceLock<Mutex<Option<Arc<Recorder>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

/// Install `rec` as the process-wide recorder. Instrumentation routed
/// through the free functions starts landing in it immediately.
pub fn install(rec: Arc<Recorder>) {
    *slot().lock().unwrap() = Some(rec);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Remove and return the installed recorder (if any); instrumentation
/// goes back to no-ops.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ACTIVE.store(false, Ordering::SeqCst);
    slot().lock().unwrap().take()
}

/// One relaxed atomic load: is a recorder installed? The fast gate every
/// instrumentation site checks first.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The installed recorder, if any.
pub fn active() -> Option<Arc<Recorder>> {
    if !is_active() {
        return None;
    }
    slot().lock().unwrap().clone()
}

/// Did the harness ask probes for the reuse-distance histogram?
pub fn reuse_requested() -> bool {
    active().map(|r| r.wants_reuse()).unwrap_or(false)
}

/// Open a span against the installed recorder (no-op guard when off).
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    match active() {
        Some(r) => r.span(name, cat),
        None => SpanGuard { inner: None },
    }
}

/// Emit an instant event (no-op when off).
pub fn instant(name: &str, cat: &'static str) {
    if let Some(r) = active() {
        r.instant(name, cat);
    }
}

/// Emit a counter sample (no-op when off).
pub fn counter(name: &str, series: &[(&str, u64)]) {
    if let Some(r) = active() {
        r.counter(name, series);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_traces_are_deterministic() {
        let run = || {
            let rec = Arc::new(Recorder::new(Clock::logical()));
            {
                let _outer = rec.span("outer", "test");
                rec.instant("tick", "test");
                let _inner = rec.span("inner", "test");
                rec.counter("c", &[("x", 7), ("y", 9)]);
            }
            rec.to_chrome_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same events, same bytes");
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"args\":{\"x\":7,\"y\":9}"));
    }

    #[test]
    fn spans_balance_and_ts_is_monotone() {
        let rec = Arc::new(Recorder::new(Clock::wall()));
        for i in 0..5 {
            let _g = rec.span(&format!("s{i}"), "test");
            rec.instant("in-span", "test");
        }
        let ev = rec.events();
        assert_eq!(ev.len(), 15);
        let mut depth = 0i64;
        let mut last = 0u64;
        for e in &ev {
            assert!(e.ts >= last, "ts must be non-decreasing");
            last = e.ts;
            match e.kind {
                EventKind::Begin { .. } => depth += 1,
                EventKind::End { .. } => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "every B has an E");
    }

    #[test]
    fn guard_closes_span_on_panic() {
        let rec = Arc::new(Recorder::new(Clock::logical()));
        let r2 = Arc::clone(&rec);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = r2.span("doomed", "test");
            panic!("boom");
        }));
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert!(matches!(ev[1].kind, EventKind::End { .. }));
    }

    #[test]
    fn tids_assigned_in_first_use_order() {
        let rec = Arc::new(Recorder::new(Clock::logical()));
        rec.instant("main-first", "test");
        let r2 = Arc::clone(&rec);
        std::thread::spawn(move || r2.instant("worker", "test"))
            .join()
            .unwrap();
        rec.instant("main-again", "test");
        let ev = rec.events();
        assert_eq!(ev[0].tid, 0);
        assert_eq!(ev[1].tid, 1);
        assert_eq!(ev[2].tid, 0);
    }

    #[test]
    fn names_are_json_escaped() {
        let rec = Arc::new(Recorder::new(Clock::logical()));
        rec.instant("quote\"back\\slash", "test");
        let json = rec.to_chrome_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
    }

    #[test]
    fn global_install_routes_and_uninstall_stops() {
        // The one test that touches process-global state; other tests in
        // this binary use recorder-local APIs only, so concurrent test
        // threads may add events here (engine tests run instrumented) —
        // assert only on events this test emits.
        let rec = Arc::new(Recorder::new(Clock::wall()));
        install(Arc::clone(&rec));
        assert!(is_active());
        {
            let _g = span("global-span", "obs-test");
            instant("global-instant", "obs-test");
            counter("global-counter", &[("v", 1)]);
        }
        let got = uninstall().expect("a recorder was installed");
        assert!(Arc::ptr_eq(&got, &rec));
        assert!(!is_active());
        assert!(active().is_none());
        let before = rec.num_events();
        instant("after-uninstall", "obs-test");
        assert_eq!(rec.num_events(), before, "uninstalled: no new events");
        let mine: Vec<Event> = rec
            .events()
            .into_iter()
            .filter(|e| match &e.kind {
                EventKind::Begin { cat, .. }
                | EventKind::End { cat, .. }
                | EventKind::Instant { cat, .. } => *cat == "obs-test",
                EventKind::Counter { name, .. } => name == "global-counter",
            })
            .collect();
        assert_eq!(mine.len(), 4, "B, instant, counter, E");
    }
}
