//! Cooperative cancellation: the shared token the engine, the parallel
//! sweep, and the simulators all observe.
//!
//! Rust threads cannot be killed, so a deadline or a Ctrl-C can only
//! reclaim a running cell if the cell *checks*. This module provides the
//! check in a form cheap enough for simulator hot paths:
//!
//! * [`CancelToken`] — a clonable handle around a shared atomic
//!   generation counter. `is_cancelled()` is two relaxed loads (the
//!   token's own generation plus the process-wide interrupt epoch), so
//!   checking every N line-accesses costs amortized O(1) and nothing on
//!   the untriggered path.
//! * [`install`]/[`current`] — a thread-local registration, so deeply
//!   nested code (a kernel inside a simulator inside a worker thread)
//!   reaches the ambient token without threading it through every
//!   signature. The engine installs a fresh token per attempt;
//!   [`crate::par`] propagates the caller's token into its workers.
//! * [`raise`] — the observation side: unwinds with a typed
//!   [`CancellationUnwind`] payload that the engine's existing
//!   `catch_unwind` containment converts into
//!   `EngineError::Cancelled { after_accesses, .. }`. The unwind is
//!   silenced in the panic hook, so a cancelled cell does not spray
//!   "thread panicked" noise over the sweep output.
//! * [`install_sigint_handler`] — Ctrl-C bumps the process-wide epoch
//!   (one atomic increment — async-signal-safe), which every live token
//!   born before the bump observes as [`CancelReason::Interrupt`]. A
//!   second Ctrl-C exits immediately with the resumable code 130.
//!
//! Tokens snapshot the interrupt epoch at creation, so work started
//! *after* an interrupt (e.g. a `--resume` in the same process image, or
//! an unrelated test in the same binary) is not retro-cancelled.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// How many line-accesses (or traffic charges) between token checks on
/// the simulator hot paths. Small enough that a fired deadline is
/// observed within microseconds of simulated work, large enough that the
/// check never shows up in a profile.
pub const CHECK_INTERVAL: u64 = 8192;

/// Process exit code for "interrupted, journal flushed, resumable" —
/// the conventional 128 + SIGINT(2).
pub const INTERRUPT_EXIT_CODE: i32 = 130;

/// Process-wide interrupt epoch. Bumped by the SIGINT handler (and by
/// [`interrupt_now`]); never reset. Tokens compare against the value
/// they were born under.
static PROCESS_GEN: AtomicU64 = AtomicU64::new(0);

/// Why a token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The watchdog's deadline expired. Retriable: the next attempt gets
    /// a fresh deadline.
    Deadline,
    /// The process was interrupted (Ctrl-C). Not retriable: the sweep is
    /// shutting down.
    Interrupt,
}

impl CancelReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Interrupt => "interrupt",
        }
    }
}

#[derive(Debug, Default)]
struct Shared {
    generation: AtomicU64,
    /// 0 = unset, 1 = Deadline, 2 = Interrupt.
    reason: AtomicU8,
}

/// Clonable cancellation handle. All clones share one generation
/// counter; any clone may fire it, every clone observes it.
#[derive(Clone, Debug)]
pub struct CancelToken {
    shared: Arc<Shared>,
    born_process: u64,
}

impl CancelToken {
    /// A fresh, unfired token bound to the current interrupt epoch.
    pub fn new() -> Self {
        CancelToken {
            shared: Arc::new(Shared::default()),
            born_process: PROCESS_GEN.load(Ordering::Relaxed),
        }
    }

    /// Fire the token. Idempotent; the first reason wins.
    pub fn cancel(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Deadline => 1,
            CancelReason::Interrupt => 2,
        };
        let _ = self
            .shared
            .reason
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.shared.generation.fetch_add(1, Ordering::Release);
    }

    /// Two relaxed loads: the token's own generation and the process
    /// interrupt epoch relative to the token's birth.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.shared.generation.load(Ordering::Relaxed) != 0
            || PROCESS_GEN.load(Ordering::Relaxed) != self.born_process
    }

    /// The reason the token fired, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.shared.reason.load(Ordering::Relaxed) {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Interrupt),
            _ if PROCESS_GEN.load(Ordering::Relaxed) != self.born_process => {
                Some(CancelReason::Interrupt)
            }
            _ => None,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
    /// Countdown + cumulative counters for [`tick`]-based checkpoints
    /// (the `Traffic`/`ExplicitHier` paths, which have no per-object
    /// access clock to piggyback on).
    static TICK_BUDGET: Cell<u64> = const { Cell::new(CHECK_INTERVAL) };
    static TICK_TOTAL: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previously installed token (if any) on drop.
pub struct InstallGuard {
    previous: Option<CancelToken>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Install `token` as this thread's ambient cancellation token. The
/// returned guard restores the previous token when dropped. The tick
/// counters reset, so `after_accesses` counts from this installation.
pub fn install(token: CancelToken) -> InstallGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(token));
    TICK_BUDGET.with(|b| b.set(CHECK_INTERVAL));
    TICK_TOTAL.with(|t| t.set(0));
    InstallGuard { previous }
}

/// The ambient token of this thread, if one is installed.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The current process interrupt epoch. Capture at the start of a unit
/// of work; [`interrupted_since`] tells you whether Ctrl-C arrived while
/// it ran.
pub fn process_generation() -> u64 {
    PROCESS_GEN.load(Ordering::Relaxed)
}

/// Whether the process was interrupted after `generation` was captured.
pub fn interrupted_since(generation: u64) -> bool {
    PROCESS_GEN.load(Ordering::Relaxed) != generation
}

/// Bump the process interrupt epoch — exactly what the SIGINT handler
/// does. Every live token born before this call observes
/// [`CancelReason::Interrupt`]. Exposed for the harness and for tests
/// that simulate Ctrl-C in-process.
pub fn interrupt_now() {
    PROCESS_GEN.fetch_add(1, Ordering::SeqCst);
}

/// The payload [`raise`] unwinds with. The engine's `catch_unwind`
/// containment downcasts to this and produces
/// `EngineError::Cancelled { after_accesses, .. }` instead of
/// `Panicked` — cancellation is control flow, not a crash.
#[derive(Debug)]
pub struct CancellationUnwind {
    /// Accesses the observing counter had performed when the token was
    /// seen (the simulator clock, or the tick total).
    pub after_accesses: u64,
    pub reason: CancelReason,
}

/// Suppress the default "thread panicked" hook output for cancellation
/// unwinds. Installed once, on the first raise (the cold path), wrapping
/// whatever hook was active.
pub fn silence_cancellation_unwinds() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<CancellationUnwind>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Unwind the current thread with a [`CancellationUnwind`]. Callers have
/// already observed a fired token; `after_accesses` is their access
/// count at observation.
pub fn raise(after_accesses: u64, reason: CancelReason) -> ! {
    silence_cancellation_unwinds();
    std::panic::panic_any(CancellationUnwind {
        after_accesses,
        reason,
    })
}

/// Checkpoint for counterless charge paths (`Traffic`, `ExplicitHier`,
/// `TraceMem`): accumulate `n` accesses on a thread-local budget and
/// check the ambient token every [`CHECK_INTERVAL`]. No-op (one Cell
/// arithmetic) when the budget has headroom; no-op entirely when no
/// token is installed.
#[inline]
pub fn tick(n: u64) {
    let due = TICK_BUDGET.with(|b| {
        let v = b.get();
        if v > n {
            b.set(v - n);
            false
        } else {
            b.set(CHECK_INTERVAL);
            true
        }
    });
    TICK_TOTAL.with(|t| t.set(t.get().saturating_add(n)));
    if due {
        check_now();
    }
}

/// Check the ambient token immediately; unwind if it has fired.
pub fn check_now() {
    if let Some(tok) = CURRENT.with(|c| c.borrow().clone()) {
        if tok.is_cancelled() {
            let total = TICK_TOTAL.with(|t| t.get());
            raise(total, tok.reason().unwrap_or(CancelReason::Interrupt));
        }
    }
}

/// Sleep for `total`, checking the ambient token every ~10 ms — the
/// cooperative replacement for `std::thread::sleep` in injected stalls,
/// so a stalled cell still honors its deadline by *joining*, not by
/// being detached.
pub fn sleep_cooperatively(total: Duration) {
    const SLICE: Duration = Duration::from_millis(10);
    let t0 = std::time::Instant::now();
    loop {
        check_now();
        let elapsed = t0.elapsed();
        if elapsed >= total {
            return;
        }
        std::thread::sleep(SLICE.min(total - elapsed));
    }
}

// Raw FFI: the offline build has no libc crate, and installing a SIGINT
// handler needs exactly two libc symbols. Linux-only, like the rest of
// the harness's /proc-based introspection.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn _exit(code: i32) -> !;
}

const SIGINT: i32 = 2;

extern "C" fn sigint_handler(_sig: i32) {
    // First Ctrl-C: bump the epoch (lock-free atomic — signal-safe) and
    // let the harness drain, journal, and exit 130. Second Ctrl-C: the
    // user means now.
    if PROCESS_GEN.fetch_add(1, Ordering::SeqCst) >= 1 {
        unsafe { _exit(INTERRUPT_EXIT_CODE) }
    }
}

/// Install the cooperative SIGINT handler: the first Ctrl-C cancels every
/// live token via the process epoch, the second exits immediately with
/// [`INTERRUPT_EXIT_CODE`].
pub fn install_sigint_handler() {
    unsafe {
        signal(SIGINT, sigint_handler as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_unfired_and_fires_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Deadline);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        // First reason wins.
        t.cancel(CancelReason::Interrupt);
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn clones_share_the_generation() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel(CancelReason::Deadline);
        assert!(t.is_cancelled());
    }

    #[test]
    fn install_is_scoped_and_nested() {
        assert!(current().is_none());
        let a = CancelToken::new();
        {
            let _g = install(a.clone());
            assert!(current().is_some());
            let b = CancelToken::new();
            b.cancel(CancelReason::Deadline);
            {
                let _g2 = install(b);
                assert!(current().unwrap().is_cancelled());
            }
            // Inner guard restored the outer (unfired) token.
            assert!(!current().unwrap().is_cancelled());
        }
        assert!(current().is_none());
    }

    #[test]
    fn tick_unwinds_with_the_access_count() {
        let t = CancelToken::new();
        let _g = install(t.clone());
        t.cancel(CancelReason::Deadline);
        let unwound = std::panic::catch_unwind(|| {
            // Budget forces a check within CHECK_INTERVAL + 1 ticks.
            for _ in 0..=CHECK_INTERVAL {
                tick(1);
            }
        })
        .unwrap_err();
        let c = unwound
            .downcast_ref::<CancellationUnwind>()
            .expect("typed cancellation payload");
        assert_eq!(c.reason, CancelReason::Deadline);
        assert!(
            c.after_accesses >= CHECK_INTERVAL - 1,
            "{}",
            c.after_accesses
        );
    }

    #[test]
    fn tick_without_token_never_unwinds() {
        for _ in 0..3 * CHECK_INTERVAL {
            tick(1);
        }
    }

    #[test]
    fn cooperative_sleep_observes_the_token_quickly() {
        let t = CancelToken::new();
        let _g = install(t.clone());
        t.cancel(CancelReason::Deadline);
        let t0 = std::time::Instant::now();
        let r = std::panic::catch_unwind(|| sleep_cooperatively(Duration::from_secs(30)));
        assert!(r.is_err(), "fired token must cut the sleep short");
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
