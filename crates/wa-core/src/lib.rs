//! # wa-core
//!
//! Shared foundation for the reproduction of *Write-Avoiding Algorithms*
//! (Carson, Demmel, Grigori, Knight, Koanantakool, Schwartz, Simhadri;
//! UCB/EECS-2015-163, IPDPS 2016).
//!
//! This crate contains the pieces every other crate in the workspace needs:
//!
//! * [`matrix`] — a small dense-matrix type with strided views, used by the
//!   kernels in `dense`, `parallel` and `krylov`;
//! * [`traffic`] — read/write traffic counters for a memory-hierarchy
//!   boundary, the common currency in which all experiments report;
//! * [`bounds`] — the paper's lower bounds: Theorem 1 (writes to fast
//!   memory), Theorem 2 (bounded reuse precludes write-avoiding),
//!   the classical Ω(#flops / f(M)) communication bounds for matmul,
//!   TRSM, Cholesky, the (N,k)-body problem, FFT, and Strassen;
//! * [`cost`] — hardware cost parameters (latency α / reciprocal bandwidth β
//!   per boundary) used by the Section 7 performance models;
//! * [`rng`] — a tiny deterministic xorshift generator so all crates can
//!   build reproducible workloads without coordinating `rand` versions;
//! * [`engine`] — the execution-engine layer: [`engine::BackendKind`]
//!   (raw / simmed / traced / explicit), the [`engine::Workload`] trait
//!   every algorithm variant registers through, and the
//!   [`engine::Registry`] the harness drives;
//! * [`report`] — [`report::RunReport`], the uniform JSON-emitting result
//!   type both measurement models project into;
//! * [`par`] — scoped-thread `par_map`/`par_map_fallible` for parallel
//!   scenario sweeps with per-item panic containment (rayon is
//!   unavailable in the offline build environment);
//! * [`fault`] — deterministic fault injection (panic / stall / counter
//!   corruption on a workload's Nth invocation), the rig that exercises
//!   the engine's containment, deadline, and retry machinery;
//! * [`cancel`] — cooperative cancellation: the [`cancel::CancelToken`]
//!   the watchdog fires and the simulators observe every N accesses, the
//!   thread-local install point, and the SIGINT → resumable-exit path;
//! * [`obs`] — the zero-cost-when-off span/event recorder behind
//!   `harness run --trace` and `harness profile`: the engine and `par`
//!   emit spans/occupancy into it, `memsim` probes emit counter tracks
//!   and per-phase rows, and it serializes Chrome trace-event JSON;
//! * [`curve`] — [`curve::CapacityCurve`], the Mattson stack-distance
//!   projection the `stack` backend emits: exact FA-LRU fills and
//!   write-backs for every capacity from one trace pass.

pub mod bounds;
pub mod cancel;
pub mod cost;
pub mod curve;
pub mod engine;
pub mod fault;
pub mod matrix;
pub mod obs;
pub mod par;
pub mod report;
pub mod rng;
pub mod traffic;

pub use cancel::{CancelReason, CancelToken};
pub use cost::CostParams;
pub use curve::{CapacityCurve, CurvePoint};
pub use engine::{
    BackendKind, EngineError, FnWorkload, Registry, RunCfg, RunLimits, Scale, Workload,
};
pub use fault::{FaultKind, FaultPlan};
pub use matrix::Mat;
pub use report::RunReport;
pub use rng::XorShift;
pub use traffic::{AccessRun, BoundaryTraffic, Traffic};
