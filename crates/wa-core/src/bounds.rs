//! Lower bounds from the paper, as executable calculators.
//!
//! All bounds are stated in *words* for a two-level hierarchy with fast
//! memory of size `m` words; multi-level bounds follow by Fact 1 (treat any
//! prefix of the hierarchy as "fast"). Constant factors follow the cited
//! sources (\[7\], \[8\], \[28\], \[15\], \[38\]); the experiment harness compares
//! measured counts against these exact expressions and reports ratios, so
//! the Ω-constants matter only for presentation, not correctness of the
//! comparisons.

/// log2(7), the exponent of Strassen's algorithm.
pub const OMEGA0: f64 = 2.807354922057604; // log2(7)

/// Classical matmul / "three nested loops" load-store lower bound
/// `|S| / sqrt(8 m)` with `|S| = n_i * n_j * n_k` inner-loop iterations
/// (Section 5, paragraph 4: `W >= |S|/(8 M^{1/2}) - M`, we report the
/// leading term).
pub fn matmul_ldst_lower(ni: u64, nj: u64, nk: u64, m: u64) -> f64 {
    let s = (ni as f64) * (nj as f64) * (nk as f64);
    s / (8.0 * (m as f64).sqrt())
}

/// Theorem 1: writes to fast memory ≥ (loads + stores)/2.
pub fn writes_to_fast_lower(total_loads_stores_words: u64) -> u64 {
    total_loads_stores_words.div_ceil(2)
}

/// Writes to slow memory ≥ output size (the output must reside in slow
/// memory at the end; Section 2).
pub fn writes_to_slow_lower(output_words: u64) -> u64 {
    output_words
}

/// Theorem 2(1): with per-vertex out-degree ≤ `d` in the sub-CDAG, `t`
/// loads of which `n_inputs` are loads of inputs force
/// ≥ ceil((t − n_inputs)/d) writes to slow memory.
pub fn theorem2_write_lower(t_loads: u64, n_input_loads: u64, d: u64) -> u64 {
    assert!(d > 0);
    t_loads.saturating_sub(n_input_loads).div_ceil(d)
}

/// Theorem 2(2): with `w` total loads+stores, at most half loads of inputs,
/// the writes to slow memory are Ω(w/d); we return the constant-explicit
/// variant derived in the proof: `max(w/(10 d), ((9/10 - 1/2)) w / d)` —
/// i.e. `w * 2/(5 d)` when the "many loads" branch is taken, and `w/(10 d)`
/// otherwise; the guaranteed bound is the min of the two branches.
pub fn theorem2_write_lower_total(w: u64, d: u64) -> u64 {
    assert!(d > 0);
    // Proof shows: either >= W/(10 d) writes directly, or t >= (10d-1)W/(10d)
    // loads, giving >= (t - W/2)/d >= ((10d-1)/(10d) - 1/2) W / d writes.
    // The guaranteed lower bound is the minimum of the two branch bounds.
    let branch1 = w as f64 / (10.0 * d as f64);
    let branch2 = (((10.0 * d as f64 - 1.0) / (10.0 * d as f64)) - 0.5) * w as f64 / d as f64;
    branch1.min(branch2).floor() as u64
}

/// Cooley–Tukey FFT load/store lower bound `Ω(n log n / log m)` \[28\]
/// (unit constant).
pub fn fft_ldst_lower(n: u64, m: u64) -> f64 {
    assert!(m >= 2);
    (n as f64) * (n as f64).log2() / (m as f64).log2()
}

/// Corollary 2: FFT writes to slow memory are Ω of the same expression
/// divided by the out-degree bound d = 2.
pub fn fft_write_lower(n: u64, m: u64) -> f64 {
    fft_ldst_lower(n, m) / 2.0
}

/// Strassen load/store lower bound `Ω(n^{ω0} / m^{ω0/2 − 1})` \[8\]
/// (unit constant).
pub fn strassen_ldst_lower(n: u64, m: u64) -> f64 {
    (n as f64).powf(OMEGA0) / (m as f64).powf(OMEGA0 / 2.0 - 1.0)
}

/// Corollary 3: Strassen writes to slow memory with out-degree d = 4.
pub fn strassen_write_lower(n: u64, m: u64) -> f64 {
    strassen_ldst_lower(n, m) / 4.0
}

/// Direct (N,k)-body load/store lower bound `Ω(N^k / m^{k-1})` \[38, 15\]
/// (unit constant).
pub fn nbody_ldst_lower(n: u64, k: u32, m: u64) -> f64 {
    (n as f64).powi(k as i32) / (m as f64).powi(k as i32 - 1)
}

/// Parallel classical linear-algebra bounds for Section 7 (per processor,
/// memory-balanced):
///
/// * `w1` — writes to the lowest local level: output size `n²/P`;
/// * `w2` — interprocessor words: `n² / sqrt(c P)`;
/// * `w3` — reads from local slow into L1: `(n³/P) / sqrt(M1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelMatmulBounds {
    pub w1_writes_lowest: f64,
    pub w2_interproc_words: f64,
    pub w3_l1_fills: f64,
}

/// Compute W1, W2, W3 for n×n matmul on P processors with replication
/// factor `c` and top-level local memory `m1`.
pub fn parallel_matmul_bounds(n: u64, p: u64, c: u64, m1: u64) -> ParallelMatmulBounds {
    let nf = n as f64;
    let pf = p as f64;
    ParallelMatmulBounds {
        w1_writes_lowest: nf * nf / pf,
        w2_interproc_words: nf * nf / (pf * c as f64).sqrt(),
        w3_l1_fills: nf * nf * nf / pf / (m1 as f64).sqrt(),
    }
}

/// Model 2.2 / Theorem 4: if interprocessor words attain `O(W2)`, then
/// writes to L3 must be `Ω(n²/P^{2/3})` — asymptotically above the
/// output-size bound `n²/P`. Returns that forced write volume.
pub fn theorem4_l3_write_lower(n: u64, p: u64) -> f64 {
    let nf = n as f64;
    nf * nf / (p as f64).powf(2.0 / 3.0)
}

/// Krylov bound (Section 8): N iterations of CG write at least ~`4 n` vector
/// words per iteration to L2 when `n ≫ M1`; s-step streaming CA-CG reduces
/// this to `O(N·n/s)`. Returns (classic, streaming) write bounds in words.
pub fn ksm_write_bounds(n: u64, iters: u64, s: u64) -> (f64, f64) {
    let classic = 4.0 * n as f64 * iters as f64;
    let streaming = classic / s as f64;
    (classic, streaming)
}

/// Loomis–Whitney: with `na`, `nb`, `nc` entries of A, B, C available, the
/// number of executable inner-loop iterations is at most
/// `sqrt(na * nb * nc)` (used by Theorems 3 and 4).
pub fn loomis_whitney_max_iters(na: u64, nb: u64, nc: u64) -> f64 {
    ((na as f64) * (nb as f64) * (nc as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_bound_scales_inverse_sqrt_m() {
        let b1 = matmul_ldst_lower(1000, 1000, 1000, 100);
        let b2 = matmul_ldst_lower(1000, 1000, 1000, 400);
        assert!((b1 / b2 - 2.0).abs() < 1e-12, "4x memory halves the bound");
    }

    #[test]
    fn theorem1_rounds_up() {
        assert_eq!(writes_to_fast_lower(7), 4);
        assert_eq!(writes_to_fast_lower(8), 4);
        assert_eq!(writes_to_fast_lower(0), 0);
    }

    #[test]
    fn theorem2_basic() {
        // 100 loads, 20 of inputs, out-degree 2 -> at least 40 writes.
        assert_eq!(theorem2_write_lower(100, 20, 2), 40);
        // all loads are inputs -> no forced writes
        assert_eq!(theorem2_write_lower(50, 50, 4), 0);
        // rounding up
        assert_eq!(theorem2_write_lower(10, 0, 3), 4);
    }

    #[test]
    fn theorem2_total_is_linear_in_w() {
        let a = theorem2_write_lower_total(1_000_000, 2);
        let b = theorem2_write_lower_total(2_000_000, 2);
        assert!(b >= 2 * a - 2);
        assert!(a > 0);
    }

    #[test]
    fn fft_write_bound_is_half_ldst() {
        let n = 1 << 20;
        let m = 1 << 10;
        assert!((fft_write_lower(n, m) * 2.0 - fft_ldst_lower(n, m)).abs() < 1e-9);
        // n log n / log m with these numbers: 2^20 * 20 / 10
        assert!((fft_ldst_lower(n, m) - (n as f64) * 2.0).abs() < 1e-6);
    }

    #[test]
    fn strassen_bound_beats_classical_for_large_n() {
        // Strassen moves asymptotically fewer words than classical.
        let n = 1 << 14;
        let m = 1 << 16;
        assert!(strassen_ldst_lower(n, m) < matmul_ldst_lower(n, n, n, m) * 8.0);
    }

    #[test]
    fn nbody_bound_k2() {
        // N^2 / M for pairwise interactions.
        let b = nbody_ldst_lower(1_000, 2, 100);
        assert!((b - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_bounds_ordering_w1_le_w2_le_w3() {
        // For n >> sqrt(P) >> 1 the paper notes W1 <= W2 <= W3.
        let b = parallel_matmul_bounds(1 << 14, 64, 1, 1 << 10);
        assert!(b.w1_writes_lowest <= b.w2_interproc_words);
        assert!(b.w2_interproc_words <= b.w3_l1_fills);
    }

    #[test]
    fn theorem4_exceeds_output_bound() {
        let n = 1 << 12;
        let p = 512;
        let forced = theorem4_l3_write_lower(n, p);
        let output = (n * n) as f64 / p as f64;
        assert!(forced / output > 7.9, "P^{{1/3}} = 8 gap expected");
    }

    #[test]
    fn ksm_bounds_ratio_is_s() {
        let (classic, streaming) = ksm_write_bounds(1_000_000, 100, 8);
        assert!((classic / streaming - 8.0).abs() < 1e-12);
    }

    #[test]
    fn loomis_whitney_symmetric() {
        assert_eq!(loomis_whitney_max_iters(4, 9, 16), 24.0);
    }

    #[test]
    fn replication_reduces_w2() {
        let b1 = parallel_matmul_bounds(4096, 64, 1, 1024);
        let b4 = parallel_matmul_bounds(4096, 64, 4, 1024);
        assert!((b1.w2_interproc_words / b4.w2_interproc_words - 2.0).abs() < 1e-12);
        assert_eq!(b1.w1_writes_lowest, b4.w1_writes_lowest);
    }
}
