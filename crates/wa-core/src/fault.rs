//! Deterministic fault injection — the test rig behind the engine's
//! panic-containment, deadline, and retry machinery.
//!
//! A [`FaultPlan`] is a list of rules, each naming a workload, an
//! invocation ordinal, and a [`FaultKind`]. The registry consults the
//! plan on every dispatch (`Registry::set_fault_plan`); when a workload's
//! Nth invocation matches a rule, the engine injects the fault *inside*
//! the guarded execution path, so the containment layer sees exactly what
//! a real crash/livelock/bit-flip would look like:
//!
//! * [`FaultKind::Panic`] — the dispatch panics before the workload runs;
//!   containment must surface `EngineError::Panicked`.
//! * [`FaultKind::Stall`] — the dispatch sleeps for the given duration
//!   before running; with a shorter [`crate::engine::RunLimits::timeout`]
//!   the watchdog must surface `EngineError::TimedOut`.
//! * [`FaultKind::Corrupt`] — the workload runs normally, then its
//!   counters are deterministically corrupted ([`corrupt_report`]), so
//!   downstream agreement checks must flag the report.
//!
//! Invocation counting includes retries (each retry is a new invocation),
//! which is what makes `panic@1` + `retries ≥ 1` the canonical
//! retry-then-succeed scenario. Plans parse from a compact spec string
//! (harness `--fault-plan`, env `WA_FAULT_PLAN`):
//!
//! ```text
//! spec  := rule ("," rule)*
//! rule  := workload ":" kind ("@" nth)?          nth defaults to 1
//! kind  := "panic" | "corrupt" | "stall=" MILLIS ["ms"]
//! ```
//!
//! e.g. `matmul-wa:panic@1,lu-wa:stall=2000,cg:corrupt@2`.

use crate::report::RunReport;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// What an injected fault does to the dispatch it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the workload runs.
    Panic,
    /// Sleep this long before the workload runs (livelock stand-in).
    Stall(Duration),
    /// Run normally, then corrupt the report's counters.
    Corrupt,
}

impl FaultKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall(_) => "stall",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// One rule: fire `kind` on the `nth` (1-based) invocation of `workload`.
#[derive(Clone, Debug)]
pub struct FaultRule {
    pub workload: String,
    pub nth: u64,
    pub kind: FaultKind,
}

/// A set of [`FaultRule`]s plus per-workload invocation counters.
/// Counting is internal and thread-safe, so a plan installed on a
/// registry behaves deterministically even under a parallel sweep.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    hits: Mutex<BTreeMap<String, u64>>,
}

impl FaultPlan {
    pub fn new(rules: Vec<FaultRule>) -> Self {
        FaultPlan {
            rules,
            hits: Mutex::new(BTreeMap::new()),
        }
    }

    /// Parse the spec grammar in the module docs. Errors name the bad rule.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (workload, rest) = raw
                .split_once(':')
                .ok_or_else(|| format!("fault rule `{raw}`: expected `workload:kind[@n]`"))?;
            if workload.is_empty() {
                return Err(format!("fault rule `{raw}`: empty workload name"));
            }
            let (kind_str, nth) = match rest.split_once('@') {
                None => (rest, 1u64),
                Some((k, n)) => {
                    let nth: u64 = n
                        .parse()
                        .map_err(|_| format!("fault rule `{raw}`: bad ordinal `{n}`"))?;
                    if nth == 0 {
                        return Err(format!("fault rule `{raw}`: ordinals are 1-based"));
                    }
                    (k, nth)
                }
            };
            let kind = match kind_str {
                "panic" => FaultKind::Panic,
                "corrupt" => FaultKind::Corrupt,
                s => match s.strip_prefix("stall=") {
                    Some(ms) => {
                        let ms = ms.strip_suffix("ms").unwrap_or(ms);
                        let ms: u64 = ms
                            .parse()
                            .map_err(|_| format!("fault rule `{raw}`: bad stall `{ms}`"))?;
                        FaultKind::Stall(Duration::from_millis(ms))
                    }
                    None => {
                        return Err(format!(
                            "fault rule `{raw}`: unknown kind `{kind_str}` \
                             (panic | corrupt | stall=MS)"
                        ))
                    }
                },
            };
            rules.push(FaultRule {
                workload: workload.to_string(),
                nth,
                kind,
            });
        }
        if rules.is_empty() {
            return Err("fault plan spec contains no rules".to_string());
        }
        Ok(FaultPlan::new(rules))
    }

    /// Plan from the `WA_FAULT_PLAN` environment variable, if set.
    /// A present-but-malformed spec is a hard error (silently ignoring a
    /// typo'd fault plan would make the rig lie about coverage).
    pub fn from_env() -> Option<Result<FaultPlan, String>> {
        std::env::var("WA_FAULT_PLAN").ok().map(|s| Self::parse(&s))
    }

    /// Record one invocation of `workload` and return the fault (if any)
    /// scheduled for this ordinal.
    pub fn on_invocation(&self, workload: &str) -> Option<FaultKind> {
        let mut hits = self.hits.lock().unwrap();
        let n = hits.entry(workload.to_string()).or_insert(0);
        *n += 1;
        let n = *n;
        self.rules
            .iter()
            .find(|r| r.workload == workload && r.nth == n)
            .map(|r| r.kind)
    }

    /// Invocations recorded so far for `workload` (test observability).
    pub fn invocations(&self, workload: &str) -> u64 {
        *self.hits.lock().unwrap().get(workload).unwrap_or(&0)
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// Offset added to every counter by [`corrupt_report`] — an arbitrary but
/// fixed constant so corruption is deterministic and test-assertable.
pub const CORRUPTION_OFFSET: u64 = 0xBAD;

/// Deterministically corrupt a report's traffic counters in place: every
/// per-level write count and the flop counter gain [`CORRUPTION_OFFSET`].
/// The boundary counters are deliberately left alone — an *asymmetric*
/// corruption, like a real single-counter bug, which breaks the
/// per-level/boundary conservation invariants that
/// [`RunReport::validate`](crate::report::RunReport::validate) checks.
/// A note marks the report so the rig can tell an injected corruption
/// from a genuine counter bug.
pub fn corrupt_report(r: &mut RunReport) {
    for w in &mut r.writes_per_level {
        *w += CORRUPTION_OFFSET;
    }
    r.flops += CORRUPTION_OFFSET;
    r.notes
        .push("fault-injected: counters corrupted (+0xBAD)".to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BackendKind, Scale};

    #[test]
    fn parses_all_rule_forms() {
        let p = FaultPlan::parse("matmul-wa:panic@1,lu-wa:stall=2000ms,cg:corrupt@3").unwrap();
        assert_eq!(p.rules().len(), 3);
        assert_eq!(p.rules()[0].kind, FaultKind::Panic);
        assert_eq!(p.rules()[0].nth, 1);
        assert_eq!(
            p.rules()[1].kind,
            FaultKind::Stall(Duration::from_millis(2000))
        );
        assert_eq!(p.rules()[1].nth, 1);
        assert_eq!(p.rules()[2].kind, FaultKind::Corrupt);
        assert_eq!(p.rules()[2].nth, 3);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "matmul-wa",
            ":panic",
            "w:explode",
            "w:stall=abc",
            "w:panic@0",
            "w:panic@x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn fires_on_exactly_the_nth_invocation_per_workload() {
        let p = FaultPlan::parse("a:panic@2,b:corrupt@1").unwrap();
        assert_eq!(p.on_invocation("a"), None);
        assert_eq!(p.on_invocation("a"), Some(FaultKind::Panic));
        assert_eq!(p.on_invocation("a"), None);
        assert_eq!(p.on_invocation("b"), Some(FaultKind::Corrupt));
        assert_eq!(p.on_invocation("b"), None);
        assert_eq!(p.on_invocation("untargeted"), None);
        assert_eq!(p.invocations("a"), 3);
        assert_eq!(p.invocations("untargeted"), 1);
    }

    #[test]
    fn corruption_is_deterministic_and_marked() {
        let mut r = RunReport::new("w", BackendKind::Explicit, Scale::Small);
        r.writes_per_level = vec![10, 20];
        r.flops = 5;
        corrupt_report(&mut r);
        assert_eq!(r.writes_per_level, vec![10 + 0xBAD, 20 + 0xBAD]);
        assert_eq!(r.flops, 5 + 0xBAD);
        assert!(r.notes.iter().any(|n| n.contains("fault-injected")));
    }
}
