//! Dense row-major matrix with strided block views.
//!
//! This is deliberately a small, dependency-free matrix type: the point of
//! the workspace is to count memory traffic of blocked algorithms, so the
//! only structural feature we need is cheap `b × b` block addressing with a
//! row stride (so a block of a larger matrix can be passed to a kernel
//! without copying).

use crate::rng::XorShift;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Owned dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix filled by `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Uniform random entries in `[-1, 1)`, deterministic in `seed`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = XorShift::new(seed);
        Mat::from_fn(rows, cols, |_, _| rng.next_unit() * 2.0 - 1.0)
    }

    /// Random symmetric positive-definite matrix (diagonally dominant),
    /// suitable as a Cholesky / CG test input.
    pub fn random_spd(n: usize, seed: u64) -> Self {
        let mut a = Mat::random(n, n, seed);
        // Symmetrize, then make strictly diagonally dominant.
        for i in 0..n {
            for j in 0..i {
                let v = 0.5 * (a[(i, j)] + a[(j, i)]);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        for i in 0..n {
            a[(i, i)] = a[(i, i)].abs() + n as f64;
        }
        a
    }

    /// Random (non-symmetric) strictly diagonally dominant matrix —
    /// well-conditioned and safe for the pivot-free LU factorizations.
    pub fn random_diagdom(n: usize, seed: u64) -> Self {
        let mut a = Mat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] = a[(i, i)].abs() + n as f64;
        }
        a
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Classical reference product `self * b` (unblocked, for verification).
    pub fn matmul_ref(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut c = Mat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// max |self - other| over all entries.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Lower-triangular part (including diagonal), rest zeroed.
    pub fn lower_triangular(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| {
            if j <= i {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Upper-triangular part (including diagonal), rest zeroed.
    pub fn upper_triangular(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| {
            if j >= i {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Random well-conditioned upper-triangular matrix (unit-ish diagonal).
    pub fn random_upper_triangular(n: usize, seed: u64) -> Mat {
        let mut rng = XorShift::new(seed);
        Mat::from_fn(n, n, |i, j| {
            if j > i {
                (rng.next_unit() * 2.0 - 1.0) / n as f64
            } else if j == i {
                1.0 + rng.next_unit()
            } else {
                0.0
            }
        })
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut m = Mat::zeros(3, 4);
        m[(2, 3)] = 7.5;
        m[(0, 0)] = -1.0;
        assert_eq!(m[(2, 3)], 7.5);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn eye_times_anything_is_identity_map() {
        let a = Mat::random(5, 5, 42);
        let i = Mat::eye(5);
        assert!(i.matmul_ref(&a).max_abs_diff(&a) < 1e-15);
        assert!(a.matmul_ref(&i).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn matmul_ref_matches_hand_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        let b = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 5) as f64);
        let c = a.matmul_ref(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Mat::random(4, 7, 3);
        assert!(a.transpose().transpose().max_abs_diff(&a) == 0.0);
    }

    #[test]
    fn spd_matrix_is_symmetric_with_positive_diagonal() {
        let a = Mat::random_spd(16, 9);
        for i in 0..16 {
            assert!(a[(i, i)] > 0.0);
            for j in 0..16 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn triangular_extraction() {
        let a = Mat::random(5, 5, 1);
        let l = a.lower_triangular();
        let u = a.upper_triangular();
        for i in 0..5 {
            for j in 0..5 {
                if j > i {
                    assert_eq!(l[(i, j)], 0.0);
                    assert_eq!(u[(i, j)], a[(i, j)]);
                } else if j < i {
                    assert_eq!(u[(i, j)], 0.0);
                    assert_eq!(l[(i, j)], a[(i, j)]);
                }
            }
        }
    }
}
