//! `RunReport` — the uniform result type every backend projects into.
//!
//! The repo measures the paper's algorithms two ways (explicit block
//! movement and simulated caches) plus two auxiliary modes (raw execution,
//! trace recording). Historically each produced its own ad-hoc numbers;
//! `RunReport` is the common currency: per-boundary [`Traffic`], words
//! written into each level, flop count, wall time, and a config echo —
//! serialized to a stable JSON schema by [`RunReport::to_json`] so sweeps
//! are machine-readable without a serde dependency.

use crate::curve::CapacityCurve;
use crate::engine::{BackendKind, Scale};
use crate::traffic::{BoundaryTraffic, Traffic};

/// Run `f`, returning its value and the elapsed wall time in nanoseconds
/// (the number every backend stores in [`RunReport::wall_ns`]).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let t0 = std::time::Instant::now();
    let v = f();
    (v, t0.elapsed().as_nanos())
}

/// Median of a set of wall times (lower-middle for even counts, the
/// harness's `--repeat` convention). Returns 0 for an empty slice.
pub fn median_wall_ns(walls: &[u128]) -> u128 {
    if walls.is_empty() {
        return 0;
    }
    let mut s = walls.to_vec();
    s.sort_unstable();
    s[(s.len() - 1) / 2]
}

/// Uniform result of one workload execution on one backend.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Registry name of the workload (e.g. `matmul-wa`).
    pub workload: String,
    /// Backend that produced the numbers.
    pub backend: BackendKind,
    /// Scale the workload ran at.
    pub scale: Scale,
    /// Config echo: ordered key/value pairs (problem size, block sizes,
    /// hierarchy capacities, policy, …) so a report is self-describing.
    pub config: Vec<(String, String)>,
    /// Traffic per hierarchy boundary (index 0 = fastest boundary, e.g.
    /// L1↔L2; the last entry is the boundary to the backing store).
    /// Empty for backends that do not model a hierarchy (e.g. `raw`).
    ///
    /// **Unit note for the message counters.** `load_msgs`/`store_msgs`
    /// count *block transfers*, one per contiguous run, not words. For
    /// the cache simulator a block is a line (msgs = lines moved); for
    /// the explicit kernels it is one `load`/`store` call; for the
    /// tally-based crates (`krylov`, `extsort`) it is one vector/matrix
    /// *stream* — e.g. one CG iteration is 12 load messages and 4 store
    /// messages however long the vectors are. Before the batched-run API
    /// (PR 4) those crates reported the word-granular fiction
    /// `msgs == words`; reports from the two eras are not comparable on
    /// the `msgs` columns. A hand-computed CG iteration pinning today's
    /// meaning lives in `krylov::cg::tests`.
    pub boundaries: Vec<Traffic>,
    /// Words written *into* level `i+1` (1-indexed levels; the last entry
    /// is the backing store). Derived from boundary traffic plus any
    /// local (R2) writes the model recorded. Empty when `boundaries` is.
    pub writes_per_level: Vec<u64>,
    /// Arithmetic operations (0 when the backend does not count them).
    pub flops: u64,
    /// Wall-clock time of the measured section, nanoseconds.
    pub wall_ns: u128,
    /// Free-form remarks (tolerances, mapping caveats, trace stats).
    pub notes: Vec<String>,
    /// Per-capacity projection from the `stack` backend; `None` for every
    /// other backend. Serialized as a trailing `"curve"` key (sampled at
    /// [`CapacityCurve::default_ladder`]) only when present, so the JSON
    /// schema of the existing backends is unchanged.
    pub curve: Option<CapacityCurve>,
}

impl RunReport {
    pub fn new(workload: impl Into<String>, backend: BackendKind, scale: Scale) -> Self {
        RunReport {
            workload: workload.into(),
            backend,
            scale,
            config: Vec::new(),
            boundaries: Vec::new(),
            writes_per_level: Vec::new(),
            flops: 0,
            wall_ns: 0,
            notes: Vec::new(),
            curve: None,
        }
    }

    /// Append a config echo entry (insertion order is preserved in JSON).
    pub fn config(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.config.push((key.into(), value.to_string()));
        self
    }

    pub fn note(mut self, s: impl Into<String>) -> Self {
        self.notes.push(s.into());
        self
    }

    /// Install per-boundary traffic and the per-level write decomposition
    /// from a [`BoundaryTraffic`] plus per-level local (R2) writes.
    /// `local_writes` is indexed by level−1 and may be empty.
    pub fn with_boundaries(mut self, bt: &BoundaryTraffic, local_writes: &[u64]) -> Self {
        let nb = bt.num_boundaries();
        self.boundaries = (0..nb).map(|i| bt.boundary(i)).collect();
        self.writes_per_level = (1..=nb + 1)
            .map(|lvl| bt.writes_into_level(lvl) + local_writes.get(lvl - 1).copied().unwrap_or(0))
            .collect();
        self
    }

    /// Structural invariants every well-formed report satisfies, checked
    /// by the engine after every attempt (so a corrupted report surfaces
    /// as a typed `ReportInvariant` error at the cell that produced it,
    /// not as a silent cross-model disagreement three tables later):
    ///
    /// * `writes_per_level` has exactly one entry per level
    ///   (boundaries + 1) when both are present;
    /// * backing-store conservation: words written into the last level
    ///   equal the stores across the last boundary — no model records
    ///   local writes to the backing store;
    /// * each interior level receives at least the writes its neighbor
    ///   boundaries deliver (local R2 writes only add);
    /// * an attached capacity curve is monotone (fills non-increasing,
    ///   hits non-decreasing in capacity) and conserves write-backs
    ///   (`dram_writes = writebacks + flush_writebacks` at every point).
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.boundaries.is_empty() && !self.writes_per_level.is_empty() {
            let nb = self.boundaries.len();
            if self.writes_per_level.len() != nb + 1 {
                return Err(format!(
                    "writes_per_level has {} entries for {} boundaries (want {})",
                    self.writes_per_level.len(),
                    nb,
                    nb + 1
                ));
            }
            // Writes delivered into level `lvl` (1-indexed) by boundary
            // traffic alone: loads across boundary lvl-1 + stores across
            // boundary lvl-2.
            let delivered = |lvl: usize| -> u64 {
                let mut w = 0;
                if lvl <= nb {
                    w += self.boundaries[lvl - 1].load_words;
                }
                if lvl >= 2 {
                    w += self.boundaries[lvl - 2].store_words;
                }
                w
            };
            let last = self.writes_per_level[nb];
            let stored = self.boundaries[nb - 1].store_words;
            if last != stored {
                return Err(format!(
                    "backing-store conservation: writes_per_level[{nb}] = {last} \
                     but the last boundary stores {stored} words"
                ));
            }
            for lvl in 1..=nb {
                let have = self.writes_per_level[lvl - 1];
                let need = delivered(lvl);
                if have < need {
                    return Err(format!(
                        "level {lvl} records {have} writes but its boundaries \
                         deliver {need} words"
                    ));
                }
            }
        }
        if let Some(curve) = &self.curve {
            let ladder = curve.default_ladder();
            let mut prev: Option<crate::curve::CurvePoint> = None;
            for &c in &ladder {
                let p = curve.at(c);
                if p.dram_writes_lines() != p.writebacks + p.flush_writebacks {
                    return Err(format!(
                        "curve at {c} words: dram_writes {} != writebacks {} + flush {}",
                        p.dram_writes_lines(),
                        p.writebacks,
                        p.flush_writebacks
                    ));
                }
                if let Some(q) = &prev {
                    if p.fills > q.fills {
                        return Err(format!(
                            "curve not monotone: fills grow {} -> {} from {} to {c} words",
                            q.fills, p.fills, q.capacity_words
                        ));
                    }
                    if p.hits < q.hits {
                        return Err(format!(
                            "curve not monotone: hits shrink {} -> {} from {} to {c} words",
                            q.hits, p.hits, q.capacity_words
                        ));
                    }
                }
                prev = Some(p);
            }
        }
        Ok(())
    }

    /// Total words moved across the slowest boundary (e.g. LLC↔DRAM).
    pub fn slow_traffic(&self) -> Traffic {
        self.boundaries.last().copied().unwrap_or(Traffic::ZERO)
    }

    /// Words written to the backing store (the paper's headline metric).
    pub fn writes_to_slow(&self) -> u64 {
        self.slow_traffic().writes_to_slow()
    }

    /// Serialize to the stable JSON schema. Keys are emitted in a fixed
    /// order; `config` is an object preserving insertion order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        field_str(&mut s, "workload", &self.workload);
        s.push(',');
        field_str(&mut s, "backend", self.backend.as_str());
        s.push(',');
        field_str(&mut s, "scale", self.scale.as_str());
        s.push(',');
        json_key(&mut s, "config");
        s.push('{');
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            field_str(&mut s, k, v);
        }
        s.push('}');
        s.push(',');
        json_key(&mut s, "boundaries");
        s.push('[');
        for (i, t) in self.boundaries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            field_u64(&mut s, "load_words", t.load_words);
            s.push(',');
            field_u64(&mut s, "load_msgs", t.load_msgs);
            s.push(',');
            field_u64(&mut s, "store_words", t.store_words);
            s.push(',');
            field_u64(&mut s, "store_msgs", t.store_msgs);
            s.push(',');
            field_u64(&mut s, "writes_to_fast", t.writes_to_fast());
            s.push(',');
            field_u64(&mut s, "writes_to_slow", t.writes_to_slow());
            s.push('}');
        }
        s.push(']');
        s.push(',');
        json_key(&mut s, "writes_per_level");
        s.push('[');
        for (i, w) in self.writes_per_level.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&w.to_string());
        }
        s.push(']');
        s.push(',');
        field_u64(&mut s, "flops", self.flops);
        s.push(',');
        json_key(&mut s, "wall_ns");
        s.push_str(&self.wall_ns.to_string());
        s.push(',');
        json_key(&mut s, "notes");
        s.push('[');
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_string(&mut s, n);
        }
        s.push(']');
        if let Some(curve) = &self.curve {
            s.push(',');
            json_key(&mut s, "curve");
            s.push_str(&curve.to_json(&curve.default_ladder()));
        }
        s.push('}');
        s
    }

    /// Header row for [`RunReport::to_csv_row`] (the `harness sweep
    /// --csv` schema, consumed by the paper-figure pipelines).
    pub const CSV_HEADER: &'static str = "workload,backend,scale,wall_ns,flops,load_words,\
         load_msgs,store_words,store_msgs,writes_to_slow,write_fraction";

    /// One CSV row: identity, wall time, and the slowest-boundary traffic
    /// (the LLC↔DRAM numbers the paper plots). Workload names are
    /// kebab-case identifiers, so no quoting is needed.
    pub fn to_csv_row(&self) -> String {
        let t = self.slow_traffic();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.6}",
            self.workload,
            self.backend.as_str(),
            self.scale.as_str(),
            self.wall_ns,
            self.flops,
            t.load_words,
            t.load_msgs,
            t.store_words,
            t.store_msgs,
            t.writes_to_slow(),
            t.write_fraction(),
        )
    }

    /// Human-readable one-screen rendering for non-`--json` output.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== {} [{} @ {}] ==",
            self.workload,
            self.backend.as_str(),
            self.scale.as_str()
        );
        for (k, v) in &self.config {
            let _ = writeln!(s, "  {k}: {v}");
        }
        for (i, t) in self.boundaries.iter().enumerate() {
            let _ = writeln!(s, "  boundary L{}/L{}: {}", i + 1, i + 2, t);
        }
        if !self.writes_per_level.is_empty() {
            let levels: Vec<String> = self
                .writes_per_level
                .iter()
                .enumerate()
                .map(|(i, w)| format!("L{}={w}", i + 1))
                .collect();
            let _ = writeln!(s, "  writes into levels: {}", levels.join(" "));
        }
        let _ = writeln!(
            s,
            "  flops: {}  wall: {:.3} ms",
            self.flops,
            self.wall_ns as f64 / 1e6
        );
        for n in &self.notes {
            let _ = writeln!(s, "  note: {n}");
        }
        s
    }
}

fn json_key(s: &mut String, k: &str) {
    json_string(s, k);
    s.push(':');
}

fn field_str(s: &mut String, k: &str, v: &str) {
    json_key(s, k);
    json_string(s, v);
}

fn field_u64(s: &mut String, k: &str, v: u64) {
    json_key(s, k);
    s.push_str(&v.to_string());
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::BoundaryTraffic;

    fn sample() -> RunReport {
        let mut bt = BoundaryTraffic::new(3);
        bt.boundary_mut(0).load(100);
        bt.boundary_mut(0).store(10);
        bt.boundary_mut(1).load(500);
        RunReport::new("matmul-wa", BackendKind::Explicit, Scale::Small)
            .config("n", 64)
            .config("block", 8)
            .with_boundaries(&bt, &[7, 0, 0])
            .note("unit test")
    }

    #[test]
    fn json_has_stable_field_order_and_escapes() {
        let mut r = sample();
        r.flops = 42;
        r.notes.push("quote \" backslash \\ done".to_string());
        let j = r.to_json();
        assert!(j.starts_with(
            "{\"workload\":\"matmul-wa\",\"backend\":\"explicit\",\"scale\":\"small\","
        ));
        assert!(j.contains("\"config\":{\"n\":\"64\",\"block\":\"8\"}"));
        assert!(j.contains("\"writes_per_level\":[107,510,0]"));
        assert!(j.contains("\"flops\":42"));
        assert!(j.contains("quote \\\" backslash \\\\ done"));
    }

    #[test]
    fn curve_key_is_emitted_only_when_present() {
        let mut r = sample();
        assert!(!r.to_json().contains("\"curve\""));
        r.curve = Some(crate::curve::CapacityCurve {
            line_words: 8,
            word_accesses: 3,
            line_touches: 3,
            repeats: 2,
            cold: 1,
            footprint_lines: 1,
            ..Default::default()
        });
        let j = r.to_json();
        // Appended after notes, so the pinned prefix schema is untouched.
        assert!(j.contains("],\"curve\":{\"line_words\":8,"));
        assert!(j.ends_with("}]}}"));
    }

    #[test]
    fn writes_per_level_matches_boundary_semantics() {
        let r = sample();
        // L1: 100 loaded across boundary 0 + 7 local = 107.
        // L2: 500 loaded across boundary 1 + 10 stored across boundary 0.
        // L3: nothing stored across boundary 1.
        assert_eq!(r.writes_per_level, vec![107, 510, 0]);
        assert_eq!(r.writes_to_slow(), 0);
        assert_eq!(r.slow_traffic().load_words, 500);
    }

    #[test]
    fn csv_row_matches_header_arity_and_slow_boundary() {
        let mut r = sample();
        r.wall_ns = 1234;
        r.flops = 9;
        let header_cols = RunReport::CSV_HEADER.split(',').count();
        let row = r.to_csv_row();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), header_cols);
        assert_eq!(cols[0], "matmul-wa");
        assert_eq!(cols[3], "1234");
        // Slowest boundary of sample(): load 500, store 0.
        assert_eq!(cols[5], "500");
        assert_eq!(cols[9], "0");
    }

    #[test]
    fn median_wall_is_lower_middle() {
        assert_eq!(median_wall_ns(&[]), 0);
        assert_eq!(median_wall_ns(&[7]), 7);
        assert_eq!(median_wall_ns(&[9, 1, 5]), 5);
        assert_eq!(median_wall_ns(&[4, 1, 9, 5]), 4);
    }

    #[test]
    fn render_text_mentions_all_sections() {
        let t = sample().render_text();
        assert!(t.contains("matmul-wa"));
        assert!(t.contains("boundary L1/L2"));
        assert!(t.contains("writes into levels"));
    }
}
