//! Scoped-thread parallel map for scenario sweeps.
//!
//! The build environment is offline, so rayon is unavailable; this is the
//! few-dozen-line subset the harness needs — a work-stealing `par_map`
//! over a slice using `std::thread::scope` and an atomic work index.
//! Order of results matches the input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use when the caller does not care: the machine's
/// available parallelism, capped by the number of items.
pub fn default_threads(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Apply `f` to every element of `items` on up to `threads` worker
/// threads. Results are returned in input order. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            }));
        }
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_input() {
        assert_eq!(
            par_map::<usize, usize, _>(&[], 4, |&x| x),
            Vec::<usize>::new()
        );
        assert_eq!(par_map(&[5], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(&[1, 2, 3], 64, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_sane() {
        assert!(default_threads(100) >= 1);
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
    }
}
