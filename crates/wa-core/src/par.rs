//! Scoped-thread parallel map for scenario sweeps.
//!
//! The build environment is offline, so rayon is unavailable; this is the
//! few-dozen-line subset the harness needs — a work-stealing `par_map`
//! over a slice using `std::thread::scope` and an atomic work index.
//! Order of results matches the input order.
//!
//! Two entry points share one engine:
//!
//! * [`par_map_fallible`] — every item runs under
//!   [`std::panic::catch_unwind`]; a panicking closure costs *that item
//!   only* (its slot becomes `Err(payload)`), the worker thread moves on
//!   to the next item, and the other items' results are returned intact.
//! * [`par_map`] — the historical infallible API. A panic in any item is
//!   re-raised on the calling thread *after* the whole batch has drained,
//!   carrying the first panic's payload message.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` bracketed by worker-occupancy counter samples on the installed
/// [`crate::obs`] recorder (a `workers_busy` track in the trace). With no
/// recorder installed this is exactly `f()`.
fn with_occupancy<R>(busy: &AtomicUsize, f: impl FnOnce() -> R) -> R {
    match crate::obs::active() {
        None => f(),
        Some(rec) => {
            let n = busy.fetch_add(1, Ordering::Relaxed) + 1;
            rec.counter("workers_busy", &[("busy", n as u64)]);
            let r = f();
            let n = busy.fetch_sub(1, Ordering::Relaxed) - 1;
            rec.counter("workers_busy", &[("busy", n as u64)]);
            r
        }
    }
}

/// Number of workers to use when the caller does not care: the machine's
/// available parallelism, capped by the number of items.
pub fn default_threads(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`) as a
/// human-readable message. `panic!` with a literal yields `&'static str`;
/// `panic!` with a format string yields `String`; anything else is opaque.
pub fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<crate::cancel::CancellationUnwind>() {
        format!(
            "cancelled ({}) after {} accesses",
            c.reason.as_str(),
            c.after_accesses
        )
    } else {
        "non-string panic payload".to_string()
    }
}

/// Apply `f` to every element of `items` on up to `threads` worker
/// threads, containing panics per item. Results come back in input order;
/// item `i` is `Err(message)` iff `f(&items[i])` panicked. A panic never
/// aborts the batch: the panicking worker catches it and continues with
/// the next unclaimed item.
pub fn par_map_fallible<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let guarded = |item: &T| -> Result<R, String> {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(item))).map_err(panic_payload_message)
    };
    let workers = threads.clamp(1, n);
    let busy = AtomicUsize::new(0);
    if workers == 1 {
        return items
            .iter()
            .map(|item| with_occupancy(&busy, || guarded(item)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    // Workers inherit the caller's cancel token (if any), so firing the
    // token cancels every item of the batch, not just the calling thread.
    let token = crate::cancel::current();
    let slots: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let (next, busy, slots, guarded) = (&next, &busy, &slots, &guarded);
        for _ in 0..workers {
            let token = token.clone();
            s.spawn(move || {
                let _guard = token.map(crate::cancel::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = with_occupancy(busy, || guarded(&items[i]));
                    *slots[i].lock().unwrap() = Some(r);
                }
            });
        }
        // Scope joins all workers; none can panic past `guarded`.
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker skipped a slot"))
        .collect()
}

/// Apply `f` to every element of `items` on up to `threads` worker
/// threads. Results are returned in input order. Panics in `f` propagate
/// to the caller — but only after every other item has finished, so a
/// panicking item no longer aborts the rest of the batch mid-flight.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results = par_map_fallible(items, threads, f);
    let panics = results.iter().filter(|r| r.is_err()).count();
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(msg) => panic!("par_map worker panicked ({panics} item(s) total): {msg}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_input() {
        assert_eq!(
            par_map::<usize, usize, _>(&[], 4, |&x| x),
            Vec::<usize>::new()
        );
        assert_eq!(par_map(&[5], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(&[1, 2, 3], 64, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_sane() {
        assert!(default_threads(100) >= 1);
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
    }

    #[test]
    fn fallible_contains_a_mid_batch_panic_to_its_item() {
        // Regression for the old `h.join().expect(...)` abort: item 13
        // panics on a worker thread mid-batch, yet every other item still
        // produces its result, in order.
        let items: Vec<usize> = (0..40).collect();
        let out = par_map_fallible(&items, 4, |&x| {
            if x == 13 {
                panic!("unlucky item {x}");
            }
            x * 10
        });
        assert_eq!(out.len(), 40);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("unlucky item 13"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn fallible_survives_multiple_panics_single_threaded() {
        let items: Vec<usize> = (0..6).collect();
        let out = par_map_fallible(&items, 1, |&x| {
            if x % 2 == 0 {
                panic!("even {x}");
            }
            x
        });
        let errs = out.iter().filter(|r| r.is_err()).count();
        assert_eq!(errs, 3);
        assert_eq!(*out[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn infallible_map_reraises_with_payload() {
        let items = vec![1usize, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, 2, |&x| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                x
            })
        });
        let msg = panic_payload_message(caught.unwrap_err());
        assert!(msg.contains("boom on 2"), "{msg}");
    }

    #[test]
    fn payload_message_handles_str_string_and_opaque() {
        let e = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_payload_message(e), "literal");
        let n = 7;
        let e = std::panic::catch_unwind(move || panic!("formatted {n}")).unwrap_err();
        assert_eq!(panic_payload_message(e), "formatted 7");
        let e = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_payload_message(e), "non-string panic payload");
    }
}
