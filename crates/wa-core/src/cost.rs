//! Hardware cost parameters for the Section 7 performance models.
//!
//! Costs are expressed per the paper's conventions: `alpha_*` is the latency
//! (seconds per message), `beta_*` the reciprocal bandwidth (seconds per
//! word) for a given boundary and direction. Write/read asymmetry of NVM is
//! expressed by `beta_23 ≫ beta_32` (writing L3 from L2 is much slower than
//! reading L3 into L2).

/// Cost parameters for a node with levels L1, L2, L3 plus a network.
///
/// Direction convention: `beta_ij` moves data from `L_i` to `L_j`, i.e.
/// `beta_23` *writes* NVM and `beta_32` *reads* it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Network message latency (s/message).
    pub alpha_nw: f64,
    /// Network reciprocal bandwidth (s/word).
    pub beta_nw: f64,
    /// Latency L2→L3 (NVM write path).
    pub alpha_23: f64,
    /// Reciprocal bandwidth L2→L3 (NVM write path).
    pub beta_23: f64,
    /// Latency L3→L2 (NVM read path).
    pub alpha_32: f64,
    /// Reciprocal bandwidth L3→L2 (NVM read path).
    pub beta_32: f64,
    /// Latency L1→L2.
    pub alpha_12: f64,
    /// Reciprocal bandwidth L1→L2.
    pub beta_12: f64,
    /// Latency L2→L1.
    pub alpha_21: f64,
    /// Reciprocal bandwidth L2→L1.
    pub beta_21: f64,
    /// L1 capacity in words.
    pub m1: u64,
    /// L2 capacity in words.
    pub m2: u64,
    /// L3 capacity in words.
    pub m3: u64,
}

impl CostParams {
    /// A plausible NVM-equipped cluster node, loosely following the numbers
    /// quoted in the paper's introduction (NVM reads ~DRAM-like latency,
    /// write bandwidth orders of magnitude worse) and typical
    /// DDR/interconnect figures. Units: seconds and words (8 B).
    pub fn nvm_cluster() -> Self {
        CostParams {
            alpha_nw: 1e-6,
            beta_nw: 8.0 / 10e9, // ~10 GB/s network
            alpha_23: 5e-6,
            beta_23: 8.0 / 0.5e9, // NVM write: 0.5 GB/s
            alpha_32: 2e-7,
            beta_32: 8.0 / 5e9, // NVM read: 5 GB/s
            alpha_12: 2e-9,
            beta_12: 8.0 / 50e9,
            alpha_21: 2e-9,
            beta_21: 8.0 / 50e9,
            m1: 4 << 10, // 32 KiB of f64
            m2: 4 << 20, // 32 MiB of f64
            m3: 4 << 30, // 32 GiB of f64
        }
    }

    /// A symmetric-cost machine (reads cost the same as writes), useful as a
    /// control in the model comparisons.
    pub fn symmetric(beta: f64, alpha: f64, m1: u64, m2: u64, m3: u64) -> Self {
        CostParams {
            alpha_nw: alpha,
            beta_nw: beta,
            alpha_23: alpha,
            beta_23: beta,
            alpha_32: alpha,
            beta_32: beta,
            alpha_12: alpha,
            beta_12: beta,
            alpha_21: alpha,
            beta_21: beta,
            m1,
            m2,
            m3,
        }
    }

    /// Write/read bandwidth asymmetry of the NVM level (`beta_23 / beta_32`).
    pub fn nvm_write_read_ratio(&self) -> f64 {
        self.beta_23 / self.beta_32
    }

    /// Time to move `words` in `msgs` messages across a boundary given
    /// `(alpha, beta)`.
    pub fn time(words: f64, msgs: f64, alpha: f64, beta: f64) -> f64 {
        alpha * msgs + beta * words
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::nvm_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvm_cluster_is_write_asymmetric() {
        let c = CostParams::nvm_cluster();
        assert!(c.nvm_write_read_ratio() > 5.0);
        assert!(c.beta_23 > c.beta_nw, "writing NVM slower than network");
    }

    #[test]
    fn symmetric_has_unit_ratio() {
        let c = CostParams::symmetric(1e-9, 1e-6, 1, 2, 3);
        assert_eq!(c.nvm_write_read_ratio(), 1.0);
        assert_eq!((c.m1, c.m2, c.m3), (1, 2, 3));
    }

    #[test]
    fn time_model_is_affine() {
        let t = CostParams::time(100.0, 2.0, 1.0, 0.5);
        assert_eq!(t, 2.0 + 50.0);
    }
}
