//! Traffic counters for a memory-hierarchy boundary.
//!
//! The paper's refined model (Section 2) decomposes each *load* into a read
//! from slow memory plus a write to fast memory, and each *store* into a
//! read from fast memory plus a write to slow memory. [`Traffic`] records
//! loads/stores in words and messages across one boundary, and derives the
//! read/write decomposition; [`BoundaryTraffic`] aggregates one `Traffic`
//! per boundary of an r-level hierarchy.

use std::fmt;
use std::ops::{Add, AddAssign};

/// One run of consecutive word accesses: `words` words starting at `addr`,
/// all reads or all writes. This is the currency of the bulk access APIs —
/// kernels describe their traffic as runs instead of single words, and the
/// consumers ([`Traffic::run`], `memsim::MemSim::run`) charge each run at
/// block-transfer granularity instead of walking it word by word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRun {
    /// First word address of the run.
    pub addr: usize,
    /// Number of consecutive words touched.
    pub words: usize,
    /// All-write run (`true`) or all-read run (`false`).
    pub is_write: bool,
}

impl AccessRun {
    /// A read run over `[addr, addr + words)`.
    pub fn read(addr: usize, words: usize) -> Self {
        AccessRun {
            addr,
            words,
            is_write: false,
        }
    }

    /// A write run over `[addr, addr + words)`.
    pub fn write(addr: usize, words: usize) -> Self {
        AccessRun {
            addr,
            words,
            is_write: true,
        }
    }
}

/// Word and message counts crossing one fast↔slow boundary.
///
/// `load_*` is slow→fast movement, `store_*` is fast→slow movement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Words moved slow→fast.
    pub load_words: u64,
    /// Messages (block transfers) moved slow→fast.
    pub load_msgs: u64,
    /// Words moved fast→slow.
    pub store_words: u64,
    /// Messages (block transfers) moved fast→slow.
    pub store_msgs: u64,
}

impl Traffic {
    pub const ZERO: Traffic = Traffic {
        load_words: 0,
        load_msgs: 0,
        store_words: 0,
        store_msgs: 0,
    };

    /// Record a slow→fast transfer of `words` words as one message.
    #[inline]
    pub fn load(&mut self, words: u64) {
        crate::cancel::tick(1);
        self.load_words += words;
        self.load_msgs += 1;
    }

    /// Record a fast→slow transfer of `words` words as one message.
    #[inline]
    pub fn store(&mut self, words: u64) {
        crate::cancel::tick(1);
        self.store_words += words;
        self.store_msgs += 1;
    }

    /// Record one read run of `words` words: one slow→fast message, or
    /// nothing for an empty run (a zero-length run moves no data, so it
    /// is not a transfer). The tally types (`krylov::IoTally`,
    /// `extsort::SortIo`) charge their streams through these two methods
    /// so the skip-empty rule lives in one place.
    #[inline]
    pub fn load_run(&mut self, words: u64) {
        if words > 0 {
            self.load(words);
        }
    }

    /// Record one write run of `words` words: one fast→slow message, or
    /// nothing for an empty run.
    #[inline]
    pub fn store_run(&mut self, words: u64) {
        if words > 0 {
            self.store(words);
        }
    }

    /// Record a batch of [`AccessRun`]s: each read run is one slow→fast
    /// message of `words` words, each write run one fast→slow message.
    /// Zero-length runs are skipped (they move nothing).
    pub fn run(&mut self, runs: &[AccessRun]) {
        for r in runs {
            if r.is_write {
                self.store_run(r.words as u64);
            } else {
                self.load_run(r.words as u64);
            }
        }
    }

    /// Total words moved in either direction (the classical "W" the
    /// communication-avoiding literature bounds).
    pub fn total_words(&self) -> u64 {
        self.load_words + self.store_words
    }

    /// Total messages in either direction.
    pub fn total_msgs(&self) -> u64 {
        self.load_msgs + self.store_msgs
    }

    /// Words *written to fast memory* across this boundary (= words loaded).
    pub fn writes_to_fast(&self) -> u64 {
        self.load_words
    }

    /// Words *written to slow memory* across this boundary (= words stored).
    pub fn writes_to_slow(&self) -> u64 {
        self.store_words
    }

    /// Words *read from slow memory* (= words loaded).
    pub fn reads_from_slow(&self) -> u64 {
        self.load_words
    }

    /// Ratio of writes-to-slow to total words; a write-avoiding execution
    /// drives this toward `output_size / W ≪ 1`.
    pub fn write_fraction(&self) -> f64 {
        if self.total_words() == 0 {
            0.0
        } else {
            self.writes_to_slow() as f64 / self.total_words() as f64
        }
    }
}

impl Add for Traffic {
    type Output = Traffic;
    fn add(self, o: Traffic) -> Traffic {
        Traffic {
            load_words: self.load_words + o.load_words,
            load_msgs: self.load_msgs + o.load_msgs,
            store_words: self.store_words + o.store_words,
            store_msgs: self.store_msgs + o.store_msgs,
        }
    }
}

impl AddAssign for Traffic {
    fn add_assign(&mut self, o: Traffic) {
        *self = *self + o;
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loads {} w / {} msgs, stores {} w / {} msgs",
            self.load_words, self.load_msgs, self.store_words, self.store_msgs
        )
    }
}

/// Traffic for every boundary of an r-level hierarchy.
///
/// Boundary `i` separates level `L_{i+1}` (fast) from `L_{i+2}` (slow) when
/// levels are numbered from the top (L1 smallest). For a two-level model
/// there is a single boundary, index 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundaryTraffic {
    boundaries: Vec<Traffic>,
}

impl BoundaryTraffic {
    /// `levels` memory levels have `levels - 1` boundaries.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2, "need at least two levels for one boundary");
        BoundaryTraffic {
            boundaries: vec![Traffic::ZERO; levels - 1],
        }
    }

    pub fn num_boundaries(&self) -> usize {
        self.boundaries.len()
    }

    /// Traffic across boundary `i` (0 = topmost, between L1 and L2).
    pub fn boundary(&self, i: usize) -> Traffic {
        self.boundaries[i]
    }

    pub fn boundary_mut(&mut self, i: usize) -> &mut Traffic {
        &mut self.boundaries[i]
    }

    /// Words written *into* level `L_lvl` (1-indexed, L1 = 1, topmost).
    ///
    /// Boundary `b` (0-indexed) separates `L_{b+1}` (fast side) from
    /// `L_{b+2}` (slow side). A load across boundary `b` writes into
    /// `L_{b+1}`; a store across boundary `b` writes into `L_{b+2}`. So
    /// `writes(L_s) = load_words(boundary s-1) + store_words(boundary s-2)`
    /// with out-of-range boundaries contributing zero.
    pub fn writes_into_level(&self, lvl: usize) -> u64 {
        assert!(lvl >= 1, "levels are 1-indexed");
        let mut w = 0;
        // Loads across boundary (lvl-1) land in L_lvl from L_{lvl+1}.
        if lvl <= self.boundaries.len() {
            w += self.boundaries[lvl - 1].load_words;
        }
        // Stores across boundary (lvl-2) land in L_lvl from L_{lvl-1}.
        if lvl >= 2 {
            w += self.boundaries[lvl - 2].store_words;
        }
        w
    }

    pub fn total(&self) -> Traffic {
        self.boundaries
            .iter()
            .copied()
            .fold(Traffic::ZERO, |a, b| a + b)
    }
}

impl AddAssign<&BoundaryTraffic> for BoundaryTraffic {
    fn add_assign(&mut self, o: &BoundaryTraffic) {
        assert_eq!(self.boundaries.len(), o.boundaries.len());
        for (a, b) in self.boundaries.iter_mut().zip(&o.boundaries) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_decomposition() {
        let mut t = Traffic::ZERO;
        t.load(100); // read slow, write fast
        t.store(40); // read fast, write slow
        assert_eq!(t.writes_to_fast(), 100);
        assert_eq!(t.writes_to_slow(), 40);
        assert_eq!(t.reads_from_slow(), 100);
        assert_eq!(t.total_words(), 140);
        assert_eq!(t.total_msgs(), 2);
    }

    #[test]
    fn run_batch_charges_one_message_per_run() {
        let mut t = Traffic::ZERO;
        t.run(&[
            AccessRun::read(0, 64),
            AccessRun::read(1024, 8),
            AccessRun::write(64, 16),
            AccessRun::read(0, 0), // empty: no words, no message
        ]);
        assert_eq!(t.load_words, 72);
        assert_eq!(t.load_msgs, 2);
        assert_eq!(t.store_words, 16);
        assert_eq!(t.store_msgs, 1);
    }

    #[test]
    fn run_with_empty_slice_is_a_no_op() {
        let mut t = Traffic::ZERO;
        t.run(&[]);
        assert_eq!(t, Traffic::ZERO);
        // And on a non-zero tally it changes nothing.
        t.load(5);
        let before = t;
        t.run(&[]);
        assert_eq!(t, before);
    }

    #[test]
    fn zero_length_runs_move_no_words_and_no_messages() {
        let mut t = Traffic::ZERO;
        t.run(&[AccessRun::read(0, 0), AccessRun::write(1024, 0)]);
        assert_eq!(t, Traffic::ZERO);
        t.load_run(0);
        t.store_run(0);
        assert_eq!(t, Traffic::ZERO, "empty runs are not transfers");
        // A batch mixing empty and real runs charges only the real ones.
        t.run(&[
            AccessRun::read(0, 0),
            AccessRun::read(8, 8),
            AccessRun::write(16, 0),
            AccessRun::write(24, 4),
        ]);
        assert_eq!(t.load_words, 8);
        assert_eq!(t.load_msgs, 1);
        assert_eq!(t.store_words, 4);
        assert_eq!(t.store_msgs, 1);
    }

    #[test]
    fn theorem1_invariant_holds_by_construction() {
        // Theorem 1: writes to fast >= (loads+stores)/2 holds whenever each
        // residency writes fast at least once; in the pure load/store
        // accounting, writes_to_fast = load_words and the bound is
        // load_words >= (load+store)/2 iff load >= store, which WA
        // algorithms satisfy. Check a representative WA-shaped count.
        let mut t = Traffic::ZERO;
        t.load(1_000_000);
        t.store(10_000);
        assert!(2 * t.writes_to_fast() >= t.total_words());
    }

    #[test]
    fn writes_into_middle_level_combines_both_neighbors() {
        // 3 levels: boundary 0 = L1/L2, boundary 1 = L2/L3.
        let mut bt = BoundaryTraffic::new(3);
        bt.boundary_mut(1).load(500); // L3 -> L2: writes into L2
        bt.boundary_mut(0).store(70); // L1 -> L2: writes into L2
        bt.boundary_mut(0).load(900); // L2 -> L1: writes into L1
        assert_eq!(bt.writes_into_level(2), 570);
        assert_eq!(bt.writes_into_level(1), 900);
    }

    #[test]
    fn writes_into_bottom_level_counts_only_stores_from_above() {
        let mut bt = BoundaryTraffic::new(3);
        bt.boundary_mut(1).store(33); // L2 -> L3
        bt.boundary_mut(1).load(1000); // L3 -> L2 (reads of L3, not writes)
        assert_eq!(bt.writes_into_level(3), 33);
    }

    #[test]
    fn aggregation() {
        let mut a = BoundaryTraffic::new(2);
        a.boundary_mut(0).load(10);
        let mut b = BoundaryTraffic::new(2);
        b.boundary_mut(0).store(5);
        a += &b;
        assert_eq!(a.total().total_words(), 15);
    }

    #[test]
    fn write_fraction_of_wa_trace_is_small() {
        let mut t = Traffic::ZERO;
        t.load(10_000);
        t.store(100);
        assert!(t.write_fraction() < 0.01);
    }
}
