//! The execution-engine layer: backends, scales, the [`Workload`] trait,
//! and the [`Registry`] the harness drives.
//!
//! Every algorithm variant in the workspace registers once (name, group,
//! supported backends, run function). The harness then offers a uniform
//! surface — `harness list`, `harness run <workload> --backend <b>` — and
//! cross-model checks can programmatically run the *same* workload on the
//! explicit-movement model and the cache simulator and compare
//! [`crate::report::RunReport`]s.

use crate::report::RunReport;
use std::collections::BTreeMap;
use std::fmt;

/// How a workload executes and how its traffic is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Plain execution on raw memory: numerics + wall clock, no traffic.
    Raw,
    /// Every access walks the multi-level cache simulator; boundary
    /// traffic is derived from fill/victim counters.
    Simmed,
    /// Accesses are recorded to an address trace; the report carries
    /// trace statistics (length, distinct lines).
    Traced,
    /// The algorithm issues explicit block `load`/`store` operations whose
    /// word counts are exact (the paper's Sections 2/4 accounting).
    Explicit,
}

impl BackendKind {
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Raw => "raw",
            BackendKind::Simmed => "simmed",
            BackendKind::Traced => "traced",
            BackendKind::Explicit => "explicit",
        }
    }

    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "raw" => Some(BackendKind::Raw),
            "simmed" | "sim" => Some(BackendKind::Simmed),
            "traced" | "trace" => Some(BackendKind::Traced),
            "explicit" => Some(BackendKind::Explicit),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Problem-size scale. The geometry mapping (cache capacities, matrix
/// dimensions) lives with the crates that own those notions; this enum is
/// just the shared selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast default: L3 capacity ÷256 vs. the paper's Xeon (L1/L2 stay at
    /// the ÷64 floor), dimensions ÷16.
    Small,
    /// Reference scale: capacities ÷64, dimensions ÷8.
    Paper,
}

impl Scale {
    pub fn as_str(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One execution scenario: backend, scale, and — for the traffic-counting
/// backends — the modeled hierarchy depth.
///
/// `depth` is the number of explicit/simulated cache levels between the
/// processor and the backing store: 1 is the classical two-level model of
/// the paper's Section 2 (one boundary), 3 is the full Xeon-style
/// L1/L2/L3/DRAM hierarchy (three boundaries). Backends that do not model
/// a hierarchy (`raw`, `traced`) ignore it; workloads advertise what they
/// can model through [`Workload::max_depth`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunCfg {
    pub backend: BackendKind,
    pub scale: Scale,
    pub depth: usize,
}

impl RunCfg {
    /// The default scenario: depth 1 (the two-level model).
    pub fn new(backend: BackendKind, scale: Scale) -> Self {
        RunCfg {
            backend,
            scale,
            depth: 1,
        }
    }

    pub fn with_depth(backend: BackendKind, scale: Scale, depth: usize) -> Self {
        RunCfg {
            backend,
            scale,
            depth,
        }
    }
}

/// Why a run could not produce a report.
#[derive(Clone, Debug)]
pub enum EngineError {
    UnknownWorkload {
        name: String,
    },
    UnsupportedBackend {
        workload: String,
        backend: BackendKind,
        supported: Vec<BackendKind>,
    },
    UnsupportedDepth {
        workload: String,
        backend: BackendKind,
        depth: usize,
        max: usize,
    },
    Failed {
        workload: String,
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownWorkload { name } => {
                write!(f, "unknown workload `{name}` (try `harness list`)")
            }
            EngineError::UnsupportedBackend {
                workload,
                backend,
                supported,
            } => {
                let names: Vec<&str> = supported.iter().map(|b| b.as_str()).collect();
                write!(
                    f,
                    "workload `{workload}` does not support backend `{backend}` (supported: {})",
                    names.join(", ")
                )
            }
            EngineError::UnsupportedDepth {
                workload,
                backend,
                depth,
                max,
            } => {
                write!(
                    f,
                    "workload `{workload}` on `{backend}` models hierarchy depths 1..={max}, \
                     not {depth}"
                )
            }
            EngineError::Failed { workload, message } => {
                write!(f, "workload `{workload}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One registered algorithm variant.
pub trait Workload: Send + Sync {
    /// Registry name, unique, kebab-case (e.g. `matmul-wa`).
    fn name(&self) -> &str;
    /// Owning group — by convention the crate name (`dense`, `nbody`, …).
    fn group(&self) -> &str;
    /// One-line description (paper artifact it reproduces).
    fn description(&self) -> &str;
    /// Backends this workload can execute on.
    fn backends(&self) -> &[BackendKind];
    /// Deepest hierarchy this workload can model on `backend` (number of
    /// cache levels between the processor and the backing store). Most
    /// workloads model the classical two-level setting only (depth 1).
    fn max_depth(&self, _backend: BackendKind) -> usize {
        1
    }
    /// Execute the scenario described by `cfg`.
    fn run_cfg(&self, cfg: RunCfg) -> Result<RunReport, EngineError>;

    /// Execute on `backend` at `scale` in the two-level model (depth 1).
    fn run(&self, backend: BackendKind, scale: Scale) -> Result<RunReport, EngineError> {
        self.run_cfg(RunCfg::new(backend, scale))
    }

    fn supports(&self, backend: BackendKind) -> bool {
        self.backends().contains(&backend)
    }
}

/// A [`Workload`] assembled from plain data plus a run closure — the
/// one-liner registration form the algorithm crates use.
pub struct FnWorkload {
    pub name: &'static str,
    pub group: &'static str,
    pub description: &'static str,
    pub backends: Vec<BackendKind>,
    /// `(backend, max depth)` overrides; backends not listed model depth 1.
    pub depths: Vec<(BackendKind, usize)>,
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync>,
}

impl FnWorkload {
    pub fn boxed(
        name: &'static str,
        group: &'static str,
        description: &'static str,
        backends: &[BackendKind],
        run: impl Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync + 'static,
    ) -> Box<dyn Workload> {
        FnWorkload::boxed_deep(name, group, description, backends, &[], run)
    }

    /// Like [`FnWorkload::boxed`] but with per-backend depth overrides for
    /// workloads that model hierarchies deeper than the two-level default.
    pub fn boxed_deep(
        name: &'static str,
        group: &'static str,
        description: &'static str,
        backends: &[BackendKind],
        depths: &[(BackendKind, usize)],
        run: impl Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync + 'static,
    ) -> Box<dyn Workload> {
        Box::new(FnWorkload {
            name,
            group,
            description,
            backends: backends.to_vec(),
            depths: depths.to_vec(),
            run: Box::new(run),
        })
    }
}

impl Workload for FnWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn group(&self) -> &str {
        self.group
    }

    fn description(&self) -> &str {
        self.description
    }

    fn backends(&self) -> &[BackendKind] {
        &self.backends
    }

    fn max_depth(&self, backend: BackendKind) -> usize {
        self.depths
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|(_, d)| *d)
            .unwrap_or(1)
    }

    fn run_cfg(&self, cfg: RunCfg) -> Result<RunReport, EngineError> {
        if !self.supports(cfg.backend) {
            return Err(EngineError::UnsupportedBackend {
                workload: self.name.to_string(),
                backend: cfg.backend,
                supported: self.backends.clone(),
            });
        }
        let max = self.max_depth(cfg.backend);
        if cfg.depth < 1 || cfg.depth > max {
            return Err(EngineError::UnsupportedDepth {
                workload: self.name.to_string(),
                backend: cfg.backend,
                depth: cfg.depth,
                max,
            });
        }
        (self.run)(cfg)
    }
}

/// Name-indexed collection of workloads. Registration order is preserved
/// for listing; lookup is by exact name.
#[derive(Default)]
pub struct Registry {
    order: Vec<String>,
    by_name: BTreeMap<String, Box<dyn Workload>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register one workload. Panics on a duplicate name: duplicates are
    /// always a programming error in the registering crate.
    pub fn register(&mut self, w: Box<dyn Workload>) {
        let name = w.name().to_string();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate workload registration: {name}"
        );
        self.order.push(name.clone());
        self.by_name.insert(name, w);
    }

    /// Register a whole batch (the per-crate `workloads()` vectors).
    pub fn register_all(&mut self, ws: Vec<Box<dyn Workload>>) {
        for w in ws {
            self.register(w);
        }
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&dyn Workload> {
        self.by_name.get(name).map(|b| b.as_ref())
    }

    /// Workloads in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Workload> {
        self.order.iter().map(|n| self.by_name[n].as_ref())
    }

    /// Run `name` on `backend` at `scale` in the two-level model.
    pub fn run(
        &self,
        name: &str,
        backend: BackendKind,
        scale: Scale,
    ) -> Result<RunReport, EngineError> {
        self.run_cfg(name, RunCfg::new(backend, scale))
    }

    /// Run `name` under the full scenario `cfg` (backend, scale, depth).
    pub fn run_cfg(&self, name: &str, cfg: RunCfg) -> Result<RunReport, EngineError> {
        let w = self.get(name).ok_or_else(|| EngineError::UnknownWorkload {
            name: name.to_string(),
        })?;
        w.run_cfg(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &'static str) -> Box<dyn Workload> {
        FnWorkload::boxed(
            name,
            "test",
            "a test workload",
            &[BackendKind::Raw],
            move |cfg| Ok(RunReport::new(name, cfg.backend, cfg.scale)),
        )
    }

    #[test]
    fn register_lookup_run() {
        let mut r = Registry::new();
        r.register(dummy("w1"));
        r.register(dummy("w2"));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.iter().map(|w| w.name().to_string()).collect::<Vec<_>>(),
            ["w1", "w2"]
        );
        let rep = r.run("w1", BackendKind::Raw, Scale::Small).unwrap();
        assert_eq!(rep.workload, "w1");
    }

    #[test]
    fn unsupported_backend_lists_supported() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        let err = r.run("w", BackendKind::Simmed, Scale::Small).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not support"), "{msg}");
        assert!(msg.contains("raw"), "{msg}");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let r = Registry::new();
        assert!(matches!(
            r.run("nope", BackendKind::Raw, Scale::Small),
            Err(EngineError::UnknownWorkload { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate workload registration")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        r.register(dummy("w"));
    }

    #[test]
    fn depth_defaults_to_one_and_overrides_apply() {
        let w = FnWorkload::boxed_deep(
            "deep",
            "test",
            "a depth-aware workload",
            &[BackendKind::Raw, BackendKind::Simmed],
            &[(BackendKind::Simmed, 3)],
            |cfg| Ok(RunReport::new("deep", cfg.backend, cfg.scale).config("depth", cfg.depth)),
        );
        assert_eq!(w.max_depth(BackendKind::Raw), 1);
        assert_eq!(w.max_depth(BackendKind::Simmed), 3);
        // In-range depth runs; the report sees the requested depth.
        let r = w
            .run_cfg(RunCfg::with_depth(BackendKind::Simmed, Scale::Small, 3))
            .unwrap();
        assert!(r.config.iter().any(|(k, v)| k == "depth" && v == "3"));
        // Out-of-range depth is a structured error naming the maximum.
        let err = w
            .run_cfg(RunCfg::with_depth(BackendKind::Raw, Scale::Small, 2))
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnsupportedDepth {
                depth: 2,
                max: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("depths 1..=1"), "{err}");
        // run() is the depth-1 scenario.
        assert!(w.run(BackendKind::Simmed, Scale::Small).is_ok());
    }

    #[test]
    fn backend_and_scale_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.as_str()), Some(b));
        }
        for s in [Scale::Small, Scale::Paper] {
            assert_eq!(Scale::parse(s.as_str()), Some(s));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }
}
