//! The execution-engine layer: backends, scales, the [`Workload`] trait,
//! and the [`Registry`] the harness drives.
//!
//! Every algorithm variant in the workspace registers once (name, group,
//! supported backends, run function). The harness then offers a uniform
//! surface — `harness list`, `harness run <workload> --backend <b>` — and
//! cross-model checks can programmatically run the *same* workload on the
//! explicit-movement model and the cache simulator and compare
//! [`crate::report::RunReport`]s.

use crate::fault::{FaultKind, FaultPlan};
use crate::report::RunReport;
use crate::rng::XorShift;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How a workload executes and how its traffic is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Plain execution on raw memory: numerics + wall clock, no traffic.
    Raw,
    /// Every access walks the multi-level cache simulator; boundary
    /// traffic is derived from fill/victim counters.
    Simmed,
    /// Accesses are recorded to an address trace; the report carries
    /// trace statistics (length, distinct lines).
    Traced,
    /// The algorithm issues explicit block `load`/`store` operations whose
    /// word counts are exact (the paper's Sections 2/4 accounting).
    Explicit,
    /// Single-pass Mattson stack simulation: the same access stream as
    /// `Simmed`, but projected into exact FA-LRU fills/write-backs for
    /// *every* capacity at once (a [`crate::curve::CapacityCurve`]).
    Stack,
}

impl BackendKind {
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
        BackendKind::Stack,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Raw => "raw",
            BackendKind::Simmed => "simmed",
            BackendKind::Traced => "traced",
            BackendKind::Explicit => "explicit",
            BackendKind::Stack => "stack",
        }
    }

    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "raw" => Some(BackendKind::Raw),
            "simmed" | "sim" => Some(BackendKind::Simmed),
            "traced" | "trace" => Some(BackendKind::Traced),
            "explicit" => Some(BackendKind::Explicit),
            "stack" => Some(BackendKind::Stack),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Problem-size scale. The geometry mapping (cache capacities, matrix
/// dimensions) lives with the crates that own those notions; this enum is
/// just the shared selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast default: L3 capacity ÷256 vs. the paper's Xeon (L1/L2 stay at
    /// the ÷64 floor), dimensions ÷16.
    Small,
    /// Reference scale: capacities ÷64, dimensions ÷8.
    Paper,
}

impl Scale {
    pub fn as_str(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Hierarchy depths the engine will even consider dispatching. No
/// workload models more than 3 levels today; anything past this cap is a
/// typo'd config, rejected at the registry boundary before a kernel can
/// trip over it.
pub const MAX_DEPTH_CAP: usize = 8;

/// Upper bound on [`RunLimits::retries`]. Retries multiply sweep cost;
/// past this the config is degenerate, not cautious.
pub const MAX_RETRIES_CAP: u32 = 16;

/// Default [`Workload::footprint_bytes`]: 1 GiB, a deliberate
/// over-estimate so workloads without a declared size are treated as big
/// under any realistic [`RunLimits::mem_budget`].
pub const DEFAULT_FOOTPRINT_BYTES: u64 = 1 << 30;

/// Execution-policy limits for one dispatch: how long a cell may run and
/// how often a *retriable* failure (panic, timeout, transient error) is
/// re-attempted. Limits never change what a workload computes — they are
/// deliberately excluded from [`RunCfg::cell_key`] so a journal written
/// under one timeout resumes cleanly under another.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RunLimits {
    /// Wall-clock deadline per attempt; `None` (the default) waits forever.
    pub timeout: Option<Duration>,
    /// Extra attempts after a retriable failure (0 = single attempt).
    pub retries: u32,
    /// Footprint budget in bytes, checked against
    /// [`Workload::footprint_bytes`] *before* dispatch. `None` (the
    /// default) admits everything. An over-budget cell is rejected as
    /// `InvalidConfig`, or — with [`RunLimits::degrade`] — downgraded
    /// along the degradation ladder (depth → 1, scale → small,
    /// backend → traced) until it fits.
    pub mem_budget: Option<u64>,
    /// Degrade over-budget cells instead of rejecting them; the
    /// substitution is recorded in the report (`degraded_from` config
    /// entry plus a note).
    pub degrade: bool,
}

impl RunLimits {
    pub fn new(timeout: Option<Duration>, retries: u32) -> Self {
        RunLimits {
            timeout,
            retries,
            mem_budget: None,
            degrade: false,
        }
    }

    /// Builder form for attaching a footprint budget (and the degrade
    /// policy) to existing limits.
    pub fn with_mem_budget(mut self, budget: u64, degrade: bool) -> Self {
        self.mem_budget = Some(budget);
        self.degrade = degrade;
        self
    }
}

/// One execution scenario: backend, scale, and — for the traffic-counting
/// backends — the modeled hierarchy depth, plus execution-policy
/// [`RunLimits`] (deadline, retry budget).
///
/// `depth` is the number of explicit/simulated cache levels between the
/// processor and the backing store: 1 is the classical two-level model of
/// the paper's Section 2 (one boundary), 3 is the full Xeon-style
/// L1/L2/L3/DRAM hierarchy (three boundaries). Backends that do not model
/// a hierarchy (`raw`, `traced`) ignore it; workloads advertise what they
/// can model through [`Workload::max_depth`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunCfg {
    pub backend: BackendKind,
    pub scale: Scale,
    pub depth: usize,
    pub limits: RunLimits,
}

impl RunCfg {
    /// The default scenario: depth 1 (the two-level model), no limits.
    pub fn new(backend: BackendKind, scale: Scale) -> Self {
        RunCfg {
            backend,
            scale,
            depth: 1,
            limits: RunLimits::default(),
        }
    }

    pub fn with_depth(backend: BackendKind, scale: Scale, depth: usize) -> Self {
        RunCfg {
            backend,
            scale,
            depth,
            limits: RunLimits::default(),
        }
    }

    /// Builder form for attaching execution limits to a scenario.
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Canonical identity of the (workload, scenario) cell: the fields
    /// that determine the *result*, serialized in one fixed order.
    /// [`RunLimits`] are execution policy, not identity, and are excluded
    /// — the same cell under a different timeout is the same cell.
    pub fn cell_key(&self, workload: &str) -> String {
        format!(
            "{workload}|{}|{}|{}",
            self.backend.as_str(),
            self.scale.as_str(),
            self.depth
        )
    }

    /// Parse a [`RunCfg::cell_key`] back into `(workload, cfg)` — the
    /// round-trip the sweep journal's stability property test exercises.
    pub fn parse_cell_key(key: &str) -> Option<(String, RunCfg)> {
        let mut parts = key.split('|');
        let workload = parts.next()?.to_string();
        let backend = BackendKind::parse(parts.next()?)?;
        let scale = Scale::parse(parts.next()?)?;
        let depth: usize = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((workload, RunCfg::with_depth(backend, scale, depth)))
    }

    /// Stable 64-bit hash of [`RunCfg::cell_key`] (FNV-1a). Deterministic
    /// across processes and field construction order — the journal key
    /// and the retry-backoff jitter seed.
    pub fn config_hash(&self, workload: &str) -> u64 {
        fnv1a64(self.cell_key(workload).as_bytes())
    }

    /// Reject degenerate scenarios with typed errors before dispatch:
    /// depth 0 or past [`MAX_DEPTH_CAP`], a zero timeout, or a retry
    /// budget past [`MAX_RETRIES_CAP`]. Workload-relative depth limits
    /// (`max_depth`) are still checked by the workload itself.
    pub fn validate(&self, workload: &str) -> Result<(), EngineError> {
        let invalid = |field: &'static str, value: String, reason: &str| {
            Err(EngineError::InvalidConfig {
                workload: workload.to_string(),
                field,
                value,
                reason: reason.to_string(),
            })
        };
        if self.depth == 0 {
            return invalid("depth", "0".into(), "hierarchy depth is 1-based");
        }
        if self.depth > MAX_DEPTH_CAP {
            return invalid(
                "depth",
                self.depth.to_string(),
                "exceeds the engine-wide depth cap",
            );
        }
        if self.limits.timeout == Some(Duration::ZERO) {
            return invalid("timeout", "0".into(), "a zero deadline can never be met");
        }
        if self.limits.retries > MAX_RETRIES_CAP {
            return invalid(
                "retries",
                self.limits.retries.to_string(),
                "exceeds the engine-wide retry cap",
            );
        }
        if self.limits.mem_budget == Some(0) {
            return invalid("mem_budget", "0".into(), "a zero budget admits nothing");
        }
        Ok(())
    }
}

/// FNV-1a over bytes: tiny, dependency-free, stable across platforms.
/// Public because the sweep journal reuses it as the per-record checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic backoff before retry `attempt` (1-based: the delay taken
/// after the first failure is `attempt == 1`). Exponential base of 10 ms
/// doubling per attempt, capped at 200 ms, with ±50% jitter drawn from a
/// [`XorShift`] stream seeded by the cell's config hash — so a rerun of
/// the same sweep retries on exactly the same schedule.
pub fn backoff_delay(config_hash: u64, attempt: u32) -> Duration {
    let base_ms = 10u64
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(10))
        .min(200);
    let mut rng = XorShift::new(config_hash ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let jitter = 0.5 + rng.next_unit(); // [0.5, 1.5)
    Duration::from_micros((base_ms as f64 * 1000.0 * jitter) as u64)
}

/// Why a run could not produce a report.
#[derive(Clone, Debug)]
pub enum EngineError {
    UnknownWorkload {
        name: String,
    },
    UnsupportedBackend {
        workload: String,
        backend: BackendKind,
        supported: Vec<BackendKind>,
    },
    UnsupportedDepth {
        workload: String,
        backend: BackendKind,
        depth: usize,
        max: usize,
    },
    /// A scenario field failed [`RunCfg::validate`] at the engine boundary.
    InvalidConfig {
        workload: String,
        field: &'static str,
        value: String,
        reason: String,
    },
    /// The dispatch panicked; the payload was contained by the engine.
    Panicked {
        workload: String,
        payload: String,
    },
    /// The dispatch outlived its [`RunLimits::timeout`] deadline *and*
    /// never observed the fired cancel token within the grace period —
    /// the worker thread could not be stopped and was detached. Only
    /// cells whose execution path has no cancellation checkpoints (raw
    /// busy loops, foreign blocking calls) end up here; instrumented
    /// kernels produce [`EngineError::Cancelled`] instead.
    TimedOut {
        workload: String,
        elapsed: Duration,
        deadline: Duration,
    },
    /// The attempt observed a fired [`crate::cancel::CancelToken`] and
    /// unwound cooperatively — the worker thread *joined*; no orphan
    /// work is left behind. `after_accesses` is the observing counter's
    /// access count at the checkpoint that saw the token.
    Cancelled {
        workload: String,
        reason: crate::cancel::CancelReason,
        after_accesses: u64,
        elapsed: Duration,
    },
    /// The attempt produced a report that failed
    /// [`RunReport::validate`]'s structural invariants.
    ReportInvariant {
        workload: String,
        violation: String,
    },
    /// A transient failure the caller (or the engine's retry loop) may
    /// re-attempt — the variant workloads return for recoverable faults.
    Retriable {
        workload: String,
        message: String,
    },
    Failed {
        workload: String,
        message: String,
    },
}

impl EngineError {
    /// Short machine-readable kind tag — the sweep journal/CSV `status`
    /// vocabulary (`ok` is the success tag alongside these).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::UnknownWorkload { .. } => "unknown-workload",
            EngineError::UnsupportedBackend { .. } => "unsupported-backend",
            EngineError::UnsupportedDepth { .. } => "unsupported-depth",
            EngineError::InvalidConfig { .. } => "invalid-config",
            EngineError::Panicked { .. } => "panicked",
            EngineError::TimedOut { .. } => "timed-out",
            EngineError::Cancelled { .. } => "cancelled",
            EngineError::ReportInvariant { .. } => "report-invariant",
            EngineError::Retriable { .. } => "retriable",
            EngineError::Failed { .. } => "failed",
        }
    }

    /// Whether the engine's retry loop may re-attempt after this error.
    /// Config/registry errors are permanent: retrying a typo is futile.
    /// A deadline cancellation is retriable (the next attempt gets a
    /// fresh deadline); an interrupt cancellation is not (the process is
    /// shutting down). A report-invariant failure is retriable: the
    /// canonical cause is a one-shot corruption fault.
    pub fn is_retriable(&self) -> bool {
        match self {
            EngineError::Panicked { .. }
            | EngineError::TimedOut { .. }
            | EngineError::ReportInvariant { .. }
            | EngineError::Retriable { .. } => true,
            EngineError::Cancelled { reason, .. } => {
                *reason == crate::cancel::CancelReason::Deadline
            }
            _ => false,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownWorkload { name } => {
                write!(f, "unknown workload `{name}` (try `harness list`)")
            }
            EngineError::UnsupportedBackend {
                workload,
                backend,
                supported,
            } => {
                let names: Vec<&str> = supported.iter().map(|b| b.as_str()).collect();
                write!(
                    f,
                    "workload `{workload}` does not support backend `{backend}` (supported: {})",
                    names.join(", ")
                )
            }
            EngineError::UnsupportedDepth {
                workload,
                backend,
                depth,
                max,
            } => {
                write!(
                    f,
                    "workload `{workload}` on `{backend}` models hierarchy depths 1..={max}, \
                     not {depth}"
                )
            }
            EngineError::InvalidConfig {
                workload,
                field,
                value,
                reason,
            } => {
                write!(
                    f,
                    "invalid config for `{workload}`: {field} = {value} ({reason})"
                )
            }
            EngineError::Panicked { workload, payload } => {
                write!(f, "workload `{workload}` panicked: {payload}")
            }
            EngineError::TimedOut {
                workload,
                elapsed,
                deadline,
            } => {
                write!(
                    f,
                    "workload `{workload}` timed out after {:.1} ms (deadline {:.1} ms)",
                    elapsed.as_secs_f64() * 1e3,
                    deadline.as_secs_f64() * 1e3
                )
            }
            EngineError::Cancelled {
                workload,
                reason,
                after_accesses,
                elapsed,
            } => {
                write!(
                    f,
                    "workload `{workload}` cancelled ({}) after {after_accesses} accesses, \
                     {:.1} ms",
                    reason.as_str(),
                    elapsed.as_secs_f64() * 1e3
                )
            }
            EngineError::ReportInvariant {
                workload,
                violation,
            } => {
                write!(
                    f,
                    "workload `{workload}` report invariant violated: {violation}"
                )
            }
            EngineError::Retriable { workload, message } => {
                write!(f, "workload `{workload}` hit a retriable fault: {message}")
            }
            EngineError::Failed { workload, message } => {
                write!(f, "workload `{workload}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One registered algorithm variant.
pub trait Workload: Send + Sync {
    /// Registry name, unique, kebab-case (e.g. `matmul-wa`).
    fn name(&self) -> &str;
    /// Owning group — by convention the crate name (`dense`, `nbody`, …).
    fn group(&self) -> &str;
    /// One-line description (paper artifact it reproduces).
    fn description(&self) -> &str;
    /// Backends this workload can execute on.
    fn backends(&self) -> &[BackendKind];
    /// Deepest hierarchy this workload can model on `backend` (number of
    /// cache levels between the processor and the backing store). Most
    /// workloads model the classical two-level setting only (depth 1).
    fn max_depth(&self, _backend: BackendKind) -> usize {
        1
    }
    /// Estimated peak footprint in bytes of one run at `(scale, depth)` —
    /// working arrays plus simulator state, the quantity
    /// [`RunLimits::mem_budget`] preflights against. The default is a
    /// deliberate over-estimate ([`DEFAULT_FOOTPRINT_BYTES`]): a workload
    /// that does not declare its size is assumed big, so budgets stay
    /// conservative rather than admitting unknown cells.
    fn footprint_bytes(&self, _scale: Scale, _depth: usize) -> u64 {
        DEFAULT_FOOTPRINT_BYTES
    }
    /// Execute the scenario described by `cfg`.
    fn run_cfg(&self, cfg: RunCfg) -> Result<RunReport, EngineError>;

    /// Execute on `backend` at `scale` in the two-level model (depth 1).
    fn run(&self, backend: BackendKind, scale: Scale) -> Result<RunReport, EngineError> {
        self.run_cfg(RunCfg::new(backend, scale))
    }

    fn supports(&self, backend: BackendKind) -> bool {
        self.backends().contains(&backend)
    }
}

/// A [`Workload`] assembled from plain data plus a run closure — the
/// one-liner registration form the algorithm crates use.
pub struct FnWorkload {
    pub name: &'static str,
    pub group: &'static str,
    pub description: &'static str,
    pub backends: Vec<BackendKind>,
    /// `(backend, max depth)` overrides; backends not listed model depth 1.
    pub depths: Vec<(BackendKind, usize)>,
    /// Footprint estimator; `None` falls back to the trait default
    /// ([`DEFAULT_FOOTPRINT_BYTES`]).
    #[allow(clippy::type_complexity)]
    pub footprint: Option<Box<dyn Fn(Scale, usize) -> u64 + Send + Sync>>,
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync>,
}

impl FnWorkload {
    pub fn boxed(
        name: &'static str,
        group: &'static str,
        description: &'static str,
        backends: &[BackendKind],
        run: impl Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync + 'static,
    ) -> Box<dyn Workload> {
        FnWorkload::boxed_deep(name, group, description, backends, &[], run)
    }

    /// Like [`FnWorkload::boxed`] but with per-backend depth overrides for
    /// workloads that model hierarchies deeper than the two-level default.
    pub fn boxed_deep(
        name: &'static str,
        group: &'static str,
        description: &'static str,
        backends: &[BackendKind],
        depths: &[(BackendKind, usize)],
        run: impl Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync + 'static,
    ) -> Box<dyn Workload> {
        Box::new(FnWorkload {
            name,
            group,
            description,
            backends: backends.to_vec(),
            depths: depths.to_vec(),
            footprint: None,
            run: Box::new(run),
        })
    }

    /// Like [`FnWorkload::boxed_deep`] plus a footprint estimator — the
    /// registration form the algorithm crates use so
    /// [`RunLimits::mem_budget`] preflights against real sizes instead of
    /// the conservative default.
    pub fn boxed_sized(
        name: &'static str,
        group: &'static str,
        description: &'static str,
        backends: &[BackendKind],
        depths: &[(BackendKind, usize)],
        footprint: impl Fn(Scale, usize) -> u64 + Send + Sync + 'static,
        run: impl Fn(RunCfg) -> Result<RunReport, EngineError> + Send + Sync + 'static,
    ) -> Box<dyn Workload> {
        Box::new(FnWorkload {
            name,
            group,
            description,
            backends: backends.to_vec(),
            depths: depths.to_vec(),
            footprint: Some(Box::new(footprint)),
            run: Box::new(run),
        })
    }
}

impl Workload for FnWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn group(&self) -> &str {
        self.group
    }

    fn description(&self) -> &str {
        self.description
    }

    fn backends(&self) -> &[BackendKind] {
        &self.backends
    }

    fn max_depth(&self, backend: BackendKind) -> usize {
        self.depths
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|(_, d)| *d)
            .unwrap_or(1)
    }

    fn footprint_bytes(&self, scale: Scale, depth: usize) -> u64 {
        match &self.footprint {
            Some(f) => f(scale, depth),
            None => DEFAULT_FOOTPRINT_BYTES,
        }
    }

    fn run_cfg(&self, cfg: RunCfg) -> Result<RunReport, EngineError> {
        if !self.supports(cfg.backend) {
            return Err(EngineError::UnsupportedBackend {
                workload: self.name.to_string(),
                backend: cfg.backend,
                supported: self.backends.clone(),
            });
        }
        let max = self.max_depth(cfg.backend);
        if cfg.depth < 1 || cfg.depth > max {
            return Err(EngineError::UnsupportedDepth {
                workload: self.name.to_string(),
                backend: cfg.backend,
                depth: cfg.depth,
                max,
            });
        }
        (self.run)(cfg)
    }
}

/// Name-indexed collection of workloads. Registration order is preserved
/// for listing; lookup is by exact name.
///
/// Dispatch through [`Registry::run_cfg`] is *fault-isolated*: every run
/// executes under `catch_unwind` (a panicking workload becomes
/// [`EngineError::Panicked`], not a process abort), an optional watchdog
/// enforces the scenario's [`RunLimits::timeout`] on a helper thread, and
/// retriable failures are re-attempted up to [`RunLimits::retries`] times
/// with deterministic backoff ([`backoff_delay`]). An installed
/// [`FaultPlan`] injects faults inside this guarded path.
#[derive(Default)]
pub struct Registry {
    order: Vec<String>,
    // Arc (not Box) so the watchdog path can hand a clone to a detached
    // worker thread — a timed-out cell's thread may outlive the dispatch.
    by_name: BTreeMap<String, Arc<dyn Workload>>,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register one workload. Panics on a duplicate name: duplicates are
    /// always a programming error in the registering crate.
    pub fn register(&mut self, w: Box<dyn Workload>) {
        let name = w.name().to_string();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate workload registration: {name}"
        );
        self.order.push(name.clone());
        self.by_name.insert(name, Arc::from(w));
    }

    /// Install a deterministic fault-injection plan; every subsequent
    /// dispatch consults it. `None` clears it.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan.map(Arc::new);
    }

    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// Register a whole batch (the per-crate `workloads()` vectors).
    pub fn register_all(&mut self, ws: Vec<Box<dyn Workload>>) {
        for w in ws {
            self.register(w);
        }
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&dyn Workload> {
        self.by_name.get(name).map(|b| &**b)
    }

    /// Workloads in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Workload> {
        self.order.iter().map(|n| self.by_name[n].as_ref())
    }

    /// Run `name` on `backend` at `scale` in the two-level model.
    pub fn run(
        &self,
        name: &str,
        backend: BackendKind,
        scale: Scale,
    ) -> Result<RunReport, EngineError> {
        self.run_cfg(name, RunCfg::new(backend, scale))
    }

    /// Run `name` under the full scenario `cfg` (backend, scale, depth,
    /// limits) with fault isolation. See [`Registry::run_cfg_traced`].
    pub fn run_cfg(&self, name: &str, cfg: RunCfg) -> Result<RunReport, EngineError> {
        self.run_cfg_traced(name, cfg).0
    }

    /// Fault-isolated dispatch, also reporting how many attempts were
    /// made (≥ 1 once dispatch began; 0 for pre-dispatch config errors).
    ///
    /// Per attempt: an injected fault (if a plan is installed and a rule
    /// fires) is applied inside the guarded section, the run executes
    /// under `catch_unwind`, and — when `cfg.limits.timeout` is set — a
    /// watchdog bounds the attempt's wall clock. A timed-out worker
    /// thread cannot be killed; it is detached and its eventual result
    /// discarded. Retriable failures back off deterministically
    /// ([`backoff_delay`] seeded from the cell's config hash) and retry
    /// up to `cfg.limits.retries` times.
    pub fn run_cfg_traced(&self, name: &str, cfg: RunCfg) -> (Result<RunReport, EngineError>, u32) {
        let Some(w) = self.by_name.get(name) else {
            return (
                Err(EngineError::UnknownWorkload {
                    name: name.to_string(),
                }),
                0,
            );
        };
        if let Err(e) = cfg.validate(name) {
            return (Err(e), 0);
        }
        // Footprint preflight: refuse (or degrade) a cell that cannot
        // fit the budget *before* it burns a core.
        let requested = cfg;
        let mut cfg = cfg;
        let mut degraded: Option<String> = None;
        if let Some(budget) = cfg.limits.mem_budget {
            let need = w.footprint_bytes(cfg.scale, cfg.depth);
            if need > budget {
                if !cfg.limits.degrade {
                    return (
                        Err(EngineError::InvalidConfig {
                            workload: name.to_string(),
                            field: "mem_budget",
                            value: budget.to_string(),
                            reason: format!(
                                "estimated footprint {need} B exceeds the budget \
                                 (pass --degrade to downgrade the cell)"
                            ),
                        }),
                        0,
                    );
                }
                match degrade_cfg(w.as_ref(), cfg, budget) {
                    Some((fit, steps)) => {
                        cfg = fit;
                        degraded = Some(steps);
                    }
                    None => {
                        return (
                            Err(EngineError::InvalidConfig {
                                workload: name.to_string(),
                                field: "mem_budget",
                                value: budget.to_string(),
                                reason: format!(
                                    "estimated footprint {need} B exceeds the budget \
                                     and no degradation rung fits"
                                ),
                            }),
                            0,
                        );
                    }
                }
            }
        }
        // Journal identity and backoff jitter stay keyed to the cell the
        // caller asked for, degraded or not.
        let hash = requested.config_hash(name);
        let gen0 = crate::cancel::process_generation();
        let max_attempts = cfg.limits.retries + 1;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let attempt_span = crate::obs::span("attempt", "engine");
            let fault = self.fault_plan.as_ref().and_then(|p| p.on_invocation(name));
            let res = run_guarded(Arc::clone(w), name, cfg, fault);
            drop(attempt_span);
            match res {
                Ok(mut r) => {
                    if let Some(steps) = &degraded {
                        r = r
                            .config("degraded_from", requested.cell_key(name))
                            .note(format!("degraded to fit mem_budget: {steps}"));
                    }
                    return (Ok(r), attempt);
                }
                // Once the process is interrupted, retrying is pointless:
                // the sweep is shutting down.
                Err(e)
                    if e.is_retriable()
                        && attempt < max_attempts
                        && !crate::cancel::interrupted_since(gen0) =>
                {
                    let _backoff = crate::obs::span("backoff", "engine");
                    std::thread::sleep(backoff_delay(hash, attempt));
                }
                Err(e) => return (Err(e), attempt),
            }
        }
    }
}

/// Walk the degradation ladder until the footprint fits `budget`:
/// collapse the modeled hierarchy to the two-level model, drop to the
/// small capacity ladder, and finally fall back to the `traced` backend
/// (whose cost is the trace, not the simulated hierarchy). Returns the
/// fitting config and a human-readable description of the rungs taken.
fn degrade_cfg(w: &dyn Workload, cfg: RunCfg, budget: u64) -> Option<(RunCfg, String)> {
    let mut cur = cfg;
    let mut steps: Vec<&'static str> = Vec::new();
    if cur.depth > 1 {
        cur.depth = 1;
        steps.push("depth→1");
        if w.footprint_bytes(cur.scale, cur.depth) <= budget {
            return Some((cur, steps.join(", ")));
        }
    }
    if cur.scale == Scale::Paper {
        cur.scale = Scale::Small;
        steps.push("scale→small");
        if w.footprint_bytes(cur.scale, cur.depth) <= budget {
            return Some((cur, steps.join(", ")));
        }
    }
    if cur.backend != BackendKind::Traced && w.supports(BackendKind::Traced) {
        cur.backend = BackendKind::Traced;
        steps.push("backend→traced");
        return Some((cur, steps.join(", ")));
    }
    None
}

/// One guarded attempt: apply the injected fault, contain panics, and —
/// when a deadline is set — run on a helper thread bounded by a watchdog
/// wait. Without a deadline the attempt runs inline (no thread cost).
fn run_guarded(
    w: Arc<dyn Workload>,
    name: &str,
    cfg: RunCfg,
    fault: Option<FaultKind>,
) -> Result<RunReport, EngineError> {
    let token = crate::cancel::CancelToken::new();
    let Some(deadline) = cfg.limits.timeout else {
        let _guard = crate::cancel::install(token);
        return execute_contained(&*w, name, cfg, fault);
    };
    crate::obs::instant("watchdog:arm", "engine");
    let (tx, rx) = mpsc::channel();
    let owned = name.to_string();
    let worker_token = token.clone();
    let t0 = Instant::now();
    let handle = std::thread::Builder::new()
        .name(format!("wa-cell-{name}"))
        .spawn(move || {
            let _guard = crate::cancel::install(worker_token);
            let r = execute_contained(&*w, &owned, cfg, fault);
            let _ = tx.send(r); // receiver may have given up: fine
        })
        .expect("spawn cell worker thread");
    match rx.recv_timeout(deadline) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            crate::obs::instant("watchdog:fire", "engine");
            token.cancel(crate::cancel::CancelReason::Deadline);
            // Cooperative workers observe the token within one check
            // interval; give them a grace window to unwind and join.
            // A worker stuck in truly uncancellable code (e.g. a raw
            // syscall) is detached as before — the legacy `TimedOut`
            // path — so the watchdog never hangs.
            let grace = deadline.max(Duration::from_millis(250));
            match rx.recv_timeout(grace) {
                Ok(Err(e)) => {
                    let _ = handle.join();
                    Err(e)
                }
                // The worker finished cleanly inside the grace window:
                // the deadline still governs, so the result is discarded.
                Ok(Ok(_)) => {
                    let _ = handle.join();
                    Err(EngineError::TimedOut {
                        workload: name.to_string(),
                        elapsed: t0.elapsed(),
                        deadline,
                    })
                }
                Err(mpsc::RecvTimeoutError::Timeout) => Err(EngineError::TimedOut {
                    workload: name.to_string(),
                    elapsed: t0.elapsed(),
                    deadline,
                }),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    Err(EngineError::Panicked {
                        workload: name.to_string(),
                        payload: "cell worker thread vanished".to_string(),
                    })
                }
            }
        }
        // Unreachable in practice: execute_contained never unwinds, so
        // the sender is dropped only after a send.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let _ = handle.join();
            Err(EngineError::Panicked {
                workload: name.to_string(),
                payload: "cell worker thread vanished".to_string(),
            })
        }
    }
}

/// Trace-instant name for an injected fault.
fn fault_tag(f: FaultKind) -> &'static str {
    match f {
        FaultKind::Panic => "fault:panic",
        FaultKind::Stall(_) => "fault:stall",
        FaultKind::Corrupt => "fault:corrupt",
    }
}

/// The innermost attempt body: inject the fault, run the workload, and
/// convert any unwind into [`EngineError::Panicked`].
fn execute_contained(
    w: &dyn Workload,
    name: &str,
    cfg: RunCfg,
    fault: Option<FaultKind>,
) -> Result<RunReport, EngineError> {
    crate::cancel::silence_cancellation_unwinds();
    let t0 = Instant::now();
    let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
        // The guard closes the span on every exit from this closure,
        // including the unwind of an (injected or genuine) panic.
        let _run_span = crate::obs::span("run", "engine");
        if let Some(f) = fault {
            crate::obs::instant(fault_tag(f), "engine");
        }
        match fault {
            Some(FaultKind::Panic) => panic!("fault-injected panic in `{name}`"),
            // A cooperative stall: observes the cancel token in 10 ms
            // slices, so a stalled cell yields `Cancelled` under a
            // deadline rather than leaking a detached sleeper.
            Some(FaultKind::Stall(d)) => crate::cancel::sleep_cooperatively(d),
            Some(FaultKind::Corrupt) | None => {}
        }
        let mut r = w.run_cfg(cfg)?;
        if fault == Some(FaultKind::Corrupt) {
            crate::fault::corrupt_report(&mut r);
        }
        r.validate()
            .map_err(|violation| EngineError::ReportInvariant {
                workload: name.to_string(),
                violation,
            })?;
        Ok(r)
    }));
    match unwound {
        Ok(inner) => inner,
        Err(payload) => {
            if let Some(c) = payload.downcast_ref::<crate::cancel::CancellationUnwind>() {
                return Err(EngineError::Cancelled {
                    workload: name.to_string(),
                    reason: c.reason,
                    after_accesses: c.after_accesses,
                    elapsed: t0.elapsed(),
                });
            }
            Err(EngineError::Panicked {
                workload: name.to_string(),
                payload: crate::par::panic_payload_message(payload),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &'static str) -> Box<dyn Workload> {
        FnWorkload::boxed(
            name,
            "test",
            "a test workload",
            &[BackendKind::Raw],
            move |cfg| Ok(RunReport::new(name, cfg.backend, cfg.scale)),
        )
    }

    #[test]
    fn register_lookup_run() {
        let mut r = Registry::new();
        r.register(dummy("w1"));
        r.register(dummy("w2"));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.iter().map(|w| w.name().to_string()).collect::<Vec<_>>(),
            ["w1", "w2"]
        );
        let rep = r.run("w1", BackendKind::Raw, Scale::Small).unwrap();
        assert_eq!(rep.workload, "w1");
    }

    #[test]
    fn unsupported_backend_lists_supported() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        let err = r.run("w", BackendKind::Simmed, Scale::Small).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not support"), "{msg}");
        assert!(msg.contains("raw"), "{msg}");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let r = Registry::new();
        assert!(matches!(
            r.run("nope", BackendKind::Raw, Scale::Small),
            Err(EngineError::UnknownWorkload { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate workload registration")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        r.register(dummy("w"));
    }

    #[test]
    fn depth_defaults_to_one_and_overrides_apply() {
        let w = FnWorkload::boxed_deep(
            "deep",
            "test",
            "a depth-aware workload",
            &[BackendKind::Raw, BackendKind::Simmed],
            &[(BackendKind::Simmed, 3)],
            |cfg| Ok(RunReport::new("deep", cfg.backend, cfg.scale).config("depth", cfg.depth)),
        );
        assert_eq!(w.max_depth(BackendKind::Raw), 1);
        assert_eq!(w.max_depth(BackendKind::Simmed), 3);
        // In-range depth runs; the report sees the requested depth.
        let r = w
            .run_cfg(RunCfg::with_depth(BackendKind::Simmed, Scale::Small, 3))
            .unwrap();
        assert!(r.config.iter().any(|(k, v)| k == "depth" && v == "3"));
        // Out-of-range depth is a structured error naming the maximum.
        let err = w
            .run_cfg(RunCfg::with_depth(BackendKind::Raw, Scale::Small, 2))
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnsupportedDepth {
                depth: 2,
                max: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("depths 1..=1"), "{err}");
        // run() is the depth-1 scenario.
        assert!(w.run(BackendKind::Simmed, Scale::Small).is_ok());
    }

    #[test]
    fn registry_contains_workload_panics() {
        let mut r = Registry::new();
        r.register(FnWorkload::boxed(
            "bomb",
            "test",
            "panics on dispatch",
            &[BackendKind::Raw],
            |_| panic!("kernel exploded at depth 7"),
        ));
        let err = r.run("bomb", BackendKind::Raw, Scale::Small).unwrap_err();
        match &err {
            EngineError::Panicked { workload, payload } => {
                assert_eq!(workload, "bomb");
                assert!(payload.contains("kernel exploded"), "{payload}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(err.kind(), "panicked");
        assert!(err.is_retriable());
    }

    #[test]
    fn watchdog_enforces_deadline() {
        let mut r = Registry::new();
        r.register(FnWorkload::boxed(
            "sleeper",
            "test",
            "stalls forever (well, 10s)",
            &[BackendKind::Raw],
            |cfg| {
                std::thread::sleep(std::time::Duration::from_secs(10));
                Ok(RunReport::new("sleeper", cfg.backend, cfg.scale))
            },
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small)
            .with_limits(RunLimits::new(Some(Duration::from_millis(50)), 0));
        let t0 = Instant::now();
        let err = r.run_cfg("sleeper", cfg).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "watchdog did not fire"
        );
        match err {
            EngineError::TimedOut {
                elapsed, deadline, ..
            } => {
                assert_eq!(deadline, Duration::from_millis(50));
                assert!(elapsed >= deadline);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn retriable_failures_retry_then_succeed() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = std::sync::Arc::new(AtomicU32::new(0));
        let mut r = Registry::new();
        let c = std::sync::Arc::clone(&calls);
        r.register(FnWorkload::boxed(
            "flaky",
            "test",
            "fails twice, then succeeds",
            &[BackendKind::Raw],
            move |cfg| {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(EngineError::Retriable {
                        workload: "flaky".to_string(),
                        message: "transient".to_string(),
                    })
                } else {
                    Ok(RunReport::new("flaky", cfg.backend, cfg.scale))
                }
            },
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small).with_limits(RunLimits::new(None, 3));
        let (res, attempts) = r.run_cfg_traced("flaky", cfg);
        assert!(res.is_ok());
        assert_eq!(attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // With no retry budget the first transient failure is final.
        let cfg0 = RunCfg::new(BackendKind::Raw, Scale::Small);
        let (res, attempts) = r.run_cfg_traced("flaky", cfg0);
        assert!(res.is_ok(), "counter is past the flaky window");
        assert_eq!(attempts, 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        let cfg =
            RunCfg::new(BackendKind::Simmed, Scale::Small).with_limits(RunLimits::new(None, 5));
        let (res, attempts) = r.run_cfg_traced("w", cfg);
        assert!(matches!(res, Err(EngineError::UnsupportedBackend { .. })));
        assert_eq!(attempts, 1, "config errors must not burn the retry budget");
    }

    #[test]
    fn degenerate_configs_are_rejected_at_the_boundary() {
        let mut r = Registry::new();
        r.register(dummy("w"));
        let base = RunCfg::new(BackendKind::Raw, Scale::Small);
        for (cfg, field) in [
            (RunCfg { depth: 0, ..base }, "depth"),
            (
                RunCfg {
                    depth: MAX_DEPTH_CAP + 1,
                    ..base
                },
                "depth",
            ),
            (
                base.with_limits(RunLimits::new(Some(Duration::ZERO), 0)),
                "timeout",
            ),
            (
                base.with_limits(RunLimits::new(None, MAX_RETRIES_CAP + 1)),
                "retries",
            ),
        ] {
            let (res, attempts) = r.run_cfg_traced("w", cfg);
            match res {
                Err(EngineError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
            assert_eq!(attempts, 0, "invalid configs must never dispatch");
        }
        // Unknown workloads still win over field validation context-wise.
        assert!(matches!(
            r.run_cfg("nope", RunCfg { depth: 0, ..base }),
            Err(EngineError::UnknownWorkload { .. })
        ));
    }

    #[test]
    fn cell_key_round_trips_and_hash_ignores_limits() {
        let cfg = RunCfg::with_depth(BackendKind::Simmed, Scale::Paper, 3);
        let key = cfg.cell_key("matmul-wa");
        assert_eq!(key, "matmul-wa|simmed|paper|3");
        let (w, parsed) = RunCfg::parse_cell_key(&key).unwrap();
        assert_eq!(w, "matmul-wa");
        assert_eq!(
            parsed.config_hash("matmul-wa"),
            cfg.config_hash("matmul-wa")
        );
        // Limits are execution policy, not cell identity.
        let limited = cfg.with_limits(RunLimits::new(Some(Duration::from_secs(1)), 4));
        assert_eq!(
            limited.config_hash("matmul-wa"),
            cfg.config_hash("matmul-wa")
        );
        // Different cells hash differently (FNV over distinct keys).
        assert_ne!(
            cfg.config_hash("matmul-wa"),
            cfg.config_hash("matmul-nonwa")
        );
        assert!(RunCfg::parse_cell_key("garbage").is_none());
        assert!(RunCfg::parse_cell_key("w|raw|small|1|extra").is_none());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let h = RunCfg::new(BackendKind::Raw, Scale::Small).config_hash("w");
        for attempt in 1..=5 {
            let a = backoff_delay(h, attempt);
            let b = backoff_delay(h, attempt);
            assert_eq!(a, b, "same (hash, attempt) must give the same delay");
            // base ∈ [10, 200] ms, jitter ∈ [0.5, 1.5).
            assert!(a >= Duration::from_millis(5), "{a:?}");
            assert!(a < Duration::from_millis(300), "{a:?}");
        }
        assert_ne!(
            backoff_delay(h, 1),
            backoff_delay(h ^ 1, 1),
            "different cells should jitter differently"
        );
    }

    #[test]
    fn fault_plan_injects_panic_stall_and_corruption() {
        use crate::fault::{FaultPlan, CORRUPTION_OFFSET};
        let mut r = Registry::new();
        r.register(FnWorkload::boxed(
            "victim",
            "test",
            "healthy unless a fault fires",
            &[BackendKind::Raw],
            |cfg| {
                let mut rep = RunReport::new("victim", cfg.backend, cfg.scale);
                rep.flops = 100;
                Ok(rep)
            },
        ));
        r.set_fault_plan(Some(
            FaultPlan::parse("victim:panic@1,victim:corrupt@2").unwrap(),
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small);
        // Invocation 1: injected panic, contained.
        assert!(matches!(
            r.run_cfg("victim", cfg),
            Err(EngineError::Panicked { .. })
        ));
        // Invocation 2: corrupted counters, marked by a note.
        let rep = r.run_cfg("victim", cfg).unwrap();
        assert_eq!(rep.flops, 100 + CORRUPTION_OFFSET);
        assert!(rep.notes.iter().any(|n| n.contains("fault-injected")));
        // Invocation 3: clean again.
        let rep = r.run_cfg("victim", cfg).unwrap();
        assert_eq!(rep.flops, 100);
        // Retry converts a first-invocation panic into eventual success.
        let mut r2 = Registry::new();
        r2.register(dummy("w"));
        r2.set_fault_plan(Some(FaultPlan::parse("w:panic@1").unwrap()));
        let (res, attempts) = r2.run_cfg_traced(
            "w",
            RunCfg::new(BackendKind::Raw, Scale::Small).with_limits(RunLimits::new(None, 2)),
        );
        assert!(res.is_ok());
        assert_eq!(attempts, 2);
    }

    #[test]
    fn cooperative_cancellation_joins_and_reports_accesses() {
        // The workload spins on `cancel::tick`, never finishing on its
        // own. The watchdog fires the token at the deadline; the worker
        // observes it within one check interval, unwinds, and *joins* —
        // so the whole dispatch returns quickly with `Cancelled`, not
        // after the (absent) natural end of the run.
        let mut r = Registry::new();
        r.register(FnWorkload::boxed(
            "spinner",
            "test",
            "ticks forever until cancelled",
            &[BackendKind::Raw],
            |_cfg| loop {
                crate::cancel::tick(1);
            },
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small)
            .with_limits(RunLimits::new(Some(Duration::from_millis(50)), 0));
        let t0 = Instant::now();
        let err = r.run_cfg("spinner", cfg).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "cancelled worker did not join promptly"
        );
        match err {
            EngineError::Cancelled {
                reason,
                after_accesses,
                elapsed,
                ..
            } => {
                assert_eq!(reason, crate::cancel::CancelReason::Deadline);
                assert!(after_accesses > 0, "accesses-at-cancel must be recorded");
                assert!(elapsed >= Duration::from_millis(50));
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(err.kind(), "cancelled");
        assert!(err.is_retriable(), "deadline cancellation is retriable");
    }

    #[test]
    fn interrupt_cancellation_is_not_retriable() {
        let err = EngineError::Cancelled {
            workload: "w".to_string(),
            reason: crate::cancel::CancelReason::Interrupt,
            after_accesses: 7,
            elapsed: Duration::from_millis(1),
        };
        assert!(!err.is_retriable(), "an interrupt must not burn retries");
        assert_eq!(err.kind(), "cancelled");
    }

    #[test]
    fn budget_preflight_rejects_oversized_cells() {
        let mut r = Registry::new();
        r.register(FnWorkload::boxed_sized(
            "big",
            "test",
            "claims a 1 MiB footprint",
            &[BackendKind::Raw],
            &[],
            |_, _| 1 << 20,
            |cfg| Ok(RunReport::new("big", cfg.backend, cfg.scale)),
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small)
            .with_limits(RunLimits::new(None, 3).with_mem_budget(1024, false));
        let (res, attempts) = r.run_cfg_traced("big", cfg);
        match res {
            Err(EngineError::InvalidConfig { field, reason, .. }) => {
                assert_eq!(field, "mem_budget");
                assert!(reason.contains("--degrade"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert_eq!(attempts, 0, "preflight must reject before any attempt");
        // A budget the footprint fits under runs normally.
        let roomy = RunCfg::new(BackendKind::Raw, Scale::Small)
            .with_limits(RunLimits::new(None, 0).with_mem_budget(1 << 21, false));
        assert!(r.run_cfg("big", roomy).is_ok());
    }

    #[test]
    fn degrade_ladder_walks_to_a_fitting_config() {
        // footprint = depth × 1000 bytes: depth 3 busts a 2000-byte
        // budget, depth 1 fits, so the first rung (depth→1) suffices.
        let mut r = Registry::new();
        r.register(FnWorkload::boxed_sized(
            "laddered",
            "test",
            "footprint scales with depth",
            &[BackendKind::Raw, BackendKind::Traced],
            &[(BackendKind::Raw, 3)],
            |_, depth| depth as u64 * 1000,
            |cfg| Ok(RunReport::new("laddered", cfg.backend, cfg.scale).config("depth", cfg.depth)),
        ));
        let cfg = RunCfg::with_depth(BackendKind::Raw, Scale::Small, 3)
            .with_limits(RunLimits::new(None, 0).with_mem_budget(2000, true));
        let rep = r.run_cfg("laddered", cfg).unwrap();
        assert!(
            rep.config.iter().any(|(k, v)| k == "depth" && v == "1"),
            "the cell must actually run at the degraded depth"
        );
        let degraded_from = rep
            .config
            .iter()
            .find(|(k, _)| k == "degraded_from")
            .map(|(_, v)| v.clone())
            .expect("degraded run must record the requested cell");
        assert!(degraded_from.contains("laddered"), "{degraded_from}");
        assert!(rep
            .notes
            .iter()
            .any(|n| n.contains("degraded to fit mem_budget") && n.contains("depth→1")));
        // No rung fits a 1-byte budget even via traced: every rung's
        // footprint is still ≥ 1000, so the ladder ends at traced and
        // accepts it (the trace itself is the cost, not the hierarchy).
        let tiny = RunCfg::with_depth(BackendKind::Raw, Scale::Small, 3)
            .with_limits(RunLimits::new(None, 0).with_mem_budget(1, true));
        let rep = r.run_cfg("laddered", tiny).unwrap();
        assert_eq!(rep.backend, BackendKind::Traced);
        // Without traced support the same budget is a hard reject.
        let mut r2 = Registry::new();
        r2.register(FnWorkload::boxed_sized(
            "untraceable",
            "test",
            "raw only",
            &[BackendKind::Raw],
            &[],
            |_, _| 1000,
            |cfg| Ok(RunReport::new("untraceable", cfg.backend, cfg.scale)),
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small)
            .with_limits(RunLimits::new(None, 0).with_mem_budget(1, true));
        match r2.run_cfg("untraceable", cfg) {
            Err(EngineError::InvalidConfig { reason, .. }) => {
                assert!(reason.contains("no degradation rung fits"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn invalid_reports_surface_as_typed_invariant_errors() {
        use crate::traffic::Traffic;
        // Conservation-violating report: the backing level claims fewer
        // writes than the last boundary stores into it.
        let mut r = Registry::new();
        r.register(FnWorkload::boxed(
            "liar",
            "test",
            "reports inconsistent counters",
            &[BackendKind::Raw],
            |cfg| {
                let mut rep = RunReport::new("liar", cfg.backend, cfg.scale);
                let mut t = Traffic::ZERO;
                t.load(100);
                t.store(40);
                rep.boundaries = vec![t];
                rep.writes_per_level = vec![100, 39]; // 39 ≠ 40 stored
                Ok(rep)
            },
        ));
        let cfg = RunCfg::new(BackendKind::Raw, Scale::Small);
        match r.run_cfg("liar", cfg) {
            Err(EngineError::ReportInvariant { violation, .. }) => {
                assert!(violation.contains("conservation"), "{violation}");
            }
            other => panic!("expected ReportInvariant, got {other:?}"),
        }
    }

    #[test]
    fn backend_and_scale_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.as_str()), Some(b));
        }
        for s in [Scale::Small, Scale::Paper] {
            assert_eq!(Scale::parse(s.as_str()), Some(s));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }
}
