//! Capacity curves: exact per-capacity miss/write-back projections from a
//! single-pass Mattson stack simulation.
//!
//! LRU is a *stack algorithm* (Mattson et al., 1970): the set of lines
//! resident in a fully associative LRU cache of capacity `C` is always the
//! top `C` entries of one global recency stack, independent of `C`. One
//! pass over the access stream therefore determines, for **every**
//! capacity at once, whether each access hits (stack distance `< C`) or
//! fills (`≥ C`). The dirty-aware extension tracked here also pins the
//! write-backs: an eviction is dirty for exactly the capacities in a
//! contiguous interval `[maxd+1, d]`, where `maxd` is the deepest stack
//! distance the line reached since its last write and `d` is the distance
//! at the access that re-fetches it (see `memsim::stack` for the
//! derivation and the per-access emission).
//!
//! [`CapacityCurve`] is the projection substrate: cumulative histograms
//! over stack distance, from which [`CapacityCurve::at`] answers any
//! capacity in O(1). The producing simulator lives in `memsim::stack`;
//! the struct lives here so [`crate::report::RunReport`] can carry a
//! curve without `wa-core` depending on the simulator crate.

/// Exact counters of one fully associative LRU cache of a given capacity,
/// projected from a [`CapacityCurve`]. All line-denominated fields count
/// cache lines; `hits`/`misses` are word-granular like the simulator's
/// `LevelCounters` (every word access scores one hit or miss).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurvePoint {
    /// Capacity this point was projected at, in words.
    pub capacity_words: u64,
    /// The same capacity in lines (`capacity_words / line_words`, min 1).
    pub capacity_lines: u64,
    /// Lines fetched from the backing store (cold + capacity misses).
    pub fills: u64,
    /// Dirty lines evicted to the backing store during the run.
    pub writebacks: u64,
    /// Dirty lines still resident at end of trace, charged as an
    /// end-of-run flush (the convention of the flushed `simmed` cells).
    pub flush_writebacks: u64,
    /// Word-granular hits (`word_accesses − misses`).
    pub hits: u64,
    /// Word-granular misses (equal to `fills`: each line touch that
    /// misses triggers exactly one fill).
    pub misses: u64,
}

impl CurvePoint {
    /// Lines read from the backing store (same as `fills`).
    pub fn dram_reads_lines(&self) -> u64 {
        self.fills
    }

    /// Lines written to the backing store, flush included.
    pub fn dram_writes_lines(&self) -> u64 {
        self.writebacks + self.flush_writebacks
    }
}

/// Single-pass projection data for FA-LRU caches of every capacity.
///
/// All histograms are *cumulative* (index `i` holds the count for
/// arguments `≤ i`), clamped at their last entry beyond the end, so
/// [`CapacityCurve::at`] is O(1) per query. Distances and capacities are
/// measured in lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapacityCurve {
    /// Words per cache line.
    pub line_words: u64,
    /// Total word-granular accesses in the trace.
    pub word_accesses: u64,
    /// Total line touches (one per word access; repeats included).
    pub line_touches: u64,
    /// Consecutive same-line touches (stack distance 0 by construction;
    /// they hit at every capacity ≥ 1 line).
    pub repeats: u64,
    /// First-ever touches (compulsory misses at every capacity).
    pub cold: u64,
    /// Distinct lines in the trace.
    pub footprint_lines: u64,
    /// `dist_cum[d]` = non-cold, non-repeat touches with stack distance
    /// `≤ d`. Its last entry is the total of such touches.
    pub dist_cum: Vec<u64>,
    /// `wb_lo_cum[c]` = dirty-eviction emissions whose capacity interval
    /// starts at `≤ c` (see module docs; intervals are `[maxd+1, d]`).
    pub wb_lo_cum: Vec<u64>,
    /// `wb_hi_cum[c]` = emissions whose interval ends at `≤ c`.
    pub wb_hi_cum: Vec<u64>,
    /// `flush_cum[c]` = lines dirty-resident at end of trace for every
    /// capacity `≥` their threshold, cumulative over thresholds `≤ c`.
    pub flush_cum: Vec<u64>,
}

/// Last-entry-clamped cumulative lookup: histograms are zero past their
/// end, so the cumulative value saturates at the final entry.
fn cum(h: &[u64], i: u64) -> u64 {
    if h.is_empty() {
        return 0;
    }
    let i = (i as usize).min(h.len() - 1);
    h[i]
}

impl CapacityCurve {
    /// Total non-cold, non-repeat touches (the mass of `dist_cum`).
    fn reuse_touches(&self) -> u64 {
        self.dist_cum.last().copied().unwrap_or(0)
    }

    /// Project the exact FA-LRU counters for a cache of `capacity_words`.
    /// Capacities below one line are clamped to one line (a cache holds
    /// at least the line being accessed).
    pub fn at(&self, capacity_words: u64) -> CurvePoint {
        let c = (capacity_words / self.line_words.max(1)).max(1);
        // A touch at distance d hits iff d < c: subtract the hits
        // (distance ≤ c−1) from the reuse touches, add compulsory misses.
        let reuse_misses = self.reuse_touches() - cum(&self.dist_cum, c - 1);
        let fills = self.cold + reuse_misses;
        // An emission [lo, hi] produces a write-back at capacity c iff
        // lo ≤ c ≤ hi: count intervals starting at ≤ c, minus those
        // already closed (ending at ≤ c−1).
        let writebacks = cum(&self.wb_lo_cum, c) - cum(&self.wb_hi_cum, c.saturating_sub(1));
        let flush_writebacks = cum(&self.flush_cum, c);
        CurvePoint {
            capacity_words,
            capacity_lines: c,
            fills,
            writebacks,
            flush_writebacks,
            hits: self.word_accesses - fills,
            misses: fills,
        }
    }

    /// Project a list of capacities (words), in the order given.
    pub fn points(&self, capacities_words: &[u64]) -> Vec<CurvePoint> {
        capacities_words.iter().map(|&w| self.at(w)).collect()
    }

    /// Default capacity ladder: powers of two in words, from one line up
    /// to the first power of two covering the trace footprint.
    pub fn default_ladder(&self) -> Vec<u64> {
        let lw = self.line_words.max(1);
        let footprint_words = (self.footprint_lines.max(1)) * lw;
        let mut caps = Vec::new();
        let mut c = lw.next_power_of_two();
        loop {
            caps.push(c);
            if c >= footprint_words {
                break;
            }
            c *= 2;
        }
        caps
    }

    /// JSON object (stable field order) carrying the curve sampled at
    /// `capacities_words`: summary scalars plus one point per capacity.
    pub fn to_json(&self, capacities_words: &[u64]) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"line_words\":{},\"word_accesses\":{},\"line_touches\":{},\
             \"repeats\":{},\"cold_lines\":{},\"footprint_lines\":{},\"points\":[",
            self.line_words,
            self.word_accesses,
            self.line_touches,
            self.repeats,
            self.cold,
            self.footprint_lines
        );
        for (i, p) in self.points(capacities_words).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"capacity_words\":{},\"capacity_lines\":{},\"fills\":{},\
                 \"writebacks\":{},\"flush_writebacks\":{},\"dram_reads_lines\":{},\
                 \"dram_writes_lines\":{},\"hits\":{},\"misses\":{}}}",
                p.capacity_words,
                p.capacity_lines,
                p.fills,
                p.writebacks,
                p.flush_writebacks,
                p.dram_reads_lines(),
                p.dram_writes_lines(),
                p.hits,
                p.misses
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built curve for the trace R0 R1 R0 W1 (line addresses),
    /// line_words = 1, word = line touch.
    ///
    /// Touches: 0 cold, 1 cold, 0 at d=1, 1 at d=1 (write).
    /// Emissions: none during the run (both reuses hit any C ≥ 2; at
    /// C = 1 the W1 access finds line 1 clean — it was never written
    /// before). End state: line 1 dirty, maxd=0, 0 lines after it → e=0;
    /// line 0 clean. Flush threshold for line 1 = max(0, 0)+1 = 1.
    fn tiny() -> CapacityCurve {
        CapacityCurve {
            line_words: 1,
            word_accesses: 4,
            line_touches: 4,
            repeats: 0,
            cold: 2,
            footprint_lines: 2,
            // d-histogram {1: 2} → cumulative [0, 2].
            dist_cum: vec![0, 2],
            wb_lo_cum: vec![0],
            wb_hi_cum: vec![0],
            // flush threshold histogram {1: 1} → cumulative [0, 1].
            flush_cum: vec![0, 1],
        }
    }

    #[test]
    fn projection_matches_hand_simulation() {
        let c = tiny();
        // C = 1: both reuses miss (d=1 ≥ 1) → 4 fills; the final W1
        // leaves line 1 dirty-resident → 1 flush write-back.
        let p1 = c.at(1);
        assert_eq!(p1.fills, 4);
        assert_eq!(p1.writebacks, 0);
        assert_eq!(p1.flush_writebacks, 1);
        assert_eq!(p1.hits, 0);
        assert_eq!(p1.misses, 4);
        assert_eq!(p1.dram_writes_lines(), 1);
        // C = 2 (and beyond): only the 2 cold fills; line 1 still flushes.
        for cap in [2, 3, 100] {
            let p = c.at(cap);
            assert_eq!(p.fills, 2, "capacity {cap}");
            assert_eq!(p.hits, 2);
            assert_eq!(p.flush_writebacks, 1);
        }
    }

    #[test]
    fn sub_line_capacity_clamps_to_one_line() {
        let mut c = tiny();
        c.line_words = 8;
        let p = c.at(3);
        assert_eq!(p.capacity_lines, 1);
    }

    #[test]
    fn default_ladder_covers_footprint() {
        let mut c = tiny();
        c.line_words = 8;
        c.footprint_lines = 37;
        let ladder = c.default_ladder();
        assert_eq!(ladder[0], 8);
        assert!(ladder.windows(2).all(|w| w[1] == 2 * w[0]));
        assert!(*ladder.last().unwrap() >= 37 * 8);
        assert!(ladder[ladder.len() - 2] < 37 * 8);
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny().to_json(&[1, 2]);
        assert!(j.starts_with("{\"line_words\":1,\"word_accesses\":4,"));
        assert!(j.contains("\"points\":[{\"capacity_words\":1,"));
        assert!(j.contains("\"fills\":4"));
        assert!(j.ends_with("}]}"));
    }
}
