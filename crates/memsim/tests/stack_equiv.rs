//! Exactness of the single-pass Mattson stack projection.
//!
//! For ANY access trace and ANY capacity, the [`StackSim`] curve must be
//! byte-identical to an independent per-capacity FA-LRU
//! [`MemSim::single_level_lru`] run of the same trace — fills, during-run
//! dirty victims, flush write-backs, and word-granular hits alike. These
//! property tests drive random run traces and random capacity lists
//! through both simulators, plus the edge cases (empty trace, capacity
//! beyond the footprint, write-only streams).

use memsim::{AccessRun, MemSim, StackSim};
use proptest::prelude::*;

/// Reference counters at one capacity: a flushed FA-LRU MemSim run.
/// Returns (fills, victims_m, flush_victims_m, hits, dram_reads,
/// dram_writes).
fn reference(runs: &[AccessRun], cap_words: usize) -> (u64, u64, u64, u64, u64, u64) {
    let mut m = MemSim::single_level_lru(cap_words);
    m.run(runs);
    m.flush();
    let c = m.llc();
    (
        c.fills,
        c.victims_m,
        c.flush_victims_m,
        c.hits,
        m.dram_reads_lines,
        m.dram_writes_lines,
    )
}

/// Project the stack curve at every capacity in `caps_lines` and compare
/// field-for-field against independent per-capacity reference runs.
fn assert_curve_matches(runs: &[AccessRun], caps_lines: &[usize]) {
    let mut s = StackSim::new();
    s.run(runs);
    let curve = s.curve();
    // Histogram mass: every line touch is cold, repeat, or distanced.
    assert_eq!(curve.line_touches, curve.word_accesses);
    for &c in caps_lines {
        let cap_words = c * 8;
        let p = curve.at(cap_words as u64);
        let (fills, victims_m, flush_m, hits, dram_r, dram_w) = reference(runs, cap_words);
        assert_eq!(p.fills, fills, "fills at {c} lines");
        assert_eq!(p.writebacks, victims_m, "victims_m at {c} lines");
        assert_eq!(p.flush_writebacks, flush_m, "flush_victims_m at {c} lines");
        assert_eq!(p.hits, hits, "hits at {c} lines");
        assert_eq!(p.dram_reads_lines(), dram_r, "dram reads at {c} lines");
        assert_eq!(p.dram_writes_lines(), dram_w, "dram writes at {c} lines");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random run traces over a small address space (heavy reuse and
    /// eviction pressure), checked at a random capacity list.
    #[test]
    fn random_traces_match_reference_at_random_capacities(
        spec in prop::collection::vec((0usize..160, 1usize..24, any::<bool>()), 1..40),
        caps in prop::collection::vec(1usize..30, 1..6),
    ) {
        let runs: Vec<AccessRun> = spec
            .iter()
            .map(|&(addr, words, is_write)| AccessRun { addr, words, is_write })
            .collect();
        assert_curve_matches(&runs, &caps);
    }

    /// Write-heavy ping-pong + strided spans: maximizes dirty evictions,
    /// re-dirtying, and repeat writes — the paths the interval emission
    /// and the repeat memo must get exactly right.
    #[test]
    fn adversarial_write_patterns_match(
        stride in 1usize..12,
        reps in 1usize..30,
    ) {
        let mut runs = Vec::new();
        for r in 0..reps {
            runs.push(AccessRun::write(r * stride, 1));
            runs.push(AccessRun::read(r * stride, 1));
            runs.push(AccessRun::write(r * stride + 3, 13));
        }
        assert_curve_matches(&runs, &[1, 2, 3, 5, 8, 64]);
    }

    /// Write-only streams: every fill eventually leaves dirty (during the
    /// run or at flush), at every capacity.
    #[test]
    fn write_only_streams_match(
        spec in prop::collection::vec((0usize..120, 1usize..20), 1..30),
        caps in prop::collection::vec(1usize..20, 1..5),
    ) {
        let runs: Vec<AccessRun> = spec
            .iter()
            .map(|&(addr, words)| AccessRun::write(addr, words))
            .collect();
        assert_curve_matches(&runs, &caps);
        // Cross-capacity invariant: total DRAM writes = fills at every
        // capacity (each filled line is written at least once after).
        let mut s = StackSim::new();
        s.run(&runs);
        let curve = s.curve();
        for &c in &caps {
            let p = curve.at((c * 8) as u64);
            assert_eq!(p.dram_writes_lines(), p.fills, "write-only at {c} lines");
        }
    }
}

#[test]
fn empty_trace_is_all_zero_at_every_capacity() {
    assert_curve_matches(&[], &[1, 2, 7, 100]);
}

#[test]
fn capacity_beyond_footprint_sees_only_cold_misses() {
    let runs = [
        AccessRun::read(0, 40),
        AccessRun::write(8, 24),
        AccessRun::read(0, 40),
    ];
    // Footprint is 5 lines; everything ≥ 5 lines behaves identically.
    assert_curve_matches(&runs, &[5, 6, 100, 4096]);
    let mut s = StackSim::new();
    s.run(&runs);
    let curve = s.curve();
    let p = curve.at(4096 * 8);
    assert_eq!(
        p.fills, curve.cold,
        "no capacity misses above the footprint"
    );
    assert_eq!(p.writebacks, 0, "nothing evicted above the footprint");
    assert_eq!(p.flush_writebacks, 3, "the 3 written lines flush");
}

#[test]
fn zero_length_runs_and_partial_lines_are_harmless() {
    let runs = [
        AccessRun::read(3, 0),
        AccessRun::write(5, 9),
        AccessRun::read(13, 1),
        AccessRun::write(0, 0),
    ];
    assert_curve_matches(&runs, &[1, 2, 3]);
}
