//! Model-based property tests: the O(1) fully-associative LRU
//! implementation must agree, access for access, with a naive
//! reference model (vector of (line, dirty, timestamp)).

use memsim::{CacheConfig, MemSim, Policy};
use proptest::prelude::*;

/// Naive reference: fully-associative LRU with write-back, tracked as a
/// plain vector; returns (hits, misses, victims_m, victims_e, dram_writes).
struct RefLru {
    cap: usize,
    line_words: usize,
    lines: Vec<(u64, bool, u64)>, // (line, dirty, last_use)
    clock: u64,
    hits: u64,
    misses: u64,
    victims_m: u64,
    victims_e: u64,
}

impl RefLru {
    fn new(cap: usize, line_words: usize) -> Self {
        RefLru {
            cap,
            line_words,
            lines: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            victims_m: 0,
            victims_e: 0,
        }
    }

    fn access(&mut self, addr: usize, is_write: bool) {
        self.clock += 1;
        let line = (addr / self.line_words) as u64;
        if let Some(e) = self.lines.iter_mut().find(|e| e.0 == line) {
            self.hits += 1;
            e.1 |= is_write;
            e.2 = self.clock;
            return;
        }
        self.misses += 1;
        if self.lines.len() == self.cap {
            let (idx, _) = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .unwrap();
            let v = self.lines.swap_remove(idx);
            if v.1 {
                self.victims_m += 1;
            } else {
                self.victims_e += 1;
            }
        }
        self.lines.push((line, is_write, self.clock));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fa_lru_matches_reference_model(
        ops in prop::collection::vec((0usize..1024, any::<bool>()), 1..800),
        cap_lines in 1usize..24,
    ) {
        let cfg = CacheConfig {
            capacity_words: cap_lines * 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::two_level(cfg);
        let mut reference = RefLru::new(cap_lines, 8);
        for &(addr, is_write) in &ops {
            if is_write {
                sim.write(addr);
            } else {
                sim.read(addr);
            }
            reference.access(addr, is_write);
        }
        let c = sim.llc();
        prop_assert_eq!(c.hits, reference.hits);
        prop_assert_eq!(c.misses, reference.misses);
        prop_assert_eq!(c.victims_m, reference.victims_m);
        prop_assert_eq!(c.victims_e, reference.victims_e);
        prop_assert_eq!(sim.dram_writes_lines, reference.victims_m);
    }

    /// The 3-level inclusive hierarchy never loses dirty data: total DRAM
    /// write-backs after a flush equal the number of distinct lines ever
    /// written (each written line must reach DRAM exactly once if never
    /// rewritten after its last flush... here: at least once, and hits +
    /// misses at L1 equals the access count).
    #[test]
    fn hierarchy_conservation(
        ops in prop::collection::vec((0usize..4096, any::<bool>()), 1..600),
    ) {
        let cfg = |words: usize| CacheConfig {
            capacity_words: words,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::new(&[cfg(64), cfg(256), cfg(1024)]);
        let mut dirty_lines = std::collections::HashSet::new();
        for &(addr, is_write) in &ops {
            if is_write {
                sim.write(addr);
                dirty_lines.insert(addr / 8);
            } else {
                sim.read(addr);
            }
        }
        sim.flush();
        let l1 = sim.counters(0);
        prop_assert_eq!(l1.hits + l1.misses, ops.len() as u64);
        // Every dirty line reaches DRAM at least once, possibly more if
        // re-dirtied after an eviction.
        prop_assert!(sim.dram_writes_lines >= dirty_lines.len() as u64);
        // Monotone filtering: lower levels see at most the accesses the
        // upper ones missed.
        let l2 = sim.counters(1);
        let l3 = sim.counters(2);
        prop_assert!(l2.hits + l2.misses <= l1.misses);
        prop_assert!(l3.hits + l3.misses <= l2.misses);
    }

    /// Set-associative caches of any legal geometry preserve hit+miss
    /// conservation and never exceed capacity.
    #[test]
    fn set_assoc_geometry_invariants(
        ops in prop::collection::vec((0usize..2048, any::<bool>()), 1..400),
        ways in prop::sample::select(vec![1usize, 2, 4, 8]),
        sets_pow in 1u32..5,
        policy in prop::sample::select(vec![Policy::Lru, Policy::Clock3, Policy::Fifo]),
    ) {
        let sets = 1usize << sets_pow;
        let cap_lines = sets * ways;
        let cfg = CacheConfig {
            capacity_words: cap_lines * 8,
            line_words: 8,
            ways,
            policy,
        };
        let mut sim = MemSim::two_level(cfg);
        for &(addr, is_write) in &ops {
            if is_write {
                sim.write(addr);
            } else {
                sim.read(addr);
            }
        }
        let c = sim.llc();
        prop_assert_eq!(c.hits + c.misses, ops.len() as u64);
        prop_assert!(sim.resident_lines(0) <= cap_lines);
        prop_assert_eq!(c.fills - c.victims(), sim.resident_lines(0) as u64);
    }
}
