//! Counter-exactness of the line-granular fast path.
//!
//! The bulk APIs ([`MemSim::read_range`], [`MemSim::write_range`],
//! [`MemSim::run`]) and the last-line memo inside `access` are pure
//! accelerations: for ANY access trace, every [`LevelCounters`] field of
//! every level — and the DRAM line tallies — must be byte-identical to
//! the per-word reference walk (`disable_fast_path`). These property
//! tests drive random run traces through random 1-, 2-, and 3-level
//! hierarchies under every replacement policy and compare the two paths
//! field for field.

use memsim::{AccessRun, CacheConfig, LevelCounters, MemSim, Policy};
use proptest::prelude::*;

/// All (ways, policy) combinations the simulator supports. Fully
/// associative (`ways == 0`) requires true LRU; the set-associative
/// configurations exercise LRU, the 3-bit clock, and FIFO.
const CONFIGS: [(usize, Policy); 4] = [
    (0, Policy::Lru),
    (2, Policy::Lru),
    (4, Policy::Clock3),
    (2, Policy::Fifo),
];

fn build(levels: usize, ways: usize, policy: Policy, base_lines: usize) -> MemSim {
    let cfgs: Vec<CacheConfig> = (0..levels)
        .map(|i| CacheConfig {
            // Strictly growing capacities: 4x per level keeps every level
            // a whole number of (ways-divisible) sets.
            capacity_words: (base_lines * 8) << (2 * i),
            line_words: 8,
            ways,
            policy,
        })
        .collect();
    MemSim::new(&cfgs)
}

/// Apply `runs` through the bulk API on one sim and the per-word
/// reference walk on another; compare every counter of every level.
fn assert_equivalent(
    levels: usize,
    ways: usize,
    policy: Policy,
    base_lines: usize,
    runs: &[AccessRun],
) {
    let mut fast = build(levels, ways, policy, base_lines);
    let mut refr = build(levels, ways, policy, base_lines);
    refr.disable_fast_path();
    fast.run(runs);
    for r in runs {
        for a in r.addr..r.addr + r.words {
            if r.is_write {
                refr.write(a);
            } else {
                refr.read(a);
            }
        }
    }
    for i in 0..levels {
        let (f, r): (LevelCounters, LevelCounters) = (fast.counters(i), refr.counters(i));
        assert_eq!(f, r, "level {i} counters diverge ({ways}-way {policy:?})");
    }
    assert_eq!(fast.dram_reads_lines, refr.dram_reads_lines);
    assert_eq!(fast.dram_writes_lines, refr.dram_writes_lines);
    // And after a flush both must have pushed the same dirty state out.
    fast.flush();
    refr.flush();
    for i in 0..levels {
        assert_eq!(
            fast.counters(i),
            refr.counters(i),
            "level {i} counters diverge after flush"
        );
    }
    assert_eq!(fast.dram_writes_lines, refr.dram_writes_lines);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random run traces over a small address space (heavy line reuse and
    /// eviction pressure) across all policies and 1/2/3-level shapes.
    #[test]
    fn range_and_bulk_api_match_per_word_reference(
        levels in 1usize..4,
        cfg_idx in 0usize..4,
        base_lines in 2usize..6,
        spec in prop::collection::vec((0usize..160, 1usize..24, any::<bool>()), 1..40),
    ) {
        let (ways, policy) = CONFIGS[cfg_idx];
        let runs: Vec<AccessRun> = spec
            .iter()
            .map(|&(addr, words, is_write)| AccessRun { addr, words, is_write })
            .collect();
        assert_equivalent(levels, ways, policy, base_lines * 4, &runs);
    }

    /// Dense same-line hammering maximizes memo usage; strided runs
    /// maximize line crossings. Both extremes must stay exact.
    #[test]
    fn adversarial_memo_traces_match(
        stride in 1usize..12,
        reps in 1usize..30,
        cfg_idx in 0usize..4,
    ) {
        let (ways, policy) = CONFIGS[cfg_idx];
        let mut runs = Vec::new();
        for r in 0..reps {
            // Same word over and over, then a strided hop, then a span
            // crossing several lines starting mid-line.
            runs.push(AccessRun::write(r * stride, 1));
            runs.push(AccessRun::read(r * stride, 1));
            runs.push(AccessRun::read(r * stride + 3, 13));
        }
        assert_equivalent(2, ways, policy, 8, &runs);
    }
}
