//! The access abstraction instrumented kernels are generic over.
//!
//! Kernels in `dense`, `cdag` and `nbody` are written once against
//! [`Mem`] and monomorphized three ways:
//!
//! * [`RawMem`] — plain `Vec<f64>` access, zero overhead: used for numeric
//!   verification and wall-clock benchmarks;
//! * [`SimMem`] — every access drives the cache simulator
//!   ([`crate::MemSim`]) *and* performs the arithmetic, so counter
//!   measurements come from real executions with verified outputs;
//! * [`TraceMem`] — records the `(address, is_write)` stream for offline
//!   analysis (Belady simulation, CDAG reuse statistics).

use crate::hierarchy::MemSim;

/// Word-addressed memory with read/write instrumentation hooks.
///
/// The bulk accessors `ld_run`/`st_run` describe one *run* of consecutive
/// words. Their default implementations fall back to the per-word hooks
/// (so every backend observes the identical word stream), but [`RawMem`]
/// overrides them with `memcpy` and [`SimMem`] routes them through the
/// simulator's line-granular [`MemSim::read_range`]/[`MemSim::write_range`]
/// fast path — which is where the order-of-magnitude simulation speedup
/// of the instrumented kernels comes from.
pub trait Mem {
    /// Load the word at `addr`.
    fn ld(&mut self, addr: usize) -> f64;
    /// Store `v` at `addr`.
    fn st(&mut self, addr: usize, v: f64);

    /// Load the run `[addr, addr + out.len())` into `out`.
    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.ld(addr + i);
        }
    }

    /// Store `src` over the run `[addr, addr + src.len())`.
    fn st_run(&mut self, addr: usize, src: &[f64]) {
        for (i, &v) in src.iter().enumerate() {
            self.st(addr + i, v);
        }
    }

    /// Number of words of backing storage.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark a profiling phase boundary (see [`crate::probe::Probe`]).
    /// No-op by default, so kernels can mark phases unconditionally;
    /// [`SimMem`] routes it to the simulator's probe.
    fn phase(&mut self, _name: &'static str) {}
}

/// Forwarding impl so code generic over `M: Mem` can also run through a
/// `&mut dyn Mem` (pass `&mut mem_ref`): the engine's workload runners use
/// this to hand one closure all four backends.
impl<M: Mem + ?Sized> Mem for &mut M {
    #[inline]
    fn ld(&mut self, addr: usize) -> f64 {
        (**self).ld(addr)
    }

    #[inline]
    fn st(&mut self, addr: usize, v: f64) {
        (**self).st(addr, v)
    }

    #[inline]
    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        (**self).ld_run(addr, out)
    }

    #[inline]
    fn st_run(&mut self, addr: usize, src: &[f64]) {
        (**self).st_run(addr, src)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn phase(&mut self, name: &'static str) {
        (**self).phase(name)
    }
}

/// Uninstrumented backing store.
pub struct RawMem {
    pub data: Vec<f64>,
}

impl RawMem {
    pub fn new(words: usize) -> Self {
        RawMem {
            data: vec![0.0; words],
        }
    }

    pub fn from_vec(data: Vec<f64>) -> Self {
        RawMem { data }
    }
}

impl Mem for RawMem {
    #[inline]
    fn ld(&mut self, addr: usize) -> f64 {
        self.data[addr]
    }

    #[inline]
    fn st(&mut self, addr: usize, v: f64) {
        self.data[addr] = v;
    }

    #[inline]
    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.data[addr..addr + out.len()]);
    }

    #[inline]
    fn st_run(&mut self, addr: usize, src: &[f64]) {
        self.data[addr..addr + src.len()].copy_from_slice(src);
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

/// Cache-simulated backing store: every access walks the hierarchy.
pub struct SimMem {
    pub data: Vec<f64>,
    pub sim: MemSim,
}

impl SimMem {
    pub fn new(words: usize, sim: MemSim) -> Self {
        SimMem {
            data: vec![0.0; words],
            sim,
        }
    }

    pub fn from_vec(data: Vec<f64>, sim: MemSim) -> Self {
        SimMem { data, sim }
    }
}

impl Mem for SimMem {
    #[inline]
    fn ld(&mut self, addr: usize) -> f64 {
        self.sim.read(addr);
        self.data[addr]
    }

    #[inline]
    fn st(&mut self, addr: usize, v: f64) {
        self.sim.write(addr);
        self.data[addr] = v;
    }

    #[inline]
    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        self.sim.read_range(addr, out.len());
        out.copy_from_slice(&self.data[addr..addr + out.len()]);
    }

    #[inline]
    fn st_run(&mut self, addr: usize, src: &[f64]) {
        self.sim.write_range(addr, src.len());
        self.data[addr..addr + src.len()].copy_from_slice(src);
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn phase(&mut self, name: &'static str) {
        self.sim.phase(name);
    }
}

/// One recorded access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    pub addr: usize,
    pub is_write: bool,
}

/// Trace-recording backing store.
pub struct TraceMem {
    pub data: Vec<f64>,
    pub trace: Vec<Access>,
}

impl TraceMem {
    pub fn new(words: usize) -> Self {
        TraceMem {
            data: vec![0.0; words],
            trace: Vec::new(),
        }
    }

    pub fn from_vec(data: Vec<f64>) -> Self {
        TraceMem {
            data,
            trace: Vec::new(),
        }
    }
}

impl Mem for TraceMem {
    #[inline]
    fn ld(&mut self, addr: usize) -> f64 {
        wa_core::cancel::tick(1);
        self.trace.push(Access {
            addr,
            is_write: false,
        });
        self.data[addr]
    }

    #[inline]
    fn st(&mut self, addr: usize, v: f64) {
        wa_core::cancel::tick(1);
        self.trace.push(Access {
            addr,
            is_write: true,
        });
        self.data[addr] = v;
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::policy::Policy;

    fn run_kernel<M: Mem>(m: &mut M) -> f64 {
        // A toy kernel: y[i] = x[i] * 2 with x at 0..4, y at 4..8.
        let mut acc = 0.0;
        for i in 0..4 {
            let v = m.ld(i) * 2.0;
            m.st(4 + i, v);
            acc += v;
        }
        acc
    }

    #[test]
    fn raw_and_sim_agree_numerically() {
        let input = vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
        let mut raw = RawMem::from_vec(input.clone());
        let sim = MemSim::two_level(CacheConfig {
            capacity_words: 16,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        });
        let mut simm = SimMem::from_vec(input, sim);
        assert_eq!(run_kernel(&mut raw), run_kernel(&mut simm));
        assert_eq!(raw.data, simm.data);
        assert!(simm.sim.llc().hits + simm.sim.llc().misses == 8);
    }

    #[test]
    fn trace_records_in_order() {
        let mut t = TraceMem::new(8);
        t.st(0, 1.0);
        let _ = t.ld(0);
        assert_eq!(
            t.trace,
            vec![
                Access {
                    addr: 0,
                    is_write: true
                },
                Access {
                    addr: 0,
                    is_write: false
                },
            ]
        );
    }
}
