//! Single-pass Mattson stack simulation: exact FA-LRU fills *and*
//! write-backs for every capacity from one pass over the access stream.
//!
//! # Why one pass suffices
//!
//! LRU is a stack algorithm (Mattson et al., 1970): the residents of a
//! fully associative LRU cache of capacity `C` lines are always the top
//! `C` entries of one global recency stack. An access to line `L` whose
//! stack distance is `d` (the number of *distinct other* lines touched
//! since `L`'s previous access) therefore hits iff `d < C` — for every
//! `C` simultaneously. A histogram of exact distances answers every
//! fill count: `fills(C) = cold + #{touches with d ≥ C}`.
//!
//! # Dirty-aware extension
//!
//! Write-backs need one more per-line scalar: `maxd`, the deepest stack
//! distance `L` reached *since its last write* (reset to 0 by a write,
//! `max`ed with `d` by a read). For capacity `C`, `L` is still dirty at
//! an access iff it never missed since the write — iff `maxd < C` — and
//! the eviction preceding the access happened iff `d ≥ C`. So the
//! eviction re-fetched by an access at distance `d` wrote back dirty
//! data for exactly the capacities `C ∈ [maxd+1, d]`: one contiguous
//! interval, emitted into a pair of difference histograms
//! (`wb_lo[maxd+1] += 1`, `wb_hi[d] += 1`;
//! `WB(C) = Σ_{c≤C} wb_lo[c] − Σ_{c≤C−1} wb_hi[c]`). A single program
//! write can legitimately produce write-backs at different trace points
//! for different capacities; the interval emission captures that. `maxd`
//! is never reset by a miss — for any capacity where a miss occurred,
//! `maxd` has already grown past it, so later emission intervals
//! correctly exclude it (the refill was clean).
//!
//! At end of trace each written line `L` with `e` distinct lines after
//! its last access (and final `maxd`) still owes, for `C > maxd`:
//! a during-run write-back if `C ≤ e` (evicted dirty before the end —
//! interval `[maxd+1, e]`), else a flush write-back (`C ≥ max(maxd,e)+1`,
//! a simple threshold histogram). [`StackSim::curve`] folds this end
//! state; the per-access emissions happen in [`StackSim::run`] and
//! friends.
//!
//! The projections are *byte-identical* to independent per-capacity
//! [`crate::MemSim::single_level_lru`] runs (flushed) on any trace —
//! property-tested in `tests/stack_equiv.rs`. They are exact for fully
//! associative LRU only: set-associative or non-LRU policies do not
//! satisfy the stack property, and neither do `MemSim`'s stacked
//! hierarchies (an L1 hit does not refresh L2 recency).
//!
//! Distances are computed with the same Fenwick-tree-over-ticks scheme
//! as [`crate::ReuseHist`] (`O(log n)` per distinct-line touch). A
//! two-entry recency memo keeps the hot patterns cheap: consecutive
//! repeats are O(1) (distance 0 touches no histogram), and the
//! second-most-recent line has distance exactly 1 by construction, so
//! its touch skips both Fenwick prefix queries.

use crate::mem::Mem;
use crate::probe::Fenwick;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use wa_core::curve::CapacityCurve;
pub use wa_core::AccessRun;

/// Multiply-fold hasher for line numbers — the map's only key type. The
/// default SipHash costs more than the Fenwick work on this hot path;
/// a Fibonacci multiply with the high bits folded down suffices for
/// sequential/strided line keys.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("line keys hash through write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type LineMap = HashMap<u64, LineState, BuildHasherDefault<LineHasher>>;

/// Per-line state of the Mattson stack.
struct LineState {
    /// Fenwick tick of the line's most recent (non-repeat) touch.
    pos: usize,
    /// Has the line ever been written? (Clean lines never owe
    /// write-backs at any capacity.)
    written: bool,
    /// Deepest stack distance reached since the last write.
    maxd: u64,
}

/// One-pass all-capacities FA-LRU simulator. Feed it the same
/// word-granular access stream as [`crate::MemSim`] (via [`Mem`] through
/// [`StackMem`], or the `read`/`write`/`*_range`/`run` calls directly),
/// then project any capacity list with [`StackSim::curve`].
pub struct StackSim {
    line_words: usize,
    /// Non-repeat touch counter (Fenwick positions).
    tick: usize,
    /// 1 at each line's most recent touch position.
    fen: Fenwick,
    lines: LineMap,
    /// Most recently touched line: consecutive repeats are distance 0.
    memo: Option<u64>,
    /// A repeat *write* happened during the current `memo` streak; its
    /// dirtying effect (written = true, maxd = 0) is applied to the memo
    /// line's map entry when the streak ends — and virtually by
    /// [`StackSim::curve`] if the trace ends mid-streak — so repeat
    /// writes stay O(1) with no map lookup.
    memo_dirty: bool,
    /// Second-most-recent distinct line: its next touch has stack
    /// distance exactly 1 (only `memo` intervened), so no Fenwick
    /// prefix queries are needed.
    memo2: Option<u64>,
    word_accesses: u64,
    repeats: u64,
    cold: u64,
    /// Exact distance histogram over non-cold, non-repeat touches.
    dist: Vec<u64>,
    /// Dirty-eviction interval emissions (see module docs).
    wb_lo: Vec<u64>,
    wb_hi: Vec<u64>,
    /// Cancel token captured at construction (see [`crate::MemSim`]).
    cancel_token: Option<wa_core::CancelToken>,
    /// Word-access count at which the token is next polled; `u64::MAX`
    /// when no token is installed.
    cancel_check_at: u64,
}

impl Default for StackSim {
    fn default() -> Self {
        StackSim::new()
    }
}

fn bump(v: &mut Vec<u64>, i: usize) {
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

/// Turn a histogram into its running (cumulative) sums, in place.
fn cumulate(mut v: Vec<u64>) -> Vec<u64> {
    let mut acc = 0;
    for x in v.iter_mut() {
        acc += *x;
        *x = acc;
    }
    v
}

impl StackSim {
    /// A stack simulator over [`crate::LINE_WORDS`]-word lines — the same
    /// line size as every engine `simmed` hierarchy.
    pub fn new() -> StackSim {
        StackSim::with_line_words(crate::xeon::LINE_WORDS)
    }

    pub fn with_line_words(line_words: usize) -> StackSim {
        assert!(line_words > 0, "line size must be positive");
        let cancel_token = wa_core::cancel::current();
        let cancel_check_at = if cancel_token.is_some() {
            wa_core::cancel::CHECK_INTERVAL
        } else {
            u64::MAX
        };
        StackSim {
            line_words,
            tick: 0,
            fen: Fenwick::new(),
            lines: LineMap::default(),
            memo: None,
            memo_dirty: false,
            memo2: None,
            word_accesses: 0,
            repeats: 0,
            cold: 0,
            dist: Vec::new(),
            wb_lo: Vec::new(),
            wb_hi: Vec::new(),
            cancel_token,
            cancel_check_at,
        }
    }

    /// Poll the captured cancel token (cold branch of the per-access
    /// check) and unwind with the current access count if it has fired.
    #[cold]
    fn cancel_checkpoint(&mut self) {
        self.cancel_check_at = self.word_accesses + wa_core::cancel::CHECK_INTERVAL;
        if let Some(t) = &self.cancel_token {
            if t.is_cancelled() {
                let reason = t.reason().unwrap_or(wa_core::CancelReason::Deadline);
                wa_core::cancel::raise(self.word_accesses, reason);
            }
        }
    }

    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Distinct lines touched so far.
    pub fn footprint_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Total word accesses recorded.
    pub fn word_accesses(&self) -> u64 {
        self.word_accesses
    }

    /// Record a read of word address `addr`.
    #[inline]
    pub fn read(&mut self, addr: usize) {
        self.word_accesses += 1;
        if self.word_accesses >= self.cancel_check_at {
            self.cancel_checkpoint();
        }
        self.touch_line(addr as u64 / self.line_words as u64, false);
    }

    /// Record a write of word address `addr`.
    #[inline]
    pub fn write(&mut self, addr: usize) {
        self.word_accesses += 1;
        if self.word_accesses >= self.cancel_check_at {
            self.cancel_checkpoint();
        }
        self.touch_line(addr as u64 / self.line_words as u64, true);
    }

    /// Record a sequential read scan of `[addr, addr + words)`.
    pub fn read_range(&mut self, addr: usize, words: usize) {
        self.range_access(addr, words, false);
    }

    /// Record sequential writes over `[addr, addr + words)`.
    pub fn write_range(&mut self, addr: usize, words: usize) {
        self.range_access(addr, words, true);
    }

    /// Replay a batch of access runs (the bulk API kernels drive).
    pub fn run(&mut self, runs: &[AccessRun]) {
        for r in runs {
            self.range_access(r.addr, r.words, r.is_write);
        }
    }

    /// Phase marks are meaningless to a capacity projection; accepted (and
    /// ignored) so [`StackMem`] satisfies the same kernel surface as
    /// [`crate::SimMem`].
    pub fn phase(&mut self, _name: &str) {}

    fn range_access(&mut self, addr: usize, words: usize, is_write: bool) {
        let lw = self.line_words;
        let end = addr + words;
        let mut a = addr;
        while a < end {
            let line_end = (a / lw + 1) * lw;
            let in_line = line_end.min(end) - a;
            self.word_accesses += in_line as u64;
            if self.word_accesses >= self.cancel_check_at {
                self.cancel_checkpoint();
            }
            self.touch_line(a as u64 / lw as u64, is_write);
            if in_line > 1 {
                // The remaining words of the interval are distance-0
                // repeats of the line just touched; `touch_line` already
                // applied the write's dirtying effect.
                self.repeats += (in_line - 1) as u64;
            }
            a = line_end;
        }
    }

    /// Apply a memo streak's pending repeat-write dirtying to the memo
    /// line's map entry. Must run before the streak ends (the entry is
    /// never read mid-streak, so deferring until here is exact).
    fn flush_memo_dirty(&mut self) {
        if self.memo_dirty {
            let prev = self.memo.expect("memo_dirty implies an active memo");
            let st = self.lines.get_mut(&prev).expect("memo line is mapped");
            st.written = true;
            st.maxd = 0;
            self.memo_dirty = false;
        }
    }

    /// One line-granular touch: distance, fill/write-back emission, state
    /// update. The word-level accounting is the caller's job.
    fn touch_line(&mut self, line: u64, is_write: bool) {
        if self.memo == Some(line) {
            // Distance 0: hits at every capacity ≥ 1 line, so it affects
            // no histogram — but a repeat *write* re-dirties the line
            // (applied lazily when the streak ends).
            self.repeats += 1;
            self.memo_dirty |= is_write;
            return;
        }
        self.flush_memo_dirty();
        self.tick += 1;
        self.fen.ensure(self.tick);
        if self.memo2 == Some(line) {
            // Second-most-recent line: exactly one distinct line (the
            // memo) was touched since, so d = 1 with no prefix queries.
            let st = self.lines.get_mut(&line).expect("memo2 line is mapped");
            bump(&mut self.dist, 1);
            if st.written && st.maxd == 0 {
                bump(&mut self.wb_lo, 1);
                bump(&mut self.wb_hi, 1);
            }
            self.fen.add(st.pos, -1);
            st.pos = self.tick;
            if is_write {
                st.written = true;
                st.maxd = 0;
            } else {
                st.maxd = st.maxd.max(1);
            }
        } else {
            match self.lines.get_mut(&line) {
                None => {
                    self.cold += 1;
                    self.lines.insert(
                        line,
                        LineState {
                            pos: self.tick,
                            written: is_write,
                            maxd: 0,
                        },
                    );
                }
                Some(st) => {
                    // Distinct other lines touched since the previous touch.
                    let d = (self.fen.prefix(self.tick - 1) - self.fen.prefix(st.pos)) as u64;
                    bump(&mut self.dist, d as usize);
                    // The eviction this access would re-fetch after is dirty
                    // for capacities in [maxd+1, d] (empty when the line
                    // already missed at every capacity it was dirty for).
                    if st.written && st.maxd < d {
                        bump(&mut self.wb_lo, st.maxd as usize + 1);
                        bump(&mut self.wb_hi, d as usize);
                    }
                    self.fen.add(st.pos, -1);
                    st.pos = self.tick;
                    if is_write {
                        st.written = true;
                        st.maxd = 0;
                    } else {
                        st.maxd = st.maxd.max(d);
                    }
                }
            }
        }
        self.fen.add(self.tick, 1);
        self.memo2 = self.memo;
        self.memo = Some(line);
    }

    /// Fold the end-of-trace state and return the all-capacities
    /// projection. Non-destructive: the simulator can keep consuming
    /// accesses afterwards (later curves fold the later end state).
    ///
    /// The projection matches a flushed per-capacity
    /// [`crate::MemSim::single_level_lru`] run: `writebacks` ≙
    /// `victims_m`, `flush_writebacks` ≙ `flush_victims_m`.
    pub fn curve(&self) -> CapacityCurve {
        let mut wb_lo = self.wb_lo.clone();
        let mut wb_hi = self.wb_hi.clone();
        let mut flush = Vec::new();
        for (&line, st) in self.lines.iter() {
            // A trace ending mid-streak may owe the memo line a pending
            // repeat-write dirtying; apply it virtually (curve() must not
            // mutate the simulator).
            let (written, maxd) = if self.memo_dirty && self.memo == Some(line) {
                (true, 0)
            } else {
                (st.written, st.maxd)
            };
            if !written {
                continue;
            }
            // Distinct lines touched after this line's last access: the
            // line is evicted before end-of-trace iff capacity ≤ e.
            let e = (self.fen.prefix(self.tick) - self.fen.prefix(st.pos)) as u64;
            if maxd < e {
                // Dirty-evicted during the run for C in [maxd+1, e],
                // with no later access to emit it — fold it here.
                bump(&mut wb_lo, maxd as usize + 1);
                bump(&mut wb_hi, e as usize);
            }
            // Still dirty-resident at end for C > max(maxd, e): charged
            // as a flush write-back.
            bump(&mut flush, maxd.max(e) as usize + 1);
        }
        CapacityCurve {
            line_words: self.line_words as u64,
            word_accesses: self.word_accesses,
            line_touches: self.cold + self.repeats + self.dist.iter().sum::<u64>(),
            repeats: self.repeats,
            cold: self.cold,
            footprint_lines: self.lines.len() as u64,
            dist_cum: cumulate(self.dist.clone()),
            wb_lo_cum: cumulate(wb_lo),
            wb_hi_cum: cumulate(wb_hi),
            flush_cum: cumulate(flush),
        }
    }
}

/// Stack-simulated backing store: the `stack` backend's counterpart of
/// [`crate::SimMem`] — same kernels, same word stream, but the simulator
/// behind it answers every capacity at once.
pub struct StackMem {
    pub data: Vec<f64>,
    pub sim: StackSim,
}

impl StackMem {
    pub fn new(words: usize) -> Self {
        StackMem {
            data: vec![0.0; words],
            sim: StackSim::new(),
        }
    }

    pub fn from_vec(data: Vec<f64>) -> Self {
        StackMem {
            data,
            sim: StackSim::new(),
        }
    }
}

impl Mem for StackMem {
    #[inline]
    fn ld(&mut self, addr: usize) -> f64 {
        self.sim.read(addr);
        self.data[addr]
    }

    #[inline]
    fn st(&mut self, addr: usize, v: f64) {
        self.sim.write(addr);
        self.data[addr] = v;
    }

    #[inline]
    fn ld_run(&mut self, addr: usize, out: &mut [f64]) {
        self.sim.read_range(addr, out.len());
        out.copy_from_slice(&self.data[addr..addr + out.len()]);
    }

    #[inline]
    fn st_run(&mut self, addr: usize, src: &[f64]) {
        self.sim.write_range(addr, src.len());
        self.data[addr..addr + src.len()].copy_from_slice(src);
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn phase(&mut self, name: &'static str) {
        self.sim.phase(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::MemSim;

    /// Reference: run the same word trace through a flushed FA-LRU
    /// `MemSim` at `cap_words` and return
    /// (fills, victims_m, flush_victims_m, hits).
    fn reference(trace: &[(usize, bool)], cap_words: usize) -> (u64, u64, u64, u64) {
        let mut m = MemSim::single_level_lru(cap_words);
        for &(a, w) in trace {
            if w {
                m.write(a);
            } else {
                m.read(a);
            }
        }
        m.flush();
        let c = m.llc();
        (c.fills, c.victims_m, c.flush_victims_m, c.hits)
    }

    fn stack_of(trace: &[(usize, bool)]) -> StackSim {
        let mut s = StackSim::new();
        for &(a, w) in trace {
            if w {
                s.write(a);
            } else {
                s.read(a);
            }
        }
        s
    }

    fn assert_matches_reference(trace: &[(usize, bool)], caps_lines: &[usize]) {
        let curve = stack_of(trace).curve();
        for &c in caps_lines {
            let cap_words = c * 8;
            let p = curve.at(cap_words as u64);
            let (fills, victims_m, flush_m, hits) = reference(trace, cap_words);
            assert_eq!(p.fills, fills, "fills at {c} lines");
            assert_eq!(p.writebacks, victims_m, "victims_m at {c} lines");
            assert_eq!(p.flush_writebacks, flush_m, "flush at {c} lines");
            assert_eq!(p.hits, hits, "hits at {c} lines");
        }
    }

    #[test]
    fn read_only_stream_matches_every_capacity() {
        // Cyclic scan of 4 lines: the classic LRU pathology — capacities
        // 1..4 miss everything, capacity ≥ 4 misses only cold.
        let mut trace = Vec::new();
        for _ in 0..3 {
            for l in 0..4 {
                trace.push((l * 8, false));
            }
        }
        assert_matches_reference(&trace, &[1, 2, 3, 4, 5]);
        let curve = stack_of(&trace).curve();
        assert_eq!(curve.at(3 * 8).fills, 12, "thrashing below the cycle");
        assert_eq!(curve.at(4 * 8).fills, 4, "only cold at the cycle size");
    }

    #[test]
    fn interval_emission_pins_per_capacity_writeback_divergence() {
        // W0 R1 R2 R0 …: after the write, line 0 reaches distance 2. At
        // C=1 the dirty copy leaves at the first eviction; at C=2 it
        // survives R1 but not R2; at C=3 it is never evicted and flushes.
        let trace = [
            (0, true),
            (8, false),
            (16, false),
            (0, false),
            (8, false),
            (16, false),
        ];
        assert_matches_reference(&trace, &[1, 2, 3, 4]);
    }

    #[test]
    fn rewritten_line_emits_writebacks_at_multiple_trace_points() {
        // One line written, cycled out, re-read, re-written, cycled out
        // again: small capacities see two write-backs, large ones see
        // fewer — exactly what per-capacity simulation yields.
        let trace = [
            (0, true),
            (8, false),
            (16, false),
            (24, false),
            (0, true),
            (8, false),
            (16, false),
            (24, false),
            (0, false),
        ];
        assert_matches_reference(&trace, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn repeat_write_after_clean_read_redirties_the_line() {
        // The consecutive-repeat memo must not swallow the dirtying
        // effect of a repeat write (read 0 then write 0 back-to-back).
        let trace = [(0, false), (1, true), (8, false), (16, false), (0, false)];
        assert_matches_reference(&trace, &[1, 2, 3]);
    }

    #[test]
    fn range_api_equals_per_word_calls() {
        let mut a = StackSim::new();
        a.read_range(3, 18);
        a.write_range(5, 9);
        a.run(&[AccessRun::read(0, 24), AccessRun::write(40, 3)]);
        let mut b = StackSim::new();
        for w in 3..21 {
            b.read(w);
        }
        for w in 5..14 {
            b.write(w);
        }
        for w in 0..24 {
            b.read(w);
        }
        for w in 40..43 {
            b.write(w);
        }
        assert_eq!(a.curve(), b.curve());
        assert_eq!(a.word_accesses(), b.word_accesses());
    }

    #[test]
    fn empty_trace_yields_empty_curve() {
        let s = StackSim::new();
        let c = s.curve();
        assert_eq!(c.footprint_lines, 0);
        let p = c.at(64);
        assert_eq!((p.fills, p.writebacks, p.flush_writebacks), (0, 0, 0));
        assert_eq!(p.hits, 0);
    }

    #[test]
    fn curve_is_nondestructive_and_folds_later_state() {
        let mut s = StackSim::new();
        s.write(0);
        let c1 = s.curve();
        assert_eq!(c1.at(64).flush_writebacks, 1);
        // Keep going: cycle line 0 out at small capacities.
        s.read(8);
        s.read(16);
        let c2 = s.curve();
        assert_eq!(c2.at(8).writebacks, 1, "now evicted dirty during run");
        assert_eq!(c2.at(8).flush_writebacks, 0);
        assert_eq!(c2.at(64).flush_writebacks, 1, "still resident at C=8 lines");
    }

    #[test]
    fn stack_mem_drives_the_sim_and_the_data() {
        let mut m = StackMem::new(16);
        m.st(0, 2.5);
        assert_eq!(m.ld(0), 2.5);
        let mut buf = [0.0; 8];
        m.ld_run(8, &mut buf);
        m.st_run(8, &buf);
        m.phase("ignored");
        assert_eq!(m.sim.word_accesses(), 2 + 16);
        assert_eq!(m.sim.footprint_lines(), 2);
    }
}
