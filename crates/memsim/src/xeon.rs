//! Ready-made hierarchy configurations.
//!
//! The paper's measurements use an Intel Xeon 7560 ("Nehalem-EX"): 32 KB
//! L1, 256 KB L2, 24 MB L3, 64-byte lines, with an L3 replacement policy
//! believed to be a 3-bit clock approximation of LRU. Simulating the full
//! geometry at the paper's matrix sizes (4000×m×4000, m up to 32768) would
//! need ~10¹¹ simulated accesses, so the default configuration scales every
//! *capacity* down by [`SCALE`] = 64 while keeping the 8-word (64-byte)
//! line. Linear dimensions of workloads then scale by √64 = 8 and all the
//! "how many blocks fit in cache" ratios — which drive every effect in
//! Figures 2 and 5 — are preserved exactly:
//!
//! | quantity            | paper      | scaled (default) |
//! |---------------------|------------|------------------|
//! | L1 / L2 / L3 words  | 4 Ki / 32 Ki / 3 Mi | 64 / 512 / 48 Ki |
//! | matrix dim 4000     | 4000       | 500              |
//! | m sweep 128…32 Ki   | —          | 16…4096          |
//! | L3 block 1023 (3 blocks fit) | 1023 | 128         |
//! | L3 block 700 (5 blocks fit)  | 700  | 87          |

use crate::cache::CacheConfig;
use crate::hierarchy::MemSim;
use crate::policy::Policy;

/// Default capacity scale factor vs. the real Xeon 7560.
pub const SCALE: usize = 64;

/// Words per line (64-byte line of f64) — *not* scaled.
pub const LINE_WORDS: usize = 8;

/// Real Xeon 7560 capacities in words (f64).
pub const REAL_L1_WORDS: usize = 4 << 10; // 32 KB
pub const REAL_L2_WORDS: usize = 32 << 10; // 256 KB
pub const REAL_L3_WORDS: usize = 3 << 20; // 24 MB

/// Geometry for one simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct XeonGeometry {
    pub l1_words: usize,
    pub l2_words: usize,
    pub l3_words: usize,
    pub line_words: usize,
    pub policy: Policy,
}

impl XeonGeometry {
    /// Geometry for an engine-level [`wa_core::Scale`]: `Paper` is the
    /// reference ÷64 scaling; `Small` shrinks the L3 a further 4× (L1/L2
    /// are already at a practical floor of 8 / 64 lines) and workloads
    /// shrink linear dimensions a further 2× for fast sweeps.
    /// `wa_bench::scale::Scale::geometry` delegates here.
    pub fn for_scale(scale: wa_core::Scale, policy: Policy) -> Self {
        match scale {
            wa_core::Scale::Paper => XeonGeometry::scaled(64, policy),
            wa_core::Scale::Small => XeonGeometry {
                l1_words: 64,
                l2_words: 512,
                l3_words: 12 << 10,
                line_words: LINE_WORDS,
                policy,
            },
        }
    }

    /// Capacities divided by `scale`; panics unless each level stays a
    /// whole number of lines.
    pub fn scaled(scale: usize, policy: Policy) -> Self {
        let g = XeonGeometry {
            l1_words: REAL_L1_WORDS / scale,
            l2_words: REAL_L2_WORDS / scale,
            l3_words: REAL_L3_WORDS / scale,
            line_words: LINE_WORDS,
            policy,
        };
        assert!(g.l1_words.is_multiple_of(g.line_words));
        assert!(g.l2_words.is_multiple_of(g.line_words));
        assert!(g.l3_words.is_multiple_of(g.line_words));
        g
    }

    /// The default scaled geometry with the clock policy (closest to the
    /// measured machine).
    pub fn default_scaled() -> Self {
        XeonGeometry::scaled(SCALE, Policy::Clock3)
    }

    /// Build a 3-level simulator. Associativities: 4-way L1, 8-way L2,
    /// 16-way L3 (Nehalem-like, adjusted so every level divides evenly at
    /// any power-of-two scale).
    pub fn build(&self) -> MemSim {
        MemSim::new(&[
            CacheConfig {
                capacity_words: self.l1_words,
                line_words: self.line_words,
                ways: 4,
                policy: self.policy,
            },
            CacheConfig {
                capacity_words: self.l2_words,
                line_words: self.line_words,
                ways: 8,
                policy: self.policy,
            },
            CacheConfig {
                capacity_words: self.l3_words,
                line_words: self.line_words,
                ways: 16,
                policy: self.policy,
            },
        ])
    }

    /// Build an L3-only simulator (used when only LLC events matter and
    /// upper-level filtering is irrelevant to the counts under study).
    pub fn build_l3_only(&self) -> MemSim {
        MemSim::new(&[CacheConfig {
            capacity_words: self.l3_words,
            line_words: self.line_words,
            ways: 16,
            policy: self.policy,
        }])
    }

    /// Build a fully-associative, true-LRU L3-only simulator — the setting
    /// of Propositions 6.1 and 6.2.
    pub fn build_l3_fully_assoc_lru(&self) -> MemSim {
        MemSim::new(&[CacheConfig {
            capacity_words: self.l3_words,
            line_words: self.line_words,
            ways: 0,
            policy: Policy::Lru,
        }])
    }

    /// Scale a paper linear dimension (e.g. 4000) to this geometry:
    /// dimensions shrink by √(capacity scale).
    pub fn scale_dim(&self, paper_dim: usize) -> usize {
        let scale = REAL_L3_WORDS / self.l3_words;
        let root = (scale as f64).sqrt();
        assert!(
            (root - root.round()).abs() < 1e-9,
            "capacity scale must be a perfect square to scale dimensions"
        );
        (paper_dim as f64 / root).round() as usize
    }

    /// Largest block size `b` such that `k` blocks of `b×b` doubles fit in
    /// L3 (the paper picks L3 blocking sizes this way: 1023 ≈ 3 blocks,
    /// 793 ≈ 5 blocks on the real machine).
    pub fn l3_block_for(&self, k: usize) -> usize {
        ((self.l3_words / k) as f64).sqrt().floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scaled_capacities() {
        let g = XeonGeometry::default_scaled();
        assert_eq!(g.l1_words, 64);
        assert_eq!(g.l2_words, 512);
        assert_eq!(g.l3_words, 48 << 10);
    }

    #[test]
    fn scale_dim_matches_sqrt_rule() {
        let g = XeonGeometry::default_scaled();
        assert_eq!(g.scale_dim(4000), 500);
        assert_eq!(g.scale_dim(1024), 128);
    }

    #[test]
    fn block_sizing_reproduces_paper_ratios() {
        // Real machine: 3 blocks of 1023² fit in 24 MB; 5 blocks of 793².
        let real = XeonGeometry::scaled(1, Policy::Lru);
        assert_eq!(real.l3_block_for(3), 1024);
        assert_eq!(real.l3_block_for(5), 793);
        // Scaled machine keeps the same ratios at 1/8 linear size.
        let g = XeonGeometry::default_scaled();
        assert_eq!(g.l3_block_for(3), 128);
        assert_eq!(g.l3_block_for(5), 99);
    }

    #[test]
    fn builders_produce_expected_levels() {
        let g = XeonGeometry::default_scaled();
        let m3 = g.build();
        assert_eq!(m3.num_levels(), 3);
        let m1 = g.build_l3_only();
        assert_eq!(m1.num_levels(), 1);
        assert_eq!(m1.config(0).capacity_words, g.l3_words);
    }
}
