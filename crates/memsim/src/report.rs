//! Adapters projecting both measurement substrates into the uniform
//! [`RunReport`] shape.
//!
//! * [`explicit_report`] — an [`ExplicitHier`]'s per-boundary word counts
//!   and R2 local writes transfer directly: the explicit model *is* the
//!   refined model of the paper, so the projection is lossless.
//! * [`memsim_report`] — a [`MemSim`]'s per-level fill/victim counters are
//!   reinterpreted as boundary traffic: a fill of level `i` is a load
//!   across boundary `i` (slow→fast, one line message), a dirty victim of
//!   level `i` is a store across it, and the DRAM boundary uses the
//!   simulator's `dram_reads_lines`/`dram_writes_lines`. Call
//!   [`MemSim::flush`] first if end-of-run dirty state should be charged
//!   (the cross-model agreement tests do; the Figure 2 reproductions do
//!   not, matching the paper's counter methodology).
//!
//! * [`stack_report`] — a [`StackSim`]'s all-capacities projection: the
//!   report's single boundary carries the counters at the workload's own
//!   fast-memory capacity (identical to what a flushed single-level
//!   `simmed` run would report), and the full [`wa_core::CapacityCurve`]
//!   rides along in [`RunReport::curve`].
//!
//! The projections emit the *same* schema, which is what makes
//! explicit-vs-simulated cross-validation a `diff` of two reports instead
//! of a by-eye comparison of unlike tables.

use crate::explicit::ExplicitHier;
use crate::hierarchy::MemSim;
use crate::stack::StackSim;
use wa_core::report::RunReport;
use wa_core::traffic::BoundaryTraffic;

/// Fill `report` from an explicit-movement run: per-boundary traffic,
/// per-level writes (boundary loads/stores plus R2 local writes), flops,
/// and a capacity echo.
pub fn explicit_report(h: &ExplicitHier, report: RunReport) -> RunReport {
    let levels = h.num_levels();
    let local: Vec<u64> = (1..=levels).map(|l| h.local_writes(l)).collect();
    let mut r = report.with_boundaries(h.traffic(), &local);
    r.flops = h.flops();
    let caps: Vec<String> = (1..=levels)
        .map(|l| {
            let c = h.capacity(l);
            if c == u64::MAX {
                "inf".to_string()
            } else {
                c.to_string()
            }
        })
        .collect();
    r.config("levels", levels)
        .config("capacities_words", caps.join("/"))
}

/// Fill `report` from a cache-simulator run.
///
/// Boundary `i` (0-indexed) separates simulated level `i` (fast side)
/// from level `i+1`; the last boundary is LLC↔DRAM. Word counts are
/// line-granular: `words = lines × line_words`, `msgs = lines` (each line
/// transfer is one message — the block-transfer notion of the model).
pub fn memsim_report(sim: &MemSim, report: RunReport) -> RunReport {
    let n = sim.num_levels();
    let lw = sim.line_words() as u64;
    let mut bt = BoundaryTraffic::new(n + 1);
    for i in 0..n {
        let c = sim.counters(i);
        let b = bt.boundary_mut(i);
        // Fills of level i arrive from the slow side of boundary i.
        b.load_words = c.fills * lw;
        b.load_msgs = c.fills;
        // Dirty victims of level i are written back across boundary i;
        // flush()-drained dirty lines cross it too (flush_victims_m). At
        // the LLC use the DRAM tallies instead, which already include
        // flush traffic if the caller flushed.
        if i + 1 == n {
            b.load_words = sim.dram_reads_lines * lw;
            b.load_msgs = sim.dram_reads_lines;
            b.store_words = sim.dram_writes_lines * lw;
            b.store_msgs = sim.dram_writes_lines;
        } else {
            let wb = c.victims_m + c.flush_victims_m;
            b.store_words = wb * lw;
            b.store_msgs = wb;
        }
    }
    let mut r = report.with_boundaries(&bt, &[]);
    let llc = sim.llc();
    r = r
        .config("levels", n)
        .config("line_words", lw)
        .config(
            "capacities_words",
            (0..n)
                .map(|i| sim.config(i).capacity_words.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        )
        .config("llc_hits", llc.hits)
        .config("llc_misses", llc.misses)
        .config("llc_victims_m", llc.victims_m)
        .config("llc_victims_e", llc.victims_e)
        .config("llc_flush_victims_m", llc.flush_victims_m)
        .config("memo_hits", sim.memo_hits)
        .config("memo_misses", sim.memo_misses);
    if let Some(p) = sim.probe() {
        let phases = p.finalized(sim.snapshot());
        if let Some(h) = p.reuse() {
            r = r.config("reuse_hist", h.render());
        }
        if let Some(rec) = wa_core::obs::active() {
            // Close every counter track on the run's final totals and
            // hand the per-phase table to the recorder for `profile`.
            sim.emit_counter_tracks();
            rec.push_phase_rows(
                phases
                    .iter()
                    .map(|p| wa_core::obs::PhaseRow {
                        phase: p.name.clone(),
                        wall_ns: p.wall_ns,
                        accesses: p.accesses,
                        fills: p.fills.clone(),
                        writebacks: p.writebacks.clone(),
                        dram_reads: p.dram_reads,
                        dram_writes: p.dram_writes,
                        memo_hits: p.memo_hits,
                        memo_misses: p.memo_misses,
                    })
                    .collect(),
            );
        }
        r = r.note(format!("probe: {} phase(s) observed", phases.len()));
    }
    r
}

/// Fill `report` from a single-pass stack simulation, projecting the
/// boundary counters at `fast_words` (the capacity the workload's
/// `simmed` backend would simulate) and attaching the all-capacities
/// [`wa_core::CapacityCurve`]. Line counts match a *flushed* FA-LRU
/// [`MemSim::single_level_lru`] run of the same trace at `fast_words`,
/// so `stack` and `simmed` cells cross-check by construction.
pub fn stack_report(sim: &StackSim, fast_words: usize, report: RunReport) -> RunReport {
    let curve = sim.curve();
    let p = curve.at(fast_words as u64);
    let lw = sim.line_words() as u64;
    let mut bt = BoundaryTraffic::new(2);
    let b = bt.boundary_mut(0);
    b.load_words = p.fills * lw;
    b.load_msgs = p.fills;
    b.store_words = p.dram_writes_lines() * lw;
    b.store_msgs = p.dram_writes_lines();
    let mut r = report.with_boundaries(&bt, &[]);
    r = r
        .config("levels", 1)
        .config("line_words", lw)
        .config("capacities_words", fast_words)
        .config("llc_hits", p.hits)
        .config("llc_misses", p.misses)
        .config("llc_victims_m", p.writebacks)
        .config("llc_flush_victims_m", p.flush_writebacks)
        .config("footprint_lines", curve.footprint_lines)
        .config("cold_lines", curve.cold)
        .config("repeats", curve.repeats)
        .note(format!(
            "stack: single-pass Mattson projection over {} capacities (flushed semantics)",
            curve.default_ladder().len()
        ));
    r.curve = Some(curve);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::policy::Policy;
    use wa_core::engine::{BackendKind, Scale};

    fn blank(backend: BackendKind) -> RunReport {
        RunReport::new("t", backend, Scale::Small)
    }

    #[test]
    fn explicit_projection_is_lossless() {
        let mut h = ExplicitHier::two_level(100);
        h.load(0, 60);
        h.alloc(1, 10);
        h.store(0, 60);
        h.free(1, 70);
        h.flop(123);
        let r = explicit_report(&h, blank(BackendKind::Explicit));
        assert_eq!(r.boundaries.len(), 1);
        assert_eq!(r.boundaries[0].load_words, 60);
        assert_eq!(r.boundaries[0].store_words, 60);
        // L1 writes: 60 loaded + 10 local; slow level receives the store.
        assert_eq!(r.writes_per_level, vec![70, 60]);
        assert_eq!(r.flops, 123);
        assert_eq!(r.writes_to_slow(), 60);
    }

    #[test]
    fn memsim_projection_counts_lines_after_flush() {
        let cfg = CacheConfig {
            capacity_words: 64,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::two_level(cfg);
        // Write 16 lines through an 8-line cache: 8 victims during the
        // run, 8 more on flush.
        for a in (0..128).step_by(8) {
            sim.write(a);
        }
        sim.flush();
        let r = memsim_report(&sim, blank(BackendKind::Simmed));
        assert_eq!(r.boundaries.len(), 1);
        assert_eq!(r.boundaries[0].load_words, 16 * 8);
        assert_eq!(r.boundaries[0].store_words, 16 * 8);
        assert_eq!(r.writes_to_slow(), 128);
        // Config echo carries the raw counters, memo rates included.
        assert!(r.config.iter().any(|(k, v)| k == "llc_misses" && v == "16"));
        assert!(r
            .config
            .iter()
            .any(|(k, v)| k == "memo_misses" && v == "16"));
        assert!(r.config.iter().any(|(k, v)| k == "memo_hits" && v == "0"));
    }

    #[test]
    fn stack_report_boundary_equals_flushed_simmed_at_the_same_capacity() {
        use wa_core::AccessRun;
        let runs = [
            AccessRun::read(0, 128),
            AccessRun::write(0, 64),
            AccessRun::read(128, 64),
            AccessRun::write(32, 8),
        ];
        let mut sim = MemSim::single_level_lru(64);
        sim.run(&runs);
        sim.flush();
        let simmed = memsim_report(&sim, blank(BackendKind::Simmed));

        let mut st = crate::stack::StackSim::new();
        st.run(&runs);
        let stack = stack_report(&st, 64, blank(BackendKind::Stack));

        assert_eq!(stack.boundaries.len(), 1);
        assert_eq!(stack.boundaries[0], simmed.boundaries[0]);
        let curve = stack.curve.as_ref().expect("stack report carries a curve");
        assert_eq!(curve.footprint_lines, 24);
        // The curve is monotone: larger capacity, fewer fills.
        let f: Vec<u64> = curve
            .default_ladder()
            .iter()
            .map(|&c| curve.at(c).fills)
            .collect();
        assert!(
            f.windows(2).all(|w| w[1] <= w[0]),
            "fills not monotone: {f:?}"
        );
    }

    #[test]
    fn probe_phase_table_reaches_the_report_notes() {
        let mut sim = MemSim::single_level_lru(64);
        sim.attach_probe(true);
        sim.read_range(0, 32);
        sim.phase("tail");
        sim.write_range(0, 8);
        let r = memsim_report(&sim, blank(BackendKind::Simmed));
        assert!(r.notes.iter().any(|n| n.contains("phase(s) observed")));
        assert!(
            r.config
                .iter()
                .any(|(k, v)| k == "reuse_hist" && v.contains("cold=4")),
            "config: {:?}",
            r.config
        );
    }

    #[test]
    fn flush_charges_inner_boundaries_too() {
        // One dirty line left in L1 at the end: after flush() it crosses
        // both the L1/L2 boundary and the LLC/DRAM boundary.
        let cfg = |w: usize| CacheConfig {
            capacity_words: w,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::new(&[cfg(64), cfg(256)]);
        sim.write(0);
        sim.flush();
        let r = memsim_report(&sim, blank(BackendKind::Simmed));
        assert_eq!(r.boundaries[0].store_words, 8);
        assert_eq!(r.boundaries[1].store_words, 8);
        assert_eq!(r.writes_to_slow(), 8);
    }

    #[test]
    fn memsim_three_level_boundary_shape() {
        let cfg = |w: usize| CacheConfig {
            capacity_words: w,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::new(&[cfg(64), cfg(256), cfg(1024)]);
        for a in (0..4096).step_by(8) {
            sim.read(a);
        }
        let r = memsim_report(&sim, blank(BackendKind::Simmed));
        // 3 cache levels -> 3 boundaries (L1/L2, L2/L3, L3/DRAM).
        assert_eq!(r.boundaries.len(), 3);
        assert_eq!(r.boundaries[2].load_words, sim.dram_reads_lines * 8);
        assert_eq!(r.writes_per_level.len(), 4);
    }
}
