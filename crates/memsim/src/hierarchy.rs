//! Inclusive multi-level write-back hierarchy.
//!
//! Levels are ordered fastest first (`levels[0]` = L1, last = LLC). The
//! hierarchy is *inclusive* like the Nehalem-EX machine in the paper's
//! Section 6: every line resident in a faster level is also resident in all
//! slower levels, and evicting a line from a slower level back-invalidates
//! the faster copies (merging their dirtiness into the victim). Writes dirty
//! the topmost level only; dirtiness trickles down on eviction, exactly as
//! in hardware write-back caches.
//!
//! Counters per level mirror the paper's uncore events; at the last level,
//! `victims_m` is the number of obligatory DRAM write-backs
//! (`LLC_VICTIMS.M`), `victims_e` the clean forgotten lines
//! (`LLC_VICTIMS.E`), and `fills` the DRAM→LLC reads (`LLC_S_FILLS.E`).

use crate::cache::{CacheConfig, Level, LevelCounters, Touch, Victim};
use crate::probe::{Probe, Snapshot};
pub use wa_core::AccessRun;

/// Multi-level cache simulator. See the module docs for semantics.
///
/// ```
/// use memsim::{CacheConfig, MemSim, Policy};
/// let mut sim = MemSim::two_level(CacheConfig {
///     capacity_words: 64, line_words: 8, ways: 0, policy: Policy::Lru,
/// });
/// sim.write(0);           // miss, fill, dirty
/// sim.read(3);            // same line: hit
/// assert_eq!(sim.llc().hits, 1);
/// sim.flush();
/// assert_eq!(sim.dram_writes_lines, 1);
/// ```
pub struct MemSim {
    levels: Vec<Level>,
    line_words: usize,
    clock: u64,
    /// Two-entry line memo. `memo[0]` is the `(line, l1_slot)` of the most
    /// recent access: after any access that line is resident in L1 at
    /// `l1_slot` and is that level's MRU entry, so a consecutive access to
    /// the same line short-circuits to an L1 hit-count bump — no index
    /// lookup, no recency-list surgery. `memo[1]` is the previous
    /// *distinct* line: ping-pong patterns (fft's bit-reversal, nbody's
    /// pairwise sweep) alternate between two lines, so a `memo[1]` match
    /// skips the index lookup and the multi-level walk but still performs
    /// the full L1 recency update ([`Level::rehit`]) — and, because walks
    /// since the entry was recorded may have evicted the line or reused
    /// the slot, the entry is revalidated against the L1 tag array first
    /// ([`Level::slot_holds`]). Entries always name distinct lines.
    /// Invalidated by [`MemSim::flush`] (the only non-access mutation).
    memo: [Option<(u64, usize)>; 2],
    /// When false, every word takes the full multi-level walk (the
    /// pre-memo reference behavior). Exists so the property tests can
    /// compare the fast path against the reference on the same trace.
    fast_path: bool,
    /// Lines read from DRAM (= fills of the last level).
    pub dram_reads_lines: u64,
    /// Lines written back to DRAM (dirty LLC victims; includes flush if
    /// [`MemSim::flush`] is called).
    pub dram_writes_lines: u64,
    /// Accesses served by the last-line memo (the PR-4 fast path),
    /// including the bulk repeat-hits of `read_range`/`write_range`.
    pub memo_hits: u64,
    /// Accesses that took the full multi-level walk.
    pub memo_misses: u64,
    /// Optional per-phase observer (attached automatically by the
    /// [`MemSim::single_level_lru`]/[`MemSim::stacked_lru`] constructors
    /// when a [`wa_core::obs`] recorder is installed).
    probe: Option<Box<Probe>>,
    /// Cached `probe.has_reuse()` so the per-access hot path pays one
    /// predictable bool test, not an `Option` chain.
    probe_reuse: bool,
    /// Phase marks seen; used to throttle trace counter-track emission.
    phase_marks: u64,
    /// Cancel token captured from the constructing thread (the engine's
    /// cell worker installs one per attempt); `None` outside an engine
    /// dispatch.
    cancel_token: Option<wa_core::CancelToken>,
    /// Clock value at which the token is next polled. `u64::MAX` when no
    /// token is installed, so the hot path pays one predictable compare.
    cancel_check_at: u64,
}

impl MemSim {
    /// Build a hierarchy from fastest to slowest. All levels must share the
    /// line size and capacities must be strictly increasing (inclusivity).
    pub fn new(cfgs: &[CacheConfig]) -> Self {
        assert!(!cfgs.is_empty(), "need at least one cache level");
        let line_words = cfgs[0].line_words;
        for w in cfgs.windows(2) {
            assert_eq!(
                w[0].line_words, w[1].line_words,
                "all levels must share a line size"
            );
            assert!(
                w[0].capacity_words < w[1].capacity_words,
                "capacities must increase toward the LLC (inclusive hierarchy)"
            );
        }
        MemSim {
            levels: cfgs.iter().map(|c| Level::new(*c)).collect(),
            line_words,
            clock: 0,
            memo: [None, None],
            fast_path: true,
            dram_reads_lines: 0,
            dram_writes_lines: 0,
            memo_hits: 0,
            memo_misses: 0,
            probe: None,
            probe_reuse: false,
            phase_marks: 0,
            cancel_token: wa_core::cancel::current(),
            cancel_check_at: 0,
        }
        .with_cancel_schedule()
    }

    /// Initialize the cancellation polling schedule after construction:
    /// first poll after one check interval, or never if no token is
    /// installed on this thread.
    fn with_cancel_schedule(mut self) -> Self {
        self.cancel_check_at = if self.cancel_token.is_some() {
            wa_core::cancel::CHECK_INTERVAL
        } else {
            u64::MAX
        };
        self
    }

    /// Poll the captured cancel token (the cold branch of the per-access
    /// check) and unwind with the current clock if it has fired.
    #[cold]
    fn cancel_checkpoint(&mut self) {
        self.cancel_check_at = self.clock + wa_core::cancel::CHECK_INTERVAL;
        if let Some(t) = &self.cancel_token {
            if t.is_cancelled() {
                let reason = t.reason().unwrap_or(wa_core::CancelReason::Deadline);
                wa_core::cancel::raise(self.clock, reason);
            }
        }
    }

    /// Convenience: a single-level (cache + DRAM) simulator, the two-level
    /// model of Sections 2–5.
    pub fn two_level(cfg: CacheConfig) -> Self {
        MemSim::new(&[cfg])
    }

    /// Convenience: a single fully-associative true-LRU cache of `words`
    /// words (8-word lines) over DRAM — the configuration every engine
    /// `simmed` backend defaults to. Centralized here so the workload
    /// crates cannot drift apart on line size or policy.
    pub fn single_level_lru(words: usize) -> Self {
        MemSim::stacked_lru(&[words])
    }

    /// Convenience: a stack of fully-associative true-LRU levels
    /// ([`crate::LINE_WORDS`]-word lines) with the given capacities,
    /// fastest first — the multi-level hierarchies the depth-aware
    /// `simmed` backends build. Centralized like
    /// [`MemSim::single_level_lru`] so the workload crates share one
    /// line size and policy.
    pub fn stacked_lru(caps_words: &[usize]) -> Self {
        let cfgs: Vec<CacheConfig> = caps_words
            .iter()
            .map(|&w| CacheConfig {
                capacity_words: w,
                line_words: crate::xeon::LINE_WORDS,
                ways: 0,
                policy: crate::policy::Policy::Lru,
            })
            .collect();
        let mut sim = MemSim::new(&cfgs);
        // These two constructors are the funnel every engine `simmed`
        // backend builds through, so they are also the observability
        // attach point: tracing/profiling needs no workload signature
        // changes, and with no recorder installed the cost is one
        // atomic load per simulator construction.
        if wa_core::obs::is_active() {
            sim.attach_probe(wa_core::obs::reuse_requested());
        }
        sim
    }

    /// Attach a per-phase [`Probe`] (optionally with the reuse-distance
    /// histogram), replacing any existing one.
    pub fn attach_probe(&mut self, reuse: bool) {
        let mut p = Probe::new(self.levels.len());
        if reuse {
            p = p.with_reuse();
        }
        p.reset_start(self.snapshot());
        self.probe = Some(Box::new(p));
        self.probe_reuse = reuse;
    }

    /// The attached probe, if any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_deref()
    }

    /// Cumulative counter state right now (what [`Probe`] deltas are
    /// computed from).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            accesses: self.clock,
            counters: self.levels.iter().map(|l| l.counters).collect(),
            dram_reads: self.dram_reads_lines,
            dram_writes: self.dram_writes_lines,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
        }
    }

    /// Mark a phase boundary: counter deltas and wall time from here on
    /// are attributed to `name`. No-op without a probe (one branch), so
    /// kernels can mark phases unconditionally in hot loops.
    pub fn phase(&mut self, name: &str) {
        if self.probe.is_none() {
            return;
        }
        let snap = self.snapshot();
        // Emit counter-track samples into the trace at phase boundaries,
        // throttled by mark count (kernels mark thousands of times;
        // count-based throttling keeps traces small *and* deterministic).
        self.phase_marks += 1;
        if self.phase_marks % 64 == 1 {
            self.emit_counter_tracks();
        }
        self.probe.as_mut().unwrap().mark(name, snap);
    }

    /// Push one cumulative sample per counter track (per-level fills and
    /// write-backs, DRAM reads/writes, memo hit/miss) to the installed
    /// recorder, if any.
    pub(crate) fn emit_counter_tracks(&self) {
        let Some(rec) = wa_core::obs::active() else {
            return;
        };
        for (i, l) in self.levels.iter().enumerate() {
            let c = l.counters;
            rec.counter(
                &format!("memsim L{}", i + 1),
                &[
                    ("fills", c.fills),
                    ("writebacks", c.victims_m + c.flush_victims_m),
                ],
            );
        }
        rec.counter(
            "memsim DRAM",
            &[
                ("read_lines", self.dram_reads_lines),
                ("write_lines", self.dram_writes_lines),
            ],
        );
        rec.counter(
            "memsim memo",
            &[("hits", self.memo_hits), ("misses", self.memo_misses)],
        );
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Counters of level `i` (0 = L1 ... last = LLC).
    pub fn counters(&self, i: usize) -> LevelCounters {
        self.levels[i].counters
    }

    /// Counters of the last (largest) level — the one the paper plots.
    pub fn llc(&self) -> LevelCounters {
        self.levels.last().unwrap().counters
    }

    /// Record a read of word address `addr`.
    #[inline]
    pub fn read(&mut self, addr: usize) {
        self.access(addr as u64, false);
    }

    /// Record a write of word address `addr`.
    #[inline]
    pub fn write(&mut self, addr: usize) {
        self.access(addr as u64, true);
    }

    /// Record a sequential scan of `[addr, addr + words)`.
    ///
    /// Line-granular: the span is decomposed into its line intervals and
    /// each line takes one full hierarchy walk; the remaining words of the
    /// interval are L1 repeat-hits and are counted in O(1) per line.
    /// Counters are byte-identical to the per-word loop
    /// `for a in addr..addr+words { self.read(a) }` (property-tested in
    /// `tests/range_equiv.rs`).
    pub fn read_range(&mut self, addr: usize, words: usize) {
        self.range_access(addr, words, false);
    }

    /// Record sequential writes over `[addr, addr + words)`. Line-granular
    /// like [`MemSim::read_range`]; only lines actually overlapped by the
    /// span are touched (and dirtied) — partial first/last lines do not
    /// spill onto their neighbors.
    pub fn write_range(&mut self, addr: usize, words: usize) {
        self.range_access(addr, words, true);
    }

    /// Replay a batch of access runs (the bulk API kernels drive).
    pub fn run(&mut self, runs: &[AccessRun]) {
        for r in runs {
            self.range_access(r.addr, r.words, r.is_write);
        }
    }

    fn range_access(&mut self, addr: usize, words: usize, is_write: bool) {
        if !self.fast_path {
            for a in addr..addr + words {
                self.access(a as u64, is_write);
            }
            return;
        }
        let lw = self.line_words;
        let end = addr + words;
        let mut a = addr;
        while a < end {
            let line_end = (a / lw + 1) * lw;
            let in_line = line_end.min(end) - a;
            // First word of the line interval: full walk (or memo hit).
            self.access(a as u64, is_write);
            if in_line > 1 {
                // The remaining words of the interval are consecutive
                // same-line accesses: L1 repeat-hits, counted in bulk.
                let (_, slot) = self.memo[0].expect("access() always sets the memo");
                self.clock += (in_line - 1) as u64;
                self.levels[0].fast_hits(slot, (in_line - 1) as u64, is_write);
                self.memo_hits += (in_line - 1) as u64;
                if self.probe_reuse {
                    if let Some(h) = self.probe.as_mut().and_then(|p| p.reuse_mut()) {
                        h.record_repeats((in_line - 1) as u64);
                    }
                }
            }
            a = line_end;
        }
    }

    /// Disable the line memo and the line-granular range decomposition,
    /// forcing the reference per-word walk. Used by the equivalence
    /// property tests; simulation results must not depend on this switch.
    pub fn disable_fast_path(&mut self) {
        self.fast_path = false;
        self.memo = [None, None];
    }

    fn access(&mut self, addr: u64, is_write: bool) {
        self.clock += 1;
        if self.clock >= self.cancel_check_at {
            self.cancel_checkpoint();
        }
        let line = addr / self.line_words as u64;

        if self.fast_path {
            // memo[0]: the line of the immediately preceding access is
            // resident and MRU in L1 — a repeat touch only bumps the hit
            // counter (and dirtiness); replacement state cannot change.
            if let Some((memo_line, slot)) = self.memo[0] {
                if memo_line == line {
                    self.levels[0].fast_hits(slot, 1, is_write);
                    self.memo_hits += 1;
                    if self.probe_reuse {
                        if let Some(h) = self.probe.as_mut().and_then(|p| p.reuse_mut()) {
                            h.record_repeats(1);
                        }
                    }
                    return;
                }
            }
            // memo[1]: the previous distinct line. If its slot still
            // holds it (walks since may have evicted it), this is an L1
            // hit that skips only the index lookup and the level walk —
            // the recency update is the real one, since the line is not
            // MRU. The reuse histogram must see it as a full touch (it
            // is not a distance-0 repeat; skipping would leave the
            // line's Fenwick marker stale and corrupt later distances).
            if let Some((memo_line, slot)) = self.memo[1] {
                if memo_line == line && self.levels[0].slot_holds(slot, line) {
                    self.levels[0].rehit(slot, self.clock, is_write);
                    self.memo_hits += 1;
                    if self.probe_reuse {
                        if let Some(h) = self.probe.as_mut().and_then(|p| p.reuse_mut()) {
                            h.touch(line);
                        }
                    }
                    self.memo.swap(0, 1);
                    return;
                }
            }
        }
        self.memo_misses += 1;
        if self.probe_reuse {
            if let Some(h) = self.probe.as_mut().and_then(|p| p.reuse_mut()) {
                h.touch(line);
            }
        }

        let n = self.levels.len();
        // Walk down until a hit; dirtiness is tracked at L1 only.
        let mut hit = n; // n = missed everywhere (DRAM)
        let mut l1_slot = usize::MAX;
        for i in 0..n {
            match self.levels[i].touch(line, self.clock, is_write && i == 0) {
                Touch::Hit(slot) => {
                    hit = i;
                    if i == 0 {
                        l1_slot = slot;
                    }
                    break;
                }
                Touch::Miss => {}
            }
        }
        if hit == n {
            self.dram_reads_lines += 1;
        }

        // Fill the line into every level above the hit, slowest first so
        // inclusion holds when victim handling back-invalidates.
        for i in (0..hit.min(n)).rev() {
            let dirty_here = is_write && i == 0;
            let (slot, victim) = self.levels[i].insert(line, self.clock, dirty_here);
            if i == 0 {
                l1_slot = slot;
            }
            if let Some(v) = victim {
                self.handle_victim(i, v);
            }
        }
        // The accessed line now sits in L1 at `l1_slot` as the MRU entry;
        // the previous front entry is carried (revalidated on use — this
        // walk's evictions may have displaced it).
        self.memo[1] = self.memo[0];
        self.memo[0] = Some((line, l1_slot));
    }

    /// A victim was displaced from level `i`: back-invalidate faster
    /// copies (inclusion), merge dirtiness, write back to `i+1` or DRAM.
    fn handle_victim(&mut self, i: usize, v: Victim) {
        let mut dirty = v.dirty;
        for j in 0..i {
            if let Some(upper_dirty) = self.levels[j].invalidate(v.line) {
                dirty |= upper_dirty;
            }
        }
        self.levels[i].count_victim(dirty);
        if dirty {
            if i + 1 < self.levels.len() {
                // Present below by inclusion.
                let present = self.levels[i + 1].mark_dirty(v.line);
                debug_assert!(present, "inclusion violated: victim absent below");
            } else {
                self.dram_writes_lines += 1;
            }
        }
    }

    /// Drain all levels, writing dirty lines to DRAM. Returns the number of
    /// lines flushed to DRAM. Flush-caused dirty evictions are recorded in
    /// every drained level's `flush_victims_m` (they cross that level's
    /// boundary on the way down), *not* in `victims_m`, so the during-run
    /// counters remain comparable to the paper's (cold-start, no-flush)
    /// runs.
    pub fn flush(&mut self) -> u64 {
        // Attribute the drain's write-backs to their own phase, not to
        // whatever kernel phase happened to be current.
        self.phase("(flush)");
        let n = self.levels.len();
        let mut flushed = 0;
        // Residency is about to change wholesale; the line memo would
        // dangle.
        self.memo = [None, None];
        // Top-down: push dirtiness toward the LLC.
        for i in 0..n {
            let drained = self.levels[i].drain();
            for (line, dirty) in drained {
                if dirty {
                    self.levels[i].counters.flush_victims_m += 1;
                    if i + 1 < n {
                        self.levels[i + 1].mark_dirty(line);
                    } else {
                        self.dram_writes_lines += 1;
                        flushed += 1;
                    }
                }
            }
        }
        flushed
    }

    /// Write the dirty lines of `[addr, addr + words)` down to the backing
    /// store without evicting them — the clwb/persist primitive. Each
    /// dirty line is charged as a `flush_victims_m` crossing at every
    /// level it passes on the way down plus one `dram_writes_lines`, the
    /// same attribution `flush` uses; clean or absent lines cost nothing,
    /// and residency, recency, and the line memo all survive (a later
    /// write re-dirties the cached copy). Returns lines written to the
    /// backing store.
    ///
    /// This is what a distributed rank's "write block to NVM" maps to:
    /// the block stays hot in cache but its bytes now live in slow memory.
    pub fn writeback_range(&mut self, addr: usize, words: usize) -> u64 {
        if words == 0 {
            return 0;
        }
        let lw = self.line_words as u64;
        let first = addr as u64 / lw;
        let last = (addr + words - 1) as u64 / lw;
        let n = self.levels.len();
        let mut flushed = 0;
        for line in first..=last {
            // Carry dirtiness downward: a line dirty in a fast level has
            // (by inclusion) a stale copy in every slower level, so the
            // write-back crosses each of those boundaries too.
            let mut dirty = false;
            for i in 0..n {
                if let Some(was_dirty) = self.levels[i].clean(line) {
                    dirty |= was_dirty;
                }
                if dirty {
                    self.levels[i].counters.flush_victims_m += 1;
                }
            }
            if dirty {
                self.dram_writes_lines += 1;
                flushed += 1;
            }
        }
        flushed
    }

    /// Total resident lines at level `i` (diagnostics).
    pub fn resident_lines(&self, i: usize) -> usize {
        self.levels[i].resident_lines()
    }

    /// Is the line containing word `addr` resident at level `i`
    /// (diagnostics)?
    pub fn contains(&self, i: usize, addr: usize) -> bool {
        self.levels[i].contains(addr as u64 / self.line_words as u64)
    }

    /// The configuration of level `i`.
    pub fn config(&self, i: usize) -> CacheConfig {
        *self.levels[i].cfg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn cfg(words: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            capacity_words: words,
            line_words: 8,
            ways,
            policy: Policy::Lru,
        }
    }

    #[test]
    fn read_miss_fills_all_levels() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.read(0);
        assert_eq!(m.counters(0).misses, 1);
        assert_eq!(m.counters(1).misses, 1);
        assert_eq!(m.counters(0).fills, 1);
        assert_eq!(m.counters(1).fills, 1);
        assert_eq!(m.dram_reads_lines, 1);
        // Second read of the same line hits L1; no LLC traffic.
        m.read(3);
        assert_eq!(m.counters(0).hits, 1);
        assert_eq!(m.counters(1).hits, 0);
    }

    #[test]
    fn write_dirties_topmost_only_and_flush_reaches_dram() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.write(5);
        assert_eq!(m.dram_writes_lines, 0);
        let flushed = m.flush();
        assert_eq!(flushed, 1);
        assert_eq!(m.dram_writes_lines, 1);
        assert_eq!(m.llc().flush_victims_m, 1);
        assert_eq!(m.llc().victims_m, 0, "flush must not pollute victims_m");
    }

    #[test]
    fn dirty_line_written_back_on_capacity_eviction() {
        // Single-level cache of 2 lines, LRU.
        let mut m = MemSim::two_level(cfg(16, 0));
        m.write(0); // line 0 dirty
        m.read(8); // line 1
        m.read(16); // line 2 -> evicts line 0 (LRU), dirty
        assert_eq!(m.llc().victims_m, 1);
        assert_eq!(m.dram_writes_lines, 1);
        m.read(24); // line 3 -> evicts line 1, clean
        assert_eq!(m.llc().victims_e, 1);
        assert_eq!(m.dram_writes_lines, 1);
    }

    #[test]
    fn writeback_range_persists_dirty_lines_without_evicting() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.write_range(0, 16); // lines 0 and 1 dirty in L1
        assert_eq!(m.writeback_range(0, 16), 2);
        assert_eq!(m.dram_writes_lines, 2);
        // Attribution matches flush: one crossing per level per line.
        assert_eq!(m.counters(0).flush_victims_m, 2);
        assert_eq!(m.counters(1).flush_victims_m, 2);
        // Still resident and clean: re-reading is a pure hit, and a full
        // flush now writes nothing.
        assert!(m.contains(0, 0) && m.contains(0, 8));
        m.read(0);
        assert_eq!(m.counters(0).fills, 2, "writeback must not evict");
        assert_eq!(m.flush(), 0);
        assert_eq!(m.dram_writes_lines, 2);
    }

    #[test]
    fn writeback_range_ignores_clean_and_absent_lines() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.read_range(0, 8); // line 0 resident, clean
        assert_eq!(m.writeback_range(0, 32), 0); // lines 1-3 absent
        assert_eq!(m.dram_writes_lines, 0);
        assert_eq!(m.counters(0).flush_victims_m, 0);
    }

    #[test]
    fn rewrite_after_writeback_is_charged_again() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.write_range(0, 8);
        assert_eq!(m.writeback_range(0, 8), 1);
        assert_eq!(m.writeback_range(0, 8), 0, "already clean");
        // The memo fast path must re-dirty the cleaned resident line.
        m.write_range(0, 8);
        assert_eq!(m.writeback_range(0, 8), 1);
        assert_eq!(m.dram_writes_lines, 2);
    }

    #[test]
    fn writeback_of_line_dirty_only_in_l1_crosses_both_boundaries() {
        let mut m = MemSim::new(&[cfg(64, 0), cfg(256, 0)]);
        m.write(3); // dirty in L1, clean (by inclusion) in L2
        assert_eq!(m.writeback_range(0, 8), 1);
        assert_eq!(m.counters(0).flush_victims_m, 1);
        assert_eq!(m.counters(1).flush_victims_m, 1);
        assert_eq!(m.dram_writes_lines, 1);
    }

    #[test]
    fn llc_eviction_back_invalidates_and_merges_dirtiness() {
        // L1: 1 line. L2: 2 lines. Write line 0 (dirty in L1, clean in L2).
        let mut m = MemSim::new(&[cfg(8, 0), cfg(16, 0)]);
        m.write(0); // line 0: dirty in L1 only
        m.read(8); // line 1: evicts line 0 from L1 -> L2 copy goes dirty
        m.read(16); // line 2: evicts line 0 from L2 (LRU) -> DRAM write
        assert_eq!(m.dram_writes_lines, 1);
        assert_eq!(m.llc().victims_m, 1);
    }

    #[test]
    fn llc_eviction_with_dirtiness_still_in_l1_counts_modified() {
        // L1 hits do not refresh the LLC's recency, so the LLC can evict a
        // line that is still dirty in L1: inclusion back-invalidates the L1
        // copy and the victim must be classified M.
        let mut m = MemSim::new(&[cfg(16, 0), cfg(24, 0)]); // 2-line L1, 3-line L2
        m.write(0); // line 0 dirty in L1, clean in L2
        m.read(8); // line 1 in both
        m.read(0); // L1 hit keeps line 0 hot in L1 *only*
        m.read(16); // line 2: L1 evicts line 1 (clean); L2 now full
        m.read(24); // line 3: L2 evicts its LRU = line 0, still dirty in L1
        assert_eq!(m.dram_writes_lines, 1);
        assert_eq!(m.llc().victims_m, 1);
        // And the L1 copy must be gone (back-invalidated).
        m.read(0); // must miss everywhere now
        assert_eq!(m.dram_reads_lines, 5);
    }

    #[test]
    fn streaming_reads_count_one_fill_per_line() {
        let mut m = MemSim::two_level(cfg(64, 0));
        m.read_range(0, 64); // 8 lines
        assert_eq!(m.llc().fills, 8);
        assert_eq!(m.llc().hits, 56);
        assert_eq!(m.dram_reads_lines, 8);
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let mut m = MemSim::two_level(cfg(128, 0));
        for _ in 0..10 {
            m.read_range(0, 128);
        }
        assert_eq!(m.llc().victims(), 0);
        assert_eq!(m.llc().fills, 16);
    }

    #[test]
    fn write_only_stream_produces_equal_writebacks_after_flush() {
        let mut m = MemSim::two_level(cfg(64, 0));
        m.write_range(0, 512); // 64 lines through an 8-line cache
        let during = m.llc().victims_m;
        m.flush();
        assert_eq!(during + m.llc().flush_victims_m, 64);
        assert_eq!(m.dram_writes_lines, 64);
    }

    #[test]
    fn write_range_straddling_a_clean_resident_line_dirties_only_touched_lines() {
        // Regression: a span covering the tail of line 0, all of line 1,
        // and the head of line 2 — with all three lines already resident
        // *clean* — must dirty exactly those three lines and nothing else,
        // and partial coverage must not skip the partially-touched lines.
        let mut m = MemSim::two_level(cfg(64, 0));
        m.read_range(0, 32); // lines 0..3 resident clean
        assert_eq!(m.llc().fills, 4);
        m.write_range(5, 14); // words 5..19: tail of L0, L1, head of L2
        assert_eq!(m.llc().fills, 4, "no new fills: all lines were resident");
        assert_eq!(m.llc().hits, 28 + 14);
        m.flush();
        assert_eq!(
            m.llc().flush_victims_m,
            3,
            "exactly lines 0,1,2 dirty — not line 3, not rounded-out neighbors"
        );
        assert_eq!(m.dram_writes_lines, 3);
    }

    #[test]
    fn range_counters_match_word_loop_exactly() {
        // Spot check of the property the proptest suite covers broadly:
        // read_range/write_range must be counter-identical to the word
        // loop, including partial first/last lines and the DRAM tallies.
        let spans = [(3usize, 18usize), (21, 1), (8, 16), (0, 7), (30, 11)];
        let mut fast = MemSim::two_level(cfg(32, 0));
        let mut slow = MemSim::two_level(cfg(32, 0));
        slow.disable_fast_path();
        for (i, &(addr, words)) in spans.iter().enumerate() {
            let w = i % 2 == 0;
            if w {
                fast.write_range(addr, words);
            } else {
                fast.read_range(addr, words);
            }
            for a in addr..addr + words {
                if w {
                    slow.write(a);
                } else {
                    slow.read(a);
                }
            }
        }
        assert_eq!(fast.llc(), slow.llc());
        assert_eq!(fast.dram_reads_lines, slow.dram_reads_lines);
        assert_eq!(fast.dram_writes_lines, slow.dram_writes_lines);
    }

    #[test]
    fn bulk_run_equals_sequential_ranges() {
        let runs = [
            AccessRun::read(0, 24),
            AccessRun::write(8, 8),
            AccessRun::read(40, 3),
            AccessRun::write(0, 0),
        ];
        let mut a = MemSim::two_level(cfg(32, 0));
        a.run(&runs);
        let mut b = MemSim::two_level(cfg(32, 0));
        for r in &runs {
            if r.is_write {
                b.write_range(r.addr, r.words);
            } else {
                b.read_range(r.addr, r.words);
            }
        }
        assert_eq!(a.llc(), b.llc());
    }

    #[test]
    fn empty_run_batches_and_zero_length_ranges_touch_nothing() {
        let mut m = MemSim::two_level(cfg(64, 0));
        m.run(&[]);
        m.read_range(40, 0);
        m.write_range(0, 0);
        m.run(&[AccessRun::read(0, 0), AccessRun::write(8, 0)]);
        assert_eq!(m.llc().hits + m.llc().misses, 0, "no accesses recorded");
        assert_eq!(m.dram_reads_lines, 0);
        assert_eq!(m.dram_writes_lines, 0);
        assert_eq!(m.flush(), 0, "nothing resident, nothing dirty");
        // The reference (fast-path-disabled) walk agrees.
        let mut r = MemSim::two_level(cfg(64, 0));
        r.disable_fast_path();
        r.run(&[]);
        r.write_range(5, 0);
        assert_eq!(r.llc(), m.llc());
    }

    #[test]
    fn memo_fast_path_survives_interleaved_lines_and_flush() {
        // Alternate between two lines (memo invalidated every access),
        // then hammer one line (memo active): counters must match the
        // reference walk either way.
        let mut fast = MemSim::new(&[cfg(16, 2), cfg(64, 0)]);
        let mut refr = MemSim::new(&[cfg(16, 2), cfg(64, 0)]);
        refr.disable_fast_path();
        for m in [&mut fast, &mut refr] {
            for _ in 0..4 {
                m.read(0);
                m.write(9);
            }
            for _ in 0..16 {
                m.write(2);
            }
            m.flush();
            m.read(2); // post-flush: must miss (memo cleared)
        }
        for i in 0..2 {
            assert_eq!(fast.counters(i), refr.counters(i), "level {i}");
        }
        assert_eq!(fast.dram_reads_lines, refr.dram_reads_lines);
        assert_eq!(fast.dram_writes_lines, refr.dram_writes_lines);
    }

    #[test]
    fn memo_counters_pin_a_known_access_pattern() {
        // read_range(0, 16) over 8-word lines: 2 lines, so 2 full walks
        // (one per line boundary) and 14 bulk repeat-hits.
        let mut m = MemSim::single_level_lru(64);
        m.read_range(0, 16);
        assert_eq!(m.memo_misses, 2);
        assert_eq!(m.memo_hits, 14);
        // Re-reading the first word: the last access ended on line 1, but
        // line 0 is the second memo entry — a memo[1] hit, no walk.
        m.read(0);
        assert_eq!(m.memo_misses, 2);
        assert_eq!(m.memo_hits, 15);
        // Hammering the same word memo[0]-hits every time.
        for _ in 0..5 {
            m.read(0);
        }
        assert_eq!(m.memo_hits, 20);
        assert_eq!(m.memo_misses, 2);
        // Flush invalidates both memo entries: the next access walks.
        m.flush();
        m.read(0);
        assert_eq!(m.memo_misses, 3);
        // Every access is either a memo hit or a walk.
        assert_eq!(m.memo_hits + m.memo_misses, 16 + 1 + 5 + 1);
    }

    #[test]
    fn two_entry_memo_catches_ping_pong_and_matches_reference() {
        // Strict A/B alternation never hits a 1-entry memo; the 2-entry
        // memo serves every access after the first two without a walk,
        // and the counters must still match the reference walk exactly
        // (the memo[1] path does a real recency update).
        let mut fast = MemSim::single_level_lru(64);
        let mut refr = MemSim::single_level_lru(64);
        refr.disable_fast_path();
        for m in [&mut fast, &mut refr] {
            for _ in 0..8 {
                m.read(0); // line 0
                m.write(8); // line 1
            }
            m.flush();
        }
        assert_eq!(fast.llc(), refr.llc());
        assert_eq!(fast.dram_writes_lines, refr.dram_writes_lines);
        assert_eq!(fast.memo_misses, 2, "only the two cold accesses walk");
        assert_eq!(fast.memo_hits, 14);
    }

    #[test]
    fn stale_memo_entry_is_revalidated_after_eviction() {
        // 1-line cache: every distinct-line access evicts the previous
        // line, so the carried memo[1] entry always points at a reused
        // slot. The tag revalidation must reject it and take the walk —
        // counters must match the reference.
        let mut fast = MemSim::single_level_lru(8);
        let mut refr = MemSim::single_level_lru(8);
        refr.disable_fast_path();
        for m in [&mut fast, &mut refr] {
            for _ in 0..4 {
                m.write(0); // line 0 evicts line 1
                m.read(8); // line 1 evicts line 0
            }
            m.flush();
        }
        assert_eq!(fast.llc(), refr.llc());
        assert_eq!(fast.dram_writes_lines, refr.dram_writes_lines);
        assert_eq!(fast.memo_hits, 0, "every memo[1] candidate was evicted");
    }

    #[test]
    fn attached_probe_attributes_phases_and_reuse_through_the_sim() {
        let mut m = MemSim::single_level_lru(64);
        m.attach_probe(true);
        m.read_range(0, 16); // (init): 16 accesses, 2 fills
        m.phase("writes");
        m.write_range(0, 8); // line 0 still resident: no fill, gets dirty
        m.flush(); // "(flush)" phase owns the write-back
        let rows = m.probe().unwrap().finalized(m.snapshot());
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("(init)").accesses, 16);
        assert_eq!(get("(init)").fills, vec![2]);
        assert_eq!(get("(init)").dram_reads, 2);
        assert_eq!(get("writes").accesses, 8);
        assert_eq!(get("writes").fills, vec![0]);
        assert_eq!(get("writes").dram_writes, 0, "dirty line still cached");
        // The drain's write-back is attributed to the "(flush)" phase.
        assert_eq!(get("(flush)").accesses, 0);
        assert_eq!(get("(flush)").dram_writes, 1);
        assert_eq!(get("(flush)").writebacks, vec![1]);
        assert_eq!(m.dram_writes_lines, 1);
        // Reuse histogram: 2 cold line touches, 14 + 7 bulk repeats, and
        // one distance-1 reuse at the line-0 boundary of the write span
        // (a memo[1] hit, which must still advance the Fenwick state).
        let h = m.probe().unwrap().reuse().unwrap();
        assert_eq!(h.cold, 2);
        assert_eq!(h.repeats, 21);
        assert_eq!(h.buckets[1], 1, "line 0 reused at distance 1");
        assert_eq!(h.total(), 24, "mass equals the 24 line touches");
    }

    #[test]
    fn phase_marks_without_probe_are_no_ops() {
        let mut m = MemSim::single_level_lru(64);
        m.phase("ignored");
        m.read(0);
        assert!(m.probe().is_none());
        assert_eq!(m.llc().misses, 1);
    }

    #[test]
    fn set_associative_conflict_behavior() {
        // 4 lines, direct-mapped: lines 0 and 4 conflict.
        let mut m = MemSim::two_level(CacheConfig {
            capacity_words: 32,
            line_words: 8,
            ways: 1,
            policy: Policy::Lru,
        });
        m.read(0);
        m.read(32); // line 4, same set as line 0
        m.read(0); // miss again (conflict), despite capacity
        assert_eq!(m.llc().misses, 3);
    }

    #[test]
    fn clock_policy_runs_end_to_end() {
        let mut m = MemSim::two_level(CacheConfig {
            capacity_words: 64,
            line_words: 8,
            ways: 4,
            policy: Policy::Clock3,
        });
        for a in (0..2048).step_by(8) {
            m.read(a);
        }
        assert_eq!(m.llc().fills, 256);
        assert_eq!(m.llc().victims(), 256 - 8);
    }
}
