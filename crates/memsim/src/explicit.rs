//! Explicit block-movement model (paper Sections 2 and 4).
//!
//! Algorithms in the WA style *explicitly* move blocks between hierarchy
//! levels ("load C(i,j) from L2 to L1"). [`ExplicitHier`] executes exactly
//! that accounting: each `load`/`store` crosses one boundary, the model
//! checks the fast level's capacity is respected, and the per-boundary
//! word/message totals (via [`wa_core::BoundaryTraffic`]) decompose into
//! reads and writes per the refined model:
//!
//! * load  = read slow + **write fast**;
//! * store = read fast + **write slow**.
//!
//! Residencies beginning without slow-memory access (R2: e.g. initializing
//! an accumulator in fast memory) are recorded with [`ExplicitHier::alloc`];
//! they count as local writes to the fast level but no boundary traffic.

use wa_core::BoundaryTraffic;

/// r-level hierarchy with explicit, capacity-checked block movement.
///
/// Levels are 1-indexed in the public API to match the paper (L1 = fastest);
/// boundary `b` (0-indexed) separates `L_{b+1}` from `L_{b+2}`.
///
/// ```
/// use memsim::ExplicitHier;
/// let mut h = ExplicitHier::two_level(100);
/// h.load(0, 60);   // read slow + write fast: 60 words into L1
/// h.store(0, 60);  // read fast + write slow
/// h.free(1, 60);
/// assert_eq!(h.traffic().boundary(0).writes_to_slow(), 60);
/// assert_eq!(h.writes_into_level(1), 60);
/// ```
#[derive(Clone, Debug)]
pub struct ExplicitHier {
    /// Capacities in words, fastest first. The last level is the backing
    /// store; its capacity is not enforced.
    sizes: Vec<u64>,
    /// Currently resident words per enforced level.
    resident: Vec<u64>,
    /// Peak residency per enforced level (for diagnostics / tests).
    peak: Vec<u64>,
    traffic: BoundaryTraffic,
    /// R2-style writes performed directly into each level (1-indexed-1).
    local_writes: Vec<u64>,
    flops: u64,
}

impl ExplicitHier {
    /// Build from level sizes, fastest first; needs ≥ 2 levels. The last
    /// entry may be `u64::MAX` to mean "unbounded backing store".
    pub fn new(sizes: &[u64]) -> Self {
        assert!(sizes.len() >= 2, "need at least two levels");
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "capacities must increase away from L1");
        }
        ExplicitHier {
            sizes: sizes.to_vec(),
            resident: vec![0; sizes.len() - 1],
            peak: vec![0; sizes.len() - 1],
            traffic: BoundaryTraffic::new(sizes.len()),
            local_writes: vec![0; sizes.len()],
            flops: 0,
        }
    }

    /// Two-level model: fast memory of `m` words over an unbounded slow
    /// memory.
    pub fn two_level(m: u64) -> Self {
        ExplicitHier::new(&[m, u64::MAX])
    }

    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Capacity of level `lvl` (1-indexed).
    pub fn capacity(&self, lvl: usize) -> u64 {
        self.sizes[lvl - 1]
    }

    /// Words currently resident in level `lvl` (1-indexed; not the backing
    /// store).
    pub fn resident(&self, lvl: usize) -> u64 {
        self.resident[lvl - 1]
    }

    /// Peak words ever resident in level `lvl`.
    pub fn peak(&self, lvl: usize) -> u64 {
        self.peak[lvl - 1]
    }

    /// Load `words` across boundary `b` (from `L_{b+2}` into `L_{b+1}`) as
    /// one message. Panics if the fast side would overflow.
    pub fn load(&mut self, b: usize, words: u64) {
        self.reserve(b, words);
        self.traffic.boundary_mut(b).load(words);
    }

    /// Store `words` across boundary `b` (from `L_{b+1}` into `L_{b+2}`) as
    /// one message. The fast copy remains resident; pair with
    /// [`ExplicitHier::free`] to also release it.
    pub fn store(&mut self, b: usize, words: u64) {
        assert!(
            self.resident[b] >= words,
            "storing {words} words from L{} but only {} resident",
            b + 1,
            self.resident[b]
        );
        self.traffic.boundary_mut(b).store(words);
    }

    /// Release `words` from level `lvl` (1-indexed) — the D2 "discard" end
    /// of a residency (or the end of an R?/D1 residency after its store).
    pub fn free(&mut self, lvl: usize, words: u64) {
        let i = lvl - 1;
        assert!(
            self.resident[i] >= words,
            "freeing {words} from L{lvl} with only {} resident",
            self.resident[i]
        );
        self.resident[i] -= words;
    }

    /// Begin an R2 residency: `words` created directly in level `lvl`
    /// (1-indexed) without slow-memory traffic (e.g. zeroing an
    /// accumulator). Counts as local writes into that level.
    pub fn alloc(&mut self, lvl: usize, words: u64) {
        self.reserve(lvl - 1, words);
        self.local_writes[lvl - 1] += words;
    }

    fn reserve(&mut self, i: usize, words: u64) {
        let cap = self.sizes[i];
        assert!(
            self.resident[i] + words <= cap,
            "L{} overflow: {} resident + {} requested > capacity {}",
            i + 1,
            self.resident[i],
            words,
            cap
        );
        self.resident[i] += words;
        self.peak[i] = self.peak[i].max(self.resident[i]);
    }

    /// Record `n` arithmetic operations (no memory traffic in this model).
    pub fn flop(&mut self, n: u64) {
        self.flops += n;
    }

    pub fn flops(&self) -> u64 {
        self.flops
    }

    pub fn traffic(&self) -> &BoundaryTraffic {
        &self.traffic
    }

    /// R2-style local writes recorded by [`ExplicitHier::alloc`] for level
    /// `lvl` (1-indexed).
    pub fn local_writes(&self, lvl: usize) -> u64 {
        self.local_writes[lvl - 1]
    }

    /// Words written into level `lvl` (1-indexed): boundary traffic plus
    /// local R2 writes.
    pub fn writes_into_level(&self, lvl: usize) -> u64 {
        self.traffic.writes_into_level(lvl) + self.local_writes[lvl - 1]
    }

    /// Theorem 1 check: writes into the fast side of boundary `b` must be
    /// at least half the loads+stores across it. Returns
    /// `(writes_to_fast, total_ldst)`.
    pub fn theorem1_check(&self, b: usize) -> (u64, u64) {
        let t = self.traffic.boundary(b);
        (t.writes_to_fast() + self.local_writes[b], t.total_words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_counts() {
        let mut h = ExplicitHier::two_level(100);
        h.load(0, 60);
        h.store(0, 60);
        h.free(1, 60);
        let t = h.traffic().boundary(0);
        assert_eq!(t.load_words, 60);
        assert_eq!(t.store_words, 60);
        assert_eq!(t.total_msgs(), 2);
        assert_eq!(h.resident(1), 0);
    }

    #[test]
    #[should_panic(expected = "L1 overflow")]
    fn capacity_is_enforced() {
        let mut h = ExplicitHier::two_level(100);
        h.load(0, 64);
        h.load(0, 64);
    }

    #[test]
    fn alloc_counts_local_writes_not_traffic() {
        let mut h = ExplicitHier::two_level(100);
        h.alloc(1, 25);
        assert_eq!(h.writes_into_level(1), 25);
        assert_eq!(h.traffic().boundary(0).total_words(), 0);
    }

    #[test]
    fn three_level_boundaries_are_independent() {
        let mut h = ExplicitHier::new(&[10, 100, u64::MAX]);
        h.load(1, 50); // L3 -> L2
        h.load(0, 10); // L2 -> L1
        h.store(0, 10); // L1 -> L2
        assert_eq!(h.writes_into_level(2), 60); // 50 loaded + 10 stored
        assert_eq!(h.writes_into_level(1), 10);
        assert_eq!(h.writes_into_level(3), 0);
        assert_eq!(h.resident(1), 10);
        assert_eq!(h.resident(2), 50);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut h = ExplicitHier::two_level(100);
        h.load(0, 80);
        h.free(1, 80);
        h.load(0, 30);
        assert_eq!(h.peak(1), 80);
        assert_eq!(h.resident(1), 30);
    }

    #[test]
    fn theorem1_holds_for_balanced_use() {
        let mut h = ExplicitHier::two_level(1000);
        h.load(0, 500);
        h.store(0, 100);
        let (wf, total) = h.theorem1_check(0);
        assert!(2 * wf >= total);
    }

    #[test]
    #[should_panic(expected = "storing")]
    fn cannot_store_more_than_resident() {
        let mut h = ExplicitHier::two_level(100);
        h.load(0, 10);
        h.store(0, 20);
    }

    #[test]
    fn flops_accumulate() {
        let mut h = ExplicitHier::two_level(10);
        h.flop(100);
        h.flop(23);
        assert_eq!(h.flops(), 123);
    }
}
