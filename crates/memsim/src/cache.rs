//! One level of a set-associative (or fully-associative) write-back cache.
//!
//! Lines carry a Modified/Exclusive state like the MESIF experiments of the
//! paper's Section 6 (the S/F states never arise single-threaded). Counters
//! mirror the Xeon uncore events used in Figure 2/5:
//!
//! * [`LevelCounters::fills`] ≙ `LLC_S_FILLS.E` — lines brought in from the
//!   next-slower level;
//! * [`LevelCounters::victims_m`] ≙ `LLC_VICTIMS.M` — modified lines
//!   evicted (obligatory write-backs to the slower level);
//! * [`LevelCounters::victims_e`] ≙ `LLC_VICTIMS.E` — clean (exclusive)
//!   lines evicted and forgotten.

use crate::policy::Policy;

/// Invalid-tag sentinel.
const INVALID: u64 = u64::MAX;

/// Geometry and policy of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Capacity in *words* (we simulate at word = element granularity;
    /// one f64 per word).
    pub capacity_words: usize,
    /// Line size in words (8 words ≙ a 64-byte line of f64).
    pub line_words: usize,
    /// Associativity; `0` means fully associative (requires [`Policy::Lru`]).
    pub ways: usize,
    /// Replacement policy.
    pub policy: Policy,
}

impl CacheConfig {
    /// Number of lines this level holds.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_words / self.line_words
    }
}

/// Event counters for one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelCounters {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed in this level.
    pub misses: u64,
    /// Lines filled into this level from the next-slower level
    /// (≙ `LLC_S_FILLS.E` for the last level).
    pub fills: u64,
    /// Modified lines evicted — write-backs to the slower level
    /// (≙ `LLC_VICTIMS.M`).
    pub victims_m: u64,
    /// Clean lines evicted (≙ `LLC_VICTIMS.E`).
    pub victims_e: u64,
    /// Of `victims_m`, those forced out by `flush()` at the end rather than
    /// by capacity pressure during the run.
    pub flush_victims_m: u64,
}

impl LevelCounters {
    /// Total evictions.
    pub fn victims(&self) -> u64 {
        self.victims_m + self.victims_e
    }
}

/// The result of touching a level. A hit carries the slot index so the
/// hierarchy can memoize it for the line-granular fast path.
pub(crate) enum Touch {
    Hit(usize),
    Miss,
}

/// Victim metadata returned by an insertion that displaced a line.
pub(crate) struct Victim {
    pub line: u64,
    pub dirty: bool,
}

const NIL: u32 = u32::MAX;

/// Flat line→slot index: a power-of-two bucket array of chain heads plus a
/// per-slot chain link, replacing the former `HashMap<u64, usize>`. Lookup
/// walks the (short) chain comparing against the level's own `tags` array,
/// so the hot path is two flat-array loads and a multiply — no SipHash,
/// no heap buckets.
struct FlatIndex {
    /// `64 - log2(buckets)`: multiplicative-hash shift.
    shift: u32,
    /// Bucket → first slot in chain (NIL = empty).
    head: Vec<u32>,
    /// Slot → next slot in the same bucket's chain.
    chain: Vec<u32>,
}

impl FlatIndex {
    fn new(lines: usize) -> Self {
        let buckets = (2 * lines.max(1)).next_power_of_two();
        FlatIndex {
            shift: 64 - buckets.trailing_zeros(),
            head: vec![NIL; buckets],
            chain: vec![NIL; lines],
        }
    }

    /// Fibonacci hashing: the high bits of `line * φ⁻¹·2⁶⁴` index the
    /// bucket, spreading the strided line numbers cache sims produce.
    #[inline]
    fn bucket(&self, line: u64) -> usize {
        (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    #[inline]
    fn find(&self, line: u64, tags: &[u64]) -> Option<usize> {
        let mut s = self.head[self.bucket(line)];
        while s != NIL {
            let si = s as usize;
            if tags[si] == line {
                return Some(si);
            }
            s = self.chain[si];
        }
        None
    }

    fn insert(&mut self, line: u64, slot: usize) {
        let b = self.bucket(line);
        self.chain[slot] = self.head[b];
        self.head[b] = slot as u32;
    }

    fn remove(&mut self, line: u64, slot: usize) {
        let b = self.bucket(line);
        let mut cur = self.head[b];
        if cur as usize == slot {
            self.head[b] = self.chain[slot];
            self.chain[slot] = NIL;
            return;
        }
        while cur != NIL {
            let ci = cur as usize;
            let nx = self.chain[ci];
            if nx as usize == slot {
                self.chain[ci] = self.chain[slot];
                self.chain[slot] = NIL;
                return;
            }
            cur = nx;
        }
        debug_assert!(false, "removing line {line} that is not indexed");
    }

    fn clear(&mut self) {
        self.head.iter_mut().for_each(|x| *x = NIL);
        self.chain.iter_mut().for_each(|x| *x = NIL);
    }
}

/// O(1) fully-associative LRU bookkeeping: a flat hash index plus an
/// intrusive doubly-linked recency list over slots (head = LRU,
/// tail = MRU) and a free-slot stack.
struct FaLru {
    index: FlatIndex,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    free: Vec<usize>,
}

impl FaLru {
    fn new(lines: usize) -> Self {
        FaLru {
            index: FlatIndex::new(lines),
            prev: vec![NIL; lines],
            next: vec![NIL; lines],
            head: NIL,
            tail: NIL,
            free: (0..lines).rev().collect(),
        }
    }

    fn unlink(&mut self, s: usize) {
        let (p, n) = (self.prev[s], self.next[s]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[s] = NIL;
        self.next[s] = NIL;
    }

    fn push_mru(&mut self, s: usize) {
        self.prev[s] = self.tail;
        self.next[s] = NIL;
        if self.tail != NIL {
            self.next[self.tail as usize] = s as u32;
        } else {
            self.head = s as u32;
        }
        self.tail = s as u32;
    }

    fn clear(&mut self) {
        self.index.clear();
        let lines = self.prev.len();
        self.prev.iter_mut().for_each(|x| *x = NIL);
        self.next.iter_mut().for_each(|x| *x = NIL);
        self.head = NIL;
        self.tail = NIL;
        self.free = (0..lines).rev().collect();
    }
}

#[cfg(test)]
mod flat_index_tests {
    use super::*;

    #[test]
    fn insert_find_remove_with_collisions() {
        // 4 slots -> 8 buckets; strided lines exercise chains.
        let mut idx = FlatIndex::new(4);
        let mut tags = vec![INVALID; 4];
        for (slot, line) in [(0usize, 8u64), (1, 16), (2, 24), (3, 32)] {
            tags[slot] = line;
            idx.insert(line, slot);
        }
        for (slot, line) in [(0usize, 8u64), (1, 16), (2, 24), (3, 32)] {
            assert_eq!(idx.find(line, &tags), Some(slot));
        }
        assert_eq!(idx.find(40, &tags), None);
        idx.remove(16, 1);
        tags[1] = INVALID;
        assert_eq!(idx.find(16, &tags), None);
        // Reuse the freed slot for a new line.
        tags[1] = 48;
        idx.insert(48, 1);
        assert_eq!(idx.find(48, &tags), Some(1));
        assert_eq!(idx.find(8, &tags), Some(0));
    }
}

/// One cache level.
pub(crate) struct Level {
    cfg: CacheConfig,
    num_sets: usize,
    ways: usize,
    tags: Vec<u64>,
    dirty: Vec<bool>,
    meta: Vec<u64>,
    hands: Vec<u32>,
    /// Fully-associative O(1) LRU machinery (only when cfg.ways == 0).
    fa: Option<FaLru>,
    pub counters: LevelCounters,
}

impl Level {
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_words.is_power_of_two(), "line size must be 2^k");
        assert!(
            cfg.capacity_words.is_multiple_of(cfg.line_words),
            "capacity must be a whole number of lines"
        );
        let lines = cfg.capacity_lines();
        let (num_sets, ways, fa) = if cfg.ways == 0 {
            assert!(
                cfg.policy == Policy::Lru,
                "fully-associative mode implements LRU only"
            );
            (1, lines, Some(FaLru::new(lines)))
        } else {
            assert!(
                lines.is_multiple_of(cfg.ways),
                "lines ({lines}) must divide evenly into {}-way sets",
                cfg.ways
            );
            (lines / cfg.ways, cfg.ways, None)
        };
        Level {
            cfg,
            num_sets,
            ways,
            tags: vec![INVALID; lines],
            dirty: vec![false; lines],
            meta: vec![0; lines],
            hands: vec![0; num_sets],
            fa,
            counters: LevelCounters::default(),
        }
    }

    pub fn cfg(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.num_sets as u64) as usize
    }

    #[inline]
    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Find the slot holding `line`, if present.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        if let Some(fa) = &self.fa {
            return fa.index.find(line, &self.tags);
        }
        let set = self.set_of(line);
        self.slot_range(set).find(|&s| self.tags[s] == line)
    }

    /// Probe for `line`; on hit update replacement metadata (and dirtiness
    /// if `make_dirty`).
    pub fn touch(&mut self, line: u64, now: u64, make_dirty: bool) -> Touch {
        match self.find(line) {
            Some(slot) => {
                self.counters.hits += 1;
                if let Some(fa) = &mut self.fa {
                    fa.unlink(slot);
                    fa.push_mru(slot);
                } else {
                    self.cfg.policy.on_hit(&mut self.meta[slot], now);
                }
                if make_dirty {
                    self.dirty[slot] = true;
                }
                Touch::Hit(slot)
            }
            None => {
                self.counters.misses += 1;
                Touch::Miss
            }
        }
    }

    /// Count `count` repeat hits on `slot` in O(1). Valid only when the
    /// slot's line was the *immediately preceding* access at this level:
    /// with no intervening access the line is already MRU (fully
    /// associative LRU needs no list surgery) and the per-way policy
    /// effect of the skipped touches collapses to one
    /// [`Policy::on_repeat_hits`] call — so the replacement state a
    /// per-word re-touch loop would produce is behaviorally identical.
    #[inline]
    pub fn fast_hits(&mut self, slot: usize, count: u64, make_dirty: bool) {
        self.counters.hits += count;
        if make_dirty {
            self.dirty[slot] = true;
        }
        if self.fa.is_none() {
            self.cfg.policy.on_repeat_hits(&mut self.meta[slot], count);
        }
    }

    /// Does `slot` currently hold `line`? The hierarchy's carried memo
    /// entries may have been invalidated, or their slot reused, by walks
    /// that happened since they were recorded; this is the O(1)
    /// revalidation check (tags are private to this module).
    #[inline]
    pub fn slot_holds(&self, slot: usize, line: u64) -> bool {
        self.tags[slot] == line
    }

    /// Count one hit on `slot` whose line was accessed *recently but not
    /// immediately before*: unlike [`Level::fast_hits`] the line need not
    /// be MRU, so replacement metadata is refreshed exactly as
    /// [`Level::touch`] would — only the index lookup is skipped. The
    /// caller must have revalidated the slot via [`Level::slot_holds`].
    #[inline]
    pub fn rehit(&mut self, slot: usize, now: u64, make_dirty: bool) {
        self.counters.hits += 1;
        if let Some(fa) = &mut self.fa {
            fa.unlink(slot);
            fa.push_mru(slot);
        } else {
            self.cfg.policy.on_hit(&mut self.meta[slot], now);
        }
        if make_dirty {
            self.dirty[slot] = true;
        }
    }

    /// Is `line` present?
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Mark an already-present line dirty (used for write-backs arriving
    /// from a faster level). Returns false if absent.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        match self.find(line) {
            Some(slot) => {
                self.dirty[slot] = true;
                true
            }
            None => false,
        }
    }

    /// Clear `line`'s dirty bit if present, returning its previous
    /// dirtiness. Residency and replacement state are untouched — this is
    /// the per-level step of the hierarchy's clwb-style
    /// `MemSim::writeback_range`, which pushes dirty data down without
    /// evicting it.
    pub fn clean(&mut self, line: u64) -> Option<bool> {
        let slot = self.find(line)?;
        let was_dirty = self.dirty[slot];
        self.dirty[slot] = false;
        Some(was_dirty)
    }

    /// Invalidate `line` if present (inclusion maintenance). Returns the
    /// dirtiness of the dropped copy.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let slot = self.find(line)?;
        let was_dirty = self.dirty[slot];
        self.tags[slot] = INVALID;
        self.dirty[slot] = false;
        // Keep FIFO/LRU metadata at 0 for empty slots: insertion will reset.
        self.meta[slot] = 0;
        if let Some(fa) = &mut self.fa {
            fa.index.remove(line, slot);
            fa.unlink(slot);
            fa.free.push(slot);
        }
        Some(was_dirty)
    }

    /// Insert `line` (counting a fill), evicting a victim if the set is
    /// full. Returns the slot the line landed in (memoized by the
    /// hierarchy's fast path) plus the victim, if any. The caller (the
    /// hierarchy) classifies the victim as M or E — a line clean here may
    /// still be dirty in a faster level — and must call
    /// [`Level::count_victim`] with the effective dirtiness.
    pub fn insert(&mut self, line: u64, now: u64, dirty: bool) -> (usize, Option<Victim>) {
        debug_assert!(self.find(line).is_none(), "inserting a present line");
        self.counters.fills += 1;

        if let Some(fa) = &mut self.fa {
            // O(1) fully-associative LRU path.
            let (slot, victim) = match fa.free.pop() {
                Some(s) => (s, None),
                None => {
                    let s = fa.head as usize; // LRU slot
                    let v = Victim {
                        line: self.tags[s],
                        dirty: self.dirty[s],
                    };
                    fa.index.remove(v.line, s);
                    fa.unlink(s);
                    (s, Some(v))
                }
            };
            self.tags[slot] = line;
            self.dirty[slot] = dirty;
            fa.index.insert(line, slot);
            fa.push_mru(slot);
            return (slot, victim);
        }

        let set = self.set_of(line);
        let range = self.slot_range(set);
        // Free slot?
        let free = range.clone().find(|&s| self.tags[s] == INVALID);
        let (slot, victim) = match free {
            Some(s) => (s, None),
            None => {
                let base = range.start;
                let hand = &mut self.hands[set];
                let way = {
                    let meta = &mut self.meta[range.clone()];
                    self.cfg.policy.choose_victim(meta, hand)
                };
                let s = base + way;
                let v = Victim {
                    line: self.tags[s],
                    dirty: self.dirty[s],
                };
                (s, Some(v))
            }
        };
        self.tags[slot] = line;
        self.dirty[slot] = dirty;
        self.meta[slot] = self.cfg.policy.on_insert(now);
        (slot, victim)
    }

    /// Record a victim eviction in this level's counters with its
    /// *effective* dirtiness (local dirty bit merged with faster levels').
    pub fn count_victim(&mut self, effective_dirty: bool) {
        if effective_dirty {
            self.counters.victims_m += 1;
        } else {
            self.counters.victims_e += 1;
        }
    }

    /// Drain every resident line; returns `(line, dirty)` pairs. Used by
    /// `MemSim::flush`.
    pub fn drain(&mut self) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        for s in 0..self.tags.len() {
            if self.tags[s] != INVALID {
                out.push((self.tags[s], self.dirty[s]));
                self.tags[s] = INVALID;
                self.dirty[s] = false;
                self.meta[s] = 0;
            }
        }
        if let Some(fa) = &mut self.fa {
            fa.clear();
        }
        out
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, policy: Policy) -> Level {
        Level::new(CacheConfig {
            capacity_words: 32, // 4 lines of 8 words
            line_words: 8,
            ways,
            policy,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut l = tiny(0, Policy::Lru);
        assert!(l.insert(5, 1, false).1.is_none());
        assert!(matches!(l.touch(5, 2, false), Touch::Hit(_)));
        assert!(matches!(l.touch(6, 3, false), Touch::Miss));
    }

    #[test]
    fn lru_eviction_order_fully_associative() {
        let mut l = tiny(0, Policy::Lru);
        for (t, line) in [10u64, 11, 12, 13].iter().enumerate() {
            l.insert(*line, t as u64, false);
        }
        // Touch 10 so 11 becomes LRU.
        l.touch(10, 100, false);
        let v = l.insert(14, 101, false).1.expect("must evict");
        assert_eq!(v.line, 11);
        assert!(!v.dirty);
        l.count_victim(v.dirty);
        assert_eq!(l.counters.victims_e, 1);
    }

    #[test]
    fn dirty_victim_counts_as_m() {
        let mut l = tiny(0, Policy::Lru);
        for line in 0..4u64 {
            l.insert(line, line, false);
        }
        l.touch(0, 10, true); // dirty line 0, also makes it MRU
        let v = l.insert(99, 11, false).1.expect("must evict");
        assert_eq!(v.line, 1);
        assert!(!v.dirty);
        // Evict until line 0 goes: it must be the last and dirty.
        l.insert(98, 12, false).1.unwrap();
        l.insert(97, 13, false).1.unwrap();
        let v0 = l.insert(96, 14, false).1.unwrap();
        assert_eq!(v0.line, 0);
        assert!(v0.dirty);
    }

    #[test]
    fn set_mapping_conflicts() {
        // 4 lines, 1-way (direct mapped) => 4 sets; lines 0 and 4 collide.
        let mut l = tiny(1, Policy::Lru);
        l.insert(0, 1, false);
        let v = l.insert(4, 2, false).1.expect("direct-mapped conflict");
        assert_eq!(v.line, 0);
        // Lines 1 and 2 go to other sets without eviction.
        assert!(l.insert(1, 3, false).1.is_none());
        assert!(l.insert(2, 4, false).1.is_none());
    }

    #[test]
    fn invalidate_reports_dirtiness_and_frees_slot() {
        let mut l = tiny(0, Policy::Lru);
        l.insert(7, 1, true);
        assert_eq!(l.invalidate(7), Some(true));
        assert_eq!(l.invalidate(7), None);
        assert_eq!(l.resident_lines(), 0);
    }

    #[test]
    fn drain_returns_all_lines() {
        let mut l = tiny(2, Policy::Fifo);
        l.insert(1, 1, true);
        l.insert(2, 2, false);
        let mut d = l.drain();
        d.sort();
        assert_eq!(d, vec![(1, true), (2, false)]);
        assert_eq!(l.resident_lines(), 0);
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut l = tiny(0, Policy::Lru);
        assert!(!l.mark_dirty(3));
        l.insert(3, 1, false);
        assert!(l.mark_dirty(3));
        let _ = l.insert(4, 2, false);
        // Fill to capacity and evict; line 3 should eventually leave dirty.
        l.insert(5, 3, false);
        l.insert(6, 4, false);
        let v = l.insert(8, 5, false).1.expect("must evict");
        assert_eq!(v.line, 3);
        assert!(v.dirty);
    }
}
