//! Ideal-cache analysis: the Frigo et al. miss-count formula for recursive
//! cache-oblivious matmul (the black "Misses on Ideal Cache" line of
//! Figure 2a/2b) and an offline Belady-optimal cache simulator used to
//! cross-check it and to quantify how far LRU/clock are from optimal.

use crate::mem::Access;
use std::collections::{BTreeSet, HashMap};

/// Ideal-cache miss count (in *lines*) of the recursive cache-oblivious
/// matmul computing `C(l×n) += A(l×m) * B(m×n)` with cache of
/// `cache_words` words and lines of `line_words` words:
///
/// `(mn·⌈l/√(M/3)⌉ + ln·⌈m/√(M/3)⌉ + lm·⌈n/√(M/3)⌉) / L`
///
/// (Section 6.1 of the paper, with `sz(double)` absorbed since we count in
/// words.)
pub fn co_matmul_ideal_misses(l: u64, m: u64, n: u64, cache_words: u64, line_words: u64) -> f64 {
    let base = ((cache_words as f64) / 3.0).sqrt();
    let ceil = |x: u64| (x as f64 / base).ceil();
    ((m * n) as f64 * ceil(l) + (l * n) as f64 * ceil(m) + (l * m) as f64 * ceil(n))
        / line_words as f64
}

/// Counters produced by the Belady simulation (line granularity).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BeladyCounters {
    pub hits: u64,
    pub misses: u64,
    pub fills: u64,
    pub victims_m: u64,
    pub victims_e: u64,
}

impl BeladyCounters {
    pub fn victims(&self) -> u64 {
        self.victims_m + self.victims_e
    }
}

/// Offline Belady (MIN) simulation of a fully-associative cache of
/// `capacity_lines` lines over a recorded access trace. Victim = the
/// resident line whose next use is farthest in the future (never-used
/// lines first). Write-back semantics: dirty victims count as `victims_m`.
pub fn simulate_belady(
    trace: &[Access],
    capacity_lines: usize,
    line_words: usize,
) -> BeladyCounters {
    assert!(capacity_lines > 0);
    let lw = line_words as u64;
    let lines: Vec<u64> = trace.iter().map(|a| a.addr as u64 / lw).collect();

    // next_use[i] = index of the next access to lines[i] after i, or usize::MAX.
    let mut next_use = vec![usize::MAX; lines.len()];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for (i, &l) in lines.iter().enumerate().rev() {
        if let Some(&p) = last_pos.get(&l) {
            next_use[i] = p;
        }
        last_pos.insert(l, i);
    }

    // Resident set keyed for O(log C) farthest-future eviction.
    // BTreeSet of (next_use, line); max element = victim.
    let mut resident: HashMap<u64, (usize, bool)> = HashMap::new(); // line -> (next, dirty)
    let mut order: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut c = BeladyCounters::default();

    for (i, a) in trace.iter().enumerate() {
        let line = lines[i];
        let nu = next_use[i];
        match resident.get(&line).copied() {
            Some((old_nu, dirty)) => {
                c.hits += 1;
                order.remove(&(old_nu, line));
                let dirty = dirty || a.is_write;
                resident.insert(line, (nu, dirty));
                order.insert((nu, line));
            }
            None => {
                c.misses += 1;
                c.fills += 1;
                if resident.len() == capacity_lines {
                    let &(vnu, vline) = order.iter().next_back().expect("cache nonempty");
                    order.remove(&(vnu, vline));
                    let (_, vdirty) = resident.remove(&vline).unwrap();
                    if vdirty {
                        c.victims_m += 1;
                    } else {
                        c.victims_e += 1;
                    }
                }
                resident.insert(line, (nu, a.is_write));
                order.insert((nu, line));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::MemSim;
    use crate::policy::Policy;
    use wa_core::XorShift;

    fn r(addr: usize) -> Access {
        Access {
            addr,
            is_write: false,
        }
    }

    fn w(addr: usize) -> Access {
        Access {
            addr,
            is_write: true,
        }
    }

    #[test]
    fn belady_hits_when_working_set_fits() {
        let trace: Vec<Access> = (0..64).map(r).chain((0..64).map(r)).collect();
        let c = simulate_belady(&trace, 8, 8);
        assert_eq!(c.misses, 8);
        assert_eq!(c.hits, 120);
        assert_eq!(c.victims(), 0);
    }

    #[test]
    fn belady_classic_example_beats_lru() {
        // Cyclic scan of C+1 lines: LRU misses every access, Belady keeps
        // C-1 of them resident.
        let line = 8;
        let cap = 4;
        let mut trace = Vec::new();
        for _ in 0..10 {
            for l in 0..cap + 1 {
                trace.push(r(l * line));
            }
        }
        let bel = simulate_belady(&trace, cap, line);

        let mut lru = MemSim::two_level(CacheConfig {
            capacity_words: cap * line,
            line_words: line,
            ways: 0,
            policy: Policy::Lru,
        });
        for a in &trace {
            lru.read(a.addr);
        }
        assert!(bel.misses < lru.llc().misses);
        assert_eq!(lru.llc().misses as usize, 10 * (cap + 1), "LRU thrashes");
    }

    #[test]
    fn belady_never_worse_than_lru_on_random_traces() {
        let mut rng = XorShift::new(2024);
        for trial in 0..10 {
            let trace: Vec<Access> = (0..2000)
                .map(|_| {
                    let a = rng.next_below(640);
                    if rng.next_unit() < 0.3 {
                        w(a)
                    } else {
                        r(a)
                    }
                })
                .collect();
            let bel = simulate_belady(&trace, 16, 8);
            let mut lru = MemSim::two_level(CacheConfig {
                capacity_words: 16 * 8,
                line_words: 8,
                ways: 0,
                policy: Policy::Lru,
            });
            for a in &trace {
                if a.is_write {
                    lru.write(a.addr);
                } else {
                    lru.read(a.addr);
                }
            }
            assert!(
                bel.misses <= lru.llc().misses,
                "trial {trial}: Belady {} > LRU {}",
                bel.misses,
                lru.llc().misses
            );
        }
    }

    #[test]
    fn belady_dirty_victims_classified() {
        // A pure write stream of 8 distinct lines through a 4-line cache:
        // every eviction displaces a dirty line, whatever the tie-breaking.
        let trace: Vec<Access> = (0..8).map(|l| w(l * 8)).collect();
        let c = simulate_belady(&trace, 4, 8);
        assert_eq!(c.misses, 8);
        assert_eq!(c.victims_m, 4);
        assert_eq!(c.victims_e, 0);
        // And a pure read stream produces only clean victims.
        let trace: Vec<Access> = (0..8).map(|l| r(l * 8)).collect();
        let c = simulate_belady(&trace, 4, 8);
        assert_eq!(c.victims_m, 0);
        assert_eq!(c.victims_e, 4);
    }

    #[test]
    fn ideal_formula_monotone_in_dimensions() {
        let a = co_matmul_ideal_misses(100, 100, 100, 3 * 100, 8);
        let b = co_matmul_ideal_misses(100, 200, 100, 3 * 100, 8);
        assert!(b > a);
    }

    #[test]
    fn ideal_formula_matches_paper_shape() {
        // For square n and M >> inputs, misses -> 3 n^2 / L (each array
        // read once).
        let n = 64;
        let m = 3 * (n * n) as u64; // sqrt(M/3) = n, so each ceil = 1
        let misses = co_matmul_ideal_misses(n as u64, n as u64, n as u64, m, 8);
        assert!((misses - 3.0 * (n * n) as f64 / 8.0).abs() < 1e-9);
    }
}
