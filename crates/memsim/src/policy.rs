//! Cache replacement policies.
//!
//! The policy operates *within one associative set*: it is told about hits
//! and insertions and asked to choose a victim way. Metadata is stored as
//! one `u64` per way, interpreted per policy:
//!
//! * [`Policy::Lru`] — last-use timestamp; victim = smallest.
//! * [`Policy::Clock3`] — the 3-bit "clock algorithm" the paper says the
//!   Nehalem-EX L3 is believed to use \[17, 22, 35\]: a hit increments a
//!   3-bit marker (saturating at 7); eviction scans clockwise from a hand
//!   for a way marked 0, decrementing all markers each failed lap.
//! * [`Policy::Fifo`] — insertion timestamp; victim = smallest.
//!
//! Belady's offline-optimal policy needs the future trace, so it lives in
//! [`crate::ideal`] rather than here.

/// Replacement policy selector for a cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// True least-recently-used.
    Lru,
    /// 3-bit clock approximation of LRU (Nehalem-EX style).
    Clock3,
    /// First-in first-out (insertion order).
    Fifo,
}

impl Policy {
    /// Metadata value for a line on insertion. `now` is a global access
    /// counter.
    #[inline]
    pub fn on_insert(self, now: u64) -> u64 {
        match self {
            Policy::Lru => now,
            // The clock algorithm inserts with marker 1 ("recently used
            // once") so a brand-new line survives the first sweep.
            Policy::Clock3 => 1,
            Policy::Fifo => now,
        }
    }

    /// Update metadata on a hit.
    #[inline]
    pub fn on_hit(self, meta: &mut u64, now: u64) {
        match self {
            Policy::Lru => *meta = now,
            Policy::Clock3 => *meta = (*meta + 1).min(7),
            Policy::Fifo => {}
        }
    }

    /// Replay `count` *consecutive repeat hits* on the same line in O(1):
    /// the line was the immediately preceding access, so no other way's
    /// metadata moved in between. For LRU the relative recency order is
    /// already final (the timestamps of the skipped touches are unused by
    /// any other line), for FIFO hits never touch metadata, and for the
    /// 3-bit clock each hit increments the saturating marker — the one
    /// policy where repeat hits are not idempotent.
    #[inline]
    pub fn on_repeat_hits(self, meta: &mut u64, count: u64) {
        match self {
            Policy::Lru | Policy::Fifo => {}
            Policy::Clock3 => *meta = meta.saturating_add(count).min(7),
        }
    }

    /// Choose a victim among `ways` (all valid). `meta` is the per-way
    /// metadata slice, `hand` the per-set clock hand (updated in place).
    /// Returns the victim way index.
    pub fn choose_victim(self, meta: &mut [u64], hand: &mut u32) -> usize {
        match self {
            Policy::Lru | Policy::Fifo => meta
                .iter()
                .enumerate()
                .min_by_key(|&(_, m)| *m)
                .map(|(w, _)| w)
                .expect("set has at least one way"),
            Policy::Clock3 => {
                let n = meta.len() as u32;
                loop {
                    // One clockwise lap looking for a zero marker.
                    for _ in 0..n {
                        let w = (*hand % n) as usize;
                        *hand = (*hand + 1) % n;
                        if meta[w] == 0 {
                            return w;
                        }
                    }
                    // No unmarked line: decrement all markers and retry.
                    for m in meta.iter_mut() {
                        *m = m.saturating_sub(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let p = Policy::Lru;
        let mut meta = vec![10, 3, 7, 5];
        let mut hand = 0;
        assert_eq!(p.choose_victim(&mut meta, &mut hand), 1);
    }

    #[test]
    fn lru_hit_refreshes() {
        let p = Policy::Lru;
        let mut m = 3u64;
        p.on_hit(&mut m, 99);
        assert_eq!(m, 99);
    }

    #[test]
    fn fifo_ignores_hits() {
        let p = Policy::Fifo;
        let mut m = 3u64;
        p.on_hit(&mut m, 99);
        assert_eq!(m, 3);
        let mut meta = vec![4, 2, 9];
        let mut hand = 0;
        assert_eq!(p.choose_victim(&mut meta, &mut hand), 1);
    }

    #[test]
    fn clock_saturates_at_seven() {
        let p = Policy::Clock3;
        let mut m = 6u64;
        p.on_hit(&mut m, 0);
        assert_eq!(m, 7);
        p.on_hit(&mut m, 0);
        assert_eq!(m, 7);
    }

    #[test]
    fn clock_finds_zero_marker() {
        let p = Policy::Clock3;
        let mut meta = vec![2, 0, 3];
        let mut hand = 0;
        assert_eq!(p.choose_victim(&mut meta, &mut hand), 1);
        // Hand advanced past the victim.
        assert_eq!(hand, 2);
    }

    #[test]
    fn clock_decrements_when_all_marked() {
        let p = Policy::Clock3;
        let mut meta = vec![1, 2, 1];
        let mut hand = 0;
        // First lap fails; all decremented to [0,1,0]; way 0 chosen.
        assert_eq!(p.choose_victim(&mut meta, &mut hand), 0);
        assert_eq!(meta[1], 1);
    }

    #[test]
    fn clock_approximates_lru_on_simple_pattern() {
        // Repeatedly hitting way 0 should protect it from eviction.
        let p = Policy::Clock3;
        let mut meta: Vec<u64> = vec![p.on_insert(0); 4];
        for _ in 0..5 {
            let mut m = meta[0];
            p.on_hit(&mut m, 0);
            meta[0] = m;
        }
        let mut hand = 0;
        let victim = p.choose_victim(&mut meta, &mut hand);
        assert_ne!(victim, 0, "hot way must not be the victim");
    }
}
