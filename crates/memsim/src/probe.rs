//! Optional observer on [`crate::MemSim`]: per-phase counter deltas and
//! an optional reuse-distance histogram.
//!
//! A [`Probe`] attaches to a simulator (automatically when a
//! [`wa_core::obs`] recorder is installed — see
//! [`crate::MemSim::stacked_lru`] — or explicitly via
//! [`crate::MemSim::attach_probe`]). Workloads mark phase boundaries with
//! the no-op-by-default [`crate::Mem::phase`] call; the probe attributes
//! every counter delta (fills, write-backs, DRAM traffic, memo hits) and
//! the wall time between marks to the *current* phase, aggregated by
//! phase name — a kernel that alternates `"gemm-read"`/`"c-write"` marks
//! thousands of times still reports exactly two rows.
//!
//! The [`ReuseHist`] is the classical Mattson/LRU stack-distance
//! histogram over the line-granular access stream, computed with a
//! Fenwick tree over access ticks (`O(log n)` per *distinct-line* touch).
//! Consecutive same-line accesses — the simulator's memo/bulk fast path —
//! are distance-0 by definition and are folded in as O(1) bucket bumps,
//! so the histogram costs nothing extra on the hot path it would
//! otherwise destroy. This is the input a future Mattson backend consumes
//! (one pass → hit rates at every capacity).

use crate::cache::LevelCounters;
use std::collections::HashMap;
use std::time::Instant;

/// Cumulative counter state of a [`crate::MemSim`] at one point in time.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Total word accesses (the simulator clock).
    pub accesses: u64,
    /// Per-level counters, fastest first.
    pub counters: Vec<LevelCounters>,
    pub dram_reads: u64,
    pub dram_writes: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
}

/// Aggregated deltas for one named phase. `fills`/`writebacks` are per
/// level (fastest first), in lines; `writebacks` counts dirty victims
/// plus flush-drained dirty lines.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    pub name: String,
    pub wall_ns: u128,
    pub accesses: u64,
    pub fills: Vec<u64>,
    pub writebacks: Vec<u64>,
    pub dram_reads: u64,
    pub dram_writes: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
}

impl PhaseStats {
    fn new(name: &str, levels: usize) -> PhaseStats {
        PhaseStats {
            name: name.to_string(),
            wall_ns: 0,
            accesses: 0,
            fills: vec![0; levels],
            writebacks: vec![0; levels],
            dram_reads: 0,
            dram_writes: 0,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    fn add_delta(&mut self, from: &Snapshot, to: &Snapshot, wall_ns: u128) {
        self.wall_ns += wall_ns;
        self.accesses += to.accesses - from.accesses;
        for i in 0..self.fills.len() {
            self.fills[i] += to.counters[i].fills - from.counters[i].fills;
            let wb_to = to.counters[i].victims_m + to.counters[i].flush_victims_m;
            let wb_from = from.counters[i].victims_m + from.counters[i].flush_victims_m;
            self.writebacks[i] += wb_to - wb_from;
        }
        self.dram_reads += to.dram_reads - from.dram_reads;
        self.dram_writes += to.dram_writes - from.dram_writes;
        self.memo_hits += to.memo_hits - from.memo_hits;
        self.memo_misses += to.memo_misses - from.memo_misses;
    }
}

/// Per-phase counter attribution plus the optional reuse histogram.
/// Owned by the simulator; see the module docs for the attach paths.
pub struct Probe {
    levels: usize,
    phases: Vec<PhaseStats>,
    index: HashMap<String, usize>,
    current: usize,
    start: Snapshot,
    start_t: Instant,
    reuse: Option<ReuseHist>,
}

impl Probe {
    /// A probe for a `levels`-deep simulator. Accesses before the first
    /// [`Probe::mark`] land in the `"(init)"` phase.
    pub fn new(levels: usize) -> Probe {
        let mut p = Probe {
            levels,
            phases: Vec::new(),
            index: HashMap::new(),
            current: 0,
            start: Snapshot {
                counters: vec![LevelCounters::default(); levels],
                ..Snapshot::default()
            },
            start_t: Instant::now(),
            reuse: None,
        };
        p.phases.push(PhaseStats::new("(init)", levels));
        p.index.insert("(init)".to_string(), 0);
        p
    }

    /// Rebase the open phase on `snap` — used when attaching to a
    /// simulator that already has counter history, so pre-attach
    /// activity is not misattributed to the first phase.
    pub(crate) fn reset_start(&mut self, snap: Snapshot) {
        self.start = snap;
        self.start_t = Instant::now();
    }

    /// Enable the reuse-distance histogram.
    pub fn with_reuse(mut self) -> Probe {
        self.reuse = Some(ReuseHist::new());
        self
    }

    pub fn has_reuse(&self) -> bool {
        self.reuse.is_some()
    }

    pub fn reuse(&self) -> Option<&ReuseHist> {
        self.reuse.as_ref()
    }

    pub(crate) fn reuse_mut(&mut self) -> Option<&mut ReuseHist> {
        self.reuse.as_mut()
    }

    /// Close the current phase at counter state `now` and switch
    /// attribution to `name` (reopening its row if seen before).
    pub fn mark(&mut self, name: &str, now: Snapshot) {
        let wall = self.start_t.elapsed().as_nanos();
        let (start, cur) = (&self.start, self.current);
        self.phases[cur].add_delta(start, &now, wall);
        self.current = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.phases.len();
                self.phases.push(PhaseStats::new(name, self.levels));
                self.index.insert(name.to_string(), i);
                i
            }
        };
        self.start = now;
        self.start_t = Instant::now();
    }

    /// The per-phase table with the still-open tail phase closed at `now`
    /// — non-mutating, so it can run from a `&MemSim` report adapter.
    /// Phases with no simulator activity at all are dropped; a phase with
    /// traffic but no accesses (e.g. `"(flush)"`, which only drains) is
    /// kept — flush write-backs are the paper's headline number.
    pub fn finalized(&self, now: Snapshot) -> Vec<PhaseStats> {
        let mut out = self.phases.clone();
        out[self.current].add_delta(&self.start, &now, self.start_t.elapsed().as_nanos());
        out.retain(|p| {
            p.accesses > 0
                || p.dram_reads > 0
                || p.dram_writes > 0
                || p.fills.iter().any(|&f| f > 0)
                || p.writebacks.iter().any(|&w| w > 0)
        });
        out
    }
}

/// Fenwick (binary-indexed) tree over access ticks `1..=n`, holding a 1
/// at each line's most recent access position. Grows by doubling.
/// Shared by [`ReuseHist`] and the Mattson stack simulator
/// (`crate::stack::StackSim`), which both derive stack distances from
/// prefix sums over it.
pub(crate) struct Fenwick {
    /// `fen.len() == n + 1`; index 0 unused.
    fen: Vec<i64>,
    /// Tree size (power of two).
    n: usize,
}

impl Fenwick {
    pub(crate) fn new() -> Fenwick {
        Fenwick {
            fen: vec![0; 65],
            n: 64,
        }
    }

    /// Grow until `tick` is addressable.
    pub(crate) fn ensure(&mut self, tick: usize) {
        while tick > self.n {
            self.grow();
        }
    }

    /// Double the tree. The only node whose range reaches into the past
    /// is the new root `2n` (covers `1..=2n`); its value is the current
    /// total, which at size `n` (a power of two) is exactly `fen[n]`.
    /// Every other new node's range lies wholly in the not-yet-ticked
    /// future, so zero is correct.
    fn grow(&mut self) {
        let total = self.fen[self.n];
        self.n *= 2;
        self.fen.resize(self.n + 1, 0);
        self.fen[self.n] = total;
    }

    pub(crate) fn add(&mut self, mut i: usize, v: i64) {
        while i <= self.n {
            self.fen[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    pub(crate) fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.fen[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Mattson (LRU stack-distance) histogram over the line access stream.
///
/// `touch(line)` records one *distinct-line-boundary* access: distance =
/// number of distinct lines touched since `line`'s previous access
/// (`u64::MAX`-like "cold" for first touches), bucketed as `d = 0`,
/// `d = 1`, `d ∈ [2,3]`, `[4,7]`, … (powers of two). Consecutive
/// same-line repeats are distance 0 and are recorded in bulk via
/// [`ReuseHist::record_repeats`] into the separate [`ReuseHist::repeats`]
/// counter without touching the Fenwick tree — valid precisely because
/// they are contiguous, so they carry no distinct-line information.
/// Keeping them out of `buckets[0]` means the buckets count exactly the
/// full-walk touches while `total()` still equals every line touch.
pub struct ReuseHist {
    /// `line -> tick of its last full-walk access`.
    last: HashMap<u64, usize>,
    /// Fenwick tree over ticks: 1 where a line's most recent access sits.
    fen: Fenwick,
    tick: usize,
    /// First-ever touches (infinite distance).
    pub cold: u64,
    /// Memoized consecutive same-line repeats (distance 0 by
    /// construction, never walked through the Fenwick tree).
    pub repeats: u64,
    /// `buckets[0]` = distance 0; `buckets[i]` = distance in
    /// `[2^(i-1), 2^i - 1]` for `i ≥ 1`. Full-walk touches only.
    pub buckets: Vec<u64>,
}

impl Default for ReuseHist {
    fn default() -> Self {
        ReuseHist::new()
    }
}

impl ReuseHist {
    pub fn new() -> ReuseHist {
        ReuseHist {
            last: HashMap::new(),
            fen: Fenwick::new(),
            tick: 0,
            cold: 0,
            repeats: 0,
            buckets: vec![0],
        }
    }

    /// Record `n` consecutive same-line repeat accesses (distance 0).
    pub fn record_repeats(&mut self, n: u64) {
        self.repeats += n;
    }

    /// Record one access to `line` at a line boundary (a full-walk access
    /// in the simulator).
    pub fn touch(&mut self, line: u64) {
        self.tick += 1;
        self.fen.ensure(self.tick);
        match self.last.insert(line, self.tick) {
            None => self.cold += 1,
            Some(prev) => {
                // Distinct lines touched strictly between prev and now.
                let d = (self.fen.prefix(self.tick - 1) - self.fen.prefix(prev)) as u64;
                let b = bucket_of(d);
                if self.buckets.len() <= b {
                    self.buckets.resize(b + 1, 0);
                }
                self.buckets[b] += 1;
                self.fen.add(prev, -1);
            }
        }
        self.fen.add(self.tick, 1);
    }

    /// Total recorded accesses (cold + repeats + boundary touches) —
    /// equal to the line touches of the trace, so histogram mass checks
    /// out against the simulator clock.
    pub fn total(&self) -> u64 {
        self.cold + self.repeats + self.buckets.iter().sum::<u64>()
    }

    /// Compact single-line rendering for report config echo:
    /// `cold=5|rep=120|d0=2|d1=3|d2-3=1|…` (empty parts omitted).
    pub fn render(&self) -> String {
        let mut parts = vec![format!("cold={}", self.cold)];
        if self.repeats > 0 {
            parts.push(format!("rep={}", self.repeats));
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let label = if i == 0 {
                "d0".to_string()
            } else {
                let lo = 1u64 << (i - 1);
                let hi = (1u64 << i) - 1;
                if lo == hi {
                    format!("d{lo}")
                } else {
                    format!("d{lo}-{hi}")
                }
            };
            parts.push(format!("{label}={n}"));
        }
        parts.join("|")
    }
}

fn bucket_of(d: u64) -> usize {
    if d == 0 {
        0
    } else {
        64 - d.leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
    }

    #[test]
    fn reuse_hist_matches_hand_computed_stack_distances() {
        // Stream: A B C A A B. Distances: A,B,C cold; A at distance 2
        // (B, C distinct since); repeat A distance 0; B at distance 2
        // (C, A since).
        let mut h = ReuseHist::new();
        for line in [0u64, 1, 2, 0] {
            h.touch(line);
        }
        h.record_repeats(1); // the consecutive A repeat
        h.touch(1);
        assert_eq!(h.cold, 3);
        assert_eq!(h.repeats, 1, "one memoized repeat, outside the buckets");
        assert_eq!(h.buckets[0], 0, "no full-walk distance-0 touch");
        assert_eq!(h.buckets[bucket_of(2)], 2, "two distance-2 reuses");
        assert_eq!(h.total(), 6, "mass equals total line touches");
        assert_eq!(h.render(), "cold=3|rep=1|d2-3=2");
    }

    #[test]
    fn reuse_hist_distance_counts_distinct_lines_not_accesses() {
        // A B B B B A: only one distinct line (B) between the As.
        let mut h = ReuseHist::new();
        h.touch(0);
        h.touch(1);
        h.record_repeats(3);
        h.touch(0);
        assert_eq!(h.buckets[bucket_of(1)], 1, "A reused at distance 1");
    }

    #[test]
    fn reuse_hist_grows_past_initial_capacity() {
        let mut h = ReuseHist::new();
        for i in 0..200u64 {
            h.touch(i);
        }
        h.touch(0); // distance 199
        assert_eq!(h.cold, 200);
        assert_eq!(h.buckets[bucket_of(199)], 1);
    }

    #[test]
    fn phase_stats_aggregate_by_name_across_repeated_marks() {
        let mut p = Probe::new(1);
        let snap = |accesses: u64, fills: u64| Snapshot {
            accesses,
            counters: vec![LevelCounters {
                fills,
                ..LevelCounters::default()
            }],
            ..Snapshot::default()
        };
        // (init) sees 2 accesses, then alternate a/b twice each.
        p.mark("a", snap(2, 1));
        p.mark("b", snap(5, 2)); // a: +3 accesses, +1 fill
        p.mark("a", snap(6, 2)); // b: +1 access
        p.mark("b", snap(10, 4)); // a again: +4 accesses, +2 fills
        let rows = p.finalized(snap(11, 4)); // b again: +1 access
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("(init)").accesses, 2);
        assert_eq!(get("a").accesses, 7);
        assert_eq!(get("a").fills, vec![3]);
        assert_eq!(get("b").accesses, 2);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn finalized_drops_access_free_phases_and_is_repeatable() {
        let mut p = Probe::new(1);
        p.mark(
            "never-used",
            Snapshot {
                accesses: 0,
                counters: vec![LevelCounters::default()],
                ..Snapshot::default()
            },
        );
        let now = Snapshot {
            accesses: 4,
            counters: vec![LevelCounters::default()],
            ..Snapshot::default()
        };
        let rows = p.finalized(now.clone());
        assert_eq!(rows.len(), 1, "(init) had no accesses; tail phase has 4");
        assert_eq!(rows[0].name, "never-used");
        // finalized() is non-mutating: calling again gives the same rows.
        let again = p.finalized(now);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].accesses, 4);
    }
}
