//! Write-buffer (burst-buffer) accounting, §2.2 of the paper.
//!
//! A write-buffer lets evicted dirty lines drain to slow memory while
//! reads proceed. The paper makes two modeling points, both realized
//! here:
//!
//! 1. *Best case, perfect overlap*: total communication time drops from
//!    `reads·βr + writes·βw` to `max(reads·βr, writes·βw)` — at most a
//!    2× win, and **no** reduction in per-word write energy, so the
//!    asymptotic WA analysis is unchanged ([`overlapped_time`]).
//! 2. *For lower bounds*: a cache of `M` words plus a `K`-word write
//!    buffer can be treated as a single `M + K` cache — write-back counts
//!    can only shrink by what the extra capacity explains
//!    ([`buffer_as_bigger_cache`]).

use crate::cache::{CacheConfig, LevelCounters};
use crate::hierarchy::MemSim;

/// Communication time without overlap: reads and writes serialize.
pub fn serial_time(reads_words: u64, writes_words: u64, beta_read: f64, beta_write: f64) -> f64 {
    reads_words as f64 * beta_read + writes_words as f64 * beta_write
}

/// Best-case time with a write-buffer: full read/write overlap.
pub fn overlapped_time(
    reads_words: u64,
    writes_words: u64,
    beta_read: f64,
    beta_write: f64,
) -> f64 {
    (reads_words as f64 * beta_read).max(writes_words as f64 * beta_write)
}

/// Speedup from perfect overlap; provably in [1, 2].
pub fn overlap_speedup(
    reads_words: u64,
    writes_words: u64,
    beta_read: f64,
    beta_write: f64,
) -> f64 {
    let s = serial_time(reads_words, writes_words, beta_read, beta_write);
    let o = overlapped_time(reads_words, writes_words, beta_read, beta_write);
    if o == 0.0 {
        1.0
    } else {
        s / o
    }
}

/// Model a cache-plus-write-buffer as a single larger cache: returns the
/// configuration with `buffer_lines` extra lines. Replaying a workload
/// through this gives the lower-bound-side count the paper uses.
pub fn buffer_as_bigger_cache(cfg: CacheConfig, buffer_lines: usize) -> CacheConfig {
    CacheConfig {
        capacity_words: cfg.capacity_words + buffer_lines * cfg.line_words,
        ..cfg
    }
}

/// Convenience: run the same recorded trace through a cache with and
/// without the buffer capacity and return both LLC counter sets.
pub fn compare_with_buffer(
    trace: &[crate::mem::Access],
    cfg: CacheConfig,
    buffer_lines: usize,
) -> (LevelCounters, LevelCounters) {
    let mut base = MemSim::two_level(cfg);
    let mut buffered = MemSim::two_level(buffer_as_bigger_cache(cfg, buffer_lines));
    for a in trace {
        if a.is_write {
            base.write(a.addr);
            buffered.write(a.addr);
        } else {
            base.read(a.addr);
            buffered.read(a.addr);
        }
    }
    base.flush();
    buffered.flush();
    (base.llc(), buffered.llc())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Access;
    use crate::policy::Policy;
    use wa_core::XorShift;

    #[test]
    fn overlap_speedup_bounded_by_two() {
        for (r, w) in [(1000u64, 1000u64), (1000, 10), (10, 1000), (0, 5)] {
            let s = overlap_speedup(r, w, 1.0, 3.0);
            assert!((1.0..=2.0).contains(&s), "speedup {s} out of range");
        }
        // Balanced costs hit exactly 2.
        assert!((overlap_speedup(500, 500, 1.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn write_energy_is_not_reduced() {
        // Energy = per-word cost × words; overlap changes time, not words.
        let (r, w) = (10_000u64, 2_000u64);
        let energy_serial = w as f64 * 5.0;
        let energy_overlapped = w as f64 * 5.0;
        assert_eq!(energy_serial, energy_overlapped);
        assert!(overlapped_time(r, w, 1.0, 5.0) < serial_time(r, w, 1.0, 5.0));
    }

    #[test]
    fn bigger_cache_never_writes_back_more() {
        let cfg = CacheConfig {
            capacity_words: 128,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut rng = XorShift::new(12);
        let trace: Vec<Access> = (0..5000)
            .map(|_| Access {
                addr: rng.next_below(1024),
                is_write: rng.next_unit() < 0.4,
            })
            .collect();
        let (base, buffered) = compare_with_buffer(&trace, cfg, 8);
        assert!(
            buffered.victims_m + buffered.flush_victims_m <= base.victims_m + base.flush_victims_m,
            "buffer-as-cache must not increase write-backs"
        );
        assert!(buffered.misses <= base.misses, "LRU inclusion property");
    }
}
