//! # memsim — memory-hierarchy simulation substrate
//!
//! The paper validates its theory two ways: (a) by *explicit* load/store
//! accounting inside blocked algorithms (Sections 2 and 4), and (b) by
//! hardware cache counters on an Intel Xeon 7560 under hardware-controlled
//! replacement (Section 6). This crate provides both substrates:
//!
//! * [`explicit`] — an r-level hierarchy where the *algorithm* issues block
//!   `load`/`store` operations and the model checks capacities and counts
//!   words/messages per boundary. This reproduces the comment-annotated
//!   counts of Algorithms 1–4 exactly.
//! * [`cache`] + [`hierarchy`] — an inclusive, write-back, write-allocate
//!   multi-level cache simulator with per-line Modified/Exclusive state and
//!   pluggable replacement ([`policy`]): true LRU, the 3-bit "clock"
//!   LRU approximation attributed to Nehalem-EX, FIFO, and (offline)
//!   Belady's optimal policy. Its counters map one-to-one onto the events
//!   the paper measures: `LLC_VICTIMS.M`, `LLC_VICTIMS.E`, `LLC_S_FILLS.E`.
//! * [`mem`] — the [`mem::Mem`] access trait through which instrumented
//!   kernels run unchanged on raw memory (no counting, full speed), on the
//!   cache simulator, or on a trace recorder.
//! * [`ideal`] — the ideal-cache miss count model for the cache-oblivious
//!   matmul of Frigo et al. (the black line of Figure 2a) and a small
//!   Belady simulator used to sanity-check it.
//! * [`xeon`] — ready-made hierarchy configurations: the scaled Xeon 7560
//!   geometry used by all Figure 2 / Figure 5 reproductions.
//! * [`probe`] — the optional per-phase observer ([`probe::Probe`]) and
//!   reuse-distance histogram behind `harness profile`/`--trace`:
//!   attached automatically by the shared [`MemSim::single_level_lru`] /
//!   [`MemSim::stacked_lru`] constructors when a [`wa_core::obs`]
//!   recorder is installed.
//! * [`stack`] — the single-pass Mattson stack simulator
//!   ([`stack::StackSim`]): exact FA-LRU fills and write-backs for
//!   *every* capacity from one pass over the same access stream,
//!   projected as a [`wa_core::CapacityCurve`] (the `stack` backend).

pub mod cache;
pub mod explicit;
pub mod hierarchy;
pub mod ideal;
pub mod mem;
pub mod policy;
pub mod probe;
pub mod report;
pub mod stack;
pub mod writebuffer;
pub mod xeon;

pub use cache::{CacheConfig, LevelCounters};
pub use explicit::ExplicitHier;
pub use hierarchy::{AccessRun, MemSim};
pub use mem::{Mem, RawMem, SimMem, TraceMem};
pub use policy::Policy;
pub use probe::{PhaseStats, Probe, ReuseHist};
pub use report::{explicit_report, memsim_report, stack_report};
pub use stack::{StackMem, StackSim};
pub use xeon::LINE_WORDS;
