//! Algorithm 1 — explicitly blocked classical matmul with exact
//! load/store accounting, two-level and multi-level.
//!
//! The two-level WA version attains (paper §4.1):
//!
//! * writes to L1 (loads): `ml + 2·mnl/b` words with `b = √(M/3)`;
//! * writes to L2 (stores): `ml` — exactly the output size.
//!
//! The non-WA orders (shared dimension not innermost) store each `C` block
//! once per `k` step: `mnl/b` writes to slow memory.
//!
//! The multi-level version implements the induction of §4.1: each level
//! re-blocks at `b_s = √(M_s/3)` and recurses, preserving the WA property
//! at every boundary.

use crate::matmul::LoopOrder;
use memsim::ExplicitHier;
use wa_core::Mat;

/// Real arithmetic over index ranges: `C[i0.., j0..] += A[i0.., k0..] * B`.
fn mm_range(
    a: &Mat,
    b: &Mat,
    c: &mut Mat,
    (i0, i1): (usize, usize),
    (j0, j1): (usize, usize),
    (k0, k1): (usize, usize),
) {
    for i in i0..i1 {
        for j in j0..j1 {
            let mut acc = c[(i, j)];
            for k in k0..k1 {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = acc;
        }
    }
}

/// Largest block size `b` with three `b×b` blocks fitting in `m` words —
/// the paper's `b = √(M/3)`.
pub fn block_for(m: u64) -> usize {
    (((m / 3) as f64).sqrt().floor() as usize).max(1)
}

/// Triangle words (diagonal included) of a `b×b` block — the stored half
/// of a symmetric/triangular operand in the explicit kernels.
pub fn tri_words(b: usize) -> u64 {
    (b * (b + 1) / 2) as u64
}

/// Strictly-lower-triangle words of a `b×b` block (the stored part of a
/// unit-diagonal `L` factor).
pub fn strict_lower_words(b: usize) -> u64 {
    (b * (b - 1) / 2) as u64
}

/// Two-level Algorithm 1: `C += A·B` with explicit block movement across
/// boundary 0 of `hier` (fast memory `M1`). `order` chooses the block-loop
/// nest; `Ijk`/`Jik` (k innermost) are the WA orders.
pub fn explicit_mm_two_level(
    a: &Mat,
    b: &Mat,
    c: &mut Mat,
    hier: &mut ExplicitHier,
    order: LoopOrder,
) {
    let (m, n, l) = (a.rows(), a.cols(), b.cols());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), l);
    assert_eq!(b.rows(), n);
    let bs = block_for(hier.capacity(1));
    let nb_i = m.div_ceil(bs);
    let nb_j = l.div_ceil(bs);
    let nb_k = n.div_ceil(bs);

    let bw = |i0: usize, lim: usize| -> u64 { (bs.min(lim - i0 * bs)) as u64 };

    match order {
        LoopOrder::Ijk | LoopOrder::Jik => {
            // WA: k innermost; C block resident across the whole k sweep.
            for i in 0..nb_i {
                for j in 0..nb_j {
                    let (ci, cj) = (bw(i, m), bw(j, l));
                    hier.load(0, ci * cj); // C(i,j): L2 -> L1
                    for k in 0..nb_k {
                        let ck = bw(k, n);
                        hier.load(0, ci * ck); // A(i,k)
                        hier.load(0, ck * cj); // B(k,j)
                        mm_range(
                            a,
                            b,
                            c,
                            (i * bs, i * bs + ci as usize),
                            (j * bs, j * bs + cj as usize),
                            (k * bs, k * bs + ck as usize),
                        );
                        hier.flop(2 * ci * ck * cj);
                        hier.free(1, ci * ck + ck * cj);
                    }
                    hier.store(0, ci * cj); // C(i,j): L1 -> L2
                    hier.free(1, ci * cj);
                }
            }
        }
        _ => {
            // Non-WA: C block loaded and stored once per k step.
            for k in 0..nb_k {
                for i in 0..nb_i {
                    for j in 0..nb_j {
                        let (ci, cj, ck) = (bw(i, m), bw(j, l), bw(k, n));
                        hier.load(0, ci * cj); // C(i,j)
                        hier.load(0, ci * ck); // A(i,k)
                        hier.load(0, ck * cj); // B(k,j)
                        mm_range(
                            a,
                            b,
                            c,
                            (i * bs, i * bs + ci as usize),
                            (j * bs, j * bs + cj as usize),
                            (k * bs, k * bs + ck as usize),
                        );
                        hier.flop(2 * ci * ck * cj);
                        hier.store(0, ci * cj);
                        hier.free(1, ci * cj + ci * ck + ck * cj);
                    }
                }
            }
        }
    }
}

/// Multi-level WA Algorithm 1 over an r-level [`ExplicitHier`]: data starts
/// in the backing store `L_r`; each level `s` blocks at `b_s = √(M_s/3)` and
/// the innermost level performs the arithmetic.
pub fn explicit_mm_multilevel(a: &Mat, b: &Mat, c: &mut Mat, hier: &mut ExplicitHier) {
    let blocks: Vec<usize> = (1..hier.num_levels())
        .map(|lvl| block_for(hier.capacity(lvl)))
        .collect();
    explicit_mm_multilevel_blocks(a, b, c, hier, &blocks);
}

/// [`explicit_mm_multilevel`] with caller-chosen per-level block sizes:
/// `blocks[s]` is the edge of the blocks moved *into* level `s+1`
/// (1-indexed; `blocks[0]` is the innermost, L1-resident block). Used by
/// the cross-model tests, which must run the explicit kernel and the cache
/// simulator on identical blockings (line-aligned, Prop-6.2 slack) for the
/// per-boundary counts to be comparable.
pub fn explicit_mm_multilevel_blocks(
    a: &Mat,
    b: &Mat,
    c: &mut Mat,
    hier: &mut ExplicitHier,
    blocks: &[usize],
) {
    let r = hier.num_levels();
    assert_eq!(blocks.len(), r - 1, "one block size per cache level");
    for w in blocks.windows(2) {
        assert!(w[0] <= w[1], "block sizes must grow away from L1");
    }
    for (s, &bsz) in blocks.iter().enumerate() {
        assert!(
            3 * (bsz * bsz) as u64 <= hier.capacity(s + 1),
            "three {bsz}x{bsz} blocks must fit in L{} ({} words)",
            s + 1,
            hier.capacity(s + 1)
        );
    }
    let (m, l) = (a.rows(), b.cols());
    let n = a.cols();
    rec_mm(a, b, c, hier, blocks, r, (0, m), (0, l), (0, n));
}

/// Multiply the sub-blocks `C[ir, jr] += A[ir, kr] * B[kr, jr]`, with the
/// operands resident in level `lvl` (1-indexed; `lvl = num_levels` means
/// the backing store).
#[allow(clippy::too_many_arguments)] // three index ranges + hierarchy; a struct would obscure the recursion
fn rec_mm(
    a: &Mat,
    b: &Mat,
    c: &mut Mat,
    hier: &mut ExplicitHier,
    blocks: &[usize],
    lvl: usize,
    ir: (usize, usize),
    jr: (usize, usize),
    kr: (usize, usize),
) {
    if lvl == 1 {
        // Operands are in L1: compute.
        mm_range(a, b, c, ir, jr, kr);
        hier.flop(2 * (ir.1 - ir.0) as u64 * (jr.1 - jr.0) as u64 * (kr.1 - kr.0) as u64);
        return;
    }
    let dest = lvl - 1; // move blocks into L_{lvl-1}
    let bnd = dest - 1; // boundary between L_dest and L_lvl
    let bs = blocks[dest - 1];
    let (i0, i1) = ir;
    let (j0, j1) = jr;
    let (k0, k1) = kr;
    let mut i = i0;
    while i < i1 {
        let ci = bs.min(i1 - i);
        let mut j = j0;
        while j < j1 {
            let cj = bs.min(j1 - j);
            hier.load(bnd, (ci * cj) as u64); // C block
            let mut k = k0;
            while k < k1 {
                let ck = bs.min(k1 - k);
                hier.load(bnd, (ci * ck) as u64); // A block
                hier.load(bnd, (ck * cj) as u64); // B block
                rec_mm(
                    a,
                    b,
                    c,
                    hier,
                    blocks,
                    dest,
                    (i, i + ci),
                    (j, j + cj),
                    (k, k + ck),
                );
                hier.free(dest, (ci * ck + ck * cj) as u64);
                k += ck;
            }
            hier.store(bnd, (ci * cj) as u64);
            hier.free(dest, (ci * cj) as u64);
            j += cj;
        }
        i += ci;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ExplicitHier;

    fn setup(m: usize, n: usize, l: usize) -> (Mat, Mat, Mat, Mat) {
        let a = Mat::random(m, n, 1);
        let b = Mat::random(n, l, 2);
        let c = Mat::zeros(m, l);
        let want = a.matmul_ref(&b);
        (a, b, c, want)
    }

    #[test]
    fn two_level_wa_counts_match_algorithm_1_exactly() {
        // b = sqrt(48/3) = 4; 12x12x12 matrices, all divisible.
        let (m, n, l) = (12, 12, 12);
        let (a, b, mut c, want) = setup(m, n, l);
        let mut h = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Ijk);
        assert!(c.max_abs_diff(&want) < 1e-12);

        let bs = 4u64;
        let t = h.traffic().boundary(0);
        // Paper: loads = ml + 2 mnl / b; stores = ml.
        let (mf, nf, lf) = (m as u64, n as u64, l as u64);
        assert_eq!(t.load_words, mf * lf + 2 * mf * nf * lf / bs);
        assert_eq!(t.store_words, mf * lf);
        // Flops: 2 mnl.
        assert_eq!(h.flops(), 2 * mf * nf * lf);
        // Theorem 1 sanity.
        let (wf, total) = h.theorem1_check(0);
        assert!(2 * wf >= total);
    }

    #[test]
    fn non_wa_order_stores_c_every_k_step() {
        let (m, n, l) = (12, 12, 12);
        let (a, b, mut c, want) = setup(m, n, l);
        let mut h = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Kij);
        assert!(c.max_abs_diff(&want) < 1e-12);
        let bs = 4u64;
        let t = h.traffic().boundary(0);
        let (mf, nf, lf) = (m as u64, n as u64, l as u64);
        assert_eq!(t.store_words, mf * nf * lf / bs); // n/b times more
        assert_eq!(t.load_words, 3 * mf * nf * lf / bs);
    }

    #[test]
    fn wa_vs_nonwa_write_ratio_is_n_over_b() {
        let (m, n, l) = (24, 24, 24);
        let (a, b, mut c1, _) = setup(m, n, l);
        let mut c2 = c1.clone();
        let mut h_wa = ExplicitHier::two_level(48);
        let mut h_rw = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c1, &mut h_wa, LoopOrder::Ijk);
        explicit_mm_two_level(&a, &b, &mut c2, &mut h_rw, LoopOrder::Kij);
        let wa = h_wa.traffic().boundary(0).store_words;
        let rw = h_rw.traffic().boundary(0).store_words;
        assert_eq!(rw / wa, (n / 4) as u64);
    }

    #[test]
    fn uneven_dimensions_still_correct_and_bounded() {
        let (m, n, l) = (13, 7, 10);
        let (a, b, mut c, want) = setup(m, n, l);
        let mut h = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Ijk);
        assert!(c.max_abs_diff(&want) < 1e-12);
        // Stores still exactly the output size.
        assert_eq!(h.traffic().boundary(0).store_words, (m * l) as u64);
    }

    #[test]
    fn multilevel_three_levels_wa_at_every_boundary() {
        // L1 = 12 words (b1 = 2), L2 = 48 (b2 = 4), L3 backing store.
        let (m, n, l) = (16, 16, 16);
        let (a, b, mut c, want) = setup(m, n, l);
        let mut h = ExplicitHier::new(&[12, 48, u64::MAX]);
        explicit_mm_multilevel(&a, &b, &mut c, &mut h);
        assert!(c.max_abs_diff(&want) < 1e-12);

        let (mf, nf, lf) = (m as u64, n as u64, l as u64);
        // Writes to the backing store (stores across boundary 1) = output.
        assert_eq!(h.traffic().boundary(1).store_words, mf * lf);
        // Writes to L2: loads across boundary 1 + stores across boundary 0.
        // Loads across boundary 1 = ml + 2 mnl / b2 (Algorithm 1 at L2).
        let loads_b1 = h.traffic().boundary(1).load_words;
        assert_eq!(loads_b1, mf * lf + 2 * mf * nf * lf / 4);
        // Stores across boundary 0: each b2-block matmul stores its C
        // block once per (i,j,k) level-2 leaf => total = (mnl/b2) words...
        // The induction proof gives O(mnl/b2): check the exact structure:
        let stores_b0 = h.traffic().boundary(0).store_words;
        assert_eq!(stores_b0, mf * nf * lf / 4);
        // Loads across boundary 0 = b2-leaf count * Algorithm-1 loads at b1.
        let loads_b0 = h.traffic().boundary(0).load_words;
        let leaves = (mf / 4) * (nf / 4) * (lf / 4);
        assert_eq!(loads_b0, leaves * (16 + 2 * 64 / 2));
        // Theorem 1 at both boundaries.
        for bnd in 0..2 {
            let (wfast, total) = h.theorem1_check(bnd);
            assert!(2 * wfast >= total, "boundary {bnd}");
        }
    }

    #[test]
    fn multilevel_writes_to_l2_asymptotically_fewer_than_to_l1() {
        let (m, n, l) = (32, 32, 32);
        let (a, b, mut c, _) = setup(m, n, l);
        let mut h = ExplicitHier::new(&[12, 192, u64::MAX]);
        explicit_mm_multilevel(&a, &b, &mut c, &mut h);
        let w_l1 = h.writes_into_level(1);
        let w_l2 = h.writes_into_level(2);
        let w_l3 = h.writes_into_level(3);
        assert!(w_l1 > w_l2, "L1 writes {w_l1} vs L2 {w_l2}");
        assert!(w_l2 > w_l3, "L2 writes {w_l2} vs L3 {w_l3}");
        assert_eq!(w_l3, (m * l) as u64);
    }

    #[test]
    fn peak_residency_within_fast_memory() {
        let (a, b, mut c, _) = setup(20, 20, 20);
        let mut h = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Ijk);
        assert!(h.peak(1) <= 48);
    }
}
