//! Algorithm 2 — explicitly blocked triangular solve (TRSM) with exact
//! load/store accounting.
//!
//! Solves `T·X = B` for upper-triangular `T`, X overwriting B, by
//! successive substitution over `b×b` blocks with `b = √(M/3)`. The paper's
//! WA order keeps each `B(i,j)` block resident across its whole update
//! sweep (`k` innermost), storing it exactly once: `n·nrhs` writes to slow
//! memory. The right-looking variant pushes updates eagerly and stores
//! `Θ(n²·nrhs/b)` words.

use crate::explicit_mm::tri_words;
use memsim::ExplicitHier;
use wa_core::Mat;

/// `B[bi, j] -= T[bi, bk] * X[bk, j]` over index ranges (X stored in B).
fn update_range(
    t: &Mat,
    b: &mut Mat,
    (i0, i1): (usize, usize),
    (k0, k1): (usize, usize),
    (j0, j1): (usize, usize),
) {
    for i in i0..i1 {
        for j in j0..j1 {
            let mut acc = b[(i, j)];
            for k in k0..k1 {
                acc -= t[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = acc;
        }
    }
}

/// Solve the diagonal block system `T[d0..d1, d0..d1] · X = B[d0..d1, j0..j1]`
/// in place by back substitution.
fn solve_diag_range(t: &Mat, b: &mut Mat, (d0, d1): (usize, usize), (j0, j1): (usize, usize)) {
    for i in (d0..d1).rev() {
        for j in j0..j1 {
            let mut acc = b[(i, j)];
            for k in i + 1..d1 {
                acc -= t[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = acc / t[(i, i)];
        }
    }
}

/// Two-level WA TRSM (Algorithm 2): `T` is `n×n` upper triangular, `B` is
/// `n×nrhs`; X overwrites B. Stores to slow memory = `n·nrhs` exactly.
pub fn explicit_trsm_wa(t: &Mat, b: &mut Mat, hier: &mut ExplicitHier) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    let nrhs = b.cols();
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let njb = nrhs.div_ceil(bs);
    let w = |blk: usize, lim: usize| bs.min(lim - blk * bs);

    for j in 0..njb {
        let cj = w(j, nrhs);
        for i in (0..nb).rev() {
            let ci = w(i, n);
            hier.load(0, (ci * cj) as u64); // B(i,j)
            for k in i + 1..nb {
                let ck = w(k, n);
                hier.load(0, (ci * ck) as u64); // T(i,k)
                hier.load(0, (ck * cj) as u64); // X(k,j)
                update_range(
                    t,
                    b,
                    (i * bs, i * bs + ci),
                    (k * bs, k * bs + ck),
                    (j * bs, j * bs + cj),
                );
                hier.flop(2 * (ci * ck * cj) as u64);
                hier.free(1, (ci * ck + ck * cj) as u64);
            }
            hier.load(0, tri_words(ci)); // T(i,i), triangular half
            solve_diag_range(t, b, (i * bs, i * bs + ci), (j * bs, j * bs + cj));
            hier.flop((ci * ci * cj) as u64);
            hier.free(1, tri_words(ci));
            hier.store(0, (ci * cj) as u64); // X(i,j)
            hier.free(1, (ci * cj) as u64);
        }
    }
}

/// Right-looking (non-WA) TRSM: after each diagonal solve, eagerly update
/// every block above it, loading and storing each `B(k,j)` per step.
pub fn explicit_trsm_rl(t: &Mat, b: &mut Mat, hier: &mut ExplicitHier) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    let nrhs = b.cols();
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let njb = nrhs.div_ceil(bs);
    let w = |blk: usize, lim: usize| bs.min(lim - blk * bs);

    for j in 0..njb {
        let cj = w(j, nrhs);
        for i in (0..nb).rev() {
            let ci = w(i, n);
            // Solve the diagonal system for X(i,j).
            hier.load(0, (ci * cj) as u64); // B(i,j)
            hier.load(0, tri_words(ci)); // T(i,i)
            solve_diag_range(t, b, (i * bs, i * bs + ci), (j * bs, j * bs + cj));
            hier.flop((ci * ci * cj) as u64);
            hier.free(1, tri_words(ci));
            hier.store(0, (ci * cj) as u64); // X(i,j) written back...
                                             // ...but kept resident for the updates below.
                                             // Eagerly update all blocks above i in this block column.
            for k in 0..i {
                let ck = w(k, n);
                hier.load(0, (ck * ci) as u64); // T(k,i)
                hier.load(0, (ck * cj) as u64); // B(k,j)
                update_range(
                    t,
                    b,
                    (k * bs, k * bs + ck),
                    (i * bs, i * bs + ci),
                    (j * bs, j * bs + cj),
                );
                hier.flop(2 * (ck * ci * cj) as u64);
                hier.store(0, (ck * cj) as u64); // partial update written back
                hier.free(1, (ck * ci + ck * cj) as u64);
            }
            hier.free(1, (ci * cj) as u64);
        }
    }
}

/// Multi-level WA TRSM (§4.2's induction): at each level `s` the problem
/// re-blocks at `b_s = √(M_s/3)`; block updates become multi-level
/// matmuls ([`crate::explicit_mm`]) and diagonal solves recurse. Data
/// starts in the backing store `L_r`.
pub fn explicit_trsm_multilevel(t: &Mat, b: &mut Mat, hier: &mut ExplicitHier) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    let r = hier.num_levels();
    rec_trsm(t, b, hier, r, (0, n), (0, b.cols()));
}

/// Solve the sub-problem `T[dr, dr] · X[dr, jr] = B[dr, jr]` with the
/// operands resident in level `lvl` (1-indexed; `num_levels` = backing
/// store).
fn rec_trsm(
    t: &Mat,
    b: &mut Mat,
    hier: &mut ExplicitHier,
    lvl: usize,
    dr: (usize, usize),
    jr: (usize, usize),
) {
    if lvl == 1 {
        solve_diag_range(t, b, dr, jr);
        let nn = (dr.1 - dr.0) as u64;
        hier.flop(nn * nn * (jr.1 - jr.0) as u64);
        return;
    }
    let dest = lvl - 1;
    let bnd = dest - 1;
    let bs = crate::explicit_mm::block_for(hier.capacity(dest));
    let (d0, d1) = dr;
    let (j0, j1) = jr;
    let nb = (d1 - d0).div_ceil(bs);
    let w = |blk: usize, lo: usize, hi: usize| bs.min(hi - (lo + blk * bs));

    let mut j = j0;
    while j < j1 {
        let cj = bs.min(j1 - j);
        for i in (0..nb).rev() {
            let ci = w(i, d0, d1);
            let ib = d0 + i * bs;
            hier.load(bnd, (ci * cj) as u64); // B(i,j)
            for k in i + 1..nb {
                let ck = w(k, d0, d1);
                let kb = d0 + k * bs;
                hier.load(bnd, (ci * ck) as u64); // T(i,k)
                hier.load(bnd, (ck * cj) as u64); // X(k,j)
                                                  // Multi-level update: recurse through the remaining levels
                                                  // as a matmul-shaped kernel (here performed directly; the
                                                  // per-level re-blocking of the matmul is exercised by
                                                  // explicit_mm_multilevel and charged at this boundary).
                update_range(t, b, (ib, ib + ci), (kb, kb + ck), (j, j + cj));
                hier.flop(2 * (ci * ck * cj) as u64);
                hier.free(dest, (ci * ck + ck * cj) as u64);
            }
            hier.load(bnd, tri_words(ci)); // T(i,i)
            rec_trsm(t, b, hier, dest, (ib, ib + ci), (j, j + cj));
            hier.free(dest, tri_words(ci));
            hier.store(bnd, (ci * cj) as u64); // X(i,j)
            hier.free(dest, (ci * cj) as u64);
        }
        j += cj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ExplicitHier;

    fn setup(n: usize, nrhs: usize) -> (Mat, Mat, Mat) {
        let t = Mat::random_upper_triangular(n, 7);
        let x_true = Mat::random(n, nrhs, 8);
        let b = t.matmul_ref(&x_true);
        (t, b, x_true)
    }

    #[test]
    fn wa_trsm_solves_correctly() {
        let (t, mut b, x_true) = setup(12, 12);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b, &mut h);
        assert!(
            b.max_abs_diff(&x_true) < 1e-9,
            "{}",
            b.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn rl_trsm_solves_correctly() {
        let (t, mut b, x_true) = setup(12, 8);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_rl(&t, &mut b, &mut h);
        assert!(b.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn wa_trsm_stores_exactly_output_size() {
        let (n, nrhs) = (16, 16);
        let (t, mut b, _) = setup(n, nrhs);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b, &mut h);
        assert_eq!(h.traffic().boundary(0).store_words, (n * nrhs) as u64);
    }

    #[test]
    fn wa_trsm_load_count_matches_formula() {
        // Divisible case: n = nrhs = 16, b = 4, nb = 4.
        let (n, nrhs) = (16usize, 16usize);
        let (t, mut b, _) = setup(n, nrhs);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b, &mut h);
        let bs = 4u64;
        let nb = (n as u64) / bs;
        // loads = Σ_j Σ_i [ b² + (nb-1-i)·2b² + b(b+1)/2 ]
        let expected: u64 = (0..nb)
            .flat_map(|_| (0..nb).map(|i| bs * bs + (nb - 1 - i) * 2 * bs * bs + bs * (bs + 1) / 2))
            .sum();
        assert_eq!(h.traffic().boundary(0).load_words, expected);
    }

    #[test]
    fn rl_stores_asymptotically_more() {
        let (n, nrhs) = (24, 24);
        let (t, b0, _) = setup(n, nrhs);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        let mut h_wa = ExplicitHier::two_level(48);
        let mut h_rl = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b1, &mut h_wa);
        explicit_trsm_rl(&t, &mut b2, &mut h_rl);
        assert!(b1.max_abs_diff(&b2) < 1e-8);
        let s_wa = h_wa.traffic().boundary(0).store_words;
        let s_rl = h_rl.traffic().boundary(0).store_words;
        // RL stores ~ .5 (n/b)³ b² + n², WA stores n²: ratio ~ (n/b)/2 + 1.
        assert!(
            s_rl as f64 / s_wa as f64 > (n / 4) as f64 / 2.0,
            "ratio {} too small",
            s_rl as f64 / s_wa as f64
        );
    }

    #[test]
    fn theorem1_and_capacity_respected() {
        let (t, mut b, _) = setup(20, 12);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b, &mut h);
        let (wf, total) = h.theorem1_check(0);
        assert!(2 * wf >= total);
        assert!(h.peak(1) <= 48);
    }

    #[test]
    fn multilevel_trsm_solves_and_is_wa_at_the_bottom() {
        let (n, nrhs) = (16, 16);
        let (t, mut b, x_true) = setup(n, nrhs);
        let mut h = ExplicitHier::new(&[12, 48, u64::MAX]);
        explicit_trsm_multilevel(&t, &mut b, &mut h);
        assert!(
            b.max_abs_diff(&x_true) < 1e-8,
            "{}",
            b.max_abs_diff(&x_true)
        );
        // Writes to the backing store = exactly the output.
        assert_eq!(h.traffic().boundary(1).store_words, (n * nrhs) as u64);
        // Writes decrease monotonically toward the bottom.
        let w2 = h.writes_into_level(2);
        let w3 = h.writes_into_level(3);
        assert!(w2 > w3, "L2 writes {w2} vs L3 {w3}");
        // Capacities hold at both enforced levels.
        assert!(h.peak(1) <= 12);
        assert!(h.peak(2) <= 48);
        for bnd in 0..2 {
            let (wf, tot) = h.theorem1_check(bnd);
            assert!(2 * wf >= tot, "Theorem 1 at boundary {bnd}");
        }
    }

    #[test]
    fn multilevel_matches_two_level_numerics() {
        let (t, b0, _) = setup(16, 8);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        let mut h1 = ExplicitHier::two_level(48);
        let mut h2 = ExplicitHier::new(&[12, 48, u64::MAX]);
        explicit_trsm_wa(&t, &mut b1, &mut h1);
        explicit_trsm_multilevel(&t, &mut b2, &mut h2);
        assert!(b1.max_abs_diff(&b2) < 1e-9);
    }
}
