//! Matrix descriptors over a flat [`memsim::Mem`] address space.
//!
//! A [`MatDesc`] is a view — base address, shape, row stride — into the
//! word-addressed memory the instrumented kernels run on. Blocks of a
//! matrix are descriptors with the same stride, so kernels recurse over
//! blocks without copying (exactly like the `denseMat::block` calls in the
//! paper's Figure 4 listings).

use memsim::Mem;
use wa_core::Mat;

/// A strided matrix view into a flat word-addressed memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatDesc {
    /// Word address of element (0,0).
    pub base: usize,
    pub rows: usize,
    pub cols: usize,
    /// Words between consecutive rows.
    pub stride: usize,
}

impl MatDesc {
    /// A dense (packed) `rows × cols` descriptor at `base`.
    pub fn new(base: usize, rows: usize, cols: usize) -> Self {
        MatDesc {
            base,
            rows,
            cols,
            stride: cols,
        }
    }

    /// Word address of element `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        self.base + i * self.stride + j
    }

    /// Words this view spans in memory (footprint, not element count).
    pub fn span(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            0
        } else {
            (self.rows - 1) * self.stride + self.cols
        }
    }

    /// Number of elements.
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }

    /// The `(bi, bj)`-th block of size up to `b × b` (clipped at the
    /// edges), as in `denseMat::block(i, j, b)` in the paper's listings.
    pub fn block(&self, bi: usize, bj: usize, b: usize) -> MatDesc {
        let r0 = bi * b;
        let c0 = bj * b;
        debug_assert!(r0 < self.rows && c0 < self.cols);
        MatDesc {
            base: self.base + r0 * self.stride + c0,
            rows: b.min(self.rows - r0),
            cols: b.min(self.cols - c0),
            stride: self.stride,
        }
    }

    /// Arbitrary sub-view starting at `(r0, c0)` of shape `rows × cols`.
    pub fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatDesc {
        debug_assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        MatDesc {
            base: self.base + r0 * self.stride + c0,
            rows,
            cols,
            stride: self.stride,
        }
    }

    /// Number of block rows at block size `b` (`round_up` in the paper's
    /// listing).
    pub fn nblocks_rows(&self, b: usize) -> usize {
        self.rows.div_ceil(b)
    }

    /// Number of block columns at block size `b`.
    pub fn nblocks_cols(&self, b: usize) -> usize {
        self.cols.div_ceil(b)
    }

    /// Copy a [`Mat`] into memory at this descriptor.
    pub fn store_mat<M: Mem>(&self, mem: &mut M, m: &Mat) {
        assert_eq!((m.rows(), m.cols()), (self.rows, self.cols));
        for i in 0..self.rows {
            for j in 0..self.cols {
                mem.st(self.idx(i, j), m[(i, j)]);
            }
        }
    }

    /// Read this view back out as a [`Mat`].
    pub fn load_mat<M: Mem>(&self, mem: &mut M) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| mem.ld(self.idx(i, j)))
    }
}

/// Allocate consecutive descriptors in a fresh address space; returns the
/// descriptors and the total words needed. Useful for setting up kernels:
///
/// ```
/// use dense::desc::alloc_layout;
/// let (descs, words) = alloc_layout(&[(4, 4), (4, 6)]);
/// assert_eq!(descs[1].base, 16);
/// assert_eq!(words, 40);
/// ```
pub fn alloc_layout(shapes: &[(usize, usize)]) -> (Vec<MatDesc>, usize) {
    let mut base = 0;
    let mut out = Vec::with_capacity(shapes.len());
    for &(r, c) in shapes {
        out.push(MatDesc::new(base, r, c));
        base += r * c;
    }
    (out, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::RawMem;

    #[test]
    fn idx_row_major() {
        let d = MatDesc::new(100, 3, 5);
        assert_eq!(d.idx(0, 0), 100);
        assert_eq!(d.idx(2, 4), 100 + 2 * 5 + 4);
        assert_eq!(d.span(), 15);
    }

    #[test]
    fn blocks_share_storage() {
        let d = MatDesc::new(0, 8, 8);
        let b = d.block(1, 1, 4);
        assert_eq!(b.idx(0, 0), d.idx(4, 4));
        assert_eq!(b.idx(3, 3), d.idx(7, 7));
        assert_eq!(b.stride, 8);
    }

    #[test]
    fn edge_blocks_are_clipped() {
        let d = MatDesc::new(0, 10, 10);
        let b = d.block(3, 3, 3); // starts at (9,9)
        assert_eq!((b.rows, b.cols), (1, 1));
        assert_eq!(d.nblocks_rows(3), 4);
    }

    #[test]
    fn mat_round_trip() {
        let m = Mat::random(5, 7, 11);
        let d = MatDesc::new(3, 5, 7);
        let mut mem = RawMem::new(3 + 35);
        d.store_mat(&mut mem, &m);
        let back = d.load_mat(&mut mem);
        assert_eq!(back.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn layout_packs_consecutively() {
        let (d, words) = alloc_layout(&[(2, 3), (4, 4), (1, 10)]);
        assert_eq!(d[0].base, 0);
        assert_eq!(d[1].base, 6);
        assert_eq!(d[2].base, 22);
        assert_eq!(words, 32);
    }

    #[test]
    fn sub_view_addresses() {
        let d = MatDesc::new(0, 6, 6);
        let s = d.sub(2, 3, 2, 2);
        assert_eq!(s.idx(0, 0), 15);
        assert_eq!(s.idx(1, 1), 22);
    }
}
