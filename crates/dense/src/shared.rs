//! Shared-memory parallel WA matmul — the §9 "WA SMP thread scheduler"
//! direction, realized with std scoped threads.
//!
//! Two schedules over real threads:
//!
//! * [`par_matmul_wa`] — *owner-computes*: each thread owns a disjoint
//!   slab of C's block rows and runs the WA Algorithm 1 order inside it
//!   (`k` innermost). Every C element is written by exactly one thread,
//!   exactly once — the WA property survives parallelization, and there
//!   is no inter-thread write sharing (no coherence write traffic).
//! * [`par_matmul_kpart`] — *k-partitioned*: threads split the shared
//!   dimension and produce partial products that must be reduced — every
//!   C element is written `threads` times plus the reduction, the
//!   parallel analogue of a non-WA order.
//!
//! Both are verified against the sequential reference; the per-thread
//! write volumes are returned so tests (and benches) can observe the
//! write multiplication directly.

use wa_core::Mat;

/// Per-thread write statistics (words written to shared arrays).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadWrites {
    /// Words written into C (or a partial buffer destined for C).
    pub c_writes: u64,
}

/// Owner-computes WA schedule: C's rows are split into `threads`
/// contiguous slabs; thread `t` computes its slab with the blocked WA
/// order. Returns per-thread write counts.
pub fn par_matmul_wa(
    a: &Mat,
    b: &Mat,
    c: &mut Mat,
    bsize: usize,
    threads: usize,
) -> Vec<ThreadWrites> {
    let (m, n, l) = (a.rows(), a.cols(), b.cols());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), l);
    assert_eq!(b.rows(), n);
    assert!(threads >= 1 && bsize >= 1);

    let rows_per = m.div_ceil(threads);
    let mut stats = vec![ThreadWrites::default(); threads];
    // Disjoint row slabs of C: safe shared-memory parallelism without
    // any write sharing (each cache line of C has one writer).
    let c_data = c.as_mut_slice();
    let slabs: Vec<&mut [f64]> = c_data.chunks_mut(rows_per * l).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, slab) in slabs.into_iter().enumerate() {
            let r0 = t * rows_per;
            handles.push(s.spawn(move || {
                let rows = slab.len() / l;
                let mut writes = 0u64;
                // Blocked WA order within the slab: i, j blocks outer,
                // k innermost, register accumulator.
                let mut ib = 0;
                while ib < rows {
                    let ie = (ib + bsize).min(rows);
                    let mut jb = 0;
                    while jb < l {
                        let je = (jb + bsize).min(l);
                        for i in ib..ie {
                            for j in jb..je {
                                let mut acc = slab[i * l + j];
                                for k in 0..n {
                                    acc += a[(r0 + i, k)] * b[(k, j)];
                                }
                                slab[i * l + j] = acc;
                                writes += 1;
                            }
                        }
                        jb = je;
                    }
                    ib = ie;
                }
                (t, ThreadWrites { c_writes: writes })
            }));
        }
        for h in handles {
            let (t, w) = h.join().expect("worker panicked");
            stats[t] = w;
        }
    });
    stats
}

/// k-partitioned schedule: thread `t` computes `A[:, kt..] · B[kt.., :]`
/// into a private full-size partial buffer; partials are then reduced
/// into C. Same flops, `threads + 1`× the C-sized writes.
pub fn par_matmul_kpart(a: &Mat, b: &Mat, c: &mut Mat, threads: usize) -> Vec<ThreadWrites> {
    let (m, n, l) = (a.rows(), a.cols(), b.cols());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), l);
    assert_eq!(b.rows(), n);
    let k_per = n.div_ceil(threads);

    let mut partials: Vec<Mat> = Vec::new();
    let mut stats = vec![ThreadWrites::default(); threads];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let k0 = (t * k_per).min(n);
            let k1 = ((t + 1) * k_per).min(n);
            handles.push(s.spawn(move || {
                let mut p = Mat::zeros(m, l);
                let mut writes = 0u64;
                for i in 0..m {
                    for j in 0..l {
                        let mut acc = 0.0;
                        for k in k0..k1 {
                            acc += a[(i, k)] * b[(k, j)];
                        }
                        p[(i, j)] = acc;
                        writes += 1;
                    }
                }
                (t, p, ThreadWrites { c_writes: writes })
            }));
        }
        for h in handles {
            let (t, p, w) = h.join().expect("worker panicked");
            stats[t] = w;
            partials.push(p);
        }
    });

    // Reduction: every C element written once more.
    for p in &partials {
        for i in 0..m {
            for j in 0..l {
                c[(i, j)] += p[(i, j)];
            }
        }
    }
    stats
}

/// Total writes of C-sized data across threads (plus reduction for the
/// k-partitioned schedule, which the caller accounts separately).
pub fn total_c_writes(stats: &[ThreadWrites]) -> u64 {
    stats.iter().map(|s| s.c_writes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_schedule_correct_across_thread_counts() {
        let (m, n, l) = (37, 23, 29);
        let a = Mat::random(m, n, 71);
        let b = Mat::random(n, l, 72);
        let want = a.matmul_ref(&b);
        for threads in [1usize, 2, 3, 8] {
            let mut c = Mat::zeros(m, l);
            let stats = par_matmul_wa(&a, &b, &mut c, 8, threads);
            assert!(c.max_abs_diff(&want) < 1e-10, "threads={threads}");
            // WA property: total C writes == C size, regardless of threads.
            assert_eq!(total_c_writes(&stats), (m * l) as u64);
        }
    }

    #[test]
    fn kpart_schedule_correct_but_write_heavy() {
        let (m, n, l) = (24, 32, 20);
        let a = Mat::random(m, n, 73);
        let b = Mat::random(n, l, 74);
        let want = a.matmul_ref(&b);
        let threads = 4;
        let mut c = Mat::zeros(m, l);
        let stats = par_matmul_kpart(&a, &b, &mut c, threads);
        assert!(c.max_abs_diff(&want) < 1e-10);
        // Partial-product writes: threads × C size (plus the reduction).
        assert_eq!(total_c_writes(&stats), (threads * m * l) as u64);
    }

    #[test]
    fn schedules_agree_with_each_other() {
        let n = 31;
        let a = Mat::random(n, n, 75);
        let b = Mat::random(n, n, 76);
        let mut c1 = Mat::zeros(n, n);
        let mut c2 = Mat::zeros(n, n);
        par_matmul_wa(&a, &b, &mut c1, 4, 3);
        par_matmul_kpart(&a, &b, &mut c2, 3);
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn single_row_and_tiny_inputs() {
        let a = Mat::random(1, 5, 77);
        let b = Mat::random(5, 1, 78);
        let want = a.matmul_ref(&b);
        let mut c = Mat::zeros(1, 1);
        par_matmul_wa(&a, &b, &mut c, 16, 4);
        assert!((c[(0, 0)] - want[(0, 0)]).abs() < 1e-12);
    }
}
