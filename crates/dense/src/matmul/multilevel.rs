//! Multi-level recursive blocked matmul — the two codes of the paper's
//! Figure 4.
//!
//! * [`RecOrder::COuter`] is `WAMatMul` (Fig 4a): at each recursion level
//!   the loops run `i, k(C cols), j(shared)` with the shared dimension
//!   innermost — a full column of block-multiplications perpendicular to
//!   each C block completes before moving on. Under LRU this minimizes
//!   write-backs **when five blocks fit** in the cache (Prop 6.1) but
//!   degrades when only three fit (Fig 5 left column).
//! * [`RecOrder::AOuter`] is `ABMatMul` (Fig 4b): loops run `j(shared),
//!   i, k` — slabs parallel to C. Used below the top level, it keeps the
//!   C block at high LRU priority, so write-backs stay near the lower
//!   bound even when just under three blocks fit (Fig 5 right column).
//!
//! `ml_matmul(…, &[b_L3, b_L2, b_L1], top, rest)` reproduces both listings:
//! Fig 4a ≙ `(COuter, COuter)`, Fig 4b ≙ `(COuter, AOuter)`.

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel;
use memsim::Mem;

/// Loop order at one recursion level (paper Fig 4 naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecOrder {
    /// `WAMatMul` order: C-block outer, shared dimension innermost.
    COuter,
    /// `ABMatMul` order: shared dimension outermost (A/B slabs).
    AOuter,
}

/// Multi-level blocked `C += A·B`. `block_sizes` lists the block size per
/// recursion level, largest (outermost cache) first; when the list is
/// empty the base kernel runs. `top` gives the loop order for the first
/// (outermost) level, `rest` for all deeper levels.
pub fn ml_matmul<M: Mem>(
    mem: &mut M,
    a: MatDesc,
    b: MatDesc,
    c: MatDesc,
    block_sizes: &[usize],
    top: RecOrder,
    rest: RecOrder,
) {
    let Some((&bsize, deeper)) = block_sizes.split_first() else {
        mm_kernel(mem, a, b, c);
        return;
    };
    assert!(bsize > 0);
    let ni = c.nblocks_rows(bsize);
    let nk = c.nblocks_cols(bsize);
    let nj = a.nblocks_cols(bsize);
    // Indices follow the paper's listing: C is (i,k), A is (i,j), B is (j,k).
    let body = |mem: &mut M, i: usize, k: usize, j: usize| {
        ml_matmul(
            mem,
            a.block(i, j, bsize),
            b.block(j, k, bsize),
            c.block(i, k, bsize),
            deeper,
            rest,
            rest,
        );
    };
    match top {
        RecOrder::COuter => {
            for i in 0..ni {
                for k in 0..nk {
                    for j in 0..nj {
                        body(mem, i, k, j);
                    }
                }
            }
        }
        RecOrder::AOuter => {
            for j in 0..nj {
                for i in 0..ni {
                    for k in 0..nk {
                        body(mem, i, k, j);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, SimMem};
    use wa_core::Mat;

    fn run(n: usize, blocks: &[usize], top: RecOrder, rest: RecOrder, cache_words: usize) -> u64 {
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let cfg = CacheConfig {
            capacity_words: cache_words,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        ml_matmul(&mut mem, d[0], d[1], d[2], blocks, top, rest);
        mem.sim.flush();
        let c = mem.sim.llc();
        c.victims_m + c.flush_victims_m
    }

    /// The Figure 5 contrast at three-blocks-fit block size: the slab
    /// (Fig 4b) order keeps write-backs near the lower bound while the
    /// multi-level (Fig 4a) order thrashes the C block.
    #[test]
    fn slab_order_beats_multilevel_when_three_blocks_fit() {
        let n = 64;
        let bsize = 16; // 3 blocks of 16x16 = 768 words
        let cache_words = 768 + 8; // just over three blocks, far below five
        let fig4a = run(
            n,
            &[bsize, 4],
            RecOrder::COuter,
            RecOrder::COuter,
            cache_words,
        );
        let fig4b = run(
            n,
            &[bsize, 4],
            RecOrder::COuter,
            RecOrder::AOuter,
            cache_words,
        );
        let c_lines = (n * n / 8) as u64;
        assert!(
            fig4b <= 2 * c_lines,
            "slab order write-backs {fig4b} should stay near {c_lines}"
        );
        assert!(
            fig4a > fig4b,
            "multi-level order ({fig4a}) must exceed slab order ({fig4b})"
        );
    }

    /// Prop 6.1 regime: when five blocks fit, even the Fig 4a order holds
    /// write-backs at the output size.
    #[test]
    fn multilevel_fine_when_five_blocks_fit() {
        let n = 64;
        let bsize = 16;
        let cache_words = 5 * bsize * bsize + 16;
        let fig4a = run(
            n,
            &[bsize, 4],
            RecOrder::COuter,
            RecOrder::COuter,
            cache_words,
        );
        let c_lines = (n * n / 8) as u64;
        assert!(
            fig4a <= 2 * c_lines,
            "five-blocks regime write-backs {fig4a} vs bound {c_lines}"
        );
    }
}
