//! The base micro-kernel shared by every blocked variant.
//!
//! The kernels run row-at-a-time over the [`Mem`] bulk-run API: each
//! matrix row they touch is one contiguous [`memsim::AccessRun`]-shaped
//! transfer (`ld_run`/`st_run`), so the cache simulator charges it through
//! its line-granular fast path instead of walking every word. Row buffers
//! play the role the scalar accumulator played before — registers above
//! the studied boundary — and the write-avoiding property is unchanged:
//! every `C` element is still loaded once and stored once per kernel call.

use crate::desc::MatDesc;
use memsim::Mem;

/// `C += A·B`, row-form: row `i` of `C` is loaded once, accumulated across
/// the whole `k` sweep against streamed rows of `B`, and stored once. This
/// is the element-level analogue of the WA property — at the granularity
/// below the innermost blocking level, `C` traffic is minimal.
pub fn mm_kernel<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    debug_assert_eq!(a.cols, b.rows);
    let mut arow = vec![0.0; a.cols];
    let mut brow = vec![0.0; b.cols];
    let mut crow = vec![0.0; c.cols];
    for i in 0..c.rows {
        mem.phase("gemm-read");
        mem.ld_run(a.idx(i, 0), &mut arow);
        mem.ld_run(c.idx(i, 0), &mut crow);
        for (k, &aik) in arow.iter().enumerate() {
            mem.ld_run(b.idx(k, 0), &mut brow);
            for (cj, bj) in crow.iter_mut().zip(&brow) {
                *cj += aik * bj;
            }
        }
        mem.phase("c-write");
        mem.st_run(c.idx(i, 0), &crow);
    }
}

/// `C -= A·B` (used by TRSM and LU updates).
pub fn mm_kernel_sub<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    debug_assert_eq!(a.cols, b.rows);
    let mut arow = vec![0.0; a.cols];
    let mut brow = vec![0.0; b.cols];
    let mut crow = vec![0.0; c.cols];
    for i in 0..c.rows {
        mem.ld_run(a.idx(i, 0), &mut arow);
        mem.ld_run(c.idx(i, 0), &mut crow);
        for (k, &aik) in arow.iter().enumerate() {
            mem.ld_run(b.idx(k, 0), &mut brow);
            for (cj, bj) in crow.iter_mut().zip(&brow) {
                *cj -= aik * bj;
            }
        }
        mem.st_run(c.idx(i, 0), &crow);
    }
}

/// `C -= A·Bᵀ` (Cholesky's SYRK-like update reads the transpose in place).
/// Rows of `B` are the contiguous runs here: `C(i,j)` consumes row `j` of
/// `B` against row `i` of `A`.
pub fn mm_kernel_sub_bt<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.rows, c.cols);
    debug_assert_eq!(a.cols, b.cols);
    let mut arow = vec![0.0; a.cols];
    let mut brow = vec![0.0; b.cols];
    let mut crow = vec![0.0; c.cols];
    for i in 0..c.rows {
        mem.ld_run(a.idx(i, 0), &mut arow);
        mem.ld_run(c.idx(i, 0), &mut crow);
        for (j, cj) in crow.iter_mut().enumerate() {
            mem.ld_run(b.idx(j, 0), &mut brow);
            let acc: f64 = arow.iter().zip(&brow).map(|(x, y)| x * y).sum();
            *cj -= acc;
        }
        mem.st_run(c.idx(i, 0), &crow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{RawMem, TraceMem};
    use wa_core::Mat;

    #[test]
    fn kernel_writes_each_c_element_exactly_once() {
        let (d, words) = alloc_layout(&[(4, 4), (4, 4), (4, 4)]);
        let mut mem = TraceMem::new(words);
        let a = Mat::random(4, 4, 5);
        let b = Mat::random(4, 4, 6);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        mem.trace.clear();
        mm_kernel(&mut mem, d[0], d[1], d[2]);
        let writes = mem.trace.iter().filter(|x| x.is_write).count();
        assert_eq!(writes, 16, "one store per C element");
        let reads = mem.trace.iter().filter(|x| !x.is_write).count();
        // Row-form: C and A rows once each (16 + 16), B rows streamed
        // once per (i, k) pair (4 * 4 rows of 4 words).
        assert_eq!(reads, 16 + 16 + 64, "C + A once, B per (i,k)");
    }

    #[test]
    fn kernel_matches_reference() {
        let a = Mat::random(3, 5, 1);
        let b = Mat::random(5, 4, 2);
        let c0 = Mat::random(3, 4, 3);
        let (d, words) = alloc_layout(&[(3, 5), (5, 4), (3, 4)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        d[2].store_mat(&mut mem, &c0);
        mm_kernel(&mut mem, d[0], d[1], d[2]);
        let got = d[2].load_mat(&mut mem);
        let ab = a.matmul_ref(&b);
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - (c0[(i, j)] + ab[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sub_kernels_match_reference() {
        let a = Mat::random(3, 5, 1);
        let b = Mat::random(5, 4, 2);
        let c0 = Mat::random(3, 4, 3);
        let (d, words) = alloc_layout(&[(3, 5), (5, 4), (3, 4)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        d[2].store_mat(&mut mem, &c0);
        mm_kernel_sub(&mut mem, d[0], d[1], d[2]);
        let got = d[2].load_mat(&mut mem);
        let ab = a.matmul_ref(&b);
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - (c0[(i, j)] - ab[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bt_kernel_matches_reference() {
        let a = Mat::random(3, 5, 1);
        let b = Mat::random(4, 5, 2); // use B^T: (5,4)
        let c0 = Mat::random(3, 4, 3);
        let (d, words) = alloc_layout(&[(3, 5), (4, 5), (3, 4)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        d[2].store_mat(&mut mem, &c0);
        mm_kernel_sub_bt(&mut mem, d[0], d[1], d[2]);
        let got = d[2].load_mat(&mut mem);
        let abt = a.matmul_ref(&b.transpose());
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - (c0[(i, j)] - abt[(i, j)])).abs() < 1e-12);
            }
        }
    }
}
