//! The base micro-kernel shared by every blocked variant.

use crate::desc::MatDesc;
use memsim::Mem;

/// `C += A·B` with a register accumulator: each `C(i,j)` is loaded once,
/// accumulated over the whole `k` sweep, and stored once. This is the
/// element-level analogue of the WA property — at the granularity below
/// the innermost blocking level, `C` traffic is minimal.
pub fn mm_kernel<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    debug_assert_eq!(a.cols, b.rows);
    for i in 0..c.rows {
        for j in 0..c.cols {
            let mut acc = mem.ld(c.idx(i, j));
            for k in 0..a.cols {
                acc += mem.ld(a.idx(i, k)) * mem.ld(b.idx(k, j));
            }
            mem.st(c.idx(i, j), acc);
        }
    }
}

/// `C -= A·B` (used by TRSM and Cholesky updates).
pub fn mm_kernel_sub<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    debug_assert_eq!(a.cols, b.rows);
    for i in 0..c.rows {
        for j in 0..c.cols {
            let mut acc = mem.ld(c.idx(i, j));
            for k in 0..a.cols {
                acc -= mem.ld(a.idx(i, k)) * mem.ld(b.idx(k, j));
            }
            mem.st(c.idx(i, j), acc);
        }
    }
}

/// `C -= A·Bᵀ` (Cholesky's SYRK-like update reads the transpose in place).
pub fn mm_kernel_sub_bt<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.rows, c.cols);
    debug_assert_eq!(a.cols, b.cols);
    for i in 0..c.rows {
        for j in 0..c.cols {
            let mut acc = mem.ld(c.idx(i, j));
            for k in 0..a.cols {
                acc -= mem.ld(a.idx(i, k)) * mem.ld(b.idx(j, k));
            }
            mem.st(c.idx(i, j), acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{RawMem, TraceMem};
    use wa_core::Mat;

    #[test]
    fn kernel_writes_each_c_element_exactly_once() {
        let (d, words) = alloc_layout(&[(4, 4), (4, 4), (4, 4)]);
        let mut mem = TraceMem::new(words);
        let a = Mat::random(4, 4, 5);
        let b = Mat::random(4, 4, 6);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        mem.trace.clear();
        mm_kernel(&mut mem, d[0], d[1], d[2]);
        let writes = mem.trace.iter().filter(|x| x.is_write).count();
        assert_eq!(writes, 16, "one store per C element");
        let reads = mem.trace.iter().filter(|x| !x.is_write).count();
        assert_eq!(reads, 16 + 2 * 64, "C once + A,B per iteration");
    }

    #[test]
    fn sub_kernels_match_reference() {
        let a = Mat::random(3, 5, 1);
        let b = Mat::random(5, 4, 2);
        let c0 = Mat::random(3, 4, 3);
        let (d, words) = alloc_layout(&[(3, 5), (5, 4), (3, 4)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        d[2].store_mat(&mut mem, &c0);
        mm_kernel_sub(&mut mem, d[0], d[1], d[2]);
        let got = d[2].load_mat(&mut mem);
        let ab = a.matmul_ref(&b);
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - (c0[(i, j)] - ab[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bt_kernel_matches_reference() {
        let a = Mat::random(3, 5, 1);
        let b = Mat::random(4, 5, 2); // use B^T: (5,4)
        let c0 = Mat::random(3, 4, 3);
        let (d, words) = alloc_layout(&[(3, 5), (4, 5), (3, 4)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        d[2].store_mat(&mut mem, &c0);
        mm_kernel_sub_bt(&mut mem, d[0], d[1], d[2]);
        let got = d[2].load_mat(&mut mem);
        let abt = a.matmul_ref(&b.transpose());
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - (c0[(i, j)] - abt[(i, j)])).abs() < 1e-12);
            }
        }
    }
}
