//! Recursive cache-oblivious matmul (Frigo, Leiserson, Prokop,
//! Ramachandran), the Figure 2a baseline.
//!
//! The algorithm splits the largest of the three dimensions in two and
//! recurses, independent of any cache size, until the subproblem falls at
//! or below `base` elements per matrix; Theorem 3 of the paper proves this
//! instruction order cannot be write-avoiding — the cache-simulator tests
//! below and the Figure 2a reproduction observe exactly that.

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel;
use memsim::Mem;

/// `C += A·B`, recursive largest-dimension splitting. `base_dim` bounds the
/// leaf size (leaves are at most `base_dim` in every dimension); the paper's
/// machine used leaves fitting L1 handed to MKL, ours go to [`mm_kernel`].
pub fn co_matmul<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc, base_dim: usize) {
    debug_assert_eq!(a.rows, c.rows);
    debug_assert_eq!(b.cols, c.cols);
    debug_assert_eq!(a.cols, b.rows);
    let (l, m, n) = (c.rows, a.cols, c.cols);
    if l.max(m).max(n) <= base_dim {
        mm_kernel(mem, a, b, c);
        return;
    }
    if l >= m && l >= n {
        // Split C rows (and A rows).
        let h = l / 2;
        co_matmul(mem, a.sub(0, 0, h, m), b, c.sub(0, 0, h, n), base_dim);
        co_matmul(
            mem,
            a.sub(h, 0, l - h, m),
            b,
            c.sub(h, 0, l - h, n),
            base_dim,
        );
    } else if m >= n {
        // Split the shared dimension: two sequential updates of all of C.
        let h = m / 2;
        co_matmul(mem, a.sub(0, 0, l, h), b.sub(0, 0, h, n), c, base_dim);
        co_matmul(
            mem,
            a.sub(0, h, l, m - h),
            b.sub(h, 0, m - h, n),
            c,
            base_dim,
        );
    } else {
        // Split C columns (and B columns).
        let h = n / 2;
        co_matmul(mem, a, b.sub(0, 0, m, h), c.sub(0, 0, l, h), base_dim);
        co_matmul(
            mem,
            a,
            b.sub(0, h, m, n - h),
            c.sub(0, h, l, n - h),
            base_dim,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::ideal::co_matmul_ideal_misses;
    use memsim::{CacheConfig, MemSim, Policy, SimMem};
    use wa_core::Mat;

    /// The CO order is CA: LLC fills stay within a small factor of the
    /// ideal-cache model (the paper's Fig 2a shows the measured fills
    /// tracking the formula closely).
    #[test]
    fn co_fills_track_ideal_cache_model() {
        let n = 64;
        let cache_words = 1024; // 128 lines, far below the 3*64^2 working set
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let cfg = CacheConfig {
            capacity_words: cache_words,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        co_matmul(&mut mem, d[0], d[1], d[2], 8);
        let ideal = co_matmul_ideal_misses(n as u64, n as u64, n as u64, cache_words as u64, 8);
        let fills = mem.sim.llc().fills as f64;
        assert!(
            fills < 8.0 * ideal && fills > 0.5 * ideal,
            "fills {fills} vs ideal {ideal}"
        );
    }

    /// Theorem 3 observed: with a small cache, the CO order's write-backs
    /// scale with total traffic, not with the output size.
    #[test]
    fn co_writes_scale_with_traffic_not_output() {
        let n = 64;
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let cfg = CacheConfig {
            capacity_words: 512,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        co_matmul(&mut mem, d[0], d[1], d[2], 8);
        mem.sim.flush();
        let c = mem.sim.llc();
        let c_lines = (n * n / 8) as u64;
        let writes = c.victims_m + c.flush_victims_m;
        assert!(
            writes >= 3 * c_lines,
            "CO should rewrite C many times: {writes} vs output {c_lines}"
        );

        // And the WA blocked order on the same cache stays near the output
        // size, so the gap is the instruction order, not the cache.
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        crate::matmul::blocked::blocked_matmul(
            &mut mem,
            d[0],
            d[1],
            d[2],
            8,
            crate::matmul::LoopOrder::Ijk,
        );
        mem.sim.flush();
        let cwa = mem.sim.llc();
        let wa_writes = cwa.victims_m + cwa.flush_victims_m;
        assert!(
            writes >= 2 * wa_writes,
            "CO writes {writes} should far exceed WA writes {wa_writes}"
        );
    }
}
