//! Naive three-nested-loop matmul (dot-product innermost).
//!
//! The paper notes (§1) that this algorithm minimizes writes to slow memory
//! — each `C(i,j)` is produced once by a full dot product — but maximizes
//! reads of `A` and `B`, so it is write-minimal *without* being
//! communication-avoiding. It serves as the "min writes, terrible reads"
//! endpoint in the experiments.

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel;
use memsim::Mem;

/// `C += A·B` with no blocking at all.
pub fn naive_matmul<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc) {
    // The unblocked register-accumulator kernel *is* the naive algorithm.
    mm_kernel(mem, a, b, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, SimMem};
    use wa_core::Mat;

    /// With a cache that holds one B column sweep (plus an A row and a C
    /// line) but not a whole matrix, naive matmul writes back only ~C but
    /// re-reads B for every row of A: write-minimal without being CA.
    #[test]
    fn naive_is_write_minimal_but_read_heavy() {
        let n = 32;
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let cfg = CacheConfig {
            capacity_words: 512, // 64 lines: B-column (32) + A-row + C + slack
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        // Reset counters after setup by rebuilding the simulator.
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));

        naive_matmul(&mut mem, d[0], d[1], d[2]);
        mem.sim.flush();
        let c = mem.sim.llc();
        let total_writebacks = c.victims_m + c.flush_victims_m;
        let c_lines = (n * n / 8) as u64;
        assert!(
            total_writebacks <= 2 * c_lines,
            "write-backs {total_writebacks} far above C size {c_lines}"
        );
        // Reads are Θ(n³/line): all of B is re-fetched for every row of A.
        assert!(
            c.fills > (n * n * n / 16) as u64,
            "expected read-heavy behaviour, fills = {}",
            c.fills
        );
    }
}
