//! Classical matrix multiplication `C += A·B` in every instruction order
//! the paper studies.
//!
//! | variant | paper artifact | write behaviour |
//! |---------|----------------|-----------------|
//! | [`naive`] | §4.1 remark | min writes, max reads (not CA) |
//! | [`blocked`] | Algorithm 1 loop orders | WA iff `k` innermost |
//! | [`cache_oblivious`] | Fig 2a baseline, Thm 3 | CA but provably not WA |
//! | [`tuned`] | Fig 2b "MKL" stand-in | fast, write-oblivious |
//! | [`multilevel`] | Fig 4a/4b codes, Fig 5 | multi-level WA vs slab order |
//!
//! All variants compute identical results (up to floating-point
//! associativity) and are verified against [`wa_core::Mat::matmul_ref`].

pub mod blocked;
pub mod cache_oblivious;
pub mod kernel;
pub mod multilevel;
pub mod naive;
pub mod tuned;

pub use blocked::{blocked_matmul, LoopOrder};
pub use cache_oblivious::co_matmul;
pub use kernel::mm_kernel;
pub use multilevel::{ml_matmul, RecOrder};
pub use naive::naive_matmul;
pub use tuned::tuned_matmul;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::RawMem;
    use wa_core::Mat;

    /// Run one variant on random inputs and compare to the reference.
    fn check(f: impl Fn(&mut RawMem, crate::MatDesc, crate::MatDesc, crate::MatDesc)) {
        for &(m, n, l) in &[
            (1usize, 1usize, 1usize),
            (4, 4, 4),
            (7, 5, 9),
            (16, 16, 16),
            (13, 17, 11),
        ] {
            let a = Mat::random(m, n, 1);
            let b = Mat::random(n, l, 2);
            let c0 = Mat::random(m, l, 3);
            let (d, words) = alloc_layout(&[(m, n), (n, l), (m, l)]);
            let mut mem = RawMem::new(words);
            d[0].store_mat(&mut mem, &a);
            d[1].store_mat(&mut mem, &b);
            d[2].store_mat(&mut mem, &c0);
            f(&mut mem, d[0], d[1], d[2]);
            let want = {
                let mut w = a.matmul_ref(&b);
                for i in 0..m {
                    for j in 0..l {
                        w[(i, j)] += c0[(i, j)];
                    }
                }
                w
            };
            let got = d[2].load_mat(&mut mem);
            assert!(
                got.max_abs_diff(&want) < 1e-10,
                "mismatch at {m}x{n}x{l}: {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn naive_correct() {
        check(naive_matmul);
    }

    #[test]
    fn kernel_correct() {
        check(mm_kernel);
    }

    #[test]
    fn blocked_all_orders_correct() {
        for order in LoopOrder::ALL {
            check(|mem, a, b, c| blocked_matmul(mem, a, b, c, 3, order));
            check(|mem, a, b, c| blocked_matmul(mem, a, b, c, 8, order));
        }
    }

    #[test]
    fn cache_oblivious_correct() {
        check(|mem, a, b, c| co_matmul(mem, a, b, c, 16));
        check(|mem, a, b, c| co_matmul(mem, a, b, c, 64));
    }

    #[test]
    fn tuned_correct() {
        check(|mem, a, b, c| tuned_matmul(mem, a, b, c, 6));
    }

    #[test]
    fn multilevel_correct() {
        for top in [RecOrder::COuter, RecOrder::AOuter] {
            for rest in [RecOrder::COuter, RecOrder::AOuter] {
                check(|mem, a, b, c| ml_matmul(mem, a, b, c, &[8, 3], top, rest));
            }
        }
    }
}
