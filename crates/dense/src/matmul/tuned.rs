//! "MKL stand-in" for Figure 2b: a time-oriented blocked matmul that is
//! deliberately *write-oblivious*.
//!
//! MKL (closed source) plays one role in the paper's Figure 2b: a kernel
//! tuned for speed whose internal blocking sweeps the shared dimension
//! *outermost*, so each `C` panel is read and rewritten once per k-panel —
//! write-backs grow linearly in the middle dimension `m` instead of staying
//! at the output size. This stand-in reproduces that traffic pattern with a
//! k-outermost panel loop over L2-sized tiles.

use crate::desc::MatDesc;
use crate::matmul::blocked::{blocked_matmul, LoopOrder};
use memsim::Mem;

/// `C += A·B` with k-outermost panel blocking at tile size `bsize`
/// (typically chosen to fit ~L2, ignoring L3 entirely — the point).
pub fn tuned_matmul<M: Mem>(mem: &mut M, a: MatDesc, b: MatDesc, c: MatDesc, bsize: usize) {
    blocked_matmul(mem, a, b, c, bsize, LoopOrder::Kij);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, SimMem};
    use wa_core::Mat;

    /// Figure 2b's qualitative content: the tuned kernel's write-backs grow
    /// with the middle dimension m while a WA execution's stay flat.
    #[test]
    fn tuned_writebacks_grow_with_middle_dimension() {
        let n = 32;
        let cfg = CacheConfig {
            capacity_words: 1024,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut writes = Vec::new();
        for m in [16usize, 64] {
            let (d, words) = alloc_layout(&[(n, m), (m, n), (n, n)]);
            let mut mem = SimMem::new(words, MemSim::two_level(cfg));
            d[0].store_mat(&mut mem, &Mat::random(n, m, 1));
            d[1].store_mat(&mut mem, &Mat::random(m, n, 2));
            let data = std::mem::take(&mut mem.data);
            let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
            tuned_matmul(&mut mem, d[0], d[1], d[2], 8);
            mem.sim.flush();
            let c = mem.sim.llc();
            writes.push(c.victims_m + c.flush_victims_m);
        }
        assert!(
            writes[1] >= 3 * writes[0],
            "4x middle dim should multiply write-backs: {writes:?}"
        );
    }
}
