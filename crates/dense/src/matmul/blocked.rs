//! Algorithm 1: two-level blocked classical matmul, with the block-loop
//! order as a parameter.
//!
//! The paper's key observation (§4.1): every one of the six orders is
//! communication-avoiding, but the algorithm is write-avoiding **only when
//! `k` is the innermost block loop** — then each `C` block is updated to
//! completion while resident and stored exactly once. With `k` outermost,
//! each `C` block is re-read and re-written `n/b` times.

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel;
use memsim::Mem;

/// Order of the three block loops (`i` over C rows, `j` over C cols, `k`
/// over the shared dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopOrder {
    Ijk,
    Ikj,
    Jik,
    Jki,
    Kij,
    Kji,
}

impl LoopOrder {
    pub const ALL: [LoopOrder; 6] = [
        LoopOrder::Ijk,
        LoopOrder::Ikj,
        LoopOrder::Jik,
        LoopOrder::Jki,
        LoopOrder::Kij,
        LoopOrder::Kji,
    ];

    /// Orders with `k` innermost are write-avoiding (Algorithm 1).
    pub fn is_write_avoiding(self) -> bool {
        matches!(self, LoopOrder::Ijk | LoopOrder::Jik)
    }

    /// Map the loop nest position `(outer, middle, inner)` to `(i, j, k)`
    /// block indices.
    #[inline]
    fn map(self, o: usize, m: usize, inr: usize) -> (usize, usize, usize) {
        match self {
            LoopOrder::Ijk => (o, m, inr),
            LoopOrder::Ikj => (o, inr, m),
            LoopOrder::Jik => (m, o, inr),
            LoopOrder::Jki => (inr, o, m),
            LoopOrder::Kij => (m, inr, o),
            LoopOrder::Kji => (inr, m, o),
        }
    }

    /// Trip counts for the nest positions given block counts `(ni, nj, nk)`.
    fn trips(self, ni: usize, nj: usize, nk: usize) -> (usize, usize, usize) {
        match self {
            LoopOrder::Ijk => (ni, nj, nk),
            LoopOrder::Ikj => (ni, nk, nj),
            LoopOrder::Jik => (nj, ni, nk),
            LoopOrder::Jki => (nj, nk, ni),
            LoopOrder::Kij => (nk, ni, nj),
            LoopOrder::Kji => (nk, nj, ni),
        }
    }
}

/// `C += A·B`, blocked at size `b`, block loops in `order`.
///
/// ```
/// use dense::desc::alloc_layout;
/// use dense::matmul::{blocked_matmul, LoopOrder};
/// use memsim::RawMem;
/// use wa_core::Mat;
/// let (a, b) = (Mat::random(8, 8, 1), Mat::random(8, 8, 2));
/// let (d, words) = alloc_layout(&[(8, 8), (8, 8), (8, 8)]);
/// let mut mem = RawMem::new(words);
/// d[0].store_mat(&mut mem, &a);
/// d[1].store_mat(&mut mem, &b);
/// blocked_matmul(&mut mem, d[0], d[1], d[2], 4, LoopOrder::Ijk);
/// assert!(d[2].load_mat(&mut mem).max_abs_diff(&a.matmul_ref(&b)) < 1e-12);
/// ```
pub fn blocked_matmul<M: Mem>(
    mem: &mut M,
    a: MatDesc,
    b: MatDesc,
    c: MatDesc,
    bsize: usize,
    order: LoopOrder,
) {
    assert!(bsize > 0);
    assert_eq!(a.rows, c.rows);
    assert_eq!(b.cols, c.cols);
    assert_eq!(a.cols, b.rows);
    let ni = c.nblocks_rows(bsize);
    let nj = c.nblocks_cols(bsize);
    let nk = a.nblocks_cols(bsize);
    let (t0, t1, t2) = order.trips(ni, nj, nk);
    for o in 0..t0 {
        for m in 0..t1 {
            for inr in 0..t2 {
                let (i, j, k) = order.map(o, m, inr);
                mm_kernel(
                    mem,
                    a.block(i, k, bsize),
                    b.block(k, j, bsize),
                    c.block(i, j, bsize),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, SimMem};
    use wa_core::Mat;

    fn run_with_sim(order: LoopOrder, n: usize, bsize: usize, cache_words: usize) -> (u64, u64) {
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let cfg = CacheConfig {
            capacity_words: cache_words,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, order);
        mem.sim.flush();
        let c = mem.sim.llc();
        (c.victims_m + c.flush_victims_m, c.fills)
    }

    /// The paper's central sequential claim, at cache-simulator level:
    /// k-innermost orders write ~C once; k-outermost orders write it
    /// ~n/b times.
    #[test]
    fn k_innermost_is_write_avoiding_k_outermost_is_not() {
        let n = 48;
        let bsize = 8;
        // Cache: 5 blocks of 8x8 = 320 words -> round up to lines: 320/8=40
        // lines. Use 48 lines for margin (Prop 6.1's "five blocks + one
        // line" condition).
        let cache_words = 3 * 8 * (5 * bsize * bsize / 8 + 8);
        let (wa_writes, wa_fills) = run_with_sim(LoopOrder::Ijk, n, bsize, cache_words);
        let (rw_writes, rw_fills) = run_with_sim(LoopOrder::Kij, n, bsize, cache_words);
        let c_lines = (n * n / 8) as u64;
        assert!(
            wa_writes <= 2 * c_lines,
            "WA order writes {wa_writes} vs C size {c_lines}"
        );
        assert!(
            rw_writes >= 3 * c_lines,
            "non-WA order should rewrite C repeatedly: {rw_writes} vs {c_lines}"
        );
        // Both are CA: fills within a small factor of each other.
        assert!(rw_fills < 4 * wa_fills && wa_fills < 4 * rw_fills);
    }

    #[test]
    fn jik_also_write_avoiding() {
        let n = 48;
        let bsize = 8;
        let cache_words = 3 * 8 * (5 * bsize * bsize / 8 + 8);
        let (writes, _) = run_with_sim(LoopOrder::Jik, n, bsize, cache_words);
        let c_lines = (n * n / 8) as u64;
        assert!(writes <= 2 * c_lines);
    }

    #[test]
    fn classification_constant() {
        let wa: Vec<bool> = LoopOrder::ALL
            .iter()
            .map(|o| o.is_write_avoiding())
            .collect();
        assert_eq!(wa, vec![true, false, true, false, false, false]);
    }
}
