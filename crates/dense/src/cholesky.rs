//! Access-driven blocked Cholesky (Algorithm 3) over a [`memsim::Mem`].

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel_sub_bt;
use memsim::Mem;

/// Block order for the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholVariant {
    /// Write-avoiding left-looking order (Algorithm 3).
    LeftLooking,
    /// Non-WA right-looking (eager Schur-complement) order.
    RightLooking,
}

/// Unblocked in-place Cholesky of a diagonal block (lower triangle).
fn chol_base<M: Mem>(mem: &mut M, a: MatDesc) {
    debug_assert_eq!(a.rows, a.cols);
    for j in 0..a.rows {
        let mut djj = mem.ld(a.idx(j, j));
        for k in 0..j {
            let v = mem.ld(a.idx(j, k));
            djj -= v * v;
        }
        assert!(djj > 0.0, "matrix not positive definite");
        let ljj = djj.sqrt();
        mem.st(a.idx(j, j), ljj);
        for i in j + 1..a.rows {
            let mut v = mem.ld(a.idx(i, j));
            for k in 0..j {
                v -= mem.ld(a.idx(i, k)) * mem.ld(a.idx(j, k));
            }
            mem.st(a.idx(i, j), v / ljj);
        }
    }
}

/// Lower-half SYRK: `C -= X·Xᵀ` restricted to `j ≤ i` (C diagonal block).
fn syrk_base<M: Mem>(mem: &mut M, x: MatDesc, c: MatDesc) {
    debug_assert_eq!(c.rows, c.cols);
    debug_assert_eq!(x.rows, c.rows);
    for i in 0..c.rows {
        for j in 0..=i {
            let mut acc = mem.ld(c.idx(i, j));
            for k in 0..x.cols {
                acc -= mem.ld(x.idx(i, k)) * mem.ld(x.idx(j, k));
            }
            mem.st(c.idx(i, j), acc);
        }
    }
}

/// Solve `X · Lᵀ = B` in place (B := B·L⁻ᵀ) for factored lower-triangular L.
fn trsm_rt_base<M: Mem>(mem: &mut M, l: MatDesc, b: MatDesc) {
    debug_assert_eq!(l.rows, l.cols);
    debug_assert_eq!(b.cols, l.rows);
    for i in 0..b.rows {
        for c in 0..l.rows {
            let mut acc = mem.ld(b.idx(i, c));
            for t in 0..c {
                acc -= mem.ld(b.idx(i, t)) * mem.ld(l.idx(c, t));
            }
            let lcc = mem.ld(l.idx(c, c));
            mem.st(b.idx(i, c), acc / lcc);
        }
    }
}

/// Blocked Cholesky: `a` (symmetric positive definite, only the lower
/// triangle is accessed) is overwritten by `L` in its lower triangle.
pub fn blocked_cholesky<M: Mem>(mem: &mut M, a: MatDesc, bsize: usize, variant: CholVariant) {
    assert_eq!(a.rows, a.cols);
    let nb = a.nblocks_rows(bsize);
    match variant {
        CholVariant::LeftLooking => {
            for i in 0..nb {
                for k in 0..i {
                    syrk_base(mem, a.block(i, k, bsize), a.block(i, i, bsize));
                }
                chol_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    for k in 0..i {
                        mm_kernel_sub_bt(
                            mem,
                            a.block(j, k, bsize),
                            a.block(i, k, bsize),
                            a.block(j, i, bsize),
                        );
                    }
                    trsm_rt_base(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                }
            }
        }
        CholVariant::RightLooking => {
            for i in 0..nb {
                chol_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    trsm_rt_base(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                }
                for j in i + 1..nb {
                    for k in i + 1..=j {
                        if k == j {
                            syrk_base(mem, a.block(j, i, bsize), a.block(j, j, bsize));
                        } else {
                            mm_kernel_sub_bt(
                                mem,
                                a.block(j, i, bsize),
                                a.block(k, i, bsize),
                                a.block(j, k, bsize),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};
    use wa_core::Mat;

    fn check(n: usize, bsize: usize, variant: CholVariant) {
        let a0 = Mat::random_spd(n, 31);
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a0);
        blocked_cholesky(&mut mem, d[0], bsize, variant);
        let l = d[0].load_mat(&mut mem).lower_triangular();
        let prod = l.matmul_ref(&l.transpose());
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (prod[(i, j)] - a0[(i, j)]).abs() < 1e-8 * a0[(i, i)].max(1.0),
                    "{variant:?} n{n} b{bsize} at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn factorizes_correctly_all_variants_and_shapes() {
        for v in [CholVariant::LeftLooking, CholVariant::RightLooking] {
            check(8, 4, v);
            check(16, 4, v);
            check(13, 4, v); // uneven edge blocks
            check(16, 16, v); // single block
        }
    }

    /// §4.3/Prop 6.2: left-looking stays near n²/2 write-backs under LRU;
    /// right-looking rewrites the Schur complement.
    #[test]
    fn left_looking_writes_less_under_lru() {
        let (n, bsize) = (32usize, 8usize);
        let cfg = CacheConfig {
            capacity_words: 5 * bsize * bsize + 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut writes = Vec::new();
        for v in [CholVariant::LeftLooking, CholVariant::RightLooking] {
            let a0 = Mat::random_spd(n, 33);
            let (d, words) = alloc_layout(&[(n, n)]);
            let mut mem = SimMem::new(words, MemSim::two_level(cfg));
            d[0].store_mat(&mut mem, &a0);
            let data = std::mem::take(&mut mem.data);
            let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
            blocked_cholesky(&mut mem, d[0], bsize, v);
            mem.sim.flush();
            let c = mem.sim.llc();
            writes.push(c.victims_m + c.flush_victims_m);
        }
        // Output is the lower triangle: ~n²/2 words; line granularity and
        // the row-major layout make the written footprint up to ~n²
        // (every line crossing the diagonal is dirtied), so compare
        // variants rather than absolute bounds, plus a generous cap.
        let full_lines = (n * n / 8) as u64;
        assert!(
            writes[0] <= 2 * full_lines,
            "LL write-backs {} vs matrix {full_lines}",
            writes[0]
        );
        assert!(
            writes[1] > writes[0],
            "RL {} must exceed LL {}",
            writes[1],
            writes[0]
        );
    }
}
