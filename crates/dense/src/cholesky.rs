//! Access-driven blocked Cholesky (Algorithm 3) over a [`memsim::Mem`].

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel_sub_bt;
use memsim::Mem;

/// Block order for the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholVariant {
    /// Write-avoiding left-looking order (Algorithm 3).
    LeftLooking,
    /// Non-WA right-looking (eager Schur-complement) order.
    RightLooking,
}

/// Unblocked in-place Cholesky of a diagonal block (lower triangle).
/// Row-run form: the row-`j` prefix is loaded once per pivot and each
/// row-`i` prefix streams as one run.
fn chol_base<M: Mem>(mem: &mut M, a: MatDesc) {
    debug_assert_eq!(a.rows, a.cols);
    let mut jrow = vec![0.0; a.cols];
    let mut irow = vec![0.0; a.cols];
    for j in 0..a.rows {
        let jr = &mut jrow[..j];
        mem.ld_run(a.idx(j, 0), jr);
        let mut djj = mem.ld(a.idx(j, j));
        for v in jr.iter() {
            djj -= v * v;
        }
        assert!(djj > 0.0, "matrix not positive definite");
        let ljj = djj.sqrt();
        mem.st(a.idx(j, j), ljj);
        for i in j + 1..a.rows {
            let ir = &mut irow[..j];
            mem.ld_run(a.idx(i, 0), ir);
            let mut v = mem.ld(a.idx(i, j));
            for (x, y) in ir.iter().zip(jrow[..j].iter()) {
                v -= x * y;
            }
            mem.st(a.idx(i, j), v / ljj);
        }
    }
}

/// Lower-half SYRK: `C -= X·Xᵀ` restricted to `j ≤ i` (C diagonal block).
/// Rows of `X` and the row-`i` prefix of `C` are the contiguous runs.
fn syrk_base<M: Mem>(mem: &mut M, x: MatDesc, c: MatDesc) {
    debug_assert_eq!(c.rows, c.cols);
    debug_assert_eq!(x.rows, c.rows);
    let mut xi = vec![0.0; x.cols];
    let mut xj = vec![0.0; x.cols];
    let mut crow = vec![0.0; c.cols];
    for i in 0..c.rows {
        mem.ld_run(x.idx(i, 0), &mut xi);
        let cr = &mut crow[..i + 1];
        mem.ld_run(c.idx(i, 0), cr);
        for (j, cj) in cr.iter_mut().enumerate() {
            mem.ld_run(x.idx(j, 0), &mut xj);
            let acc: f64 = xi.iter().zip(&xj).map(|(u, v)| u * v).sum();
            *cj -= acc;
        }
        mem.st_run(c.idx(i, 0), cr);
    }
}

/// Solve `X · Lᵀ = B` in place (B := B·L⁻ᵀ) for factored lower-triangular
/// L. Each row of `B` is solved in a register buffer (loaded and stored
/// as one run); the row-`c` prefix of `L` is one run per column step.
fn trsm_rt_base<M: Mem>(mem: &mut M, l: MatDesc, b: MatDesc) {
    debug_assert_eq!(l.rows, l.cols);
    debug_assert_eq!(b.cols, l.rows);
    let mut brow = vec![0.0; b.cols];
    let mut lrow = vec![0.0; l.cols];
    for i in 0..b.rows {
        mem.ld_run(b.idx(i, 0), &mut brow);
        for c in 0..l.rows {
            let lr = &mut lrow[..c + 1];
            mem.ld_run(l.idx(c, 0), lr); // L(c, 0..=c) incl. the diagonal
            let mut acc = brow[c];
            for (bt, lt) in brow[..c].iter().zip(lr.iter()) {
                acc -= bt * lt;
            }
            brow[c] = acc / lr[c];
        }
        mem.st_run(b.idx(i, 0), &brow);
    }
}

/// Blocked Cholesky: `a` (symmetric positive definite, only the lower
/// triangle is accessed) is overwritten by `L` in its lower triangle.
pub fn blocked_cholesky<M: Mem>(mem: &mut M, a: MatDesc, bsize: usize, variant: CholVariant) {
    assert_eq!(a.rows, a.cols);
    let nb = a.nblocks_rows(bsize);
    match variant {
        CholVariant::LeftLooking => {
            for i in 0..nb {
                for k in 0..i {
                    syrk_base(mem, a.block(i, k, bsize), a.block(i, i, bsize));
                }
                chol_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    for k in 0..i {
                        mm_kernel_sub_bt(
                            mem,
                            a.block(j, k, bsize),
                            a.block(i, k, bsize),
                            a.block(j, i, bsize),
                        );
                    }
                    trsm_rt_base(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                }
            }
        }
        CholVariant::RightLooking => {
            for i in 0..nb {
                chol_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    trsm_rt_base(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                }
                for j in i + 1..nb {
                    for k in i + 1..=j {
                        if k == j {
                            syrk_base(mem, a.block(j, i, bsize), a.block(j, j, bsize));
                        } else {
                            mm_kernel_sub_bt(
                                mem,
                                a.block(j, i, bsize),
                                a.block(k, i, bsize),
                                a.block(j, k, bsize),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};
    use wa_core::Mat;

    fn check(n: usize, bsize: usize, variant: CholVariant) {
        let a0 = Mat::random_spd(n, 31);
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a0);
        blocked_cholesky(&mut mem, d[0], bsize, variant);
        let l = d[0].load_mat(&mut mem).lower_triangular();
        let prod = l.matmul_ref(&l.transpose());
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (prod[(i, j)] - a0[(i, j)]).abs() < 1e-8 * a0[(i, i)].max(1.0),
                    "{variant:?} n{n} b{bsize} at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn factorizes_correctly_all_variants_and_shapes() {
        for v in [CholVariant::LeftLooking, CholVariant::RightLooking] {
            check(8, 4, v);
            check(16, 4, v);
            check(13, 4, v); // uneven edge blocks
            check(16, 16, v); // single block
        }
    }

    /// §4.3/Prop 6.2: left-looking stays near n²/2 write-backs under LRU;
    /// right-looking rewrites the Schur complement.
    #[test]
    fn left_looking_writes_less_under_lru() {
        let (n, bsize) = (32usize, 8usize);
        let cfg = CacheConfig {
            capacity_words: 5 * bsize * bsize + 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut writes = Vec::new();
        for v in [CholVariant::LeftLooking, CholVariant::RightLooking] {
            let a0 = Mat::random_spd(n, 33);
            let (d, words) = alloc_layout(&[(n, n)]);
            let mut mem = SimMem::new(words, MemSim::two_level(cfg));
            d[0].store_mat(&mut mem, &a0);
            let data = std::mem::take(&mut mem.data);
            let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
            blocked_cholesky(&mut mem, d[0], bsize, v);
            mem.sim.flush();
            let c = mem.sim.llc();
            writes.push(c.victims_m + c.flush_victims_m);
        }
        // Output is the lower triangle: ~n²/2 words; line granularity and
        // the row-major layout make the written footprint up to ~n²
        // (every line crossing the diagonal is dirtied), so compare
        // variants rather than absolute bounds, plus a generous cap.
        let full_lines = (n * n / 8) as u64;
        assert!(
            writes[0] <= 2 * full_lines,
            "LL write-backs {} vs matrix {full_lines}",
            writes[0]
        );
        assert!(
            writes[1] > writes[0],
            "RL {} must exceed LL {}",
            writes[1],
            writes[0]
        );
    }
}
