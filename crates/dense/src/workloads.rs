//! Engine registrations for the dense kernels.
//!
//! Each paper algorithm variant registers once; the run function projects
//! whichever backend was requested into a [`RunReport`]:
//!
//! * `explicit` — the Algorithm 1–3 explicit-movement kernels on a
//!   two-level [`ExplicitHier`] whose fast memory is the scale's L3;
//! * `simmed` — the access-driven kernels through a fully-associative
//!   true-LRU L3-sized simulator (the Propositions 6.1/6.2 setting),
//!   flushed before reporting so end-of-run dirty state is charged;
//! * `raw` — the same access-driven kernels on raw memory (wall clock);
//! * `traced` — the address trace, reported as length/distinct-lines.
//!
//! Geometry: fast memory `M` = the scale's L3 words; the matrix dimension
//! is `2·b_sim` where `b_sim = ⌊√(M/5)⌋` rounded down to a whole number
//! of lines, so block edges align with cache lines and the simulated
//! write-backs are exactly the output size for WA orders (Prop 6.1).

use crate::cholesky::{blocked_cholesky, CholVariant};
use crate::desc::alloc_layout;
use crate::explicit_cholesky::{explicit_cholesky_ll, explicit_cholesky_rl};
use crate::explicit_mm::explicit_mm_two_level;
use crate::explicit_trsm::{explicit_trsm_rl, explicit_trsm_wa};
use crate::lu::{blocked_lu, LuVariant};
use crate::matmul::{blocked_matmul, co_matmul, LoopOrder};
use crate::trsm::{blocked_trsm, TrsmVariant};
use memsim::xeon::XeonGeometry;
use memsim::{explicit_report, memsim_report, ExplicitHier, Mem, MemSim, RawMem, SimMem, TraceMem};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::Mat;

/// Fast-memory capacity (words) for the two-level models at `scale`.
pub fn fast_words(scale: Scale) -> usize {
    XeonGeometry::for_scale(scale, memsim::Policy::Lru).l3_words
}

/// Simulated block size: largest whole-line block with five copies
/// resident (Prop 6.1 head-room), and the matrix dimension `n = 2b`.
pub fn sim_block_and_dim(scale: Scale) -> (usize, usize) {
    let m = fast_words(scale);
    let b = ((((m / 5) as f64).sqrt()) as usize / 8 * 8).max(8);
    (b, 2 * b)
}

/// Single-level (L3-only) fully-associative LRU simulator of `m` words.
fn l3_sim(m: usize) -> MemSim {
    MemSim::single_level_lru(m)
}

/// Stage three matrices into a fresh memory, returning `(descs, data)`.
fn stage(mats: &[&Mat]) -> (Vec<crate::MatDesc>, Vec<f64>) {
    let shapes: Vec<(usize, usize)> = mats.iter().map(|m| (m.rows(), m.cols())).collect();
    let (d, words) = alloc_layout(&shapes);
    let mut raw = RawMem::new(words);
    for (desc, m) in d.iter().zip(mats) {
        desc.store_mat(&mut raw, m);
    }
    (d, raw.data)
}

fn base_report(name: &str, backend: BackendKind, scale: Scale, n: usize) -> RunReport {
    RunReport::new(name, backend, scale)
        .config("n", n)
        .config("fast_words", fast_words(scale))
}

/// Run one access-driven dense kernel on the requested backend. The
/// kernel closure receives the memory and the matrix descriptors.
fn run_mem_kernel(
    name: &'static str,
    backend: BackendKind,
    scale: Scale,
    mats: &[&Mat],
    kernel: impl Fn(&mut &mut dyn Mem, &[crate::MatDesc]),
) -> Result<RunReport, EngineError> {
    let n = mats[0].rows();
    let m_words = fast_words(scale);
    let (d, data) = stage(mats);
    match backend {
        BackendKind::Raw => {
            let mut mem = RawMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            let mut r = base_report(name, backend, scale, n);
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Simmed => {
            let mut mem = SimMem::from_vec(data, l3_sim(m_words));
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            mem.sim.flush();
            let mut r = memsim_report(&mem.sim, base_report(name, backend, scale, n))
                .note("flushed: end-of-run dirty lines charged to the DRAM boundary");
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Traced => {
            let mut mem = TraceMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            let distinct: std::collections::BTreeSet<usize> =
                mem.trace.iter().map(|a| a.addr / 8).collect();
            let writes = mem.trace.iter().filter(|a| a.is_write).count();
            let mut r = base_report(name, backend, scale, n)
                .config("trace_len", mem.trace.len())
                .config("trace_writes", writes)
                .config("trace_distinct_lines", distinct.len());
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Explicit => Err(EngineError::UnsupportedBackend {
            workload: name.to_string(),
            backend,
            supported: vec![BackendKind::Raw, BackendKind::Simmed, BackendKind::Traced],
        }),
    }
}

/// Matmul workloads: WA (`k` innermost) and non-WA (`k` outermost) blocked
/// orders, plus the cache-oblivious recursion.
fn matmul_workload(
    name: &'static str,
    description: &'static str,
    order: Option<LoopOrder>, // None = cache-oblivious
) -> Box<dyn Workload> {
    let backends = if order.is_some() {
        vec![
            BackendKind::Raw,
            BackendKind::Simmed,
            BackendKind::Traced,
            BackendKind::Explicit,
        ]
    } else {
        vec![BackendKind::Raw, BackendKind::Simmed, BackendKind::Traced]
    };
    FnWorkload::boxed(
        name,
        "dense",
        description,
        &backends,
        move |backend, scale| {
            let (bsize, n) = sim_block_and_dim(scale);
            let a = Mat::random(n, n, 11);
            let b = Mat::random(n, n, 12);
            if backend == BackendKind::Explicit {
                let order = order.expect("explicit requires a loop order");
                let mut c = Mat::zeros(n, n);
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| explicit_mm_two_level(&a, &b, &mut c, &mut h, order));
                let mut r = explicit_report(&h, base_report(name, backend, scale, n))
                    .config("order", format!("{order:?}"));
                r.wall_ns = ns;
                return Ok(r);
            }
            let c0 = Mat::zeros(n, n);
            run_mem_kernel(name, backend, scale, &[&a, &b, &c0], |mem, d| match order {
                Some(o) => blocked_matmul(mem, d[0], d[1], d[2], bsize, o),
                None => co_matmul(mem, d[0], d[1], d[2], 16),
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        matmul_workload(
            "matmul-wa",
            "Algorithm 1 blocked matmul, WA order (k innermost): stores = output size",
            Some(LoopOrder::Ijk),
        ),
        matmul_workload(
            "matmul-nonwa",
            "blocked matmul, non-WA order (k outermost): stores = (n/b) x output size",
            Some(LoopOrder::Kij),
        ),
        matmul_workload(
            "matmul-co",
            "cache-oblivious recursive matmul (Frigo et al.): CA but provably not WA (Thm 3)",
            None,
        ),
        trsm_workload(
            "trsm-wa",
            "Algorithm 2 TRSM, WA order: stores = output size exactly",
            true,
        ),
        trsm_workload(
            "trsm-rl",
            "right-looking TRSM: eager updates rewrite B every panel",
            false,
        ),
        cholesky_workload(
            "cholesky-wa",
            "Algorithm 3 left-looking Cholesky (write-avoiding)",
            true,
        ),
        cholesky_workload(
            "cholesky-rl",
            "right-looking Cholesky: eager Schur updates are write-heavy",
            false,
        ),
        lu_workload(
            "lu-wa",
            "left-looking blocked LU (no pivoting), the WA order of section 7.2",
            LuVariant::LeftLooking,
        ),
        lu_workload(
            "lu-rl",
            "right-looking blocked LU (no pivoting), eager trailing updates",
            LuVariant::RightLooking,
        ),
    ]
}

fn trsm_workload(name: &'static str, description: &'static str, wa: bool) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
    ];
    FnWorkload::boxed(
        name,
        "dense",
        description,
        &backends,
        move |backend, scale| {
            let (bsize, n) = sim_block_and_dim(scale);
            let t = Mat::random_upper_triangular(n, 21);
            let x = Mat::random(n, n, 22);
            let rhs = t.matmul_ref(&x);
            if backend == BackendKind::Explicit {
                let mut b = rhs.clone();
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| {
                    if wa {
                        explicit_trsm_wa(&t, &mut b, &mut h)
                    } else {
                        explicit_trsm_rl(&t, &mut b, &mut h)
                    }
                });
                let mut r = explicit_report(&h, base_report(name, backend, scale, n));
                r.wall_ns = ns;
                return Ok(r);
            }
            let variant = if wa {
                TrsmVariant::WriteAvoiding
            } else {
                TrsmVariant::RightLooking
            };
            run_mem_kernel(name, backend, scale, &[&t, &rhs], move |mem, d| {
                blocked_trsm(mem, d[0], d[1], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

fn cholesky_workload(name: &'static str, description: &'static str, wa: bool) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
    ];
    FnWorkload::boxed(
        name,
        "dense",
        description,
        &backends,
        move |backend, scale| {
            let (bsize, n) = sim_block_and_dim(scale);
            let spd = Mat::random_spd(n, 31);
            if backend == BackendKind::Explicit {
                let mut a = spd.clone();
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| {
                    if wa {
                        explicit_cholesky_ll(&mut a, &mut h)
                    } else {
                        explicit_cholesky_rl(&mut a, &mut h)
                    }
                });
                let mut r = explicit_report(&h, base_report(name, backend, scale, n));
                r.wall_ns = ns;
                return Ok(r);
            }
            let variant = if wa {
                CholVariant::LeftLooking
            } else {
                CholVariant::RightLooking
            };
            run_mem_kernel(name, backend, scale, &[&spd], move |mem, d| {
                blocked_cholesky(mem, d[0], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

fn lu_workload(
    name: &'static str,
    description: &'static str,
    variant: LuVariant,
) -> Box<dyn Workload> {
    let backends = [BackendKind::Raw, BackendKind::Simmed, BackendKind::Traced];
    FnWorkload::boxed(
        name,
        "dense",
        description,
        &backends,
        move |backend, scale| {
            let (bsize, n) = sim_block_and_dim(scale);
            // Diagonally dominant so the pivot-free factorization is stable.
            let mut a = Mat::random(n, n, 41);
            for i in 0..n {
                a[(i, i)] = a[(i, i)].abs() + n as f64;
            }
            run_mem_kernel(name, backend, scale, &[&a], move |mem, d| {
                blocked_lu(mem, d[0], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dense_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                let r = w
                    .run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
                assert_eq!(r.backend, b);
                if b == BackendKind::Simmed || b == BackendKind::Explicit {
                    assert!(!r.boundaries.is_empty(), "{} on {b}", w.name());
                }
            }
        }
    }

    #[test]
    fn wa_matmul_explicit_and_simmed_store_the_output_size() {
        let reg: Vec<Box<dyn Workload>> = workloads();
        let w = reg.iter().find(|w| w.name() == "matmul-wa").unwrap();
        let (_, n) = sim_block_and_dim(Scale::Small);
        let out = (n * n) as u64;
        let exp = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(exp.writes_to_slow(), out);
        let sim = w.run(BackendKind::Simmed, Scale::Small).unwrap();
        assert_eq!(sim.writes_to_slow(), out);
    }
}
