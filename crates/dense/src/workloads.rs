//! Engine registrations for the dense kernels.
//!
//! Each paper algorithm variant registers once; the run function projects
//! whichever backend was requested into a [`RunReport`]:
//!
//! * `explicit` — the Algorithm 1–3 explicit-movement kernels (plus the
//!   §7.2 LU orders) on a two-level [`ExplicitHier`] whose fast memory is
//!   the scale's L3;
//! * `simmed` — the access-driven kernels through a fully-associative
//!   true-LRU L3-sized simulator (the Propositions 6.1/6.2 setting),
//!   flushed before reporting so end-of-run dirty state is charged;
//! * `raw` — the same access-driven kernels on raw memory (wall clock);
//! * `traced` — the address trace, reported as length/distinct-lines;
//! * `stack` — the single-pass Mattson stack simulator: one run of the
//!   access-driven kernel yields exact FA-LRU fills and write-backs at
//!   *every* capacity (a [`wa_core::CapacityCurve`]); the report's
//!   boundary echoes the L3-sized projection so it agrees byte-for-byte
//!   with flushed `simmed`.
//!
//! Geometry: fast memory `M` = the scale's L3 words; the matrix dimension
//! is `2·b_sim` where `b_sim = ⌊√(M/5)⌋` rounded down to a whole number
//! of lines, so block edges align with cache lines and the simulated
//! write-backs are exactly the output size for WA orders (Prop 6.1).
//!
//! `matmul-wa` additionally models hierarchy depths 2 and 3 (see
//! [`deep_geometry`]): the explicit kernel recurses through
//! [`explicit_mm_multilevel_blocks`] and the simulator stacks one
//! fully-associative LRU level per depth, on *identical* line-aligned
//! blockings with Prop-6.2 slack, so the per-boundary write counts of the
//! two models are directly comparable at every level.

use crate::cholesky::{blocked_cholesky, CholVariant};
use crate::desc::alloc_layout;
use crate::explicit_cholesky::{explicit_cholesky_ll, explicit_cholesky_rl};
use crate::explicit_lu::{explicit_lu_ll, explicit_lu_rl};
use crate::explicit_mm::{explicit_mm_multilevel_blocks, explicit_mm_two_level};
use crate::explicit_trsm::{explicit_trsm_rl, explicit_trsm_wa};
use crate::lu::{blocked_lu, LuVariant};
use crate::matmul::multilevel::{ml_matmul, RecOrder};
use crate::matmul::{blocked_matmul, co_matmul, LoopOrder};
use crate::trsm::{blocked_trsm, TrsmVariant};
use memsim::xeon::XeonGeometry;
use memsim::{
    explicit_report, memsim_report, stack_report, ExplicitHier, Mem, MemSim, RawMem, SimMem,
    StackMem, TraceMem,
};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, RunCfg, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::Mat;

/// Fast-memory capacity (words) for the two-level models at `scale`.
pub fn fast_words(scale: Scale) -> usize {
    XeonGeometry::for_scale(scale, memsim::Policy::Lru).l3_words
}

/// Simulated block size: largest whole-line block with five copies
/// resident (Prop 6.1 head-room), and the matrix dimension `n = 2b`.
pub fn sim_block_and_dim(scale: Scale) -> (usize, usize) {
    let m = fast_words(scale);
    let b = ((((m / 5) as f64).sqrt()) as usize / 8 * 8).max(8);
    (b, 2 * b)
}

/// Geometry for the depth-`d` (d ≥ 2) cross-model hierarchies: per-level
/// block sizes (smallest first, line-aligned, doubling per level), level
/// capacities in words with Proposition-6.2 slack (five blocks per
/// level), and the matrix dimension `n = 2·b_top`. Both the explicit
/// multi-level kernel and the stacked-LRU simulator run this exact
/// blocking, which is what makes their per-boundary counts comparable.
pub fn deep_geometry(scale: Scale, depth: usize) -> (Vec<usize>, Vec<u64>, usize) {
    assert!(depth >= 1);
    let b0: usize = match scale {
        Scale::Small => 8,
        Scale::Paper => 16,
    };
    let blocks: Vec<usize> = (0..depth).map(|s| b0 << s).collect();
    let caps: Vec<u64> = blocks.iter().map(|&b| 5 * (b * b) as u64).collect();
    let n = 2 * blocks[depth - 1];
    (blocks, caps, n)
}

/// Single-level (L3-only) fully-associative LRU simulator of `m` words.
fn l3_sim(m: usize) -> MemSim {
    MemSim::single_level_lru(m)
}

/// Footprint estimator for a dense kernel touching `mats` n×n f64
/// matrices: the dimension follows the same geometry the run uses
/// ([`deep_geometry`] past depth 1, [`sim_block_and_dim`] otherwise), so
/// `RunLimits::mem_budget` preflights against the real staging size.
fn dense_footprint(mats: u64) -> impl Fn(Scale, usize) -> u64 {
    move |scale, depth| {
        let n = if depth > 1 {
            deep_geometry(scale, depth).2
        } else {
            sim_block_and_dim(scale).1
        };
        mats * (n as u64) * (n as u64) * 8
    }
}

/// Stage three matrices into a fresh memory, returning `(descs, data)`.
fn stage(mats: &[&Mat]) -> (Vec<crate::MatDesc>, Vec<f64>) {
    let shapes: Vec<(usize, usize)> = mats.iter().map(|m| (m.rows(), m.cols())).collect();
    let (d, words) = alloc_layout(&shapes);
    let mut raw = RawMem::new(words);
    for (desc, m) in d.iter().zip(mats) {
        desc.store_mat(&mut raw, m);
    }
    (d, raw.data)
}

fn base_report(name: &str, backend: BackendKind, scale: Scale, n: usize) -> RunReport {
    RunReport::new(name, backend, scale)
        .config("n", n)
        .config("fast_words", fast_words(scale))
}

/// Run one access-driven dense kernel on the requested backend. The
/// kernel closure receives the memory and the matrix descriptors.
fn run_mem_kernel(
    name: &'static str,
    backend: BackendKind,
    scale: Scale,
    mats: &[&Mat],
    kernel: impl Fn(&mut &mut dyn Mem, &[crate::MatDesc]),
) -> Result<RunReport, EngineError> {
    let n = mats[0].rows();
    let m_words = fast_words(scale);
    let (d, data) = stage(mats);
    match backend {
        BackendKind::Raw => {
            let mut mem = RawMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            let mut r = base_report(name, backend, scale, n);
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Simmed => {
            let mut mem = SimMem::from_vec(data, l3_sim(m_words));
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            mem.sim.flush();
            let mut r = memsim_report(&mem.sim, base_report(name, backend, scale, n))
                .note("flushed: end-of-run dirty lines charged to the DRAM boundary");
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Stack => {
            let mut mem = StackMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            let mut r = stack_report(&mem.sim, m_words, base_report(name, backend, scale, n));
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Traced => {
            let mut mem = TraceMem::from_vec(data);
            let (_, ns) = timed(|| kernel(&mut (&mut mem as &mut dyn Mem), &d));
            let distinct: std::collections::BTreeSet<usize> =
                mem.trace.iter().map(|a| a.addr / 8).collect();
            let writes = mem.trace.iter().filter(|a| a.is_write).count();
            let mut r = base_report(name, backend, scale, n)
                .config("trace_len", mem.trace.len())
                .config("trace_writes", writes)
                .config("trace_distinct_lines", distinct.len());
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Explicit => Err(EngineError::UnsupportedBackend {
            workload: name.to_string(),
            backend,
            supported: vec![
                BackendKind::Raw,
                BackendKind::Simmed,
                BackendKind::Traced,
                BackendKind::Stack,
            ],
        }),
    }
}

/// A depth-`d` stacked hierarchy of fully-associative true-LRU levels
/// (one per entry of `caps`), the simulated side of the multi-level
/// cross-model check.
fn deep_sim(caps: &[u64]) -> MemSim {
    let words: Vec<usize> = caps.iter().map(|&w| w as usize).collect();
    MemSim::stacked_lru(&words)
}

/// The depth ≥ 2 scenarios of `matmul-wa`: explicit multi-level recursion
/// vs the stacked-LRU simulator, on identical blockings.
fn run_matmul_wa_deep(cfg: RunCfg) -> Result<RunReport, EngineError> {
    let RunCfg {
        backend,
        scale,
        depth,
        ..
    } = cfg;
    let (blocks, caps, n) = deep_geometry(scale, depth);
    let a = Mat::random(n, n, 11);
    let b = Mat::random(n, n, 12);
    let blocks_echo = blocks
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join("/");
    match backend {
        BackendKind::Explicit => {
            let mut c = Mat::zeros(n, n);
            let mut sizes = caps.clone();
            sizes.push(u64::MAX);
            let mut h = ExplicitHier::new(&sizes);
            let (_, ns) = timed(|| explicit_mm_multilevel_blocks(&a, &b, &mut c, &mut h, &blocks));
            let mut r = explicit_report(&h, base_report("matmul-wa", backend, scale, n))
                .config("depth", depth)
                .config("blocks", &blocks_echo);
            r.wall_ns = ns;
            Ok(r)
        }
        BackendKind::Simmed => {
            let c0 = Mat::zeros(n, n);
            let (d, data) = stage(&[&a, &b, &c0]);
            let mut mem = SimMem::from_vec(data, deep_sim(&caps));
            let mut big_first = blocks.clone();
            big_first.reverse();
            let (_, ns) = timed(|| {
                ml_matmul(
                    &mut mem,
                    d[0],
                    d[1],
                    d[2],
                    &big_first,
                    RecOrder::COuter,
                    RecOrder::COuter,
                )
            });
            mem.sim.flush();
            let mut r = memsim_report(&mem.sim, base_report("matmul-wa", backend, scale, n))
                .config("depth", depth)
                .config("blocks", &blocks_echo)
                .note("flushed: end-of-run dirty lines charged to the DRAM boundary");
            r.wall_ns = ns;
            Ok(r)
        }
        // FnWorkload::run_cfg rejects depth > max_depth before the
        // closure runs, and only explicit/simmed advertise depth > 1.
        other => unreachable!("depth {depth} advertised only for explicit/simmed, got {other}"),
    }
}

/// Matmul workloads: WA (`k` innermost) and non-WA (`k` outermost) blocked
/// orders, plus the cache-oblivious recursion.
fn matmul_workload(
    name: &'static str,
    description: &'static str,
    order: Option<LoopOrder>, // None = cache-oblivious
) -> Box<dyn Workload> {
    let backends = if order.is_some() {
        vec![
            BackendKind::Raw,
            BackendKind::Simmed,
            BackendKind::Traced,
            BackendKind::Explicit,
            BackendKind::Stack,
        ]
    } else {
        vec![
            BackendKind::Raw,
            BackendKind::Simmed,
            BackendKind::Traced,
            BackendKind::Stack,
        ]
    };
    // Only the WA order has a multi-level explicit kernel (§4.1 induction)
    // to compare the stacked simulator against.
    let depths: &[(BackendKind, usize)] = if order == Some(LoopOrder::Ijk) {
        &[(BackendKind::Explicit, 3), (BackendKind::Simmed, 3)]
    } else {
        &[]
    };
    FnWorkload::boxed_sized(
        name,
        "dense",
        description,
        &backends,
        depths,
        dense_footprint(3),
        move |cfg| {
            let RunCfg { backend, scale, .. } = cfg;
            if cfg.depth > 1 {
                return run_matmul_wa_deep(cfg);
            }
            let (bsize, n) = sim_block_and_dim(scale);
            let a = Mat::random(n, n, 11);
            let b = Mat::random(n, n, 12);
            if backend == BackendKind::Explicit {
                let order = order.expect("explicit requires a loop order");
                let mut c = Mat::zeros(n, n);
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| explicit_mm_two_level(&a, &b, &mut c, &mut h, order));
                let mut r = explicit_report(&h, base_report(name, backend, scale, n))
                    .config("order", format!("{order:?}"));
                r.wall_ns = ns;
                return Ok(r);
            }
            let c0 = Mat::zeros(n, n);
            run_mem_kernel(name, backend, scale, &[&a, &b, &c0], |mem, d| match order {
                Some(o) => blocked_matmul(mem, d[0], d[1], d[2], bsize, o),
                None => co_matmul(mem, d[0], d[1], d[2], 16),
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        matmul_workload(
            "matmul-wa",
            "Algorithm 1 blocked matmul, WA order (k innermost): stores = output size",
            Some(LoopOrder::Ijk),
        ),
        matmul_workload(
            "matmul-nonwa",
            "blocked matmul, non-WA order (k outermost): stores = (n/b) x output size",
            Some(LoopOrder::Kij),
        ),
        matmul_workload(
            "matmul-co",
            "cache-oblivious recursive matmul (Frigo et al.): CA but provably not WA (Thm 3)",
            None,
        ),
        trsm_workload(
            "trsm-wa",
            "Algorithm 2 TRSM, WA order: stores = output size exactly",
            true,
        ),
        trsm_workload(
            "trsm-rl",
            "right-looking TRSM: eager updates rewrite B every panel",
            false,
        ),
        cholesky_workload(
            "cholesky-wa",
            "Algorithm 3 left-looking Cholesky (write-avoiding)",
            true,
        ),
        cholesky_workload(
            "cholesky-rl",
            "right-looking Cholesky: eager Schur updates are write-heavy",
            false,
        ),
        lu_workload(
            "lu-wa",
            "left-looking blocked LU (no pivoting), the WA order of section 7.2",
            LuVariant::LeftLooking,
        ),
        lu_workload(
            "lu-rl",
            "right-looking blocked LU (no pivoting), eager trailing updates",
            LuVariant::RightLooking,
        ),
    ]
}

fn trsm_workload(name: &'static str, description: &'static str, wa: bool) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
        BackendKind::Stack,
    ];
    FnWorkload::boxed_sized(
        name,
        "dense",
        description,
        &backends,
        &[],
        dense_footprint(4),
        move |RunCfg { backend, scale, .. }| {
            let (bsize, n) = sim_block_and_dim(scale);
            let t = Mat::random_upper_triangular(n, 21);
            let x = Mat::random(n, n, 22);
            let rhs = t.matmul_ref(&x);
            if backend == BackendKind::Explicit {
                let mut b = rhs.clone();
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| {
                    if wa {
                        explicit_trsm_wa(&t, &mut b, &mut h)
                    } else {
                        explicit_trsm_rl(&t, &mut b, &mut h)
                    }
                });
                let mut r = explicit_report(&h, base_report(name, backend, scale, n));
                r.wall_ns = ns;
                return Ok(r);
            }
            let variant = if wa {
                TrsmVariant::WriteAvoiding
            } else {
                TrsmVariant::RightLooking
            };
            run_mem_kernel(name, backend, scale, &[&t, &rhs], move |mem, d| {
                blocked_trsm(mem, d[0], d[1], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

fn cholesky_workload(name: &'static str, description: &'static str, wa: bool) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
        BackendKind::Stack,
    ];
    FnWorkload::boxed_sized(
        name,
        "dense",
        description,
        &backends,
        &[],
        dense_footprint(3),
        move |RunCfg { backend, scale, .. }| {
            let (bsize, n) = sim_block_and_dim(scale);
            let spd = Mat::random_spd(n, 31);
            if backend == BackendKind::Explicit {
                let mut a = spd.clone();
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| {
                    if wa {
                        explicit_cholesky_ll(&mut a, &mut h)
                    } else {
                        explicit_cholesky_rl(&mut a, &mut h)
                    }
                });
                let mut r = explicit_report(&h, base_report(name, backend, scale, n));
                r.wall_ns = ns;
                return Ok(r);
            }
            let variant = if wa {
                CholVariant::LeftLooking
            } else {
                CholVariant::RightLooking
            };
            run_mem_kernel(name, backend, scale, &[&spd], move |mem, d| {
                blocked_cholesky(mem, d[0], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

fn lu_workload(
    name: &'static str,
    description: &'static str,
    variant: LuVariant,
) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Simmed,
        BackendKind::Traced,
        BackendKind::Explicit,
        BackendKind::Stack,
    ];
    FnWorkload::boxed_sized(
        name,
        "dense",
        description,
        &backends,
        &[],
        dense_footprint(3),
        move |RunCfg { backend, scale, .. }| {
            let (bsize, n) = sim_block_and_dim(scale);
            let a = Mat::random_diagdom(n, 41);
            if backend == BackendKind::Explicit {
                let mut lu = a.clone();
                let mut h = ExplicitHier::two_level(fast_words(scale) as u64);
                let (_, ns) = timed(|| match variant {
                    LuVariant::LeftLooking => explicit_lu_ll(&mut lu, &mut h),
                    LuVariant::RightLooking => explicit_lu_rl(&mut lu, &mut h),
                });
                let mut r = explicit_report(&h, base_report(name, backend, scale, n));
                r.wall_ns = ns;
                return Ok(r);
            }
            run_mem_kernel(name, backend, scale, &[&a], move |mem, d| {
                blocked_lu(mem, d[0], bsize, variant)
            })
            .map(|r| r.config("block", bsize))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dense_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                let r = w
                    .run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
                assert_eq!(r.backend, b);
                if b == BackendKind::Simmed || b == BackendKind::Explicit || b == BackendKind::Stack
                {
                    assert!(!r.boundaries.is_empty(), "{} on {b}", w.name());
                }
                if b == BackendKind::Stack {
                    assert!(r.curve.is_some(), "{} on {b} must carry a curve", w.name());
                }
            }
        }
    }

    #[test]
    fn stack_boundary_agrees_with_flushed_simmed_for_every_dense_workload() {
        for w in workloads() {
            if !w.backends().contains(&BackendKind::Stack) {
                continue;
            }
            let sim = w.run(BackendKind::Simmed, Scale::Small).unwrap();
            let stk = w.run(BackendKind::Stack, Scale::Small).unwrap();
            assert_eq!(
                sim.boundaries.last().unwrap(),
                stk.boundaries.last().unwrap(),
                "{}: stack projection at fast_words must equal flushed simmed",
                w.name()
            );
        }
    }

    #[test]
    fn wa_matmul_explicit_and_simmed_store_the_output_size() {
        let reg: Vec<Box<dyn Workload>> = workloads();
        let w = reg.iter().find(|w| w.name() == "matmul-wa").unwrap();
        let (_, n) = sim_block_and_dim(Scale::Small);
        let out = (n * n) as u64;
        let exp = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(exp.writes_to_slow(), out);
        let sim = w.run(BackendKind::Simmed, Scale::Small).unwrap();
        assert_eq!(sim.writes_to_slow(), out);
    }

    #[test]
    fn explicit_lu_ll_stores_the_output_and_agrees_with_simmed() {
        let reg: Vec<Box<dyn Workload>> = workloads();
        let w = reg.iter().find(|w| w.name() == "lu-wa").unwrap();
        let (_, n) = sim_block_and_dim(Scale::Small);
        let out = (n * n) as u64;
        let exp = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(exp.writes_to_slow(), out);
        let sim = w.run(BackendKind::Simmed, Scale::Small).unwrap();
        assert_eq!(sim.writes_to_slow(), out);
    }

    #[test]
    fn deep_matmul_boundary_counts_agree_at_every_level() {
        let reg: Vec<Box<dyn Workload>> = workloads();
        let w = reg.iter().find(|w| w.name() == "matmul-wa").unwrap();
        for depth in [2usize, 3] {
            let exp = w
                .run_cfg(RunCfg::with_depth(
                    BackendKind::Explicit,
                    Scale::Small,
                    depth,
                ))
                .unwrap();
            let sim = w
                .run_cfg(RunCfg::with_depth(BackendKind::Simmed, Scale::Small, depth))
                .unwrap();
            assert_eq!(exp.boundaries.len(), depth);
            assert_eq!(sim.boundaries.len(), depth);
            for b in 0..depth {
                assert_eq!(
                    exp.boundaries[b].store_words, sim.boundaries[b].store_words,
                    "depth {depth} boundary {b}"
                );
            }
            // The slowest boundary stores exactly the output.
            let (_, _, n) = deep_geometry(Scale::Small, depth);
            assert_eq!(exp.writes_to_slow(), (n * n) as u64);
        }
    }
}
