//! Explicitly blocked LU factorization (no pivoting) with exact
//! load/store accounting.
//!
//! The sequential substrate of the paper's Section 7.2 (LL-LUNP /
//! RL-LUNP), in the same style as [`crate::explicit_cholesky`]: the
//! *left-looking* order brings each block of `A` into fast memory once,
//! applies every update from the already-finished block column(s) to its
//! left while it is resident, and stores it exactly once — `n²` words of
//! slow-memory writes, the output size. The *right-looking* order
//! (CALU-style without pivoting) eagerly rewrites the whole trailing
//! submatrix after each panel: `Θ(n³/(3b))` writes. `A = L·U` with
//! unit-diagonal `L` below the diagonal and `U` on/above it.

use crate::explicit_mm::{strict_lower_words, tri_words};
use memsim::ExplicitHier;
use wa_core::Mat;

/// `A[rr, cr] -= A[rr, kr] · A[kr, cr]` (the L(j,k)·U(k,i) update).
fn mm_sub_range(
    a: &mut Mat,
    (r0, r1): (usize, usize),
    (c0, c1): (usize, usize),
    (k0, k1): (usize, usize),
) {
    for i in r0..r1 {
        for j in c0..c1 {
            let mut acc = a[(i, j)];
            for k in k0..k1 {
                acc -= a[(i, k)] * a[(k, j)];
            }
            a[(i, j)] = acc;
        }
    }
}

/// Unblocked in-place LU (no pivoting) of the diagonal block
/// `A[d0..d1, d0..d1]`.
fn lu_in_place(a: &mut Mat, (d0, d1): (usize, usize)) {
    for k in d0..d1 {
        let akk = a[(k, k)];
        assert!(akk.abs() > 1e-300, "zero pivot without pivoting at {k}");
        for i in k + 1..d1 {
            let lik = a[(i, k)] / akk;
            a[(i, k)] = lik;
            for j in k + 1..d1 {
                a[(i, j)] -= lik * a[(k, j)];
            }
        }
    }
}

/// Solve `L[d,d] · X = A[d, cr]` in place (unit lower-triangular `L` from
/// the factored diagonal block): produces a `U` block above the diagonal.
fn trsm_lower_unit_range(a: &mut Mat, (d0, d1): (usize, usize), (c0, c1): (usize, usize)) {
    for i in d0..d1 {
        for c in c0..c1 {
            let mut acc = a[(i, c)];
            for t in d0..i {
                acc -= a[(i, t)] * a[(t, c)];
            }
            a[(i, c)] = acc;
        }
    }
}

/// Solve `X · U[d,d] = A[rr, d]` in place (upper-triangular `U` from the
/// factored diagonal block): produces an `L` block below the diagonal.
fn trsm_upper_right_range(a: &mut Mat, (r0, r1): (usize, usize), (d0, d1): (usize, usize)) {
    for i in r0..r1 {
        for c in d0..d1 {
            let mut acc = a[(i, c)];
            for t in d0..c {
                acc -= a[(i, t)] * a[(t, c)];
            }
            a[(i, c)] = acc / a[(c, c)];
        }
    }
}

/// Left-looking WA blocked LU without pivoting. `a` is overwritten with
/// `L\U`. Every block of `A` is stored exactly once: slow-memory writes
/// equal `n²` words. Clipped (uneven) trailing blocks are handled.
pub fn explicit_lu_ll(a: &mut Mat, hier: &mut ExplicitHier) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let w = |blk: usize| bs.min(n - blk * bs);

    for i in 0..nb {
        let ci = w(i);
        let ir = (i * bs, i * bs + ci);
        // j ascending finalizes U(j,i) (j < i) before rows below read it
        // and factors the diagonal before the j > i panel solves.
        for j in 0..nb {
            let cj = w(j);
            let jr = (j * bs, j * bs + cj);
            hier.load(0, (cj * ci) as u64); // A(j,i), resident to the store
            for k in 0..j.min(i) {
                let ck = w(k);
                let kr = (k * bs, k * bs + ck);
                hier.load(0, (cj * ck) as u64); // L(j,k)
                hier.load(0, (ck * ci) as u64); // U(k,i)
                mm_sub_range(a, jr, ir, kr);
                hier.flop(2 * (cj * ck * ci) as u64);
                hier.free(1, ((cj + ci) * ck) as u64);
            }
            if j < i {
                hier.load(0, strict_lower_words(cj)); // L(j,j), unit diag
                trsm_lower_unit_range(a, jr, ir);
                hier.flop((cj * cj * ci) as u64);
                hier.free(1, strict_lower_words(cj));
            } else if j == i {
                lu_in_place(a, ir);
                hier.flop(2 * (ci * ci * ci) as u64 / 3);
            } else {
                hier.load(0, tri_words(ci)); // U(i,i) upper half
                trsm_upper_right_range(a, jr, ir);
                hier.flop((cj * ci * ci) as u64);
                hier.free(1, tri_words(ci));
            }
            hier.store(0, (cj * ci) as u64); // finished L(j,i) / U(j,i)
            hier.free(1, (cj * ci) as u64);
        }
    }
}

/// Right-looking (non-WA) blocked LU without pivoting: each panel eagerly
/// updates the trailing submatrix, rewriting it to slow memory every step.
pub fn explicit_lu_rl(a: &mut Mat, hier: &mut ExplicitHier) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let w = |blk: usize| bs.min(n - blk * bs);

    for i in 0..nb {
        let ci = w(i);
        let ir = (i * bs, i * bs + ci);
        hier.load(0, (ci * ci) as u64); // A(i,i), resident through both panels
        lu_in_place(a, ir);
        hier.flop(2 * (ci * ci * ci) as u64 / 3);
        hier.store(0, (ci * ci) as u64);

        for j in i + 1..nb {
            let cj = w(j);
            let jr = (j * bs, j * bs + cj);
            hier.load(0, (cj * ci) as u64); // A(j,i) -> L(j,i)
            trsm_upper_right_range(a, jr, ir);
            hier.flop((cj * ci * ci) as u64);
            hier.store(0, (cj * ci) as u64);
            hier.free(1, (cj * ci) as u64);

            hier.load(0, (ci * cj) as u64); // A(i,j) -> U(i,j)
            trsm_lower_unit_range(a, ir, jr);
            hier.flop((ci * ci * cj) as u64);
            hier.store(0, (ci * cj) as u64);
            hier.free(1, (ci * cj) as u64);
        }
        hier.free(1, (ci * ci) as u64);

        // Trailing update: A(j,k) -= L(j,i) · U(i,k), eagerly written back.
        for j in i + 1..nb {
            let cj = w(j);
            let jr = (j * bs, j * bs + cj);
            for k in i + 1..nb {
                let ck = w(k);
                let kr = (k * bs, k * bs + ck);
                hier.load(0, (cj * ci) as u64); // L(j,i)
                hier.load(0, (ci * ck) as u64); // U(i,k)
                hier.load(0, (cj * ck) as u64); // A(j,k)
                mm_sub_range(a, jr, kr, ir);
                hier.flop(2 * (cj * ci * ck) as u64);
                hier.store(0, (cj * ck) as u64);
                hier.free(1, (cj * ci + ci * ck + cj * ck) as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ExplicitHier;

    fn reconstruct(lu: &Mat) -> Mat {
        let n = lu.rows();
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                lu[(i, j)]
            } else {
                0.0
            }
        });
        l.matmul_ref(&lu.upper_triangular())
    }

    fn check_factor(a0: &Mat, lu: &Mat) {
        let back = reconstruct(lu);
        let d = back.max_abs_diff(a0);
        assert!(d < 1e-8 * a0.rows() as f64, "reconstruction error {d}");
    }

    #[test]
    fn left_looking_factors_correctly() {
        let a0 = Mat::random_diagdom(16, 3);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a, &mut h);
        check_factor(&a0, &a);
    }

    #[test]
    fn right_looking_factors_correctly() {
        let a0 = Mat::random_diagdom(16, 4);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_lu_rl(&mut a, &mut h);
        check_factor(&a0, &a);
    }

    #[test]
    fn both_orders_agree() {
        let a0 = Mat::random_diagdom(20, 5);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut h1 = ExplicitHier::two_level(48);
        let mut h2 = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a1, &mut h1);
        explicit_lu_rl(&mut a2, &mut h2);
        assert!(a1.max_abs_diff(&a2) < 1e-8);
    }

    #[test]
    fn ll_stores_exactly_the_output_size() {
        let n = 16;
        let a0 = Mat::random_diagdom(n, 6);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a, &mut h);
        assert_eq!(h.traffic().boundary(0).store_words, (n * n) as u64);
    }

    #[test]
    fn rl_stores_more_than_ll() {
        let n = 32;
        let a0 = Mat::random_diagdom(n, 7);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut h_ll = ExplicitHier::two_level(48);
        let mut h_rl = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a1, &mut h_ll);
        explicit_lu_rl(&mut a2, &mut h_rl);
        let s_ll = h_ll.traffic().boundary(0).store_words;
        let s_rl = h_rl.traffic().boundary(0).store_words;
        assert_eq!(s_ll, (n * n) as u64);
        // RL rewrites the trailing submatrix every panel: with nb = n/b
        // panels the write volume approaches n³/(3b).
        assert!(
            s_rl > 2 * s_ll,
            "right-looking {s_rl} should far exceed left-looking {s_ll}"
        );
    }

    #[test]
    fn capacity_and_theorem1() {
        let a0 = Mat::random_diagdom(24, 8);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a, &mut h);
        assert!(h.peak(1) <= 48);
        let (wf, total) = h.theorem1_check(0);
        assert!(2 * wf >= total);
    }

    #[test]
    fn uneven_block_boundary_still_correct() {
        let a0 = Mat::random_diagdom(18, 9); // 18 = 4*4 + 2
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a, &mut h);
        check_factor(&a0, &a);
        // Stores remain exactly the output even with clipped blocks.
        assert_eq!(h.traffic().boundary(0).store_words, (18 * 18) as u64);
    }
}
