//! Access-driven blocked LU factorization without pivoting.
//!
//! Used as the sequential substrate for Section 7.2 (parallel LL-LUNP /
//! RL-LUNP): the left-looking order is write-avoiding, the right-looking
//! order (CALU-style without pivoting) is not. `A = L·U` with unit-diagonal
//! `L` stored below the diagonal and `U` on/above it.

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel_sub;
use memsim::Mem;

/// Block order for the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuVariant {
    /// Write-avoiding left-looking order.
    LeftLooking,
    /// Right-looking (eager trailing update).
    RightLooking,
}

/// Unblocked in-place LU (no pivoting) of a diagonal block. Row-run
/// form: the pivot row's tail is loaded once per pivot, each updated
/// row's tail streams in and out as one run.
fn lu_base<M: Mem>(mem: &mut M, a: MatDesc) {
    debug_assert_eq!(a.rows, a.cols);
    let mut urow = vec![0.0; a.cols];
    let mut arow = vec![0.0; a.cols];
    for k in 0..a.rows {
        let akk = mem.ld(a.idx(k, k));
        assert!(akk.abs() > 1e-300, "zero pivot without pivoting");
        let tail = a.cols - k - 1;
        if tail > 0 {
            mem.ld_run(a.idx(k, k + 1), &mut urow[..tail]);
        }
        if k == 0 {
            // Rows 1.. are written by their updates below; row 0 of U
            // (= row 0 of A) would otherwise never be written. Store it
            // once so every output element is written at least once and
            // the block's simulated dirty footprint (write-backs after a
            // flush) matches the explicit model's full-block store.
            mem.st(a.idx(0, 0), akk);
            if tail > 0 {
                mem.st_run(a.idx(0, 1), &urow[..tail]);
            }
        }
        for i in k + 1..a.rows {
            let lik = mem.ld(a.idx(i, k)) / akk;
            mem.st(a.idx(i, k), lik);
            if tail == 0 {
                continue;
            }
            let ar = &mut arow[..tail];
            mem.ld_run(a.idx(i, k + 1), ar);
            for (v, u) in ar.iter_mut().zip(urow[..tail].iter()) {
                *v -= lik * u;
            }
            mem.st_run(a.idx(i, k + 1), &arow[..tail]);
        }
    }
}

/// Solve `L·X = B` in place (unit lower-triangular L from a factored
/// diagonal block): forward substitution, row-run form — row `i` of `B`
/// accumulates updates from the finalized rows above it, all rows moving
/// as contiguous runs.
fn trsm_lower_unit<M: Mem>(mem: &mut M, l: MatDesc, b: MatDesc) {
    debug_assert_eq!(l.rows, l.cols);
    debug_assert_eq!(b.rows, l.rows);
    let mut lrow = vec![0.0; l.cols];
    let mut xrow = vec![0.0; b.cols];
    let mut brow = vec![0.0; b.cols];
    for i in 0..b.rows {
        let lr = &mut lrow[..i];
        mem.ld_run(l.idx(i, 0), lr);
        mem.ld_run(b.idx(i, 0), &mut xrow);
        for (k, &lik) in lrow[..i].iter().enumerate() {
            mem.ld_run(b.idx(k, 0), &mut brow);
            for (x, bk) in xrow.iter_mut().zip(&brow) {
                *x -= lik * bk;
            }
        }
        mem.st_run(b.idx(i, 0), &xrow);
    }
}

/// Solve `X·U = B` in place (upper-triangular U from a factored diagonal
/// block). Produces an `L` block. Each row of `B` solves in a register
/// buffer (one run in, one out); `U` is consumed down columns, so its
/// reads stay word-granular.
fn trsm_upper_right<M: Mem>(mem: &mut M, u: MatDesc, b: MatDesc) {
    debug_assert_eq!(u.rows, u.cols);
    debug_assert_eq!(b.cols, u.rows);
    let mut brow = vec![0.0; b.cols];
    for i in 0..b.rows {
        mem.ld_run(b.idx(i, 0), &mut brow);
        for c in 0..u.cols {
            let mut acc = brow[c];
            for (t, &bt) in brow[..c].iter().enumerate() {
                acc -= bt * mem.ld(u.idx(t, c));
            }
            let ucc = mem.ld(u.idx(c, c));
            brow[c] = acc / ucc;
        }
        mem.st_run(b.idx(i, 0), &brow);
    }
}

/// Blocked LU without pivoting; `a` is overwritten by `L\U`.
pub fn blocked_lu<M: Mem>(mem: &mut M, a: MatDesc, bsize: usize, variant: LuVariant) {
    assert_eq!(a.rows, a.cols);
    let nb = a.nblocks_rows(bsize);
    match variant {
        LuVariant::LeftLooking => {
            for i in 0..nb {
                // Update block column i using columns to its left,
                // top-down so each U(k,i) is finalized (by its TRSM)
                // before rows below consume it.
                for j in 0..nb {
                    for k in 0..j.min(i) {
                        mem.phase("update");
                        mm_kernel_sub(
                            mem,
                            a.block(j, k, bsize),
                            a.block(k, i, bsize),
                            a.block(j, i, bsize),
                        );
                    }
                    if j < i {
                        mem.phase("trsm");
                        trsm_lower_unit(mem, a.block(j, j, bsize), a.block(j, i, bsize));
                    }
                }
                mem.phase("panel");
                lu_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    mem.phase("trsm");
                    trsm_upper_right(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                }
            }
        }
        LuVariant::RightLooking => {
            for i in 0..nb {
                mem.phase("panel");
                lu_base(mem, a.block(i, i, bsize));
                for j in i + 1..nb {
                    mem.phase("trsm");
                    trsm_upper_right(mem, a.block(i, i, bsize), a.block(j, i, bsize));
                    trsm_lower_unit(mem, a.block(i, i, bsize), a.block(i, j, bsize));
                }
                for j in i + 1..nb {
                    for k in i + 1..nb {
                        mem.phase("update");
                        mm_kernel_sub(
                            mem,
                            a.block(j, i, bsize),
                            a.block(i, k, bsize),
                            a.block(j, k, bsize),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::RawMem;
    use wa_core::Mat;

    fn reconstruct(lu: &Mat) -> Mat {
        let n = lu.rows();
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                lu[(i, j)]
            } else {
                0.0
            }
        });
        let u = lu.upper_triangular();
        l.matmul_ref(&u)
    }

    fn check(n: usize, bsize: usize, variant: LuVariant) {
        let a0 = Mat::random_diagdom(n, 41);
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a0);
        blocked_lu(&mut mem, d[0], bsize, variant);
        let lu = d[0].load_mat(&mut mem);
        let back = reconstruct(&lu);
        assert!(
            back.max_abs_diff(&a0) < 1e-8 * n as f64,
            "{variant:?} n{n} b{bsize}: {}",
            back.max_abs_diff(&a0)
        );
    }

    #[test]
    fn right_looking_factors() {
        check(8, 4, LuVariant::RightLooking);
        check(16, 4, LuVariant::RightLooking);
        check(13, 4, LuVariant::RightLooking);
        check(16, 16, LuVariant::RightLooking);
    }

    #[test]
    fn left_looking_factors() {
        check(8, 4, LuVariant::LeftLooking);
        check(16, 4, LuVariant::LeftLooking);
        check(13, 4, LuVariant::LeftLooking);
    }

    #[test]
    fn variants_agree() {
        let n = 20;
        let a0 = Mat::random_diagdom(n, 43);
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut m1 = RawMem::new(words);
        let mut m2 = RawMem::new(words);
        d[0].store_mat(&mut m1, &a0);
        d[0].store_mat(&mut m2, &a0);
        blocked_lu(&mut m1, d[0], 4, LuVariant::LeftLooking);
        blocked_lu(&mut m2, d[0], 4, LuVariant::RightLooking);
        let g1 = d[0].load_mat(&mut m1);
        let g2 = d[0].load_mat(&mut m2);
        assert!(g1.max_abs_diff(&g2) < 1e-9);
    }
}
