//! Access-driven blocked TRSM (Algorithm 2) over a [`memsim::Mem`].
//!
//! Solves `T·X = B` (upper-triangular `T`, X overwrites B) with either the
//! WA left-looking order (updates pulled into the resident block, `k`
//! innermost) or the non-WA right-looking order (updates pushed eagerly).

use crate::desc::MatDesc;
use crate::matmul::kernel::mm_kernel_sub;
use memsim::Mem;

/// Which block order to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsmVariant {
    /// Write-avoiding: each `B(i,j)` is updated to completion while
    /// resident (Algorithm 2).
    WriteAvoiding,
    /// Right-looking: eager pushes, rewriting partial results.
    RightLooking,
}

/// Unblocked back substitution on the diagonal block:
/// `T[diag] · X = B[bi, j]` in place. Row-run form: row `i` of `T` (from
/// the diagonal) and each row of `B` move as contiguous runs; row `i` of
/// `B` is solved in a register buffer and stored once.
fn solve_diag<M: Mem>(mem: &mut M, t: MatDesc, b: MatDesc) {
    debug_assert_eq!(t.rows, t.cols);
    debug_assert_eq!(t.rows, b.rows);
    let mut trow = vec![0.0; t.cols];
    let mut xrow = vec![0.0; b.cols];
    let mut brow = vec![0.0; b.cols];
    for i in (0..b.rows).rev() {
        let tail = &mut trow[..t.rows - i];
        mem.ld_run(t.idx(i, i), tail); // T(i, i..) incl. the diagonal
        let tii = tail[0];
        mem.ld_run(b.idx(i, 0), &mut xrow);
        for k in i + 1..t.rows {
            let tik = trow[k - i];
            mem.ld_run(b.idx(k, 0), &mut brow);
            for (x, bk) in xrow.iter_mut().zip(&brow) {
                *x -= tik * bk;
            }
        }
        for x in xrow.iter_mut() {
            *x /= tii;
        }
        mem.st_run(b.idx(i, 0), &xrow);
    }
}

/// Blocked TRSM: `t` is `n×n` upper triangular, `b` is `n×nrhs` and is
/// overwritten with the solution.
pub fn blocked_trsm<M: Mem>(
    mem: &mut M,
    t: MatDesc,
    b: MatDesc,
    bsize: usize,
    variant: TrsmVariant,
) {
    assert_eq!(t.rows, t.cols);
    assert_eq!(t.rows, b.rows);
    let nb = t.nblocks_rows(bsize);
    let njb = b.nblocks_cols(bsize);
    match variant {
        TrsmVariant::WriteAvoiding => {
            for j in 0..njb {
                for i in (0..nb).rev() {
                    for k in i + 1..nb {
                        mm_kernel_sub(
                            mem,
                            t.block(i, k, bsize),
                            b.block(k, j, bsize),
                            b.block(i, j, bsize),
                        );
                    }
                    solve_diag(mem, t.block(i, i, bsize), b.block(i, j, bsize));
                }
            }
        }
        TrsmVariant::RightLooking => {
            for j in 0..njb {
                for i in (0..nb).rev() {
                    solve_diag(mem, t.block(i, i, bsize), b.block(i, j, bsize));
                    for k in 0..i {
                        mm_kernel_sub(
                            mem,
                            t.block(k, i, bsize),
                            b.block(i, j, bsize),
                            b.block(k, j, bsize),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::alloc_layout;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};
    use wa_core::Mat;

    fn setup(n: usize, nrhs: usize) -> (Mat, Mat, Mat) {
        let t = Mat::random_upper_triangular(n, 21);
        let x = Mat::random(n, nrhs, 22);
        let b = t.matmul_ref(&x);
        (t, b, x)
    }

    #[test]
    fn both_variants_solve() {
        for variant in [TrsmVariant::WriteAvoiding, TrsmVariant::RightLooking] {
            for &(n, nrhs, bsize) in &[
                (8usize, 8usize, 4usize),
                (12, 8, 4),
                (13, 9, 4),
                (16, 16, 8),
            ] {
                let (t, b, x) = setup(n, nrhs);
                let (d, words) = alloc_layout(&[(n, n), (n, nrhs)]);
                let mut mem = RawMem::new(words);
                d[0].store_mat(&mut mem, &t);
                d[1].store_mat(&mut mem, &b);
                blocked_trsm(&mut mem, d[0], d[1], bsize, variant);
                let got = d[1].load_mat(&mut mem);
                assert!(
                    got.max_abs_diff(&x) < 1e-8,
                    "{variant:?} {n}x{nrhs} b{bsize}: {}",
                    got.max_abs_diff(&x)
                );
            }
        }
    }

    /// Prop 6.2 shape under LRU: the WA order's write-backs stay near the
    /// output size; right-looking rewrites partial sums.
    #[test]
    fn wa_order_writes_less_under_lru() {
        let (n, nrhs, bsize) = (32usize, 32usize, 8usize);
        let cfg = CacheConfig {
            capacity_words: 5 * bsize * bsize + 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut writes = Vec::new();
        for variant in [TrsmVariant::WriteAvoiding, TrsmVariant::RightLooking] {
            let (t, b, _) = setup(n, nrhs);
            let (d, words) = alloc_layout(&[(n, n), (n, nrhs)]);
            let mut mem = SimMem::new(words, MemSim::two_level(cfg));
            d[0].store_mat(&mut mem, &t);
            d[1].store_mat(&mut mem, &b);
            let data = std::mem::take(&mut mem.data);
            let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
            blocked_trsm(&mut mem, d[0], d[1], bsize, variant);
            mem.sim.flush();
            let c = mem.sim.llc();
            writes.push(c.victims_m + c.flush_victims_m);
        }
        let out_lines = (n * nrhs / 8) as u64;
        assert!(
            writes[0] <= 2 * out_lines,
            "WA write-backs {} vs output {out_lines}",
            writes[0]
        );
        assert!(
            writes[1] > writes[0],
            "right-looking {} must exceed WA {}",
            writes[1],
            writes[0]
        );
    }
}
