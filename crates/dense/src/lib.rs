//! # dense — sequential dense linear algebra with read/write instrumentation
//!
//! Implements the paper's Section 4 write-avoiding algorithms and the
//! Section 6 instruction-order variants, in two interchangeable styles:
//!
//! * **Explicit-movement** versions ([`explicit_mm`], [`explicit_trsm`],
//!   [`explicit_cholesky`], [`explicit_lu`] modules) follow Algorithms 1–3
//!   (and the Section 7.2 LU orders) line by line:
//!   the kernel issues block `load`/`store` operations on a
//!   [`memsim::ExplicitHier`] and the model verifies capacities and counts
//!   exactly the totals annotated in the paper's listings.
//! * **Access-driven** versions (the [`matmul`], [`trsm`], [`cholesky`],
//!   [`lu`] modules) run every element access through a [`memsim::Mem`],
//!   so the same code executes on raw memory (for numerics/wall-clock) or
//!   on the cache simulator (for the Figure 2/5 counter reproductions).
//!
//! All kernels compute real results, verified against naive references.

pub mod cholesky;
pub mod desc;
pub mod explicit_cholesky;
pub mod explicit_lu;
pub mod explicit_mm;
pub mod explicit_trsm;
pub mod lu;
pub mod matmul;
pub mod shared;
pub mod trsm;
pub mod workloads;

pub use desc::MatDesc;
pub use matmul::LoopOrder;
