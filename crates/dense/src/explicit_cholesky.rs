//! Algorithm 3 — explicitly blocked Cholesky `A = L·Lᵀ` with exact
//! load/store accounting.
//!
//! The paper's *left-looking* order (Algorithm 3) computes each block
//! column of `L` by reading already-finished columns to its left, storing
//! each output block exactly once: ≈ `n²/2` writes to slow memory. The
//! *right-looking* order updates the whole Schur complement after each
//! panel, storing `Θ(n³/(6b))` words — asymptotically more (§4.3).

use crate::explicit_mm::tri_words;
use memsim::ExplicitHier;
use wa_core::Mat;

/// `A[d, d] -= A[d, kcols] · A[d, kcols]ᵀ`, lower half only (SYRK).
fn syrk_sub_lower(a: &mut Mat, (d0, d1): (usize, usize), (k0, k1): (usize, usize)) {
    for i in d0..d1 {
        for j in d0..=i {
            let mut acc = a[(i, j)];
            for k in k0..k1 {
                acc -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = acc;
        }
    }
}

/// `A[rrange, crange] -= A[rrange, k] · A[crange, k]ᵀ`.
fn mm_sub_bt_range(
    a: &mut Mat,
    (r0, r1): (usize, usize),
    (c0, c1): (usize, usize),
    (k0, k1): (usize, usize),
) {
    for i in r0..r1 {
        for j in c0..c1 {
            let mut acc = a[(i, j)];
            for k in k0..k1 {
                acc -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = acc;
        }
    }
}

/// Unblocked in-place Cholesky of the diagonal block `A[d0..d1, d0..d1]`
/// (lower triangle).
fn chol_in_place(a: &mut Mat, (d0, d1): (usize, usize)) {
    for j in d0..d1 {
        let mut djj = a[(j, j)];
        for k in d0..j {
            djj -= a[(j, k)] * a[(j, k)];
        }
        assert!(djj > 0.0, "matrix not positive definite at {j}");
        let ljj = djj.sqrt();
        a[(j, j)] = ljj;
        for i in j + 1..d1 {
            let mut v = a[(i, j)];
            for k in d0..j {
                v -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = v / ljj;
        }
    }
}

/// Solve `X · L[d,d]ᵀ = A[rrange, d]` in place (forward substitution over
/// columns), where `L` is the already-factored lower-triangular diagonal
/// block stored in `A[d, d]`.
fn trsm_right_lt(a: &mut Mat, (r0, r1): (usize, usize), (d0, d1): (usize, usize)) {
    for i in r0..r1 {
        for c in d0..d1 {
            let mut acc = a[(i, c)];
            for t in d0..c {
                acc -= a[(i, t)] * a[(c, t)];
            }
            a[(i, c)] = acc / a[(c, c)];
        }
    }
}

/// Left-looking WA blocked Cholesky (Algorithm 3). `a` is overwritten with
/// `L` in its lower triangle. Requires `n` divisible by the block size for
/// the exact-count tests; clipped blocks are handled.
pub fn explicit_cholesky_ll(a: &mut Mat, hier: &mut ExplicitHier) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let w = |blk: usize| bs.min(n - blk * bs);

    for i in 0..nb {
        let ci = w(i);
        let di = (i * bs, i * bs + ci);
        hier.load(0, tri_words(ci)); // A(i,i) lower half
        for k in 0..i {
            let ck = w(k);
            hier.load(0, (ci * ck) as u64); // A(i,k)
            syrk_sub_lower(a, di, (k * bs, k * bs + ck));
            hier.flop((ci * ci * ck) as u64);
            hier.free(1, (ci * ck) as u64);
        }
        chol_in_place(a, di);
        hier.flop((ci * ci * ci) as u64 / 3);
        hier.store(0, tri_words(ci)); // L(i,i)
        hier.free(1, tri_words(ci));

        for j in i + 1..nb {
            let cj = w(j);
            let rj = (j * bs, j * bs + cj);
            hier.load(0, (cj * ci) as u64); // A(j,i)
            for k in 0..i {
                let ck = w(k);
                hier.load(0, (ci * ck) as u64); // A(i,k)
                hier.load(0, (cj * ck) as u64); // A(j,k)
                mm_sub_bt_range(a, rj, di, (k * bs, k * bs + ck));
                hier.flop(2 * (cj * ci * ck) as u64);
                hier.free(1, ((ci + cj) * ck) as u64);
            }
            hier.load(0, tri_words(ci)); // L(i,i) lower half
            trsm_right_lt(a, rj, di);
            hier.flop((cj * ci * ci) as u64);
            hier.free(1, tri_words(ci));
            hier.store(0, (cj * ci) as u64); // L(j,i)
            hier.free(1, (cj * ci) as u64);
        }
    }
}

/// Right-looking (non-WA) blocked Cholesky: each panel eagerly updates the
/// trailing Schur complement, rewriting it to slow memory every step.
pub fn explicit_cholesky_rl(a: &mut Mat, hier: &mut ExplicitHier) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let bs = crate::explicit_mm::block_for(hier.capacity(1));
    let nb = n.div_ceil(bs);
    let w = |blk: usize| bs.min(n - blk * bs);

    for i in 0..nb {
        let ci = w(i);
        let di = (i * bs, i * bs + ci);
        hier.load(0, tri_words(ci));
        chol_in_place(a, di);
        hier.flop((ci * ci * ci) as u64 / 3);
        hier.store(0, tri_words(ci));

        // Panel: L(j,i) = A(j,i) * L(i,i)^-T.
        for j in i + 1..nb {
            let cj = w(j);
            hier.load(0, (cj * ci) as u64); // A(j,i)
            trsm_right_lt(a, (j * bs, j * bs + cj), di);
            hier.flop((cj * ci * ci) as u64);
            hier.store(0, (cj * ci) as u64);
            hier.free(1, (cj * ci) as u64);
        }
        hier.free(1, tri_words(ci));

        // Trailing update: A(j,k) -= L(j,i) L(k,i)^T for i < k <= j.
        for j in i + 1..nb {
            let cj = w(j);
            for k in i + 1..=j {
                let ck = w(k);
                hier.load(0, (cj * ci) as u64); // L(j,i)
                hier.load(0, (ck * ci) as u64); // L(k,i)
                let words = if j == k {
                    tri_words(cj)
                } else {
                    (cj * ck) as u64
                };
                hier.load(0, words); // A(j,k)
                if j == k {
                    syrk_sub_lower(a, (j * bs, j * bs + cj), di);
                } else {
                    mm_sub_bt_range(a, (j * bs, j * bs + cj), (k * bs, k * bs + ck), di);
                }
                hier.flop(2 * (cj * ck * ci) as u64);
                hier.store(0, words); // eagerly written back
                hier.free(1, (cj * ci + ck * ci) as u64 + words);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ExplicitHier;

    fn check_factor(a0: &Mat, l: &Mat) {
        let n = a0.rows();
        let ll = l.lower_triangular();
        let prod = ll.matmul_ref(&ll.transpose());
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (prod[(i, j)] - a0[(i, j)]).abs() < 1e-8 * a0[(i, i)].abs().max(1.0),
                    "({i},{j}): {} vs {}",
                    prod[(i, j)],
                    a0[(i, j)]
                );
            }
        }
    }

    #[test]
    fn left_looking_factors_correctly() {
        let a0 = Mat::random_spd(16, 3);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a, &mut h);
        check_factor(&a0, &a);
    }

    #[test]
    fn right_looking_factors_correctly() {
        let a0 = Mat::random_spd(16, 4);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_cholesky_rl(&mut a, &mut h);
        check_factor(&a0, &a);
    }

    #[test]
    fn both_orders_agree() {
        let a0 = Mat::random_spd(20, 5);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut h1 = ExplicitHier::two_level(48);
        let mut h2 = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a1, &mut h1);
        explicit_cholesky_rl(&mut a2, &mut h2);
        let l1 = a1.lower_triangular();
        let l2 = a2.lower_triangular();
        assert!(l1.max_abs_diff(&l2) < 1e-8);
    }

    #[test]
    fn ll_stores_about_half_n_squared() {
        let n = 16;
        let a0 = Mat::random_spd(n, 6);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a, &mut h);
        let bs = 4u64;
        let nb = n as u64 / bs;
        // stores = nb * tri(b) + b² * nb(nb-1)/2 (the exact lower triangle
        // of the output, block by block).
        let expected = nb * tri_words(bs as usize) + bs * bs * nb * (nb - 1) / 2;
        assert_eq!(h.traffic().boundary(0).store_words, expected);
    }

    #[test]
    fn rl_stores_asymptotically_more_than_ll() {
        let n = 32;
        let a0 = Mat::random_spd(n, 7);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut h_ll = ExplicitHier::two_level(48);
        let mut h_rl = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a1, &mut h_ll);
        explicit_cholesky_rl(&mut a2, &mut h_rl);
        let s_ll = h_ll.traffic().boundary(0).store_words;
        let s_rl = h_rl.traffic().boundary(0).store_words;
        assert!(
            s_rl > 2 * s_ll,
            "right-looking {s_rl} should far exceed left-looking {s_ll}"
        );
    }

    #[test]
    fn capacity_and_theorem1() {
        let a0 = Mat::random_spd(24, 8);
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a, &mut h);
        assert!(h.peak(1) <= 48);
        let (wf, total) = h.theorem1_check(0);
        assert!(2 * wf >= total);
    }

    #[test]
    fn uneven_block_boundary_still_correct() {
        let a0 = Mat::random_spd(18, 9); // 18 = 4*4 + 2
        let mut a = a0.clone();
        let mut h = ExplicitHier::two_level(48);
        explicit_cholesky_ll(&mut a, &mut h);
        check_factor(&a0, &a);
    }
}
