//! Property tests for the explicit LU kernel: the explicit-movement
//! left-looking factorization must compute the *same factors* as the
//! access-driven `blocked_lu` on random well-conditioned matrices, and
//! the simulated LU counters must be a pure function of the problem
//! (invariant under repetition — the property `harness --repeat` relies
//! on to report a meaningful median).

use dense::desc::alloc_layout;
use dense::explicit_lu::{explicit_lu_ll, explicit_lu_rl};
use dense::lu::{blocked_lu, LuVariant};
use memsim::{ExplicitHier, MemSim, RawMem, SimMem};
use proptest::prelude::*;
use wa_core::Mat;

/// Factor with the access-driven blocked kernel on raw memory.
fn blocked_factor(a0: &Mat, bsize: usize, variant: LuVariant) -> Mat {
    let n = a0.rows();
    let (d, words) = alloc_layout(&[(n, n)]);
    let mut mem = RawMem::new(words);
    d[0].store_mat(&mut mem, a0);
    blocked_lu(&mut mem, d[0], bsize, variant);
    d[0].load_mat(&mut mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Explicit left-looking LU and `lu::blocked_lu` factor identically
    /// (both orders, arbitrary — including non-divisible — sizes).
    #[test]
    fn explicit_and_access_driven_lu_produce_identical_factors(
        n in 4usize..28,
        bsize in 2usize..6,
        seed in 0u64..1000,
    ) {
        let a0 = Mat::random_diagdom(n, seed);
        let reference = blocked_factor(&a0, bsize, LuVariant::LeftLooking);

        let mut a_ll = a0.clone();
        let mut h_ll = ExplicitHier::two_level(48);
        explicit_lu_ll(&mut a_ll, &mut h_ll);
        prop_assert!(
            a_ll.max_abs_diff(&reference) < 1e-8,
            "left-looking explicit vs blocked: {}",
            a_ll.max_abs_diff(&reference)
        );

        let mut a_rl = a0.clone();
        let mut h_rl = ExplicitHier::two_level(48);
        explicit_lu_rl(&mut a_rl, &mut h_rl);
        prop_assert!(
            a_rl.max_abs_diff(&reference) < 1e-8,
            "right-looking explicit vs blocked: {}",
            a_rl.max_abs_diff(&reference)
        );

        // The WA property holds for every shape: LL stores exactly n².
        prop_assert_eq!(
            h_ll.traffic().boundary(0).store_words,
            (n * n) as u64
        );
    }

    /// Simulated-LU counters are deterministic: two runs of the same
    /// problem produce byte-identical LLC counters and DRAM tallies, so
    /// `--repeat N` repetition cannot drift them.
    #[test]
    fn simmed_lu_counters_are_invariant_under_repetition(
        nb in 2usize..4,
        seed in 0u64..1000,
        right_looking in any::<bool>(),
    ) {
        let bsize = 8usize; // line-aligned blocks
        let n = nb * bsize;
        let a0 = Mat::random_diagdom(n, seed);
        let variant = if right_looking {
            LuVariant::RightLooking
        } else {
            LuVariant::LeftLooking
        };
        let run = || {
            let (d, words) = alloc_layout(&[(n, n)]);
            let mut raw = RawMem::new(words);
            d[0].store_mat(&mut raw, &a0);
            let mut mem = SimMem::from_vec(raw.data, MemSim::single_level_lru(4 * bsize * bsize));
            blocked_lu(&mut mem, d[0], bsize, variant);
            mem.sim.flush();
            (
                mem.sim.llc(),
                mem.sim.dram_reads_lines,
                mem.sim.dram_writes_lines,
            )
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first.0, second.0);
        prop_assert_eq!(first.1, second.1);
        prop_assert_eq!(first.2, second.2);
    }
}
