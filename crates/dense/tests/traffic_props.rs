//! Property tests on the dense kernels' *traffic* (not just numerics):
//! the explicit-model counts obey the paper's closed forms for random
//! divisible shapes, and the WA invariants hold under shape variation.

use dense::explicit_mm::{block_for, explicit_mm_two_level};
use dense::explicit_trsm::explicit_trsm_wa;
use dense::matmul::LoopOrder;
use memsim::ExplicitHier;
use proptest::prelude::*;
use wa_core::Mat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1's exact counts for divisible shapes: loads = ml+2mnl/b,
    /// stores = ml, peak residency ≤ M, Theorem 1 holds.
    #[test]
    fn algorithm1_counts_closed_form(
        mb in 1usize..5,
        nb in 1usize..5,
        lb in 1usize..5,
        bpow in 1usize..4,
        seed in 0u64..500,
    ) {
        let bsz = 1 << bpow; // block size
        let mem_words = (3 * bsz * bsz) as u64;
        prop_assume!(block_for(mem_words) == bsz);
        let (m, n, l) = (mb * bsz, nb * bsz, lb * bsz);
        let a = Mat::random(m, n, seed);
        let b = Mat::random(n, l, seed + 1);
        let mut c = Mat::zeros(m, l);
        let mut h = ExplicitHier::two_level(mem_words);
        explicit_mm_two_level(&a, &b, &mut c, &mut h, LoopOrder::Ijk);
        prop_assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-9);
        let t = h.traffic().boundary(0);
        let (mf, nf, lf, bf) = (m as u64, n as u64, l as u64, bsz as u64);
        prop_assert_eq!(t.load_words, mf * lf + 2 * mf * nf * lf / bf);
        prop_assert_eq!(t.store_words, mf * lf);
        prop_assert!(h.peak(1) <= mem_words);
        let (wf, tot) = h.theorem1_check(0);
        prop_assert!(2 * wf >= tot);
    }

    /// WA vs non-WA store ratio equals the number of k-blocks, for every
    /// divisible shape.
    #[test]
    fn store_ratio_equals_k_blocks(
        nb in 2usize..6,
        seed in 0u64..500,
    ) {
        let bsz = 4;
        let n = nb * bsz;
        let a = Mat::random(n, n, seed);
        let b = Mat::random(n, n, seed + 3);
        let mut c1 = Mat::zeros(n, n);
        let mut c2 = Mat::zeros(n, n);
        let mut h1 = ExplicitHier::two_level(48);
        let mut h2 = ExplicitHier::two_level(48);
        explicit_mm_two_level(&a, &b, &mut c1, &mut h1, LoopOrder::Ijk);
        explicit_mm_two_level(&a, &b, &mut c2, &mut h2, LoopOrder::Kij);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
        let s1 = h1.traffic().boundary(0).store_words;
        let s2 = h2.traffic().boundary(0).store_words;
        prop_assert_eq!(s2, s1 * nb as u64);
    }

    /// TRSM stores exactly the output for any divisible shape, and the
    /// solve is correct.
    #[test]
    fn trsm_stores_equal_output(
        nb in 1usize..5,
        rb in 1usize..5,
        seed in 0u64..500,
    ) {
        let bsz = 4;
        let (n, nrhs) = (nb * bsz, rb * bsz);
        let t = Mat::random_upper_triangular(n, seed);
        let x = Mat::random(n, nrhs, seed + 7);
        let mut b = t.matmul_ref(&x);
        let mut h = ExplicitHier::two_level(48);
        explicit_trsm_wa(&t, &mut b, &mut h);
        prop_assert!(b.max_abs_diff(&x) < 1e-7);
        prop_assert_eq!(h.traffic().boundary(0).store_words, (n * nrhs) as u64);
    }

    /// The shared-memory WA schedule writes C exactly once for any thread
    /// count and shape, and matches the sequential product.
    #[test]
    fn parallel_wa_write_invariant(
        m in 1usize..30,
        n in 1usize..30,
        l in 1usize..30,
        threads in 1usize..6,
        seed in 0u64..500,
    ) {
        let a = Mat::random(m, n, seed);
        let b = Mat::random(n, l, seed + 11);
        let mut c = Mat::zeros(m, l);
        let stats = dense::shared::par_matmul_wa(&a, &b, &mut c, 8, threads);
        prop_assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-9);
        prop_assert_eq!(dense::shared::total_c_writes(&stats), (m * l) as u64);
    }
}
