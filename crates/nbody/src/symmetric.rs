//! The symmetry-exploiting (Newton's third law) N-body variant.
//!
//! Halves the interaction count by computing each pair once and applying
//! `F_ji = -F_ij`, but — as §4.4 argues — every pass through the inner
//! loop now updates forces on *both* blocks, so partial force accumulators
//! for all `N` particles are repeatedly written back: `Θ(N²/b)` stores to
//! slow memory instead of `N`. Write-avoiding and flop-halving are in
//! tension.

use crate::force::{phi2, Particle, Vec3};
use memsim::ExplicitHier;

/// Two-level blocked symmetric N-body: the interaction loop runs over
/// unordered block pairs `(i, j)`, `j ≥ i`, updating both `F(i)` and
/// `F(j)`; `F(j)` must be stored back each pass.
pub fn explicit_nbody_symmetric(p: &[Particle], hier: &mut ExplicitHier) -> Vec<Vec3> {
    let n = p.len();
    // Four resident blocks now: P(i), P(j), F(i), F(j).
    let b = ((hier.capacity(1) / 4) as usize).max(1);
    let mut f = vec![Vec3::default(); n];

    let mut i = 0;
    while i < n {
        let bi = b.min(n - i);
        hier.load(0, bi as u64); // P(i)
        hier.load(0, bi as u64); // F(i): partially accumulated, re-read
        let mut j = i;
        while j < n {
            let bj = b.min(n - j);
            if j > i {
                hier.load(0, bj as u64); // P(j)
                hier.load(0, bj as u64); // F(j): partial sums re-read
            }
            for ii in i..i + bi {
                let jj0 = if j == i { ii + 1 } else { j };
                for jj in jj0..j + bj {
                    let fij = phi2(p[ii], p[jj]);
                    f[ii] = f[ii].add(fij);
                    f[jj] = f[jj].sub(fij);
                }
            }
            // One Φ₂ evaluation per unordered pair in this block pair.
            let interactions = if j == i {
                bi * bi.saturating_sub(1) / 2
            } else {
                bi * bj
            };
            hier.flop(interactions as u64);
            if j > i {
                hier.store(0, bj as u64); // F(j) written back every pass
                hier.free(1, 2 * bj as u64);
            }
            j += bj;
        }
        hier.store(0, bi as u64); // F(i)
        hier.free(1, 2 * bi as u64);
        i += bi;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::explicit_nbody_wa;
    use crate::force::reference_forces;

    #[test]
    fn symmetric_matches_reference() {
        let p = Particle::random_cloud(40, 21);
        let mut h = ExplicitHier::two_level(16);
        let f = explicit_nbody_symmetric(&p, &mut h);
        let want = reference_forces(&p);
        for (a, b) in f.iter().zip(&want) {
            assert!(a.max_abs_diff(*b) < 1e-12);
        }
    }

    #[test]
    fn symmetric_halves_flops_but_multiplies_writes() {
        let n = 64usize;
        let p = Particle::random_cloud(n, 22);
        let mut h_wa = ExplicitHier::two_level(12); // b = 4
        let mut h_sym = ExplicitHier::two_level(16); // b = 4 (M/4)
        let f1 = explicit_nbody_wa(&p, &mut h_wa);
        let f2 = explicit_nbody_symmetric(&p, &mut h_sym);
        for (a, b) in f1.iter().zip(&f2) {
            assert!(a.max_abs_diff(*b) < 1e-12);
        }
        // Roughly half the interactions...
        assert!(h_sym.flops() < 6 * h_wa.flops() / 10);
        // ...but stores scale like N²/b instead of N.
        let s_wa = h_wa.traffic().boundary(0).store_words;
        let s_sym = h_sym.traffic().boundary(0).store_words;
        assert_eq!(s_wa, n as u64);
        assert!(
            s_sym as f64 > 0.3 * (n * n / 4) as f64 / 2.0,
            "symmetric stores {s_sym} should scale with N²/b"
        );
        assert!(s_sym > 4 * s_wa);
    }

    #[test]
    fn capacity_respected() {
        let p = Particle::random_cloud(30, 23);
        let mut h = ExplicitHier::two_level(16);
        let _ = explicit_nbody_symmetric(&p, &mut h);
        assert!(h.peak(1) <= 16);
    }
}
