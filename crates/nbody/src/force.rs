//! Force laws and reference (unblocked) force computations.

use wa_core::XorShift;

/// Words per particle/force when laid out in word-addressed memory:
/// (x, y, z, m) for particles, (fx, fy, fz, pad) for forces — the paper
/// assumes a force is the same size as a particle.
pub const WORDS_PER_BODY: usize = 4;

/// Small softening constant keeping the force law finite at zero
/// separation.
pub const EPS2: f64 = 1e-4;

/// 3-vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

#[allow(clippy::should_implement_trait)] // explicit kernel arithmetic, not operator sugar
impl Vec3 {
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + o.x,
            y: self.y + o.y,
            z: self.z + o.z,
        }
    }

    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - o.x,
            y: self.y - o.y,
            z: self.z - o.z,
        }
    }

    pub fn scale(self, s: f64) -> Vec3 {
        Vec3 {
            x: self.x * s,
            y: self.y * s,
            z: self.z * s,
        }
    }

    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    pub fn max_abs_diff(self, o: Vec3) -> f64 {
        (self.x - o.x)
            .abs()
            .max((self.y - o.y).abs())
            .max((self.z - o.z).abs())
    }
}

/// A point mass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Particle {
    pub pos: Vec3,
    pub mass: f64,
}

impl Particle {
    /// Deterministic random particle cloud in the unit cube, masses in
    /// `[0.5, 1.5)`.
    pub fn random_cloud(n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = XorShift::new(seed);
        (0..n)
            .map(|_| Particle {
                pos: Vec3 {
                    x: rng.next_unit(),
                    y: rng.next_unit(),
                    z: rng.next_unit(),
                },
                mass: 0.5 + rng.next_unit(),
            })
            .collect()
    }
}

/// Softened gravitational pairwise force of `q` on `p`
/// (`Φ₂(p, p) = 0` by convention, as the paper assumes).
#[inline]
pub fn phi2(p: Particle, q: Particle) -> Vec3 {
    let d = q.pos.sub(p.pos);
    let r2 = d.norm2();
    if r2 == 0.0 {
        return Vec3::default();
    }
    let inv = (r2 + EPS2).powf(-1.5);
    d.scale(p.mass * q.mass * inv)
}

/// A synthetic symmetric three-body force on `p` from the pair `(q, r)`
/// (Axilrod–Teller-flavoured: attraction toward the pair's weighted
/// midpoint, damped by the triangle's size). Returns 0 if any two
/// arguments coincide, per the paper's `Φ_k` convention.
#[inline]
pub fn phi3(p: Particle, q: Particle, r: Particle) -> Vec3 {
    if p.pos == q.pos || p.pos == r.pos || q.pos == r.pos {
        return Vec3::default();
    }
    let mid = q.pos.add(r.pos).scale(0.5);
    let d = mid.sub(p.pos);
    let spread = q.pos.sub(p.pos).norm2() + r.pos.sub(p.pos).norm2() + q.pos.sub(r.pos).norm2();
    d.scale(p.mass * q.mass * r.mass / (spread + EPS2).powi(2))
}

/// Unblocked reference: `F_i = Σ_j Φ₂(P_i, P_j)`.
pub fn reference_forces(p: &[Particle]) -> Vec<Vec3> {
    let n = p.len();
    let mut f = vec![Vec3::default(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                f[i] = f[i].add(phi2(p[i], p[j]));
            }
        }
    }
    f
}

/// Unblocked reference: `F_i = Σ_{j<k, j≠i≠k} Φ₃(P_i, P_j, P_k)` —
/// unordered pairs so each triple contributes once per target particle.
pub fn reference_forces_3body(p: &[Particle]) -> Vec<Vec3> {
    let n = p.len();
    let mut f = vec![Vec3::default(); n];
    for i in 0..n {
        for j in 0..n {
            for k in j + 1..n {
                if j != i && k != i {
                    f[i] = f[i].add(phi3(p[i], p[j], p[k]));
                }
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi2_antisymmetric_under_swap() {
        let cloud = Particle::random_cloud(2, 1);
        let f_pq = phi2(cloud[0], cloud[1]);
        let f_qp = phi2(cloud[1], cloud[0]);
        assert!(f_pq.add(f_qp).max_abs_diff(Vec3::default()) < 1e-15);
    }

    #[test]
    fn phi2_zero_for_identical() {
        let p = Particle {
            pos: Vec3 {
                x: 1.0,
                y: 2.0,
                z: 3.0,
            },
            mass: 2.0,
        };
        assert_eq!(phi2(p, p), Vec3::default());
    }

    #[test]
    fn phi3_symmetric_in_last_two_args() {
        let c = Particle::random_cloud(3, 2);
        let a = phi3(c[0], c[1], c[2]);
        let b = phi3(c[0], c[2], c[1]);
        assert!(a.max_abs_diff(b) < 1e-15);
    }

    #[test]
    fn reference_total_momentum_conserved() {
        // Σ_i F_i = 0 for an antisymmetric pairwise force.
        let p = Particle::random_cloud(20, 3);
        let f = reference_forces(&p);
        let tot = f.iter().fold(Vec3::default(), |a, &b| a.add(b));
        assert!(tot.max_abs_diff(Vec3::default()) < 1e-12);
    }

    #[test]
    fn forces_scale_with_mass() {
        let mut p = Particle::random_cloud(5, 4);
        let f1 = reference_forces(&p);
        for q in &mut p {
            q.mass *= 2.0;
        }
        let f2 = reference_forces(&p);
        for (a, b) in f1.iter().zip(&f2) {
            assert!(a.scale(4.0).max_abs_diff(*b) < 1e-10);
        }
    }
}
