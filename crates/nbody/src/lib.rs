//! # nbody — direct N-body with write-avoiding blocking
//!
//! Section 4.4 of the paper: the direct (N,2)-body force computation admits
//! a write-avoiding schedule (Algorithm 4) that attains both the
//! `Ω(N²/M)` load bound and the `N` (output size) write bound; the
//! symmetry-exploiting variant (Newton's third law, half the flops) does
//! *not* — every inner pass updates forces on all `N` particles, forcing
//! `Ω(N²/b)` writes. The k-tuple generalization blocks `k` nested loops at
//! `b = M/(k+1)` and pays a `k!` factor for its WA property.
//!
//! Memory is measured in *particles* (the paper's convention); a particle
//! and a force are each one unit ([`force::WORDS_PER_BODY`] words when
//! simulated at word granularity).

pub mod explicit;
pub mod force;
pub mod simmed;
pub mod symmetric;
pub mod workloads;

pub use explicit::{explicit_kbody_wa, explicit_nbody_wa};
pub use force::{reference_forces, reference_forces_3body, Particle, Vec3};
pub use symmetric::explicit_nbody_symmetric;
