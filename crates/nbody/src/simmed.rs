//! Cache-simulated (access-driven) blocked N-body for the Proposition 6.2
//! validation: under LRU with five blocks resident, the blocked WA
//! schedule's write-backs equal the output size `N`.

use crate::force::{phi2, Particle, Vec3, WORDS_PER_BODY};
use memsim::Mem;

/// Word layout: particles at `[0, 4N)` (x,y,z,m per particle), forces at
/// `[4N, 8N)` (fx,fy,fz,pad).
pub fn particle_base(i: usize) -> usize {
    i * WORDS_PER_BODY
}

pub fn force_base(n: usize, i: usize) -> usize {
    (n + i) * WORDS_PER_BODY
}

/// Write a particle cloud into memory (setup; not part of the measured
/// kernel). Each body is one 4-word run.
pub fn store_cloud<M: Mem>(mem: &mut M, p: &[Particle]) {
    for (i, q) in p.iter().enumerate() {
        mem.st_run(particle_base(i), &[q.pos.x, q.pos.y, q.pos.z, q.mass]);
    }
}

/// Read the force array back out.
pub fn load_forces<M: Mem>(mem: &mut M, n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let mut f = [0.0; 3];
            mem.ld_run(force_base(n, i), &mut f);
            Vec3 {
                x: f[0],
                y: f[1],
                z: f[2],
            }
        })
        .collect()
}

fn ld_particle<M: Mem>(mem: &mut M, i: usize) -> Particle {
    let mut w = [0.0; 4];
    mem.ld_run(particle_base(i), &mut w);
    Particle {
        pos: Vec3 {
            x: w[0],
            y: w[1],
            z: w[2],
        },
        mass: w[3],
    }
}

/// Blocked WA (N,2)-body over a [`Mem`], block size `b` particles: force
/// accumulators for the `i` block are held in registers across the whole
/// `j` sweep (the access-level analogue of Algorithm 4's F-block
/// residency), written once per block.
pub fn simmed_nbody_wa<M: Mem>(mem: &mut M, n: usize, b: usize) {
    let mut i = 0;
    while i < n {
        let bi = b.min(n - i);
        // Initialize force accumulators (R2 residency: first touch is a
        // write).
        mem.phase("force-init");
        for ii in i..i + bi {
            mem.st_run(force_base(n, ii), &[0.0; 3]);
        }
        mem.phase("force-sweep");
        let mut j = 0;
        while j < n {
            let bj = b.min(n - j);
            for ii in i..i + bi {
                let pi = ld_particle(mem, ii);
                let mut f = [0.0; 3];
                mem.ld_run(force_base(n, ii), &mut f);
                let mut acc = Vec3 {
                    x: f[0],
                    y: f[1],
                    z: f[2],
                };
                for jj in j..j + bj {
                    if ii != jj {
                        let pj = ld_particle(mem, jj);
                        acc = acc.add(phi2(pi, pj));
                    }
                }
                mem.st_run(force_base(n, ii), &[acc.x, acc.y, acc.z]);
            }
            j += bj;
        }
        i += bi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::reference_forces;
    use memsim::{CacheConfig, MemSim, Policy, RawMem, SimMem};

    #[test]
    fn simmed_matches_reference() {
        let n = 40;
        let p = Particle::random_cloud(n, 31);
        let mut mem = RawMem::new(2 * n * WORDS_PER_BODY);
        store_cloud(&mut mem, &p);
        simmed_nbody_wa(&mut mem, n, 8);
        let f = load_forces(&mut mem, n);
        let want = reference_forces(&p);
        for (a, b) in f.iter().zip(&want) {
            assert!(a.max_abs_diff(*b) < 1e-12);
        }
    }

    /// Prop 6.2 for the N-body algorithm: LRU write-backs ≈ N (in lines:
    /// N·4/8), with five blocks' worth of cache.
    #[test]
    fn lru_writebacks_equal_output_size() {
        let n = 256;
        let b = 16; // block of 16 particles = 64 words
        let cfg = CacheConfig {
            capacity_words: 5 * b * WORDS_PER_BODY + 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let p = Particle::random_cloud(n, 32);
        let mut mem = SimMem::new(2 * n * WORDS_PER_BODY, MemSim::two_level(cfg));
        store_cloud(&mut mem, &p);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        simmed_nbody_wa(&mut mem, n, b);
        mem.sim.flush();
        let c = mem.sim.llc();
        let writes = c.victims_m + c.flush_victims_m;
        let out_lines = (n * WORDS_PER_BODY / 8) as u64;
        assert!(
            writes <= out_lines + out_lines / 4,
            "write-backs {writes} vs output {out_lines} lines"
        );
    }
}
