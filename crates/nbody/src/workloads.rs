//! Engine registrations for the N-body kernels (Algorithm 4 and the §4.4
//! symmetric variant).
//!
//! Unit note: the *explicit* model counts **particles** (the paper's "L1
//! and L2 can store M₁ and M₂ particles"), while the cache-simulated
//! backend counts **words** with [`crate::force::WORDS_PER_BODY`] words
//! per body. The reports echo `units` in their config so the cross-model
//! tests can convert (`words ≈ particles × WORDS_PER_BODY` for the force
//! output, which dominates slow-memory writes).

use crate::explicit::{explicit_kbody_wa, explicit_nbody_wa};
use crate::force::{Particle, WORDS_PER_BODY};
use crate::simmed::{simmed_nbody_wa, store_cloud};
use crate::symmetric::explicit_nbody_symmetric;
use memsim::xeon::XeonGeometry;
use memsim::{
    explicit_report, memsim_report, stack_report, ExplicitHier, MemSim, RawMem, SimMem, StackMem,
};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};

/// Fast memory in *particles* for the two-level model at `scale`, and the
/// particle count `N = 3 × M_particles` (so the cloud is several blocks).
/// The capacity is capped well below the scale's L3: the O(N²) pairwise
/// sweep through the word-level simulator would otherwise dominate every
/// sweep, and the WA effects under study depend only on the N/M ratio.
fn particles_geometry(scale: Scale) -> (u64, usize) {
    let words = XeonGeometry::for_scale(scale, memsim::Policy::Lru).l3_words;
    let cap = match scale {
        Scale::Small => 512,
        Scale::Paper => 1024,
    };
    let m_particles = ((words / WORDS_PER_BODY) as u64).min(cap);
    (m_particles, 3 * m_particles as usize)
}

fn base(name: &str, backend: BackendKind, scale: Scale, n: usize) -> RunReport {
    RunReport::new(name, backend, scale).config("n_particles", n)
}

/// Footprint estimate shared by the n-body workloads: the particle cloud
/// plus the force output, doubled for slack (every variant's N is bounded
/// by [`particles_geometry`]'s).
fn nbody_footprint(scale: Scale, _depth: usize) -> u64 {
    let (_, n) = particles_geometry(scale);
    2 * (n as u64) * (WORDS_PER_BODY as u64 + 3) * 8
}

fn explicit_run(
    name: &str,
    scale: Scale,
    kernel: impl Fn(&[Particle], &mut ExplicitHier) -> Vec<crate::force::Vec3>,
) -> RunReport {
    let (m, n) = particles_geometry(scale);
    let p = Particle::random_cloud(n, 61);
    let mut h = ExplicitHier::two_level(m);
    let (_, ns) = timed(|| kernel(&p, &mut h));
    let mut r = explicit_report(&h, base(name, BackendKind::Explicit, scale, n))
        .config("units", "particles")
        .config("m_particles", m);
    r.wall_ns = ns;
    r
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        FnWorkload::boxed_sized(
            "nbody-wa",
            "nbody",
            "Algorithm 4 blocked (N,2)-body: N + N^2/b loads, N stores (the output)",
            &[
                BackendKind::Raw,
                BackendKind::Simmed,
                BackendKind::Explicit,
                BackendKind::Stack,
            ],
            &[],
            nbody_footprint,
            |wa_core::engine::RunCfg { backend, scale, .. }| match backend {
                BackendKind::Explicit => Ok(explicit_run("nbody-wa", scale, |p, h| {
                    explicit_nbody_wa(p, h)
                })),
                BackendKind::Simmed | BackendKind::Raw | BackendKind::Stack => {
                    let (m, n) = particles_geometry(scale);
                    // The explicit model places blocks by hand, so b = M/3
                    // fills fast memory exactly. True LRU needs the
                    // Proposition 6.2 capacity slack — about five resident
                    // blocks — or the force lines are evicted once per
                    // j-block and write-backs inflate ~(N/b)×.
                    let b = ((m / 5) as usize).max(1);
                    let p = Particle::random_cloud(n, 61);
                    // Stage the cloud outside the measured simulator so
                    // setup stores do not dirty the caches (cold start).
                    let mut raw = RawMem::new(2 * n * WORDS_PER_BODY);
                    store_cloud(&mut raw, &p);
                    let data = raw.data;
                    // The simulated cache equals the explicit model's fast
                    // memory, converted to words.
                    let words = m as usize * WORDS_PER_BODY;
                    let mut r = if backend == BackendKind::Simmed {
                        let sim = MemSim::single_level_lru(words);
                        let mut mem = SimMem::from_vec(data, sim);
                        let (_, ns) = timed(|| simmed_nbody_wa(&mut mem, n, b));
                        mem.sim.flush();
                        let mut r = memsim_report(&mem.sim, base("nbody-wa", backend, scale, n))
                            .note("flushed: end-of-run dirty lines charged to DRAM");
                        r.wall_ns = ns;
                        r
                    } else if backend == BackendKind::Stack {
                        let mut mem = StackMem::from_vec(data);
                        let (_, ns) = timed(|| simmed_nbody_wa(&mut mem, n, b));
                        let mut r =
                            stack_report(&mem.sim, words, base("nbody-wa", backend, scale, n));
                        r.wall_ns = ns;
                        r
                    } else {
                        let mut mem = RawMem::from_vec(data);
                        let (_, ns) = timed(|| simmed_nbody_wa(&mut mem, n, b));
                        let mut r = base("nbody-wa", backend, scale, n);
                        r.wall_ns = ns;
                        r
                    };
                    r = r
                        .config("units", "words")
                        .config("words_per_body", WORDS_PER_BODY)
                        .config("block_particles", b);
                    Ok(r)
                }
                other => Err(EngineError::UnsupportedBackend {
                    workload: "nbody-wa".into(),
                    backend: other,
                    supported: vec![
                        BackendKind::Raw,
                        BackendKind::Simmed,
                        BackendKind::Explicit,
                        BackendKind::Stack,
                    ],
                }),
            },
        ),
        FnWorkload::boxed_sized(
            "nbody-symmetric",
            "nbody",
            "symmetric (Newton 3rd law) N-body: half the flops, Theta(N^2/b) stores (4.4)",
            &[BackendKind::Explicit],
            &[],
            nbody_footprint,
            |wa_core::engine::RunCfg { scale, .. }| {
                Ok(explicit_run("nbody-symmetric", scale, |p, h| {
                    explicit_nbody_symmetric(p, h)
                }))
            },
        ),
        FnWorkload::boxed_sized(
            "kbody-3",
            "nbody",
            "(N,3)-body with b = M/4 blocks: WA generalization of Algorithm 4",
            &[BackendKind::Explicit],
            &[],
            nbody_footprint,
            |wa_core::engine::RunCfg { scale, .. }| {
                // The (N,3)-body sweep is O(N^3/b); shrink N to keep the
                // run interactive.
                let (m, _) = particles_geometry(scale);
                let m = (m / 8).max(4);
                let n = 3 * m as usize;
                let p = Particle::random_cloud(n, 62);
                let mut h = ExplicitHier::two_level(m);
                let (_, ns) = timed(|| explicit_kbody_wa(&p, &mut h));
                let mut r = explicit_report(&h, base("kbody-3", BackendKind::Explicit, scale, n))
                    .config("units", "particles")
                    .config("m_particles", m);
                r.wall_ns = ns;
                Ok(r)
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nbody_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                let r = w
                    .run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
                assert_eq!(r.workload, w.name());
            }
        }
    }

    #[test]
    fn wa_nbody_explicit_stores_equal_output_particles() {
        let ws = workloads();
        let w = ws.iter().find(|w| w.name() == "nbody-wa").unwrap();
        let (_, n) = particles_geometry(Scale::Small);
        let r = w.run(BackendKind::Explicit, Scale::Small).unwrap();
        assert_eq!(r.writes_to_slow(), n as u64);
    }
}
