//! Algorithm 4 — explicitly blocked direct N-body, two-level, with exact
//! counts, plus the (N,k)-body generalization.
//!
//! Memory is measured in *particles*: the hierarchy capacities passed in
//! are particle counts, matching the paper's accounting ("L1 and L2 can
//! store M₁ and M₂ particles").

use crate::force::{phi2, phi3, Particle, Vec3};
use memsim::ExplicitHier;

/// Block size for the (N,2)-body problem: `b = M/3` (P⁽¹⁾ block, P⁽²⁾
/// block, F⁽¹⁾ block resident simultaneously).
pub fn block2_for(m_particles: u64) -> usize {
    ((m_particles / 3) as usize).max(1)
}

/// Two-level WA Algorithm 4: `F_i = Σ_j Φ₂(P_i, P_j)`.
///
/// Explicit counts attained: loads `N + N²/b`, local (R2) writes `N` for
/// the force accumulators, stores `N` — the output size.
pub fn explicit_nbody_wa(p: &[Particle], hier: &mut ExplicitHier) -> Vec<Vec3> {
    let n = p.len();
    let b = block2_for(hier.capacity(1));
    let mut f = vec![Vec3::default(); n];

    let mut i = 0;
    while i < n {
        let bi = b.min(n - i);
        hier.load(0, bi as u64); // P(1)(i): L2 -> L1
        hier.alloc(1, bi as u64); // F(1)(i) initialized in L1 (R2)
        let mut j = 0;
        while j < n {
            let bj = b.min(n - j);
            hier.load(0, bj as u64); // P(2)(j)
            for ii in i..i + bi {
                for jj in j..j + bj {
                    if ii != jj {
                        f[ii] = f[ii].add(phi2(p[ii], p[jj]));
                    }
                }
            }
            hier.flop((bi * bj) as u64);
            hier.free(1, bj as u64);
            j += bj;
        }
        hier.store(0, bi as u64); // F(1)(i): L1 -> L2
        hier.free(1, 2 * bi as u64); // P(1)(i) and F(1)(i)
        i += bi;
    }
    f
}

/// Two-level WA (N,3)-body: `F_i = Σ_{j<k} Φ₃(P_i, P_j, P_k)` with three
/// nested block loops at `b = M/4`, not exploiting symmetry (the paper's
/// k-loop structure; the full sweep over ordered pairs is halved by the
/// `j<k` convention of the reference, so we sweep ordered pairs and halve).
pub fn explicit_kbody_wa(p: &[Particle], hier: &mut ExplicitHier) -> Vec<Vec3> {
    let n = p.len();
    let b = ((hier.capacity(1) / 4) as usize).max(1); // k+1 = 4 arrays
    let mut f = vec![Vec3::default(); n];

    let mut i = 0;
    while i < n {
        let bi = b.min(n - i);
        hier.load(0, bi as u64); // P(1)(i1)
        hier.alloc(1, bi as u64); // F(1)(i1)
        let mut j = 0;
        while j < n {
            let bj = b.min(n - j);
            hier.load(0, bj as u64); // P(2)(i2)
            let mut k = 0;
            while k < n {
                let bk = b.min(n - k);
                hier.load(0, bk as u64); // P(3)(i3)
                for ii in i..i + bi {
                    for jj in j..j + bj {
                        for kk in k..k + bk {
                            if jj != kk && ii != jj && ii != kk {
                                // Ordered pairs double-count each {j,k}:
                                // scale by 1/2 to match the reference.
                                f[ii] = f[ii].add(phi3(p[ii], p[jj], p[kk]).scale(0.5));
                            }
                        }
                    }
                }
                hier.flop((bi * bj * bk) as u64);
                hier.free(1, bk as u64);
                k += bk;
            }
            hier.free(1, bj as u64);
            j += bj;
        }
        hier.store(0, bi as u64); // F(1)(i1)
        hier.free(1, 2 * bi as u64);
        i += bi;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{reference_forces, reference_forces_3body};

    #[test]
    fn wa_2body_matches_reference() {
        let p = Particle::random_cloud(40, 11);
        let mut h = ExplicitHier::two_level(12); // b = 4
        let f = explicit_nbody_wa(&p, &mut h);
        let want = reference_forces(&p);
        for (a, b) in f.iter().zip(&want) {
            assert!(a.max_abs_diff(*b) < 1e-12);
        }
    }

    #[test]
    fn wa_2body_counts_match_algorithm_4() {
        let n = 48u64;
        let p = Particle::random_cloud(n as usize, 12);
        let mut h = ExplicitHier::two_level(12); // b = 4
        let _ = explicit_nbody_wa(&p, &mut h);
        let b = 4u64;
        let t = h.traffic().boundary(0);
        // loads = N (P1 blocks) + N²/b (P2 blocks)
        assert_eq!(t.load_words, n + n * n / b);
        // stores = N (the output)
        assert_eq!(t.store_words, n);
        // writes into L1 = loads + N force-accumulator initializations
        assert_eq!(h.writes_into_level(1), n + n * n / b + n);
        // flops = N² interactions
        assert_eq!(h.flops(), n * n);
    }

    #[test]
    fn wa_2body_attains_lower_bounds() {
        let n = 64u64;
        let m = 12u64;
        let p = Particle::random_cloud(n as usize, 13);
        let mut h = ExplicitHier::two_level(m);
        let _ = explicit_nbody_wa(&p, &mut h);
        let bound = wa_core::bounds::nbody_ldst_lower(n, 2, m);
        let loads = h.traffic().boundary(0).load_words as f64;
        // Within a constant factor (~3x) of N²/M: loads = N + N²/(M/3).
        assert!(
            loads <= 3.0 * bound + n as f64 + 1.0,
            "loads {loads} vs bound {bound}"
        );
        assert_eq!(
            h.traffic().boundary(0).store_words,
            wa_core::bounds::writes_to_slow_lower(n)
        );
    }

    #[test]
    fn wa_3body_matches_reference() {
        let p = Particle::random_cloud(14, 14);
        let mut h = ExplicitHier::two_level(16); // b = 4
        let f = explicit_kbody_wa(&p, &mut h);
        let want = reference_forces_3body(&p);
        for (a, b) in f.iter().zip(&want) {
            assert!(a.max_abs_diff(*b) < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn wa_3body_counts() {
        let n = 16u64;
        let p = Particle::random_cloud(n as usize, 15);
        let mut h = ExplicitHier::two_level(16); // b = 4
        let _ = explicit_kbody_wa(&p, &mut h);
        let b = 4u64;
        let t = h.traffic().boundary(0);
        // loads = N + N²/b + N³/b²
        assert_eq!(t.load_words, n + n * n / b + n * n * n / (b * b));
        assert_eq!(t.store_words, n);
        assert_eq!(h.flops(), n * n * n);
    }

    #[test]
    fn capacity_respected() {
        let p = Particle::random_cloud(30, 16);
        let mut h = ExplicitHier::two_level(12);
        let _ = explicit_nbody_wa(&p, &mut h);
        assert!(h.peak(1) <= 12);
        let mut h3 = ExplicitHier::two_level(16);
        let _ = explicit_kbody_wa(&p, &mut h3);
        assert!(h3.peak(1) <= 16);
    }
}
