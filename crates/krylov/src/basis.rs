//! s-step polynomial bases and their recurrence matrices.
//!
//! CA-CG represents the 2s+1 basis vectors
//! `[ρ₀(A)p, …, ρ_s(A)p, ρ₀(A)r, …, ρ_{s−1}(A)r]` and needs the matrix `H`
//! with `A·V = V·H` on the columns whose degree stays representable. For
//! the monomial basis `ρ_j(A) = A^j`, `H` is a shift; for the Newton basis
//! `ρ_{j+1}(x) = (x − θ_j)·ρ_j(x)`, `H` adds the shifts on the diagonal.
//! Well-chosen shifts keep the basis well-conditioned for larger `s`
//! (Carson et al. \[14\]); both bases give identical iterates in exact
//! arithmetic, which the tests verify.

/// Which polynomial basis generates the s-step Krylov blocks.
#[derive(Clone, Debug, PartialEq)]
pub enum BasisKind {
    /// `ρ_j(x) = x^j`.
    Monomial,
    /// `ρ_{j+1}(x) = (x − θ_j) ρ_j(x)` with the given shifts
    /// (length ≥ s).
    Newton(Vec<f64>),
}

impl BasisKind {
    /// Shift θ_j applied when advancing degree j → j+1.
    pub fn shift(&self, j: usize) -> f64 {
        match self {
            BasisKind::Monomial => 0.0,
            BasisKind::Newton(t) => t[j % t.len()],
        }
    }

    /// Build the `(2s+1)×(2s+1)` recurrence matrix `H` (row-major). With
    /// `m = 2s+1`, columns `0..s` hold the P-part (degrees 0..s), columns
    /// `s+1..2s+1` the R-part (degrees 0..s−1):
    ///
    /// * `A·V_j = V_{j+1} + θ_j·V_j` for P columns `j < s`,
    /// * `A·V_j = V_{j+1} + θ_{j−s−1}·V_j` for R columns `s+1 ≤ j < 2s`,
    /// * columns `s` and `2s` (top degrees) are zero — the inner loop
    ///   never applies `H` to coefficients living there.
    pub fn h_matrix(&self, s: usize) -> Vec<Vec<f64>> {
        let m = 2 * s + 1;
        let mut h = vec![vec![0.0; m]; m];
        for j in 0..s {
            h[j + 1][j] = 1.0;
            h[j][j] = self.shift(j);
        }
        for j in s + 1..2 * s {
            h[j + 1][j] = 1.0;
            h[j][j] = self.shift(j - s - 1);
        }
        h
    }
}

/// `y = H·x` for the dense row-major `H` of [`BasisKind::h_matrix`].
pub fn h_apply(h: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    let m = h.len();
    let mut y = vec![0.0; m];
    for (i, row) in h.iter().enumerate() {
        let mut acc = 0.0;
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                acc += v * x[j];
            }
        }
        y[i] = acc;
    }
    let _ = m; // (kept for clarity: y has the same length as H's order)
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_h_is_a_shift() {
        let h = BasisKind::Monomial.h_matrix(3); // m = 7
                                                 // e0 -> e1 -> e2 -> e3.
        let mut v = vec![0.0; 7];
        v[0] = 1.0;
        let v1 = h_apply(&h, &v);
        assert_eq!(v1[1], 1.0);
        let v2 = h_apply(&h, &v1);
        assert_eq!(v2[2], 1.0);
        // R part: e4 -> e5.
        let mut r = vec![0.0; 7];
        r[4] = 1.0;
        assert_eq!(h_apply(&h, &r)[5], 1.0);
    }

    #[test]
    fn newton_h_adds_shifts() {
        let h = BasisKind::Newton(vec![2.0, 3.0]).h_matrix(2);
        // A·V0 = V1 + 2·V0.
        assert_eq!(h[1][0], 1.0);
        assert_eq!(h[0][0], 2.0);
        assert_eq!(h[1][1], 3.0);
        // Top-degree columns are zero.
        assert!(h.iter().all(|row| row[2] == 0.0));
        assert!(h.iter().all(|row| row[4] == 0.0));
    }

    #[test]
    fn h_apply_matches_manual() {
        let h = vec![vec![1.0, 2.0], vec![0.0, 3.0]];
        assert_eq!(h_apply(&h, &[1.0, 1.0]), vec![3.0, 3.0]);
    }
}
