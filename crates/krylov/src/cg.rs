//! Conjugate gradients (paper Algorithm 6) with slow-memory accounting.
//!
//! Traffic is charged through the batched [`AccessRun`] API: each
//! n-vector the iteration streams is one run over that vector's nominal
//! slow-memory span, so the tally's message counts equal the number of
//! vector transfers (the block-transfer notion of the model).

use crate::counter::IoSink;
use crate::csr::Csr;
use memsim::LINE_WORDS;
use wa_core::AccessRun;

/// Result of a CG / CA-CG solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    pub x: Vec<f64>,
    /// Conventional-iteration count (CA-CG reports `outer × s`).
    pub iters: usize,
    /// Final true residual norm ‖b − Ax‖₂.
    pub residual: f64,
    /// Residual-norm history, one entry per conventional iteration
    /// (per outer iteration for CA-CG).
    pub history: Vec<f64>,
}

fn dot<S: IoSink>(a: &[f64], b: &[f64], va: usize, vb: usize, io: &mut S) -> f64 {
    // Two vector streams = two read runs (one message each).
    io.phase("dot");
    io.read_at(va, a.len());
    io.read_at(vb, b.len());
    io.flop(2 * a.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Standard CG for SPD `A·x = b`. Each iteration writes the four n-vectors
/// `x, r, p, w` back to slow memory (the paper's `W12 ≥ 4n − M₁` per
/// iteration when `n ≫ M₁`).
///
/// ```
/// use krylov::{cg::cg, counter::IoTally, stencil::laplacian_2d};
/// let a = laplacian_2d(8, 8, 0.1);
/// let b = vec![1.0; a.rows];
/// let mut io = IoTally::default();
/// let r = cg(&a, &b, &vec![0.0; a.rows], 1e-10, 500, &mut io);
/// assert!(r.residual < 1e-8);
/// assert!(io.writes() > 0);
/// ```
pub fn cg<S: IoSink>(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    tol: f64,
    max_iters: usize,
    io: &mut S,
) -> SolveResult {
    let n = a.rows;
    assert_eq!(b.len(), n);
    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    let mut w = vec![0.0; n];
    // Nominal slow-memory spans of the solver's streams. The tally only
    // charges words and messages; the simulated sink caches the spans, so
    // they are line-aligned to keep its write-backs word-comparable.
    let n8 = n.div_ceil(LINE_WORDS) * LINE_WORDS;
    let (vx, vr, vp, vw, vb, va) = (0, n8, 2 * n8, 3 * n8, 4 * n8, 5 * n8);
    // r = b − A x0
    a.spmv(&x, &mut r);
    io.run(&[
        AccessRun::read(va, a.nnz()),
        AccessRun::read(vx, n),
        AccessRun::write(vr, n),
    ]);
    io.flop(2 * a.nnz());
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    io.run(&[
        AccessRun::read(vb, n),
        AccessRun::read(vr, n),
        AccessRun::write(vr, n),
    ]);
    let mut p = r.clone();
    io.run(&[AccessRun::read(vr, n), AccessRun::write(vp, n)]);
    let bnorm = norm2(b).max(1e-300);
    let mut delta = dot(&r, &r, vr, vr, io);
    let mut history = vec![delta.sqrt() / bnorm];

    let mut iters = 0;
    while iters < max_iters && delta.sqrt() / bnorm > tol {
        io.phase("spmv");
        a.spmv(&p, &mut w); // w = A p
        io.run(&[
            AccessRun::read(va, a.nnz()),
            AccessRun::read(vp, n),
            AccessRun::write(vw, n),
        ]);
        io.flop(2 * a.nnz());
        let alpha = delta / dot(&p, &w, vp, vw, io);
        io.phase("vec-update");
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * w[i];
        }
        io.run(&[
            AccessRun::read(vx, n),
            AccessRun::read(vp, n),
            AccessRun::read(vr, n),
            AccessRun::read(vw, n),
            AccessRun::write(vx, n),
            AccessRun::write(vr, n),
        ]);
        io.flop(4 * n);
        let delta_new = dot(&r, &r, vr, vr, io);
        let beta = delta_new / delta;
        io.phase("vec-update");
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        io.run(&[
            AccessRun::read(vr, n),
            AccessRun::read(vp, n),
            AccessRun::write(vp, n),
        ]);
        io.flop(2 * n);
        delta = delta_new;
        iters += 1;
        history.push(delta.sqrt() / bnorm);
    }

    // True residual.
    let mut ax = vec![0.0; n];
    a.spmv(&x, &mut ax);
    let res = norm2(&b.iter().zip(&ax).map(|(u, v)| u - v).collect::<Vec<_>>());
    SolveResult {
        x,
        iters,
        residual: res,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::IoTally;
    use crate::stencil::{band_1d, laplacian_2d};
    use wa_core::XorShift;

    #[test]
    fn solves_poisson_2d() {
        let a = laplacian_2d(12, 12, 0.0);
        let n = a.rows;
        let mut rng = XorShift::new(5);
        let xt: Vec<f64> = (0..n).map(|_| rng.next_unit() - 0.5).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xt, &mut b);
        let mut io = IoTally::default();
        let r = cg(&a, &b, &vec![0.0; n], 1e-10, 2000, &mut io);
        assert!(r.residual < 1e-8, "residual {}", r.residual);
        for (u, v) in r.x.iter().zip(&xt) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_history_decreases_overall() {
        let a = band_1d(100, 1, 0.5);
        let b = vec![1.0; 100];
        let mut io = IoTally::default();
        let r = cg(&a, &b, &vec![0.0; 100], 1e-12, 500, &mut io);
        assert!(r.history.last().unwrap() < &1e-12);
        assert!(r.history[0] > *r.history.last().unwrap());
    }

    #[test]
    fn writes_scale_as_4n_per_iteration() {
        let a = laplacian_2d(16, 16, 0.0);
        let n = a.rows;
        let b = vec![1.0; n];
        let mut io = IoTally::default();
        let r = cg(&a, &b, &vec![0.0; n], 1e-30, 50, &mut io);
        assert_eq!(r.iters, 50, "should hit the cap");
        let per_iter = (io.writes() as f64) / 50.0;
        assert!(
            (per_iter - 4.0 * n as f64).abs() < 0.2 * n as f64,
            "writes/iter {per_iter} vs 4n = {}",
            4 * n
        );
    }

    /// Pin the tally of one hand-computed CG iteration, words *and*
    /// messages (a message = one vector/matrix stream transfer — the
    /// block-transfer unit documented on `RunReport::boundaries`).
    ///
    /// Setup (`r = b − A·x0`, `p = r`, `δ = rᵀr`):
    ///   loads  nnz + 6n words in 7 runs, stores 3n words in 3 runs.
    /// One iteration (`w = A·p`, two dots, x/r update, p update):
    ///   loads  nnz + 11n words in 12 runs, stores 4n words in 4 runs.
    #[test]
    fn one_iteration_tally_matches_hand_count() {
        let a = laplacian_2d(8, 8, 0.0);
        let (n, nnz) = (a.rows as u64, a.nnz() as u64);
        let b = vec![1.0; a.rows];
        let mut io = IoTally::default();
        let r = cg(&a, &b, &vec![0.0; a.rows], 1e-30, 1, &mut io);
        assert_eq!(r.iters, 1, "must run exactly one iteration");
        let t = io.traffic;
        assert_eq!(t.load_words, 2 * nnz + 17 * n);
        assert_eq!(t.load_msgs, 19);
        assert_eq!(t.store_words, 7 * n);
        assert_eq!(t.store_msgs, 7);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = band_1d(50, 2, 1.0);
        let mut io = IoTally::default();
        let r = cg(&a, &vec![0.0; 50], &vec![0.0; 50], 1e-10, 100, &mut io);
        assert_eq!(r.iters, 0);
        assert!(r.residual < 1e-12);
    }
}
